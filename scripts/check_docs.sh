#!/usr/bin/env bash
# Docs-consistency gate, run by CI and locally:
#
#   ./scripts/check_docs.sh ./build/rrbtool
#
# 1. Every command `rrbtool help` lists must be documented in
#    docs/cli.md, and every command docs/cli.md's command table lists
#    must exist in the help text — adding a command without docs (or
#    documenting a command that was removed) fails the build.
# 2. Every relative markdown link in README.md and docs/*.md must
#    resolve to an existing file.
set -u
cd "$(dirname "$0")/.."

rrbtool="${1:-./build/rrbtool}"
if [ ! -x "$rrbtool" ]; then
    echo "error: $rrbtool is not executable (build rrbtool first)" >&2
    exit 1
fi

fail=0

# --- 1. help <-> docs/cli.md command cross-check -----------------------
# Help commands: first word of each two-space-indented line of the
# "commands:" block (continuation lines are indented deeper).
help_commands=$("$rrbtool" help |
    awk '/^commands:$/{f=1;next} f&&/^$/{exit} f&&/^  [a-z]/{print $1}')
if [ -z "$help_commands" ]; then
    echo "error: could not parse a command list out of '$rrbtool help'" >&2
    exit 1
fi

# Documented commands: the backticked first column of docs/cli.md's
# command table.
doc_commands=$(sed -n 's/^| `\([a-z][a-z-]*\)`.*/\1/p' docs/cli.md)

for cmd in $help_commands; do
    if ! printf '%s\n' "$doc_commands" | grep -qx -- "$cmd"; then
        echo "docs/cli.md: command '$cmd' (in 'rrbtool help') is not" \
             "in the command table" >&2
        fail=1
    fi
done
for cmd in $doc_commands; do
    if ! printf '%s\n' "$help_commands" | grep -qx -- "$cmd"; then
        echo "docs/cli.md: command table lists '$cmd', which 'rrbtool" \
             "help' does not know" >&2
        fail=1
    fi
done

# --- 2. relative markdown links resolve --------------------------------
for file in README.md docs/*.md; do
    dir=$(dirname "$file")
    # Markdown link targets: the (...) of ](...), minus any #fragment.
    # External links (scheme://, mailto:) are out of scope.
    targets=$(grep -o '](.*)' "$file" | sed 's/^](//; s/).*//; s/#.*//' |
        grep -v '^$' | grep -v '://' | grep -v '^mailto:' | sort -u)
    for target in $targets; do
        if [ ! -e "$dir/$target" ]; then
            echo "$file: broken relative link -> $target" >&2
            fail=1
        fi
    done
done

if [ "$fail" -ne 0 ]; then
    echo "docs consistency check FAILED" >&2
    exit 1
fi
echo "docs consistency check passed:" \
     "$(printf '%s\n' "$help_commands" | wc -l) commands cross-checked," \
     "links in README.md + docs/*.md resolve"
