// Store-buffer study: the two independent measurement paths to ubd.
//
//   $ ./store_buffer_study
//
// The load path (Figure 7(a)) reads ubd off the saw-tooth period but can
// never make a request suffer the full ubd (delta >= dl1 latency > 0).
// The store path (Figure 7(b)) reaches the true delta = 0 alignment
// through the store buffer's back-to-back drains and reads ubd off the
// length of the descending slowdown span. Two structurally different
// measurements agreeing on one number is the paper's titular "increased
// confidence".
#include <cstdio>

#include "core/rrb.h"

using namespace rrb;

int main() {
    for (const bool variant : {false, true}) {
        const MachineConfig config =
            variant ? MachineConfig::ngmp_var() : MachineConfig::ngmp_ref();
        std::printf("=== %s architecture (hidden ubd = %llu) ===\n",
                    variant ? "var" : "ref",
                    static_cast<unsigned long long>(config.ubd_analytic()));

        UbdEstimatorOptions options;
        options.k_max = 60;
        options.unroll = 8;
        options.rsk_iterations = 30;
        const CrossCheckedEstimate e =
            estimate_ubd_cross_checked(config, options);

        std::printf("load path  : %s, ubd = %llu (saw-tooth period %zu, "
                    "%d/4 detectors)\n",
                    e.load_path.found ? "found" : "NOT FOUND",
                    static_cast<unsigned long long>(e.load_path.ubd),
                    e.load_path.period_k,
                    e.load_path.confidence.detector_votes);
        std::printf("store path : %s, ubd = %llu (plateau ends k=%zu, "
                    "zero from k=%zu)\n",
                    e.store_path.found ? "found" : "NOT FOUND",
                    static_cast<unsigned long long>(e.store_path.ubd),
                    e.store_path.plateau_end, e.store_path.first_zero);
        std::printf("cross-check: %s\n\n",
                    e.agree ? "AGREE — high confidence" : "DISAGREE");

        ChartOptions opts;
        opts.title = "store sweep dbus(store, k)";
        opts.height = 8;
        std::printf("%s\n", render_series(e.store_path.dbus, opts).c_str());
    }

    std::printf(
        "Note how the store path is immune to the DL1-latency change that\n"
        "shifts the load path's phase between ref and var: buffer drains\n"
        "always inject with delta = 0.\n");
    return 0;
}
