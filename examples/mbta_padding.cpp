// Measurement-based timing analysis workflow (Section 4.3, "Using ubdm"):
// derive an execution time bound (ETB) for an application by padding its
// isolated execution time with nr * ubdm, then validate the bound against
// the harshest contention the platform can produce.
//
//   $ ./mbta_padding
#include <cstdio>

#include "core/rrb.h"

using namespace rrb;

int main() {
    const MachineConfig config = MachineConfig::ngmp_ref();

    // Step 1: measure ubd once per platform with the rsk-nop methodology.
    UbdEstimatorOptions options;
    options.k_max = 60;
    options.unroll = 8;
    options.rsk_iterations = 30;
    const UbdEstimate estimate = estimate_ubd(config, options);
    if (!estimate.found) {
        std::printf("ubd estimation failed\n");
        return 1;
    }
    std::printf("platform ubd (measured) = %llu cycles\n\n",
                static_cast<unsigned long long>(estimate.ubd));

    // Step 2: per application — measure in isolation, count bus requests
    // with the PMCs, pad, and compare against observed contention runs.
    std::printf("%-8s %12s %8s %12s %14s %10s %s\n", "scua", "et_isol",
                "nr", "etb", "worst_observed", "pessimism", "bounded");
    for (const Autobench kernel :
         {Autobench::kCacheb, Autobench::kMatrix, Autobench::kTblook,
          Autobench::kA2time, Autobench::kCanrdr, Autobench::kPntrch}) {
        const Program scua = make_autobench(kernel, 0x0100'0000, 300, 7);
        const EtbResult etb =
            compute_and_validate_etb(config, scua, estimate.ubd);
        std::printf("%-8s %12llu %8llu %12llu %14llu %9.2fx %s\n",
                    to_string(kernel),
                    static_cast<unsigned long long>(etb.et_isolation),
                    static_cast<unsigned long long>(etb.nr),
                    static_cast<unsigned long long>(etb.etb),
                    static_cast<unsigned long long>(etb.observed_worst),
                    etb.pessimism(), etb.bounded() ? "yes" : "NO");
    }

    std::printf(
        "\nThe ETB = et_isol + nr x ubdm bounds every observed run; the\n"
        "pessimism column is the price of composability (the pad assumes\n"
        "every request suffers the full ubd).\n");
    return 0;
}
