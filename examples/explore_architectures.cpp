// Robustness sweep: apply the methodology to platforms the estimator has
// never seen — different core counts and (hidden) bus latencies — and
// check the measured ubd against Equation 1 in every case.
//
//   $ ./explore_architectures
#include <cstdio>

#include "core/rrb.h"

using namespace rrb;

namespace {

MachineConfig platform(CoreId cores, Cycle lbus) {
    return MachineConfig::scaled(cores, lbus);
}

}  // namespace

int main() {
    std::printf("%6s %6s %10s %14s %14s %6s\n", "cores", "lbus", "ubd(eq1)",
                "ubd(measured)", "period(nops)", "match");

    int failures = 0;
    for (const CoreId cores : {2u, 4u, 8u}) {
        for (const Cycle lbus : {2u, 5u, 9u, 13u}) {
            const MachineConfig cfg = platform(cores, lbus);
            const Cycle expected = cfg.ubd_analytic();

            UbdEstimatorOptions opt;
            opt.k_max = static_cast<std::uint32_t>(expected * 5 / 2 + 6);
            opt.unroll = 8;
            opt.rsk_iterations = 25;
            const UbdEstimate e = estimate_ubd(cfg, opt);

            // Exact match, or — when the confidence check reports that
            // Nc-1 contenders cannot saturate the bus (the Nc = 2 load
            // case) — a flagged conservative over-approximation.
            const bool exact = e.found && e.ubd == expected;
            const bool safe = e.found && !e.confidence.saturated &&
                              e.ubd >= expected;
            if (!exact && !safe) ++failures;
            std::printf("%6u %6llu %10llu %14llu %14zu %6s\n", cores,
                        static_cast<unsigned long long>(lbus),
                        static_cast<unsigned long long>(expected),
                        static_cast<unsigned long long>(e.found ? e.ubd : 0),
                        e.period_k,
                        exact ? "yes" : (safe ? "safe+" : "NO"));
        }
    }

    std::printf(
        "\n%s\n",
        failures == 0
            ? "Every platform recovered ubd with zero knowledge of lbus\n"
              "('safe+' rows: Nc-1 contenders cannot saturate the bus, the\n"
              "confidence report flags it, and the estimate is a safe\n"
              "over-approximation by the contender re-injection gap)."
            : "Some platforms failed; see rows above.");
    return failures;
}
