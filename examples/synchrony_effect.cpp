// Demonstrates the synchrony effect (Section 3): why running rsk against
// rsk does NOT measure ubd, and how the per-request contention delay is
// dictated by the injection time (Equation 2).
//
//   $ ./synchrony_effect
//
// Prints (a) a bus-grant timeline under saturation showing the locked
// rotation, (b) the per-request delay histograms on the ref and var
// architectures — reproducing Figure 6(b)'s ubdm = 26 / 23 vs true 27 —
// and (c) the measured gamma(delta) staircase against Equation 2.
#include <cstdio>

#include "core/rrb.h"

using namespace rrb;

namespace {

Measurement rsk_vs_rsk(const MachineConfig& config, std::uint32_t k) {
    RskParams params;
    params.dl1_geometry = config.core.dl1_geometry;
    params.iterations = 60;
    const Program scua = make_rsk_nop(params, k);
    return run_contention(config, scua,
                          make_rsk_contenders(config, OpKind::kLoad));
}

}  // namespace

int main() {
    // (a) the locked rotation, on the didactic lbus=2 platform of Fig. 2/3.
    {
        Machine machine(MachineConfig::textbook());
        machine.tracer().enable();
        for (CoreId c = 0; c < 4; ++c) {
            RskParams p;
            p.iterations = 30;
            p.data_base = 0x0010'0000 + c * 0x0010'0000;
            p.code_base = c * 0x0001'0000;
            machine.load_program(c, make_rsk(p));
            machine.warm_static_footprint(c);
        }
        machine.run_until_core(0, 100000);
        std::printf("Saturated round-robin bus, lbus=2 (Figure 2 style):\n");
        std::printf("  '#' = holding the bus, '.' = waiting\n");
        std::printf("%s\n",
                    machine.tracer().render_bus_timeline(200, 264, 4).c_str());
    }

    // (b) Figure 6(b): rsk-vs-rsk delay histograms on ref and var.
    for (const bool variant : {false, true}) {
        const MachineConfig config =
            variant ? MachineConfig::ngmp_var() : MachineConfig::ngmp_ref();
        const Measurement m = rsk_vs_rsk(config, 0);
        ChartOptions opts;
        opts.title = std::string("Per-request contention delay, ") +
                     (variant ? "var" : "ref") + " architecture (true ubd=27)";
        opts.max_width = 48;
        std::printf("%s", render_histogram(m.gamma, opts).c_str());
        std::printf("  -> ubdm (max observed) = %llu, true ubd = %llu\n\n",
                    static_cast<unsigned long long>(m.max_gamma),
                    static_cast<unsigned long long>(
                        config.ubd_analytic()));
    }

    // (c) gamma as a function of injection time vs Equation 2.
    {
        const MachineConfig config = MachineConfig::textbook();
        const Cycle ubd = config.ubd_analytic();
        std::printf("gamma(delta) on the lbus=2 platform (Figure 3 matrix):\n");
        std::printf("  k  delta  gamma(sim)  gamma(Eq.2)\n");
        for (std::uint32_t k = 0; k <= 13; ++k) {
            const Cycle delta = k + 1;  // delta_rsk = 1
            const Measurement m = rsk_vs_rsk(config, k);
            std::printf("  %2u  %4llu  %9llu  %10llu\n", k,
                        static_cast<unsigned long long>(delta),
                        static_cast<unsigned long long>(m.gamma.mode()),
                        static_cast<unsigned long long>(gamma_eq2(delta, ubd)));
        }
        std::printf("\nNote gamma never reaches ubd=%llu for delta>0 — the\n"
                    "synchrony effect caps naive measurements at ubd-1.\n",
                    static_cast<unsigned long long>(ubd));
    }
    return 0;
}
