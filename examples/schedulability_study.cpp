// End-to-end certification-style workflow: from platform measurement to
// schedulability verdict.
//
//   $ ./schedulability_study
//
//   1. measure the platform's ubd with the rsk-nop methodology;
//   2. measure each application's isolated time and bus-request count
//      (PMCs);
//   3. pad: WCET_i = et_isol_i + nr_i * ubd;
//   4. deadline-monotonic response-time analysis on the padded set.
//
// Also shows the counterfactual with the naive rsk-vs-rsk ubdm: the same
// analysis with a 1-cycle-short pad quietly under-claims each WCET by nr
// cycles.
#include <cstdio>

#include "core/rrb.h"

using namespace rrb;

int main() {
    const MachineConfig config = MachineConfig::ngmp_ref();

    // Step 1: platform characterization (once per platform).
    UbdEstimatorOptions opt;
    opt.k_max = 60;
    opt.unroll = 8;
    opt.rsk_iterations = 30;
    const UbdEstimate platform = estimate_ubd(config, opt);
    if (!platform.found) {
        std::printf("platform characterization failed\n");
        return 1;
    }
    std::printf("platform ubd = %llu cycles (confidence: %d/4 detectors, "
                "%.0f%% bus saturation)\n\n",
                static_cast<unsigned long long>(platform.ubd),
                platform.confidence.detector_votes,
                100.0 * platform.confidence.saturation_utilization);

    // Step 2: per-application measurement.
    struct AppSpec {
        Autobench kernel;
        Cycle period;
        Cycle deadline;
    };
    const std::vector<AppSpec> apps = {
        {Autobench::kCanrdr, 400'000, 300'000},
        {Autobench::kRspeed, 300'000, 240'000},
        {Autobench::kTblook, 800'000, 650'000},
        {Autobench::kIirflt, 1'000'000, 800'000},
    };

    std::vector<Task> skeleton;
    std::vector<Cycle> isolated;
    std::vector<std::uint64_t> requests;
    const Session session;
    for (const AppSpec& app : apps) {
        // One scenario per application; the Session entry point applies
        // the measurement discipline (core 0, the protocol's cycle cap).
        const Measurement isol = session.isolation(
            Scenario::on(config)
                .scua(make_autobench(app.kernel, 0x0100'0000, 200, 17))
                .rsk_contenders(OpKind::kLoad)
                .max_cycles(1'000'000'000));
        skeleton.push_back(
            {to_string(app.kernel), 1, app.period, app.deadline});
        isolated.push_back(isol.exec_time);
        requests.push_back(isol.bus_requests);
    }

    // Steps 3-4: pad and analyze.
    auto report = [&](const char* label, Cycle ubd) {
        TaskSet set = pad_task_set(skeleton, isolated, requests, ubd);
        set.sort_deadline_monotonic();
        const ResponseTimeResult r = response_time_analysis(set);
        std::printf("%s (pad ubd = %llu): utilization %.1f%% -> %s\n",
                    label, static_cast<unsigned long long>(ubd),
                    100.0 * set.utilization(),
                    r.schedulable ? "SCHEDULABLE" : "NOT schedulable");
        for (std::size_t i = 0; i < set.size(); ++i) {
            const std::string response =
                r.response_times[i] == kNoCycle
                    ? "overrun"
                    : std::to_string(r.response_times[i]);
            std::printf("  %-8s C=%-8llu D=%-8llu R=%s\n",
                        set[i].name.c_str(),
                        static_cast<unsigned long long>(set[i].wcet),
                        static_cast<unsigned long long>(set[i].deadline),
                        response.c_str());
        }
        std::printf("\n");
    };

    report("methodology", platform.ubd);
    const NaiveUbdm naive = naive_ubdm_rsk_vs_rsk(config);
    report("naive rsk-vs-rsk", naive.ubdm_max_gamma);

    std::printf("The naive pad is %llu cycle(s) per request short; on this "
                "set that hides %llu cycles of legal interference per "
                "hyperperiod task release.\n",
                static_cast<unsigned long long>(platform.ubd -
                                                naive.ubdm_max_gamma),
                static_cast<unsigned long long>(requests[2]));
    return 0;
}
