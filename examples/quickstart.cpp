// Quickstart: derive the bus upper-bound delay (ubd) of a 4-core
// NGMP-like platform from pure execution-time measurements — the paper's
// methodology in ~30 lines.
//
//   $ ./quickstart
//
// The estimator knows nothing about the bus latency; it only assumes the
// arbiter is round-robin and that loads can reach the bus.
#include <cstdio>

#include "core/rrb.h"

int main() {
    using namespace rrb;

    // 1. Describe the platform (the paper's reference NGMP model).
    const MachineConfig config = MachineConfig::ngmp_ref();

    // 2. Run the methodology: calibrate delta_nop, saturate the bus with
    //    Nc-1 rsk, sweep rsk-nop(k), find the saw-tooth period.
    UbdEstimatorOptions options;
    options.k_max = 60;          // must cover ~2 periods of the unknown ubd
    options.rsk_iterations = 50; // measurement length
    const UbdEstimate estimate = estimate_ubd(config, options);

    if (!estimate.found) {
        std::printf("no saw-tooth period found; warnings:\n");
        for (const auto& w : estimate.confidence.warnings) {
            std::printf("  - %s\n", w.c_str());
        }
        return 1;
    }

    // 3. Report.
    std::printf("delta_nop (measured)     : %.4f cycles\n",
                estimate.confidence.nop.delta_nop);
    std::printf("bus utilization (rsk x4) : %.1f%%\n",
                100.0 * estimate.confidence.saturation_utilization);
    std::printf("saw-tooth period         : %zu nop steps\n",
                estimate.period_k);
    std::printf("ubd (measured)           : %llu cycles\n",
                static_cast<unsigned long long>(estimate.ubd));
    std::printf("ubd (Equation 1, hidden) : %llu cycles\n",
                static_cast<unsigned long long>(config.ubd_analytic()));
    std::printf("detector votes           : %d / 4\n",
                estimate.confidence.detector_votes);

    // 4. The dbus(k) saw-tooth the estimate came from.
    ChartOptions chart;
    chart.title = "dbus(load, k): slowdown vs nop count k";
    chart.height = 10;
    std::printf("\n%s", render_series(estimate.dbus, chart).c_str());
    return estimate.ubd == config.ubd_analytic() ? 0 : 1;
}
