#include "rta/response_time.h"

#include "sim/contract.h"

namespace rrb {

Cycle response_time(const TaskSet& set, std::size_t index) {
    RRB_REQUIRE(index < set.size(), "task index out of range");
    const Task& task = set[index];

    Cycle r = task.wcet;
    for (int iterations = 0; iterations < 10'000; ++iterations) {
        Cycle interference = 0;
        for (std::size_t j = 0; j < index; ++j) {
            const Task& hp = set[j];
            // ceil(r / T_j) * C_j
            const Cycle releases = (r + hp.period - 1) / hp.period;
            interference += releases * hp.wcet;
        }
        const Cycle next = task.wcet + interference;
        if (next == r) return r;          // fixed point
        if (next > task.deadline) return kNoCycle;  // diverged
        r = next;
    }
    return kNoCycle;  // no convergence within the iteration budget
}

ResponseTimeResult response_time_analysis(const TaskSet& set) {
    ResponseTimeResult result;
    result.schedulable = true;
    result.response_times.reserve(set.size());
    for (std::size_t i = 0; i < set.size(); ++i) {
        const Cycle r = response_time(set, i);
        result.response_times.push_back(r);
        if (r == kNoCycle || r > set[i].deadline) {
            result.schedulable = false;
            if (!result.first_failure) result.first_failure = i;
        }
    }
    return result;
}

TaskSet pad_task_set(const std::vector<Task>& skeleton,
                     const std::vector<Cycle>& isolated,
                     const std::vector<std::uint64_t>& requests, Cycle ubd) {
    RRB_REQUIRE(skeleton.size() == isolated.size() &&
                    skeleton.size() == requests.size(),
                "one isolation time and request count per task");
    TaskSet padded;
    for (std::size_t i = 0; i < skeleton.size(); ++i) {
        Task t = skeleton[i];
        t.wcet = isolated[i] + requests[i] * ubd;
        padded.add(std::move(t));
    }
    return padded;
}

std::optional<Cycle> max_schedulable_ubd(
    const std::vector<Task>& skeleton, const std::vector<Cycle>& isolated,
    const std::vector<std::uint64_t>& requests, Cycle ubd_upper_bound) {
    auto schedulable_with = [&](Cycle ubd) {
        return response_time_analysis(
                   pad_task_set(skeleton, isolated, requests, ubd))
            .schedulable;
    };
    if (!schedulable_with(0)) return std::nullopt;

    Cycle lo = 0;                   // schedulable
    Cycle hi = ubd_upper_bound + 1; // first candidate beyond the range
    while (lo + 1 < hi) {
        const Cycle mid = lo + (hi - lo) / 2;
        if (schedulable_with(mid)) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    return lo;
}

}  // namespace rrb
