#include "rta/task.h"

#include <algorithm>

#include "sim/contract.h"

namespace rrb {

void Task::validate() const {
    // Well-formedness only: a WCET beyond the deadline is a legal input
    // (the analysis reports it unschedulable) — padding with a large ubd
    // routinely produces such tasks.
    RRB_REQUIRE(wcet >= 1, "task needs a positive WCET");
    RRB_REQUIRE(period >= 1, "period must be positive");
    RRB_REQUIRE(deadline >= 1 && deadline <= period,
                "constrained deadline required: 1 <= D <= T");
}

TaskSet::TaskSet(std::vector<Task> tasks) : tasks_(std::move(tasks)) {
    for (const Task& t : tasks_) t.validate();
}

void TaskSet::add(Task task) {
    task.validate();
    tasks_.push_back(std::move(task));
}

void TaskSet::sort_deadline_monotonic() {
    std::stable_sort(tasks_.begin(), tasks_.end(),
                     [](const Task& a, const Task& b) {
                         return a.deadline < b.deadline;
                     });
}

const Task& TaskSet::operator[](std::size_t i) const {
    RRB_REQUIRE(i < tasks_.size(), "task index out of range");
    return tasks_[i];
}

double TaskSet::utilization() const noexcept {
    double u = 0.0;
    for (const Task& t : tasks_) u += t.utilization();
    return u;
}

}  // namespace rrb
