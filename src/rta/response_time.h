// Fixed-priority response-time analysis (Joseph & Pandya / Audsley) over
// ETB-padded WCETs.
//
// With time-composable per-request bounds, the cross-core interference is
// folded into each task's WCET (ETB = et_isol + nr * ubd) and the
// per-core analysis is the classic recurrence
//
//     R_i^(n+1) = C_i + sum_{j < i} ceil(R_i^(n) / T_j) * C_j
//
// iterated to a fixed point; the set is schedulable when R_i <= D_i for
// every task. The bench layer uses this to show the system-level effect
// of getting ubd right: an optimistic ubdm admits task sets that a
// correct bound rejects.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "rta/task.h"
#include "sim/types.h"

namespace rrb {

struct ResponseTimeResult {
    bool schedulable = false;
    /// Per-task worst-case response times (kNoCycle where the recurrence
    /// diverged past the deadline).
    std::vector<Cycle> response_times;
    /// Index of the first unschedulable task, if any.
    std::optional<std::size_t> first_failure;
};

/// Runs the RTA on a priority-ordered task set (index 0 = highest).
[[nodiscard]] ResponseTimeResult response_time_analysis(const TaskSet& set);

/// Worst-case response time of task `index` alone (tasks above it
/// interfere). Returns kNoCycle when it exceeds the deadline.
[[nodiscard]] Cycle response_time(const TaskSet& set, std::size_t index);

/// Utility for the benches: re-derives a task set whose WCETs are padded
/// with a given ubd. `isolated[i]` and `requests[i]` are the measured
/// et_isol and nr of task i.
[[nodiscard]] TaskSet pad_task_set(const std::vector<Task>& skeleton,
                                   const std::vector<Cycle>& isolated,
                                   const std::vector<std::uint64_t>& requests,
                                   Cycle ubd);

/// The critical ubd: the largest integer ubd for which the padded set is
/// still schedulable (binary search); nullopt when even ubd = 0 fails.
[[nodiscard]] std::optional<Cycle> max_schedulable_ubd(
    const std::vector<Task>& skeleton, const std::vector<Cycle>& isolated,
    const std::vector<std::uint64_t>& requests, Cycle ubd_upper_bound);

}  // namespace rrb
