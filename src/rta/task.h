// Real-time task model for the schedulability layer.
//
// This is the downstream consumer of the whole methodology: the
// execution time bound of a task on a core of the shared-bus multicore is
// its isolated WCET padded with nr * ubd (Section 4.3), and those ETBs
// feed a classic fixed-priority response-time analysis per core (tasks
// on other cores are already accounted for by the pad — that is what
// time-composability buys).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.h"

namespace rrb {

struct Task {
    std::string name;
    Cycle wcet = 0;      ///< execution time bound (ETB), in cycles
    Cycle period = 0;    ///< minimum inter-arrival time
    Cycle deadline = 0;  ///< relative deadline (<= period)

    /// Utilization of this task.
    [[nodiscard]] double utilization() const noexcept {
        return period == 0 ? 0.0
                           : static_cast<double>(wcet) /
                                 static_cast<double>(period);
    }
    void validate() const;
};

/// A set of tasks bound to one core, in decreasing priority order
/// (index 0 = highest priority — deadline-monotonic if built through
/// sort_deadline_monotonic()).
class TaskSet {
public:
    TaskSet() = default;
    explicit TaskSet(std::vector<Task> tasks);

    void add(Task task);
    /// Sorts tasks by relative deadline (deadline-monotonic priority
    /// assignment — optimal among fixed-priority policies for
    /// constrained deadlines).
    void sort_deadline_monotonic();

    [[nodiscard]] std::size_t size() const noexcept { return tasks_.size(); }
    [[nodiscard]] bool empty() const noexcept { return tasks_.empty(); }
    [[nodiscard]] const Task& operator[](std::size_t i) const;
    [[nodiscard]] const std::vector<Task>& tasks() const noexcept {
        return tasks_;
    }

    /// Total utilization.
    [[nodiscard]] double utilization() const noexcept;

private:
    std::vector<Task> tasks_;
};

}  // namespace rrb
