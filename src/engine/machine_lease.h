// Per-worker machine reuse for campaign hot paths.
//
// Every campaign run used to construct a fresh Machine — heap-allocating
// the bus, cores, ports and ~10k cache line entries — only to simulate a
// few thousand cycles and throw it all away. Machine::reset() restores
// construction state without reallocating, so the engine can keep one
// machine per (worker thread, config fingerprint) and hand it out run
// after run.
//
// The cache is thread_local: campaign runs execute on ThreadPool workers
// (and the caller's thread), each of which touches its own machines with
// no locking. A small LRU bound keeps sweeps over many configs from
// hoarding memory. Since reset() is bit-identical to fresh construction
// (tests/test_hotpath.cpp), reuse can never change a campaign's numbers
// — it only removes the per-run construction cost.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "machine/config.h"
#include "machine/machine.h"

namespace rrb::replay {
struct ScriptCache;
}  // namespace rrb::replay

namespace rrb::engine {

/// A leased machine for `config`, valid for the lease's lifetime: live
/// leases pin their cache entry, so LRU eviction (which destroys
/// machines) only ever claims unleased entries — nested leases of many
/// distinct configs can push the cache past its soft cap but can never
/// dangle an outstanding lease. The machine is NOT reset on acquire —
/// callers decide between Machine::reset() (fresh campaign) and
/// Machine::reset_keep_programs() (same campaign, next run) based on
/// campaign(), the caller-owned tag recording which program set the
/// machine currently hosts (0 = none).
class MachineLease {
public:
    explicit MachineLease(const MachineConfig& config);
    ~MachineLease();

    MachineLease(const MachineLease&) = delete;
    MachineLease& operator=(const MachineLease&) = delete;

    [[nodiscard]] Machine& machine() noexcept;
    /// Campaign fingerprint of the programs installed by the previous
    /// lease of this machine; write through it after loading new ones.
    [[nodiscard]] std::uint64_t& campaign() noexcept;
    /// Pre-decoded micro-op scripts for the hosted campaign (replay
    /// execution mode). Lives and dies with the cached machine, so
    /// core-held script pointers can never outlive their storage.
    [[nodiscard]] replay::ScriptCache& scripts() noexcept;

    /// Machines currently cached by this thread (introspection/tests).
    [[nodiscard]] static std::size_t cached_machines() noexcept;
    /// Drops this thread's unleased cached machines (tests and memory
    /// pressure); entries pinned by live leases survive.
    static void drop_thread_cache() noexcept;

private:
    struct Entry;

    /// This thread's cache, most-recently-used first.
    [[nodiscard]] static std::vector<std::unique_ptr<Entry>>& thread_cache();
    /// Destroys unpinned entries beyond the soft cap, oldest first.
    static void evict_down_to_cap();

    Entry* entry_ = nullptr;
};

}  // namespace rrb::engine
