// Parallel campaign engine: sharded, deterministic execution of HWM
// campaigns and experiment grids.
//
// Every run of a measurement campaign — and every point of a sensitivity
// grid — is an independent simulation: its own Machine, its own RNG
// stream, no shared mutable state. That makes campaigns embarrassingly
// parallel *if* two things hold, and this module exists to make them
// hold:
//
//   1. Determinism. Run i draws its random offsets from a Pcg32 seeded
//      by SeedSequence(campaign_seed).seed_for(i) — a pure function of
//      (seed, i) — so the schedule of threads can never leak into the
//      numbers. run_hwm_campaign_parallel(jobs = k) is bit-identical for
//      every k and to the serial run_hwm_campaign.
//   2. Cheap merge. Per-run results land in a pre-sized slot vector
//      indexed by run id (ordered collection), and campaign statistics
//      (HWM = max, LWM = min) are associative reductions over it — the
//      sharding-with-constant-cost-merge pattern.
//
// This module is the low-level execution layer. The public facade is
// the Scenario/Session API (core/scenario.h, core/session.h), which
// builds EngineOptions — including the shared pool that lets nested
// sweeps split one jobs budget — and delegates down to these functions.
#pragma once

#include <cstddef>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/campaign.h"
#include "engine/progress.h"
#include "engine/seed_sequence.h"
#include "engine/thread_pool.h"
#include "isa/program.h"
#include "machine/config.h"

namespace rrb::engine {

struct EngineOptions {
    /// Worker threads; 0 means ThreadPool::default_jobs() (hardware
    /// concurrency). The job count never changes results, only speed.
    std::size_t jobs = 0;
    /// Optional progress sink; begin() is called with the batch size and
    /// tick() once per finished job.
    ProgressCounter* progress = nullptr;
    /// Optional non-owning shared pool. When set, grids and reductions
    /// submit to it instead of spawning their own workers, and `jobs` no
    /// longer sizes anything — the pool's width is the budget. This is
    /// how Session::sweep nests streamed campaigns inside a config grid
    /// without multiplying thread counts: one pool, sequential grid
    /// points, each point's shards fanned across the shared workers.
    /// The caller must not drive the same pool from two batches at once
    /// (wait_idle() waits for *all* submitted jobs).
    ThreadPool* pool = nullptr;
    /// When true the caller has already announced the batch on
    /// `progress` (e.g. Session::resume calls begin_resumed() once for
    /// the whole campaign, then runs several uncovered shard ranges);
    /// reductions tick but never re-begin, so the counter keeps the
    /// campaign-wide total instead of resetting per range.
    bool progress_pre_announced = false;
};

/// `options.jobs` resolved against the actual amount of work: 0 maps to
/// hardware concurrency, and the pool is never wider than `work_items`.
[[nodiscard]] std::size_t effective_jobs(std::size_t requested,
                                         std::size_t work_items) noexcept;

/// Parallel drop-in for run_hwm_campaign: same preconditions, same
/// result, `engine.jobs` machines simulating campaign runs concurrently.
[[nodiscard]] HwmCampaignResult run_hwm_campaign_parallel(
    const MachineConfig& config, const Program& scua,
    const std::vector<Program>& contenders,
    const HwmCampaignOptions& options = {},
    const EngineOptions& engine = {});

/// Evaluates `fn` on every grid point concurrently and returns the
/// results in grid order (results[i] == fn(points[i])). `fn` must be
/// callable from multiple threads at once — in this codebase that means
/// "builds its own Machine", which every experiment entry point does.
/// The first exception thrown by any point propagates to the caller
/// after the remaining in-flight points finish.
template <typename Point, typename Fn>
[[nodiscard]] auto run_grid(const std::vector<Point>& points, Fn&& fn,
                            const EngineOptions& engine = {})
    -> std::vector<std::decay_t<std::invoke_result_t<Fn&, const Point&>>> {
    using Result = std::decay_t<std::invoke_result_t<Fn&, const Point&>>;
    static_assert(!std::is_void_v<Result>,
                  "grid functions must return a value");

    if (engine.progress != nullptr) engine.progress->begin(points.size());
    std::vector<Result> results;
    if (points.empty()) return results;

    // Slots, not push_back: each job writes its own index, so collection
    // order is grid order no matter which worker finishes first.
    std::vector<std::optional<Result>> slots(points.size());
    {
        // A shared pool (engine.pool) is borrowed as-is; otherwise a
        // batch-local pool is sized against the work. wait_idle() returns
        // only after every submitted job finished, so the stack state the
        // jobs capture outlives them in both cases.
        std::optional<ThreadPool> local;
        ThreadPool& pool =
            engine.pool != nullptr
                ? *engine.pool
                : local.emplace(effective_jobs(engine.jobs, points.size()));
        for (std::size_t i = 0; i < points.size(); ++i) {
            pool.submit([&slots, &points, &fn, &engine, i] {
                slots[i].emplace(fn(points[i]));
                if (engine.progress != nullptr) engine.progress->tick();
            });
        }
        pool.wait_idle();  // rethrows the first job failure
    }
    results.reserve(slots.size());
    for (std::optional<Result>& slot : slots) {
        results.push_back(std::move(*slot));
    }
    return results;
}

/// run_grid over the index range [0, count): handy when the "grid" is
/// just job numbers (campaign runs, seeds, shards).
template <typename Fn>
[[nodiscard]] auto run_indexed(std::size_t count, Fn&& fn,
                               const EngineOptions& engine = {}) {
    std::vector<std::size_t> indices(count);
    for (std::size_t i = 0; i < count; ++i) indices[i] = i;
    return run_grid(indices, std::forward<Fn>(fn), engine);
}

}  // namespace rrb::engine
