#include "engine/progress.h"

#include <algorithm>

namespace rrb::engine {

double ProgressCounter::fraction() const noexcept {
    const std::size_t t = total();
    if (t == 0) return 1.0;
    const std::size_t c = std::min(completed(), t);
    return static_cast<double>(c) / static_cast<double>(t);
}

std::string render_progress(const ProgressCounter& progress) {
    const std::size_t t = progress.total();
    const std::size_t c = std::min(progress.completed(), t);
    const int percent = static_cast<int>(100.0 * progress.fraction());
    return std::to_string(c) + "/" + std::to_string(t) + " (" +
           std::to_string(percent) + "%)";
}

}  // namespace rrb::engine
