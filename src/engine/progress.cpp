#include "engine/progress.h"

#include <algorithm>

namespace rrb::engine {

double ProgressCounter::fraction() const noexcept {
    const std::size_t t = total();
    if (t == 0) return 1.0;
    const std::size_t c = std::min(completed(), t);
    return static_cast<double>(c) / static_cast<double>(t);
}

std::string render_progress(const ProgressCounter& progress) {
    const std::size_t t = progress.total();
    // Read completed once and clamp both the count and the percentage
    // against the announced total: when a sweep point re-begins the
    // counter mid-campaign, stray ticks from the previous batch can
    // overshoot the new total, and a "12/10 (120%)" line — or a 100%+
    // percentage computed from a second, larger read — must never
    // render.
    const std::size_t c = std::min(progress.completed(), t);
    const int percent =
        t == 0 ? 100
               : static_cast<int>(100.0 * static_cast<double>(c) /
                                  static_cast<double>(t));
    return std::to_string(c) + "/" + std::to_string(t) + " (" +
           std::to_string(std::min(percent, 100)) + "%)";
}

}  // namespace rrb::engine
