// Lock-free progress accounting for long campaigns.
//
// Worker threads tick an atomic counter; the CLI (or any front end) polls
// it from whatever thread owns the terminal. Completed never decreases
// within a batch and never exceeds the announced total, which is what the
// engine tests assert (monotonicity) and what a progress bar needs.
#pragma once

#include <atomic>
#include <cstddef>
#include <string>

namespace rrb::engine {

class ProgressCounter {
public:
    /// Announces a new batch of `total` jobs and resets the completed
    /// count. Not thread-safe against concurrent tick() — call between
    /// batches, not during one.
    void begin(std::size_t total) noexcept {
        completed_.store(0, std::memory_order_relaxed);
        total_.store(total, std::memory_order_relaxed);
    }

    /// Records one finished job. Safe to call from any worker thread.
    void tick() noexcept {
        completed_.fetch_add(1, std::memory_order_relaxed);
    }

    [[nodiscard]] std::size_t completed() const noexcept {
        return completed_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::size_t total() const noexcept {
        return total_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] bool done() const noexcept {
        return completed() >= total();
    }
    /// Completed fraction in [0, 1]; 1.0 for an empty batch.
    [[nodiscard]] double fraction() const noexcept;

private:
    std::atomic<std::size_t> total_{0};
    std::atomic<std::size_t> completed_{0};
};

/// Renders "completed/total (pp%)" for CLI progress lines.
[[nodiscard]] std::string render_progress(const ProgressCounter& progress);

}  // namespace rrb::engine
