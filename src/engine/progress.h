// Lock-free progress accounting for long campaigns.
//
// Worker threads tick an atomic counter; the CLI (or any front end) polls
// it from whatever thread owns the terminal. Completed never decreases
// within a batch and never exceeds the announced total, which is what the
// engine tests assert (monotonicity) and what a progress bar needs.
#pragma once

#include <atomic>
#include <cstddef>
#include <string>

namespace rrb::engine {

class ProgressCounter {
public:
    /// Announces a new batch of `total` jobs and resets the completed
    /// count. Not thread-safe against concurrent tick() — call between
    /// batches, not during one.
    void begin(std::size_t total) noexcept {
        fresh_.store(0, std::memory_order_relaxed);
        baseline_.store(0, std::memory_order_relaxed);
        total_.store(total, std::memory_order_relaxed);
    }

    /// begin() for a resumed campaign: `already` of `total` jobs were
    /// completed by earlier slices (checkpoints) before this process
    /// started. completed() reports them, so percentages and ETAs see
    /// the whole campaign; rate meters subtract baseline() to measure
    /// only work done here (checkpointed runs took no wall time now).
    void begin_resumed(std::size_t total, std::size_t already) noexcept {
        fresh_.store(0, std::memory_order_relaxed);
        baseline_.store(already, std::memory_order_relaxed);
        total_.store(total, std::memory_order_relaxed);
    }

    /// Records one finished job. Safe to call from any worker thread.
    void tick() noexcept {
        fresh_.fetch_add(1, std::memory_order_relaxed);
    }

    [[nodiscard]] std::size_t completed() const noexcept {
        return fresh_.load(std::memory_order_relaxed) +
               baseline_.load(std::memory_order_relaxed);
    }
    /// Jobs the current batch inherited as already done (resume).
    [[nodiscard]] std::size_t baseline() const noexcept {
        return baseline_.load(std::memory_order_relaxed);
    }
    /// Jobs actually executed in this batch: completed() - baseline().
    [[nodiscard]] std::size_t fresh() const noexcept {
        return fresh_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::size_t total() const noexcept {
        return total_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] bool done() const noexcept {
        return completed() >= total();
    }
    /// Completed fraction in [0, 1]; 1.0 for an empty batch.
    [[nodiscard]] double fraction() const noexcept;

private:
    std::atomic<std::size_t> total_{0};
    std::atomic<std::size_t> fresh_{0};
    std::atomic<std::size_t> baseline_{0};
};

/// Renders "completed/total (pp%)" for CLI progress lines.
[[nodiscard]] std::string render_progress(const ProgressCounter& progress);

}  // namespace rrb::engine
