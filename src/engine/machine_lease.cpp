#include "engine/machine_lease.h"

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "obs/telemetry.h"
#include "replay/script_cache.h"

namespace rrb::engine {

struct MachineLease::Entry {
    std::uint64_t config_fingerprint = 0;
    std::uint64_t campaign = 0;  ///< fingerprint of installed programs
    std::uint32_t pins = 0;      ///< live leases holding this entry
    std::unique_ptr<Machine> machine;
    replay::ScriptCache scripts;  ///< decoded for `campaign`
};

namespace {

/// Soft cap on cached machines: eviction keeps the cache near this
/// size, but never destroys an entry a live lease still pins (nested
/// leases of many configs temporarily exceed the cap instead).
constexpr std::size_t kMaxCachedMachines = 4;

}  // namespace

std::vector<std::unique_ptr<MachineLease::Entry>>&
MachineLease::thread_cache() {
    thread_local std::vector<std::unique_ptr<Entry>> cache;
    return cache;
}

void MachineLease::evict_down_to_cap() {
    std::vector<std::unique_ptr<Entry>>& cache = thread_cache();
    for (std::size_t i = cache.size(); i-- > 0 &&
                                       cache.size() > kMaxCachedMachines;) {
        if (cache[i]->pins == 0) {
            cache.erase(cache.begin() + static_cast<std::ptrdiff_t>(i));
            obs::count(obs::kLeaseEvictions);
        }
    }
}

MachineLease::MachineLease(const MachineConfig& config) {
    std::vector<std::unique_ptr<Entry>>& cache = thread_cache();
    const std::uint64_t fingerprint = config.fingerprint();
    for (std::size_t i = 0; i < cache.size(); ++i) {
        if (cache[i]->config_fingerprint != fingerprint) continue;
        if (i != 0) {
            // Move-to-front LRU; entries are pointer-stable.
            std::rotate(cache.begin(), cache.begin() + i,
                        cache.begin() + i + 1);
        }
        entry_ = cache.front().get();
        ++entry_->pins;
        obs::count(obs::kLeaseHits);
        return;
    }
    obs::count(obs::kLeaseMisses);
    auto entry = std::make_unique<Entry>();
    entry->config_fingerprint = fingerprint;
    entry->machine = std::make_unique<Machine>(config);
    entry->pins = 1;
    entry_ = entry.get();
    cache.insert(cache.begin(), std::move(entry));
    evict_down_to_cap();
}

MachineLease::~MachineLease() {
    --entry_->pins;
    evict_down_to_cap();
}

Machine& MachineLease::machine() noexcept { return *entry_->machine; }

std::uint64_t& MachineLease::campaign() noexcept { return entry_->campaign; }

replay::ScriptCache& MachineLease::scripts() noexcept {
    return entry_->scripts;
}

std::size_t MachineLease::cached_machines() noexcept {
    return thread_cache().size();
}

void MachineLease::drop_thread_cache() noexcept {
    std::vector<std::unique_ptr<Entry>>& cache = thread_cache();
    std::erase_if(cache, [](const std::unique_ptr<Entry>& entry) {
        return entry->pins == 0;
    });
}

}  // namespace rrb::engine
