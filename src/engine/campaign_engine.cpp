#include "engine/campaign_engine.h"

#include <algorithm>

#include "core/experiment.h"
#include "sim/contract.h"

namespace rrb::engine {

std::size_t effective_jobs(std::size_t requested,
                           std::size_t work_items) noexcept {
    const std::size_t jobs =
        requested == 0 ? ThreadPool::default_jobs() : requested;
    return std::max<std::size_t>(1, std::min(jobs, work_items));
}

HwmCampaignResult run_hwm_campaign_parallel(
    const MachineConfig& config, const Program& scua,
    const std::vector<Program>& contenders,
    const HwmCampaignOptions& options, const EngineOptions& engine) {
    RRB_REQUIRE(options.runs >= 1, "need at least one run");
    RRB_REQUIRE(!contenders.empty(), "need at least one contender");

    HwmCampaignResult result;
    {
        const Measurement isol =
            run_isolation(config, scua, 0, options.max_cycles_per_run);
        RRB_ENSURE(!isol.deadline_reached);
        result.et_isolation = isol.exec_time;
        result.nr = isol.bus_requests;
    }

    // Hash the campaign identity once, not once per run.
    const std::uint64_t campaign =
        detail::campaign_fingerprint(scua, contenders, options);
    result.exec_times = run_indexed(
        options.runs,
        [&](std::size_t run) {
            return detail::hwm_campaign_run(config, scua, contenders,
                                            options, run, campaign);
        },
        engine);

    result.high_water_mark = *std::max_element(result.exec_times.begin(),
                                               result.exec_times.end());
    result.low_water_mark = *std::min_element(result.exec_times.begin(),
                                              result.exec_times.end());
    return result;
}

}  // namespace rrb::engine
