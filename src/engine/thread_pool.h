// Fixed-size worker pool with a bounded job queue.
//
// The campaign engine's execution substrate: N worker threads drain a
// FIFO of type-erased jobs. The queue is bounded so a producer that can
// enumerate millions of grid points (pWCET campaigns at 10^5+ runs)
// never materializes them all in memory — submit() blocks once
// `max_queued` jobs are waiting, which throttles enumeration to the
// pool's drain rate. The first exception a job throws is captured and
// rethrown from wait_idle() on the submitting thread; later exceptions
// are dropped (one failure already invalidates the batch).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rrb::engine {

class ThreadPool {
public:
    /// Spawns `threads` workers (clamped to >= 1). `max_queued` bounds
    /// the number of submitted-but-not-started jobs.
    explicit ThreadPool(std::size_t threads, std::size_t max_queued = 256);

    /// Joins all workers. Pending jobs still run to completion first; an
    /// unretrieved job exception is swallowed (destructors cannot throw),
    /// so call wait_idle() before destruction when failures matter.
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /// Enqueues a job. Blocks while the queue is full.
    void submit(std::function<void()> job);

    /// Blocks until every submitted job has finished, then rethrows the
    /// first exception any of them threw (clearing it, so the pool is
    /// reusable afterwards).
    void wait_idle();

    [[nodiscard]] std::size_t thread_count() const noexcept {
        return workers_.size();
    }

    /// Default parallelism: hardware concurrency, at least 1.
    [[nodiscard]] static std::size_t default_jobs() noexcept;

private:
    void worker_loop();

    mutable std::mutex mutex_;
    std::condition_variable queue_changed_;  ///< producers: space freed
    std::condition_variable work_ready_;     ///< workers: job available
    std::condition_variable all_done_;       ///< waiters: pool drained
    std::deque<std::function<void()>> queue_;
    std::vector<std::thread> workers_;
    std::size_t max_queued_;
    std::size_t active_ = 0;   ///< jobs currently executing
    bool stopping_ = false;
    std::exception_ptr first_error_;
};

}  // namespace rrb::engine
