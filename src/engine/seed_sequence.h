// Deterministic per-job seed derivation for sharded campaigns.
//
// A campaign's root seed fans out into one independent seed per job via a
// stateless SplitMix64 derivation (Steele et al., "Fast Splittable
// Pseudorandom Number Generators", OOPSLA'14). Statelessness is the whole
// point: job i's seed depends only on (root, i), never on how many jobs
// ran before it or on which thread it landed, so a campaign sharded over
// any number of workers draws exactly the same random offsets as the
// serial loop — bit-identical results for jobs = 1, 4, or 64.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rrb::engine {

/// The SplitMix64 output mix (finalizer). Bijective on 64-bit values.
[[nodiscard]] constexpr std::uint64_t splitmix64_mix(
    std::uint64_t z) noexcept {
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/// Derives statistically independent seeds for the jobs of one campaign.
class SeedSequence {
public:
    explicit SeedSequence(std::uint64_t root_seed) noexcept
        : root_(root_seed) {}

    /// Seed for job `job_index`. Pure function of (root, index): two
    /// sequences with the same root agree on every index, and distinct
    /// indices land in distinct SplitMix64 streams (golden-ratio
    /// increments walk the full 2^64 cycle).
    [[nodiscard]] std::uint64_t seed_for(
        std::uint64_t job_index) const noexcept {
        return splitmix64_mix(root_ +
                              (job_index + 1) * 0x9e3779b97f4a7c15ULL);
    }

    [[nodiscard]] std::uint64_t root() const noexcept { return root_; }

private:
    std::uint64_t root_;
};

/// Materializes the first `count` seeds of the sequence (e.g. to hand a
/// whole shard its seed block up front).
[[nodiscard]] std::vector<std::uint64_t> derive_seeds(std::uint64_t root_seed,
                                                      std::size_t count);

}  // namespace rrb::engine
