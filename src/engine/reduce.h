// Sharded streaming reduction: campaigns that never materialize results.
//
// PR 1's engine collects one result per run into a pre-sized vector;
// that contract caps campaigns at memory ~ runs. This module extends the
// determinism contract from "collect all results in run order" to "fold
// them into mergeable accumulators without ever holding them":
//
//   * Each shard owns a contiguous run range and folds it locally, in
//     ascending run order, into its own accumulator.
//   * Shard accumulators merge in shard order, so the overall fold order
//     is exactly run order 0..n-1 — whatever thread ran which shard.
//   * The shard plan is a pure function of the run count (see
//     ReducePlan::for_count), never of the job count or the hardware, so
//     even rounding-sensitive folds (Chan-merged floating-point moments)
//     see an identical merge tree — and produce bit-identical results —
//     at every --jobs value.
//
// The accumulator concept: copy-constructible (the initial value seeds
// every shard, carrying configuration such as the EVT block size),
// `void add(std::uint64_t run_index, const Measurement&)` for campaign
// reductions (reduce_indexed itself only needs the fold you hand it),
// and `void merge(const Accumulator& later_shard)`.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/campaign.h"
#include "core/experiment.h"
#include "engine/campaign_engine.h"
#include "engine/thread_pool.h"
#include "fault/fault.h"
#include "isa/program.h"
#include "machine/config.h"
#include "obs/telemetry.h"
#include "sim/contract.h"
#include "stats/streaming.h"

namespace rrb::engine {

/// Contiguous sharding of the run range [0, count). Pure function of
/// `count`: the plan — and therefore every merge tree built from it —
/// is identical whatever the worker count, which is what makes
/// floating-point folds reproducible across --jobs values. The shard
/// size targets kTargetShards shards so any realistic pool stays busy
/// while slot bookkeeping stays O(1)-ish.
struct ReducePlan {
    static constexpr std::uint64_t kTargetShards = 256;

    std::uint64_t count = 0;
    std::uint64_t shard_size = 1;

    [[nodiscard]] static ReducePlan for_count(std::uint64_t count) noexcept {
        ReducePlan plan;
        plan.count = count;
        plan.shard_size =
            count <= kTargetShards
                ? 1
                : (count + kTargetShards - 1) / kTargetShards;
        return plan;
    }

    [[nodiscard]] std::size_t shards() const noexcept {
        return count == 0
                   ? 0
                   : static_cast<std::size_t>(
                         (count + shard_size - 1) / shard_size);
    }
    [[nodiscard]] std::uint64_t shard_begin(std::size_t shard) const noexcept {
        return static_cast<std::uint64_t>(shard) * shard_size;
    }
    [[nodiscard]] std::uint64_t shard_end(std::size_t shard) const noexcept {
        const std::uint64_t end = shard_begin(shard) + shard_size;
        return end < count ? end : count;
    }

    /// Contiguous shard range [first, last) of one plan.
    struct ShardRange {
        std::size_t first = 0;
        std::size_t last = 0;

        [[nodiscard]] std::size_t size() const noexcept {
            return last - first;
        }
    };

    /// Slice `slice_index` of `slice_count`: the plan's shards divided
    /// into contiguous, collectively exhaustive, mutually disjoint
    /// ranges. Slicing at shard granularity — never splitting a shard —
    /// is what keeps a checkpointed slice's accumulators bit-identical
    /// to the monolithic fold's: each shard is always folded whole, in
    /// run order, by exactly one worker. With more slices than shards
    /// the trailing slices are empty, which is valid (their checkpoints
    /// simply cover no runs).
    [[nodiscard]] ShardRange slice(std::size_t slice_index,
                                   std::size_t slice_count) const {
        RRB_REQUIRE(slice_count >= 1, "need at least one slice");
        RRB_REQUIRE(slice_index < slice_count,
                    "slice index must be below the slice count");
        const std::size_t total = shards();
        return {total * slice_index / slice_count,
                total * (slice_index + 1) / slice_count};
    }
};

/// Folds the plan's shards [range.first, range.last) concurrently, each
/// shard folding its contiguous index range in ascending order into a
/// copy of `init`, and returns the *unmerged* per-shard accumulators in
/// shard order. This is the primitive both the monolithic reduce and
/// the checkpointed slices are built on: a shard accumulator depends
/// only on (plan, shard index, fold), so a shard computed by slice 3 of
/// 4 on another machine is bit-identical to the one the monolithic run
/// would have produced — and the fan-in can always replay the one true
/// merge sequence. `fold` must be safe to call concurrently on distinct
/// accumulators. Progress begins with the range's index count and ticks
/// once per index.
template <typename Accumulator, typename Fold>
[[nodiscard]] std::vector<Accumulator> reduce_indexed_shards(
    const ReducePlan& plan, ReducePlan::ShardRange range, Fold&& fold,
    const Accumulator& init, const EngineOptions& engine = {}) {
    RRB_REQUIRE(range.first <= range.last && range.last <= plan.shards(),
                "shard range outside the plan");
    if (engine.progress != nullptr && !engine.progress_pre_announced) {
        const std::uint64_t indices =
            range.size() == 0
                ? 0
                : plan.shard_end(range.last - 1) -
                      plan.shard_begin(range.first);
        engine.progress->begin(static_cast<std::size_t>(indices));
    }
    std::vector<std::optional<Accumulator>> slots(range.size());
    if (!slots.empty()) {
        // Borrow a shared pool when the caller provides one (nested
        // campaigns splitting a jobs budget); otherwise build a
        // batch-local pool. Neither changes results: the shard plan —
        // and with it every merge tree — depends only on `count`.
        std::optional<ThreadPool> local;
        ThreadPool& pool =
            engine.pool != nullptr
                ? *engine.pool
                : local.emplace(effective_jobs(engine.jobs, range.size()));
        // The shard spans' parent is whatever span is open on the
        // *submitting* thread (the campaign/grid-point span) — captured
        // here because the workers' own span stacks are unrelated.
        const std::uint64_t parent_span = obs::current_span();
        for (std::size_t s = 0; s < range.size(); ++s) {
            pool.submit([&slots, &plan, &range, &fold, &engine, &init,
                         parent_span, s] {
                const std::size_t shard = range.first + s;
                // Fault site: a worker dying mid-campaign before its
                // shard folds (key: plan shard index). Off the per-run
                // path — one disarmed load per shard.
                if (fault::should_fire(fault::Site::kShardThrow,
                                       shard)) {
                    throw std::runtime_error(
                        "injected shard worker failure (shard " +
                        std::to_string(shard) + ")");
                }
                const std::uint64_t first = plan.shard_begin(shard);
                const std::uint64_t last = plan.shard_end(shard);
                const std::uint64_t begin_ns =
                    obs::enabled()
                        ? obs::TelemetryRegistry::instance().now_ns()
                        : 0;
                const obs::Span span("shard", parent_span, shard,
                                     last - first);
                Accumulator acc = init;  // carries configuration state
                for (std::uint64_t i = first; i < last; ++i) {
                    fold(acc, i);
                    if (engine.progress != nullptr) engine.progress->tick();
                }
                slots[s].emplace(std::move(acc));
                obs::count(obs::kShardsCompleted);
                if (obs::enabled()) {
                    obs::count(
                        obs::kShardWallNs,
                        obs::TelemetryRegistry::instance().now_ns() -
                            begin_ns);
                }
            });
        }
        pool.wait_idle();  // rethrows the first shard failure
    }
    std::vector<Accumulator> results;
    results.reserve(slots.size());
    for (std::optional<Accumulator>& slot : slots) {
        results.push_back(std::move(*slot));
    }
    return results;
}

/// Folds `fold(acc, i)` for i in [0, count) into a single accumulator:
/// the full shard range via reduce_indexed_shards, then the shard
/// results merged in shard order. Progress ticks once per index.
template <typename Accumulator, typename Fold>
[[nodiscard]] Accumulator reduce_indexed(std::uint64_t count, Fold&& fold,
                                         Accumulator init,
                                         const EngineOptions& engine = {}) {
    if (count == 0) {
        if (engine.progress != nullptr && !engine.progress_pre_announced) {
            engine.progress->begin(0);
        }
        return init;
    }
    const ReducePlan plan = ReducePlan::for_count(count);
    std::vector<Accumulator> shards = reduce_indexed_shards(
        plan, {0, plan.shards()}, std::forward<Fold>(fold), init, engine);
    Accumulator result = std::move(shards[0]);
    for (std::size_t s = 1; s < shards.size(); ++s) {
        result.merge(shards[s]);
    }
    return result;
}

/// Campaign-shaped reduction: runs the HWM-campaign protocol for every
/// run index and streams each run's full Measurement into the
/// accumulator — never materializing a per-run vector. Bit-identical at
/// every job count (see the module comment).
template <typename Accumulator>
[[nodiscard]] Accumulator run_campaign_reduce(
    const MachineConfig& config, const Program& scua,
    const std::vector<Program>& contenders,
    const HwmCampaignOptions& options, Accumulator init,
    const EngineOptions& engine = {}) {
    RRB_REQUIRE(options.runs >= 1, "need at least one run");
    RRB_REQUIRE(!contenders.empty(), "need at least one contender");
    const std::uint64_t campaign =
        detail::campaign_fingerprint(scua, contenders, options);
    return reduce_indexed(
        static_cast<std::uint64_t>(options.runs),
        [&](Accumulator& acc, std::uint64_t run) {
            acc.add(run, detail::hwm_campaign_measure(config, scua,
                                                      contenders, options,
                                                      run, campaign));
        },
        std::move(init), engine);
}

/// Streamed pWCET campaign: isolation baseline, then
/// options.protocol.runs contention runs folded into a PwcetAccumulator
/// on the reduce path,
/// then the Gumbel fit over the streamed block maxima and pWCET
/// quantiles at the requested exceedance probabilities. Live memory is
/// O(runs / block_size); results are bit-identical for every
/// engine.jobs.
[[nodiscard]] PwcetCampaignResult run_pwcet_campaign(
    const MachineConfig& config, const Program& scua,
    const std::vector<Program>& contenders,
    const PwcetCampaignOptions& options = {},
    const EngineOptions& engine = {});

/// One checkpointable slice of a pWCET campaign: the isolation baseline
/// (re-measured — it is deterministic, so every slice observes the same
/// value) plus the *unmerged* per-shard accumulators for the plan's
/// shards [range.first, range.last). The stats/checkpoint.h codec
/// persists this; merging every slice's shards in shard-index order is
/// bit-identical to the monolithic run_pwcet_campaign at every jobs
/// value and every slicing.
struct PwcetShardSlice {
    Cycle et_isolation = 0;
    std::uint64_t nr = 0;  ///< scua bus requests (PMC)
    std::size_t first_shard = 0;
    std::uint64_t first_run = 0;  ///< run range [first_run, last_run)
    std::uint64_t last_run = 0;
    std::vector<PwcetAccumulator> shards;  ///< in shard order
};

[[nodiscard]] PwcetShardSlice run_pwcet_campaign_shards(
    const MachineConfig& config, const Program& scua,
    const std::vector<Program>& contenders,
    const PwcetCampaignOptions& options, ReducePlan::ShardRange range,
    const EngineOptions& engine = {});

/// White-box campaign statistics over the sharded merge path: the
/// gamma / ready-contenders / injection-delta histograms and the
/// run-ordered execution-time series, identical to a serial fold of
/// hwm_campaign_measure over the same options.
struct WhiteboxCampaignResult {
    Cycle et_isolation = 0;
    std::uint64_t nr = 0;
    WhiteboxAccumulator stats;
};

[[nodiscard]] WhiteboxCampaignResult run_whitebox_campaign(
    const MachineConfig& config, const Program& scua,
    const std::vector<Program>& contenders,
    const HwmCampaignOptions& options = {},
    const EngineOptions& engine = {});

/// One checkpointable slice of a white-box campaign — the
/// WhiteboxAccumulator counterpart of PwcetShardSlice, on the same
/// contract: per-plan-shard accumulators, isolation re-measured per
/// slice, merging every slice's shards in shard-index order is
/// bit-identical to the monolithic run_whitebox_campaign.
struct WhiteboxShardSlice {
    Cycle et_isolation = 0;
    std::uint64_t nr = 0;  ///< scua bus requests (PMC)
    std::size_t first_shard = 0;
    std::uint64_t first_run = 0;  ///< run range [first_run, last_run)
    std::uint64_t last_run = 0;
    std::vector<WhiteboxAccumulator> shards;  ///< in shard order
};

[[nodiscard]] WhiteboxShardSlice run_whitebox_campaign_shards(
    const MachineConfig& config, const Program& scua,
    const std::vector<Program>& contenders,
    const HwmCampaignOptions& options, ReducePlan::ShardRange range,
    const EngineOptions& engine = {});

/// Cycle-attribution campaign over the sharded merge path: every run
/// executes with the profiler armed and its finalized per-core cause
/// timelines / per-contender blame matrix are summed, identical to a
/// serial fold of hwm_campaign_attribute over the same options.
struct AttributionCampaignResult {
    Cycle et_isolation = 0;
    std::uint64_t nr = 0;  ///< scua bus requests (PMC)
    AttributionAccumulator attribution;
};

[[nodiscard]] AttributionCampaignResult run_attribution_campaign(
    const MachineConfig& config, const Program& scua,
    const std::vector<Program>& contenders,
    const HwmCampaignOptions& options = {},
    const EngineOptions& engine = {});

/// One checkpointable slice of an attribution campaign — the
/// AttributionAccumulator counterpart of WhiteboxShardSlice, on the
/// same contract: per-plan-shard accumulators, isolation re-measured
/// per slice, merging every slice's shards in shard-index order is
/// bit-identical to the monolithic run_attribution_campaign.
struct AttributionShardSlice {
    Cycle et_isolation = 0;
    std::uint64_t nr = 0;  ///< scua bus requests (PMC)
    std::size_t first_shard = 0;
    std::uint64_t first_run = 0;  ///< run range [first_run, last_run)
    std::uint64_t last_run = 0;
    std::vector<AttributionAccumulator> shards;  ///< in shard order
};

[[nodiscard]] AttributionShardSlice run_attribution_campaign_shards(
    const MachineConfig& config, const Program& scua,
    const std::vector<Program>& contenders,
    const HwmCampaignOptions& options, ReducePlan::ShardRange range,
    const EngineOptions& engine = {});

}  // namespace rrb::engine
