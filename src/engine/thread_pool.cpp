#include "engine/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "obs/telemetry.h"
#include "sim/contract.h"

namespace rrb::engine {

ThreadPool::ThreadPool(std::size_t threads, std::size_t max_queued)
    : max_queued_(std::max<std::size_t>(1, max_queued)) {
    const std::size_t n = std::max<std::size_t>(1, threads);
    workers_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

ThreadPool::~ThreadPool() {
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    work_ready_.notify_all();
    for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> job) {
    RRB_REQUIRE(job != nullptr, "cannot submit an empty job");
    // Telemetry: live queue depth for the heartbeat is the difference
    // between submitted and executed jobs — no pool state is exposed.
    obs::count(obs::kJobsSubmitted);
    {
        std::unique_lock<std::mutex> lock(mutex_);
        queue_changed_.wait(lock,
                            [this] { return queue_.size() < max_queued_; });
        queue_.push_back(std::move(job));
    }
    work_ready_.notify_one();
}

void ThreadPool::wait_idle() {
    std::unique_lock<std::mutex> lock(mutex_);
    all_done_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
    if (first_error_) {
        std::exception_ptr error;
        std::swap(error, first_error_);
        lock.unlock();
        std::rethrow_exception(error);
    }
}

std::size_t ThreadPool::default_jobs() noexcept {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

void ThreadPool::worker_loop() {
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            work_ready_.wait(
                lock, [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty()) return;  // stopping_ and drained
            job = std::move(queue_.front());
            queue_.pop_front();
            ++active_;
        }
        queue_changed_.notify_one();
        try {
            if (obs::enabled()) {
                // Busy-ns powers the heartbeat's worker-utilization
                // field. Jobs are shard-sized (milliseconds), so two
                // clock reads per job cost nothing; with telemetry off
                // not even those happen.
                const auto begin = std::chrono::steady_clock::now();
                job();
                obs::count(
                    obs::kWorkerBusyNs,
                    static_cast<std::uint64_t>(
                        std::chrono::duration_cast<
                            std::chrono::nanoseconds>(
                            std::chrono::steady_clock::now() - begin)
                            .count()));
            } else {
                job();
            }
            obs::count(obs::kJobsExecuted);
        } catch (...) {
            const std::lock_guard<std::mutex> lock(mutex_);
            if (!first_error_) first_error_ = std::current_exception();
        }
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            --active_;
            if (queue_.empty() && active_ == 0) all_done_.notify_all();
        }
    }
}

}  // namespace rrb::engine
