#include "engine/seed_sequence.h"

#include <vector>

namespace rrb::engine {

std::vector<std::uint64_t> derive_seeds(std::uint64_t root_seed,
                                        std::size_t count) {
    const SeedSequence sequence(root_seed);
    std::vector<std::uint64_t> seeds;
    seeds.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        seeds.push_back(sequence.seed_for(i));
    }
    return seeds;
}

}  // namespace rrb::engine
