#include "engine/reduce.h"

#include <utility>

#include "stats/checkpoint.h"

namespace rrb::engine {

namespace {

void validate_pwcet_options(const PwcetCampaignOptions& options,
                            const std::vector<Program>& contenders) {
    RRB_REQUIRE(options.protocol.runs >= 1, "need at least one run");
    RRB_REQUIRE(options.block_size >= 1, "block size must be positive");
    for (const double e : options.exceedance) {
        RRB_REQUIRE(e > 0.0 && e < 1.0, "exceedance probability in (0,1)");
    }
    RRB_REQUIRE(!contenders.empty(), "need at least one contender");
}

/// The deterministic isolation baseline every slice re-measures.
std::pair<Cycle, std::uint64_t> isolation_baseline(
    const MachineConfig& config, const Program& scua,
    const PwcetCampaignOptions& options) {
    const Measurement isol = run_isolation(
        config, scua, 0, options.protocol.max_cycles_per_run);
    RRB_ENSURE(!isol.deadline_reached);
    return {isol.exec_time, isol.bus_requests};
}

}  // namespace

PwcetCampaignResult run_pwcet_campaign(const MachineConfig& config,
                                       const Program& scua,
                                       const std::vector<Program>& contenders,
                                       const PwcetCampaignOptions& options,
                                       const EngineOptions& engine) {
    // The monolithic campaign is the full-range slice: same shard fold,
    // same merge sequence as a checkpointed fan-in, one process.
    const ReducePlan plan =
        ReducePlan::for_count(static_cast<std::uint64_t>(
            options.protocol.runs));
    PwcetShardSlice slice = run_pwcet_campaign_shards(
        config, scua, contenders, options, {0, plan.shards()}, engine);

    PwcetAccumulator acc = std::move(slice.shards[0]);
    for (std::size_t s = 1; s < slice.shards.size(); ++s) {
        acc.merge(slice.shards[s]);
    }
    return finalize_pwcet_campaign(acc, slice.et_isolation, slice.nr,
                                   options.exceedance);
}

PwcetShardSlice run_pwcet_campaign_shards(
    const MachineConfig& config, const Program& scua,
    const std::vector<Program>& contenders,
    const PwcetCampaignOptions& options, ReducePlan::ShardRange range,
    const EngineOptions& engine) {
    validate_pwcet_options(options, contenders);

    PwcetShardSlice slice;
    const auto [et_isolation, nr] = isolation_baseline(config, scua, options);
    slice.et_isolation = et_isolation;
    slice.nr = nr;

    const ReducePlan plan =
        ReducePlan::for_count(static_cast<std::uint64_t>(
            options.protocol.runs));
    slice.first_shard = range.first;
    if (range.size() > 0) {
        slice.first_run = plan.shard_begin(range.first);
        slice.last_run = plan.shard_end(range.last - 1);
    }
    // Hoisted out of the per-run path: the campaign fingerprint hashes
    // every contender instruction, which is pure overhead repeated
    // thousands of times inside the reduce.
    const std::uint64_t campaign = detail::campaign_fingerprint(
        scua, contenders, options.protocol);
    slice.shards = reduce_indexed_shards(
        plan, range,
        [&](PwcetAccumulator& acc, std::uint64_t run) {
            acc.add(run, detail::hwm_campaign_measure(config, scua,
                                                      contenders,
                                                      options.protocol,
                                                      run, campaign));
        },
        PwcetAccumulator(options.block_size), engine);
    return slice;
}

WhiteboxCampaignResult run_whitebox_campaign(
    const MachineConfig& config, const Program& scua,
    const std::vector<Program>& contenders,
    const HwmCampaignOptions& options, const EngineOptions& engine) {
    // The monolithic campaign is the full-range slice (the same
    // construction run_pwcet_campaign uses), so checkpointed slices can
    // never drift from it.
    const ReducePlan plan =
        ReducePlan::for_count(static_cast<std::uint64_t>(options.runs));
    WhiteboxShardSlice slice = run_whitebox_campaign_shards(
        config, scua, contenders, options, {0, plan.shards()}, engine);

    WhiteboxCampaignResult result;
    result.et_isolation = slice.et_isolation;
    result.nr = slice.nr;
    result.stats = std::move(slice.shards[0]);
    for (std::size_t s = 1; s < slice.shards.size(); ++s) {
        result.stats.merge(slice.shards[s]);
    }
    return result;
}

AttributionCampaignResult run_attribution_campaign(
    const MachineConfig& config, const Program& scua,
    const std::vector<Program>& contenders,
    const HwmCampaignOptions& options, const EngineOptions& engine) {
    const ReducePlan plan =
        ReducePlan::for_count(static_cast<std::uint64_t>(options.runs));
    AttributionShardSlice slice = run_attribution_campaign_shards(
        config, scua, contenders, options, {0, plan.shards()}, engine);

    AttributionCampaignResult result;
    result.et_isolation = slice.et_isolation;
    result.nr = slice.nr;
    result.attribution = std::move(slice.shards[0]);
    for (std::size_t s = 1; s < slice.shards.size(); ++s) {
        result.attribution.merge(slice.shards[s]);
    }
    return result;
}

AttributionShardSlice run_attribution_campaign_shards(
    const MachineConfig& config, const Program& scua,
    const std::vector<Program>& contenders,
    const HwmCampaignOptions& options, ReducePlan::ShardRange range,
    const EngineOptions& engine) {
    RRB_REQUIRE(options.runs >= 1, "need at least one run");
    RRB_REQUIRE(!contenders.empty(), "need at least one contender");

    AttributionShardSlice slice;
    {
        const Measurement isol =
            run_isolation(config, scua, 0, options.max_cycles_per_run);
        RRB_ENSURE(!isol.deadline_reached);
        slice.et_isolation = isol.exec_time;
        slice.nr = isol.bus_requests;
    }

    const ReducePlan plan =
        ReducePlan::for_count(static_cast<std::uint64_t>(options.runs));
    slice.first_shard = range.first;
    if (range.size() > 0) {
        slice.first_run = plan.shard_begin(range.first);
        slice.last_run = plan.shard_end(range.last - 1);
    }
    const std::uint64_t campaign =
        detail::campaign_fingerprint(scua, contenders, options);
    slice.shards = reduce_indexed_shards(
        plan, range,
        [&](AttributionAccumulator& acc, std::uint64_t run) {
            static_cast<void>(detail::hwm_campaign_attribute(
                config, scua, contenders, options, run, acc, campaign));
        },
        AttributionAccumulator{}, engine);
    return slice;
}

WhiteboxShardSlice run_whitebox_campaign_shards(
    const MachineConfig& config, const Program& scua,
    const std::vector<Program>& contenders,
    const HwmCampaignOptions& options, ReducePlan::ShardRange range,
    const EngineOptions& engine) {
    RRB_REQUIRE(options.runs >= 1, "need at least one run");
    RRB_REQUIRE(!contenders.empty(), "need at least one contender");

    WhiteboxShardSlice slice;
    {
        const Measurement isol =
            run_isolation(config, scua, 0, options.max_cycles_per_run);
        RRB_ENSURE(!isol.deadline_reached);
        slice.et_isolation = isol.exec_time;
        slice.nr = isol.bus_requests;
    }

    const ReducePlan plan =
        ReducePlan::for_count(static_cast<std::uint64_t>(options.runs));
    slice.first_shard = range.first;
    if (range.size() > 0) {
        slice.first_run = plan.shard_begin(range.first);
        slice.last_run = plan.shard_end(range.last - 1);
    }
    const std::uint64_t campaign =
        detail::campaign_fingerprint(scua, contenders, options);
    slice.shards = reduce_indexed_shards(
        plan, range,
        [&](WhiteboxAccumulator& acc, std::uint64_t run) {
            acc.add(run, detail::hwm_campaign_measure(config, scua,
                                                      contenders, options,
                                                      run, campaign));
        },
        WhiteboxAccumulator{}, engine);
    return slice;
}

}  // namespace rrb::engine
