#include "engine/reduce.h"

#include <limits>

namespace rrb::engine {

PwcetCampaignResult run_pwcet_campaign(const MachineConfig& config,
                                       const Program& scua,
                                       const std::vector<Program>& contenders,
                                       const PwcetCampaignOptions& options,
                                       const EngineOptions& engine) {
    RRB_REQUIRE(options.protocol.runs >= 1, "need at least one run");
    RRB_REQUIRE(options.block_size >= 1, "block size must be positive");
    for (const double e : options.exceedance) {
        RRB_REQUIRE(e > 0.0 && e < 1.0, "exceedance probability in (0,1)");
    }

    PwcetCampaignResult result;
    {
        const Measurement isol = run_isolation(
            config, scua, 0, options.protocol.max_cycles_per_run);
        RRB_ENSURE(!isol.deadline_reached);
        result.et_isolation = isol.exec_time;
        result.nr = isol.bus_requests;
    }

    const PwcetAccumulator acc = run_campaign_reduce(
        config, scua, contenders, options.protocol,
        PwcetAccumulator(options.block_size), engine);

    result.runs = static_cast<std::size_t>(acc.extremes().count());
    result.high_water_mark = acc.extremes().max();
    result.low_water_mark = acc.extremes().min();
    result.mean = acc.moments().mean();
    result.stddev = acc.moments().stddev();
    result.blocks = acc.blocks().complete_blocks();
    result.live_values = acc.blocks().live_values();
    result.fit = acc.blocks().fit();
    result.quantiles.reserve(options.exceedance.size());
    for (const double e : options.exceedance) {
        // pwcet() yields NaN on a degenerate fit's behalf only for bad p;
        // an invalid fit (too few blocks / zero spread) is still a valid
        // extrapolation-free row, so quote NaN explicitly there too.
        result.quantiles.push_back(
            {e, result.fit.valid()
                    ? result.fit.pwcet(e)
                    : std::numeric_limits<double>::quiet_NaN()});
    }
    return result;
}

WhiteboxCampaignResult run_whitebox_campaign(
    const MachineConfig& config, const Program& scua,
    const std::vector<Program>& contenders,
    const HwmCampaignOptions& options, const EngineOptions& engine) {
    WhiteboxCampaignResult result;
    {
        const Measurement isol =
            run_isolation(config, scua, 0, options.max_cycles_per_run);
        RRB_ENSURE(!isol.deadline_reached);
        result.et_isolation = isol.exec_time;
        result.nr = isol.bus_requests;
    }
    result.stats = run_campaign_reduce(config, scua, contenders, options,
                                       WhiteboxAccumulator{}, engine);
    return result;
}

}  // namespace rrb::engine
