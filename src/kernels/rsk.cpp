#include "kernels/rsk.h"

#include <algorithm>
#include <string>

#include "sim/contract.h"

namespace rrb {

void RskParams::validate() const {
    dl1_geometry.validate();
    RRB_REQUIRE(access == OpKind::kLoad || access == OpKind::kStore,
                "rsk accesses must be loads or stores");
    RRB_REQUIRE(unroll >= 1, "unroll factor must be >= 1");
    RRB_REQUIRE(iterations >= 1, "at least one iteration");
    RRB_REQUIRE(nop_latency >= 1, "nop latency must be >= 1");
}

Program make_rsk(RskParams params) {
    params.nops_between = 0;
    return make_rsk_nop(params, 0);
}

Program make_rsk_nop(RskParams params, std::uint32_t k) {
    params.nops_between = k;
    params.validate();

    const std::uint32_t ways = params.dl1_geometry.ways;
    const std::uint64_t stride = params.dl1_geometry.set_stride();

    const std::string type =
        params.access == OpKind::kLoad ? "load" : "store";
    ProgramBuilder b("rsk-" + type + (k > 0 ? "-nop" + std::to_string(k)
                                            : std::string{}));
    b.code_base(params.code_base);

    // Cap the unroll factor so the body fits the IL1: one group is
    // (W+1) * (1 + k) instructions, and an overflowing body would turn
    // the kernel into an instruction-fetch stressor instead.
    const std::uint64_t il1_capacity_instrs =
        params.il1_geometry.size_bytes / Program::kInstrBytes;
    const std::uint64_t group_instrs =
        static_cast<std::uint64_t>(ways + 1) * (1 + params.nops_between);
    const std::uint64_t max_unroll =
        std::max<std::uint64_t>(1, il1_capacity_instrs / group_instrs);
    const auto unroll = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(params.unroll, max_unroll));

    // One group = W+1 same-set accesses; with LRU/FIFO every access misses
    // in DL1 (Figure 1). k nops separate consecutive bus accesses.
    for (std::uint32_t group = 0; group < unroll; ++group) {
        for (std::uint32_t i = 0; i <= ways; ++i) {
            const AddrPattern addr =
                AddrPattern::fixed(params.data_base + i * stride);
            if (params.access == OpKind::kLoad) {
                b.load(addr);
            } else {
                b.store(addr);
            }
            if (params.nops_between > 0) {
                b.nop(params.nops_between, params.nop_latency);
            }
        }
    }
    b.iterations(params.iterations);
    b.loop_control(2);
    return b.build();
}

Program make_rsk_l2miss(RskParams params, std::uint64_t footprint_bytes,
                        std::uint32_t k) {
    params.nops_between = k;
    params.validate();
    RRB_REQUIRE(footprint_bytes >= 2 * params.dl1_geometry.size_bytes,
                "footprint must exceed the caches to guarantee misses");
    const std::uint32_t line = params.dl1_geometry.line_bytes;

    ProgramBuilder b("rsk-l2miss" +
                     (k > 0 ? "-nop" + std::to_string(k) : std::string{}));
    b.code_base(params.code_base);

    // Cap the body to the IL1 as in make_rsk_nop.
    const std::uint64_t il1_capacity_instrs =
        params.il1_geometry.size_bytes / Program::kInstrBytes;
    const std::uint64_t group_instrs = 1 + params.nops_between;
    const std::uint64_t slots = std::min<std::uint64_t>(
        static_cast<std::uint64_t>(params.unroll) *
            (params.dl1_geometry.ways + 1),
        std::max<std::uint64_t>(1, il1_capacity_instrs / group_instrs));

    // Slot j walks lines j, j+slots, j+2*slots, ... across the footprint:
    // consecutive body passes touch consecutive line groups, so no line
    // repeats before the whole footprint has been swept.
    for (std::uint64_t j = 0; j < slots; ++j) {
        b.load(AddrPattern::stride(params.data_base + j * line,
                                   slots * line, footprint_bytes));
        if (params.nops_between > 0) {
            b.nop(params.nops_between, params.nop_latency);
        }
    }
    b.iterations(params.iterations);
    b.loop_control(2);
    return b.build();
}

Program make_nop_kernel(std::size_t body_nops, std::uint64_t iterations,
                        std::uint32_t nop_latency, Addr code_base) {
    RRB_REQUIRE(body_nops >= 1, "need at least one nop");
    RRB_REQUIRE(iterations >= 1, "at least one iteration");
    ProgramBuilder b("nop-calibration");
    b.code_base(code_base);
    b.nop(static_cast<std::uint32_t>(body_nops), nop_latency);
    b.iterations(iterations);
    b.loop_control(2);
    return b.build();
}

}  // namespace rrb
