// Synthetic stand-ins for the EEMBC Autobench 1.1 suite.
//
// The paper evaluates Figure 6(a) on "randomly generated 4-task workloads
// with EEMBC benchmarks", which "model some real-world automotive critical
// functionalities". EEMBC is licensed and cannot be redistributed, so this
// module provides one synthetic kernel per Autobench program with the
// characteristics documented in the suite's characterization literature
// (Poovey, 2007): op mix (compute vs loads vs stores), working-set size
// relative to the 16KB DL1, and access regularity (streaming, strided,
// random table lookup, pointer-chasing). What Figure 6(a) actually needs
// from these programs is only their *bus demand profile* — bursty and far
// below saturation — which these kernels reproduce.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "isa/program.h"
#include "sim/types.h"

namespace rrb {

enum class Autobench : std::uint8_t {
    kA2time,   ///< angle-to-time: compute-bound, tiny table
    kAifftr,   ///< FFT: strided butterflies over a 16KB buffer
    kAifirf,   ///< FIR filter: sequential MACs, DL1-resident
    kAiifft,   ///< inverse FFT: as kAifftr with a different schedule
    kBasefp,   ///< floating-point basics: long-latency ALU, tiny memory
    kBitmnp,   ///< bit manipulation: short ALU, tiny table
    kCacheb,   ///< cache buster: strided walk over 4x the DL1
    kCanrdr,   ///< CAN remote request: ring-buffer loads/stores
    kIdctrn,   ///< inverse DCT: 8x8 block loads, compute-heavy
    kIirflt,   ///< IIR filter: small state, compute-bound
    kMatrix,   ///< matrix arithmetic: streaming reads, result stores
    kPntrch,   ///< pointer chase: dependent random loads over 32KB
    kPuwmod,   ///< pulse-width modulation: register stores + compute
    kRspeed,   ///< road-speed calculation: small and compute-bound
    kTblook,   ///< table lookup: random reads over a 24KB table
    kTtsprk,   ///< tooth-to-spark: mixed loads/stores over 8KB
};

/// All kernels, in enum order.
[[nodiscard]] std::span<const Autobench> all_autobench();

[[nodiscard]] const char* to_string(Autobench kernel) noexcept;

/// Builds the synthetic kernel. `seed` perturbs random access patterns
/// (different "input data"); `iterations` scales run length.
[[nodiscard]] Program make_autobench(Autobench kernel, Addr data_base,
                                     std::uint64_t iterations,
                                     std::uint64_t seed = 1);

/// A randomly composed multi-task workload: `tasks` distinct kernels drawn
/// without replacement (seeded, reproducible), one per core, with disjoint
/// data regions. Used for the 8 random workloads of Figure 6(a).
[[nodiscard]] std::vector<Program> random_autobench_workload(
    CoreId tasks, std::uint64_t seed, std::uint64_t iterations);

}  // namespace rrb
