#include "kernels/autobench.h"

#include <array>

#include "sim/contract.h"
#include "sim/rng.h"

namespace rrb {

namespace {

constexpr std::array<Autobench, 16> kAll = {
    Autobench::kA2time, Autobench::kAifftr, Autobench::kAifirf,
    Autobench::kAiifft, Autobench::kBasefp, Autobench::kBitmnp,
    Autobench::kCacheb, Autobench::kCanrdr, Autobench::kIdctrn,
    Autobench::kIirflt, Autobench::kMatrix, Autobench::kPntrch,
    Autobench::kPuwmod, Autobench::kRspeed, Autobench::kTblook,
    Autobench::kTtsprk};

constexpr std::uint64_t kKiB = 1024;

}  // namespace

std::span<const Autobench> all_autobench() { return kAll; }

const char* to_string(Autobench kernel) noexcept {
    switch (kernel) {
        case Autobench::kA2time: return "a2time";
        case Autobench::kAifftr: return "aifftr";
        case Autobench::kAifirf: return "aifirf";
        case Autobench::kAiifft: return "aiifft";
        case Autobench::kBasefp: return "basefp";
        case Autobench::kBitmnp: return "bitmnp";
        case Autobench::kCacheb: return "cacheb";
        case Autobench::kCanrdr: return "canrdr";
        case Autobench::kIdctrn: return "idctrn";
        case Autobench::kIirflt: return "iirflt";
        case Autobench::kMatrix: return "matrix";
        case Autobench::kPntrch: return "pntrch";
        case Autobench::kPuwmod: return "puwmod";
        case Autobench::kRspeed: return "rspeed";
        case Autobench::kTblook: return "tblook";
        case Autobench::kTtsprk: return "ttsprk";
    }
    return "?";
}

Program make_autobench(Autobench kernel, Addr base, std::uint64_t iterations,
                       std::uint64_t seed) {
    RRB_REQUIRE(iterations >= 1, "at least one iteration");
    ProgramBuilder b(to_string(kernel));
    b.iterations(iterations).code_base(base + 0x40'0000).loop_control(2);

    switch (kernel) {
        case Autobench::kA2time:
            // Angle-to-time: trig approximations dominate; a 2KB lookup
            // table stays DL1-resident after warm-up.
            for (std::uint64_t i = 0; i < 6; ++i) {
                b.alu(8, 1);
                b.load(AddrPattern::random(base, 2 * kKiB, 4, seed + i));
                b.alu(6, 2);
            }
            break;
        case Autobench::kAifftr:
        case Autobench::kAiifft: {
            // FFT butterfly pass: power-of-two strides over a 16KB buffer;
            // occasional DL1 misses when the stride spans sets.
            const std::uint64_t phase =
                kernel == Autobench::kAifftr ? 0 : 3;
            for (std::uint64_t s = 0; s < 4; ++s) {
                const std::uint64_t stride = 64ULL << ((s + phase) % 5);
                b.load(AddrPattern::stride(base, stride, 16 * kKiB));
                b.load(AddrPattern::stride(base + 8 * kKiB, stride,
                                           16 * kKiB));
                b.alu(10, 2);  // complex multiply-accumulate
                b.store(AddrPattern::stride(base, stride, 16 * kKiB));
            }
            break;
        }
        case Autobench::kAifirf:
            // FIR filter: sequential taps, coefficient+sample arrays of
            // 8KB combined — DL1-resident steady state.
            for (int t = 0; t < 8; ++t) {
                b.load(AddrPattern::stride(base, 4, 4 * kKiB));
                b.load(AddrPattern::stride(base + 4 * kKiB, 4, 4 * kKiB));
                b.alu(3, 1);  // MAC
            }
            b.store(AddrPattern::stride(base + 8 * kKiB, 4, 2 * kKiB));
            break;
        case Autobench::kBasefp:
            // Floating-point exercises: long-latency ALU, almost no data.
            b.alu(24, 3);
            b.load(AddrPattern::fixed(base));
            b.alu(24, 3);
            b.store(AddrPattern::fixed(base + 64));
            break;
        case Autobench::kBitmnp:
            // Bit manipulation: short dependent ALU chains, tiny table.
            for (std::uint64_t i = 0; i < 5; ++i) {
                b.alu(12, 1);
                b.load(AddrPattern::random(base, kKiB, 4, seed + i));
            }
            break;
        case Autobench::kCacheb:
            // Cache buster: line-strided walk over 64KB = 4x DL1, so every
            // load misses in DL1 and hits the core's 64KB L2 partition —
            // the closest Autobench program to an rsk.
            for (int i = 0; i < 16; ++i) {
                b.load(AddrPattern::stride(base, 32, 64 * kKiB));
                b.alu(1, 1);
            }
            break;
        case Autobench::kCanrdr:
            // CAN message processing: ring buffers, field extraction,
            // status stores.
            for (std::uint64_t m = 0; m < 4; ++m) {
                b.load(AddrPattern::stride(base, 16, 4 * kKiB));
                b.alu(6, 1);
                b.load(AddrPattern::random(base + 4 * kKiB, 2 * kKiB, 4,
                                           seed + m));
                b.alu(4, 1);
                b.store(AddrPattern::stride(base + 6 * kKiB, 16, 2 * kKiB));
            }
            break;
        case Autobench::kIdctrn:
            // 8x8 inverse DCT: block loads, heavy arithmetic, block store.
            for (int r = 0; r < 8; ++r) {
                b.load(AddrPattern::stride(base, 32, 16 * kKiB));
                b.alu(14, 2);
            }
            b.store(AddrPattern::stride(base + 16 * kKiB, 32, 8 * kKiB));
            break;
        case Autobench::kIirflt:
            // IIR filter: a handful of state words, compute-bound.
            for (std::uint32_t s = 0; s < 4; ++s) {
                b.load(AddrPattern::fixed(base + s * 32u));
                b.alu(8, 2);
                b.store(AddrPattern::fixed(base + s * 32u));
                b.alu(4, 1);
            }
            break;
        case Autobench::kMatrix:
            // Matrix arithmetic: two streaming input matrices (32KB total)
            // and a result stream; DL1 misses on every new line.
            for (int i = 0; i < 8; ++i) {
                b.load(AddrPattern::stride(base, 8, 16 * kKiB));
                b.load(AddrPattern::stride(base + 16 * kKiB, 8, 16 * kKiB));
                b.alu(4, 1);
            }
            b.store(AddrPattern::stride(base + 32 * kKiB, 8, 16 * kKiB));
            break;
        case Autobench::kPntrch:
            // Pointer chase: dependent random loads over 32KB — roughly
            // half the footprint misses the 16KB DL1.
            for (std::uint64_t h = 0; h < 6; ++h) {
                b.load(AddrPattern::random(base, 32 * kKiB, 32, seed + h));
                b.alu(2, 1);
            }
            break;
        case Autobench::kPuwmod:
            // PWM: duty-cycle computation, stores to fixed device
            // registers.
            b.alu(16, 1);
            b.store(AddrPattern::fixed(base));
            b.alu(10, 1);
            b.store(AddrPattern::fixed(base + 32));
            b.load(AddrPattern::fixed(base + 64));
            b.alu(8, 1);
            break;
        case Autobench::kRspeed:
            // Road speed: timer deltas, small filtering.
            b.load(AddrPattern::fixed(base));
            b.alu(12, 1);
            b.load(AddrPattern::stride(base + 64, 4, 512));
            b.alu(10, 1);
            b.store(AddrPattern::fixed(base + 1024));
            break;
        case Autobench::kTblook:
            // Table lookup with interpolation over a 24KB table: random
            // reads, moderate DL1 miss rate.
            for (std::uint64_t l = 0; l < 6; ++l) {
                b.load(AddrPattern::random(base, 24 * kKiB, 4, seed + l));
                b.alu(5, 1);
            }
            break;
        case Autobench::kTtsprk:
            // Tooth-to-spark: sensor reads, map lookups, actuator stores.
            for (std::uint64_t s = 0; s < 3; ++s) {
                b.load(AddrPattern::stride(base, 8, 2 * kKiB));
                b.load(AddrPattern::random(base + 2 * kKiB, 6 * kKiB, 4,
                                           seed + s));
                b.alu(9, 1);
                b.store(AddrPattern::stride(base + 8 * kKiB, 8, kKiB));
            }
            break;
    }
    return b.build();
}

std::vector<Program> random_autobench_workload(CoreId tasks,
                                               std::uint64_t seed,
                                               std::uint64_t iterations) {
    RRB_REQUIRE(tasks >= 1, "need at least one task");
    RRB_REQUIRE(tasks <= kAll.size(), "not enough distinct kernels");
    Pcg32 rng(seed);

    // Draw without replacement.
    std::array<Autobench, kAll.size()> pool = kAll;
    for (std::size_t i = 0; i < pool.size(); ++i) {
        const auto j =
            i + rng.next_below(static_cast<std::uint32_t>(pool.size() - i));
        std::swap(pool[i], pool[j]);
    }

    std::vector<Program> out;
    out.reserve(tasks);
    for (CoreId t = 0; t < tasks; ++t) {
        // 1MB-aligned disjoint data regions per task.
        const Addr base = 0x0100'0000 + static_cast<Addr>(t) * 0x0010'0000;
        out.push_back(make_autobench(pool[t], base, iterations, seed + t));
    }
    return out;
}

}  // namespace rrb
