// Resource stressing kernels (rsk) and the paper's rsk-nop variant.
//
// The load rsk (Figure 1(a)) is a loop of W+1 load instructions, where W is
// the number of DL1 ways, with a stride that maps every load to the same
// DL1 set. With LRU (or FIFO) replacement the W+1 lines cannot coexist in
// the W-way set, so *every* load misses in DL1; the addresses are chosen
// to fit in the core's L2 partition, so every miss hits in L2 — the access
// type that keeps the bus busiest.
//
// rsk-nop (Figure 1(b)) inserts k nop instructions between consecutive
// bus-accessing instructions, stretching the injection time from
// delta_rsk to delta_rsk + k * delta_nop. Sweeping k is the measurement
// instrument of the whole methodology.
#pragma once

#include <cstdint>

#include "cache/cache.h"
#include "isa/program.h"

namespace rrb {

struct RskParams {
    /// Geometry of the DL1 the kernel must defeat (W+1 loads, same set).
    CacheGeometry dl1_geometry{16 * 1024, 4, 32};
    /// Geometry of the IL1 the kernel must fit in: the unroll factor is
    /// capped so the loop body never exceeds the instruction cache
    /// ("we unroll the loop body as much as possible not to cause
    /// instruction cache misses").
    CacheGeometry il1_geometry{16 * 1024, 4, 32};
    /// Base of the kernel's data; consecutive accesses are one DL1
    /// set-stride apart.
    Addr data_base = 0x0010'0000;
    /// Base of the kernel's code (distinct per core only for clarity; L1s
    /// are private).
    Addr code_base = 0x0000'0000;
    /// Copies of the W+1 access group per loop body. The paper unrolls
    /// "as much as possible without causing instruction cache misses" to
    /// dilute the loop-control overhead below 2%.
    std::uint32_t unroll = 32;
    /// Loop-body repetitions (sets the measurement length).
    std::uint64_t iterations = 2000;
    /// Instruction type used to access the bus: kLoad or kStore
    /// (the rsk-nop(t, k) parameter t of Section 4.2).
    OpKind access = OpKind::kLoad;
    /// nops inserted between consecutive bus accesses (the parameter k).
    std::uint32_t nops_between = 0;
    /// Latency of one nop; 1 on virtually all targets (Section 4.2).
    std::uint32_t nop_latency = 1;

    void validate() const;
};

/// Builds rsk(t) — `nops_between` is forced to 0.
[[nodiscard]] Program make_rsk(RskParams params);

/// Builds rsk-nop(t, k).
[[nodiscard]] Program make_rsk_nop(RskParams params, std::uint32_t k);

/// A DRAM-path stressing kernel: a line-strided walk whose footprint
/// exceeds the core's L2 partition, so every load misses DL1 *and* L2 and
/// travels the split-transaction path to the memory controller. Used by
/// the extension experiments that probe contention beyond the bus — the
/// second contention point the paper names ("contention only happens on
/// the bus and the memory controller"). `footprint_bytes` should be at
/// least twice the per-core L2 partition.
[[nodiscard]] Program make_rsk_l2miss(RskParams params,
                                      std::uint64_t footprint_bytes,
                                      std::uint32_t k = 0);

/// The delta_nop calibration kernel of Section 4.2: a loop body of
/// `body_nops` nop instructions (sized to stay within the IL1), whose
/// isolated execution time divided by the nop count yields delta_nop.
[[nodiscard]] Program make_nop_kernel(std::size_t body_nops,
                                      std::uint64_t iterations,
                                      std::uint32_t nop_latency = 1,
                                      Addr code_base = 0);

}  // namespace rrb
