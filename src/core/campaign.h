// Measurement campaigns: the MBTA observation protocol the ETB is
// validated against.
//
// A single contention run observes one alignment between the scua and its
// contenders. Industrial measurement-based practice runs *campaigns*:
// many runs with randomized release offsets, keeping the high-water mark
// (HWM) of the observed execution times. The composable bound
// ETB = et_isol + nr * ubdm must dominate the HWM of every campaign —
// and the gap between HWM and ETB is the (provably safe) pessimism.
#pragma once

#include <cstdint>
#include <vector>

#include "core/experiment.h"
#include "isa/program.h"
#include "machine/config.h"
#include "sim/types.h"
#include "stats/attribution.h"
#include "stats/evt.h"

namespace rrb {

struct HwmCampaignOptions {
    std::size_t runs = 20;
    std::uint64_t seed = 1;
    /// Contender release offsets are drawn uniformly from
    /// [0, max_start_delay].
    Cycle max_start_delay = 997;
    Cycle max_cycles_per_run = 200'000'000;
};

struct HwmCampaignResult {
    Cycle et_isolation = 0;
    Cycle high_water_mark = 0;        ///< max observed contention time
    Cycle low_water_mark = 0;         ///< min observed contention time
    std::vector<Cycle> exec_times;    ///< one per run
    std::uint64_t nr = 0;             ///< scua bus requests (PMC)

    /// Max observed per-request slowdown: (HWM - isol) / nr. Compare with
    /// ubd: it can approach but never exceed it. Clamped to 0 when the
    /// HWM is below isolation (possible for hand-built results or warmth
    /// asymmetries) — the unsigned subtraction would otherwise wrap to a
    /// huge positive value.
    [[nodiscard]] double hwm_slowdown_per_request() const noexcept {
        return nr == 0 || high_water_mark <= et_isolation
                   ? 0.0
                   : static_cast<double>(high_water_mark - et_isolation) /
                         static_cast<double>(nr);
    }
};

/// Runs the campaign: `runs` contention executions of `scua` on core 0
/// against the contender programs on the other cores, each run with
/// fresh, seeded-random release offsets for the contenders.
///
/// Run i's offsets come from a Pcg32 seeded by
/// engine::SeedSequence(options.seed).seed_for(i) — a pure function of
/// (seed, i) — so every execution path produces bit-identical results
/// at any job count.
///
/// Low-level layer: this free function is kept as the historical entry
/// point and delegates to the Scenario/Session API (core/session.h)
/// with a one-worker budget. New code should build a Scenario and call
/// Session::hwm directly.
[[nodiscard]] HwmCampaignResult run_hwm_campaign(
    const MachineConfig& config, const Program& scua,
    const std::vector<Program>& contenders,
    const HwmCampaignOptions& options = {});

/// A pWCET campaign streams runs into mergeable accumulators instead of
/// materializing them: at any moment only O(runs / block_size) values
/// are live, so 10^5+ runs cost the same memory as 10^2. The run
/// protocol is HwmCampaignOptions itself — embedded, not copied field
/// by field — so a streamed campaign observes exactly the execution
/// times a materializing campaign with equal (seed, runs) would have
/// stored, including any protocol field added later.
struct PwcetCampaignOptions {
    /// Seeding, release offsets and cycle caps of every run.
    HwmCampaignOptions protocol{.runs = 100'000};
    /// Consecutive runs per EVT block; the Gumbel is fitted to the block
    /// maxima (classical block-maxima MBPTA).
    std::size_t block_size = 50;
    /// Exceedance probabilities to quote pWCET quantiles at.
    std::vector<double> exceedance = {1e-3, 1e-6, 1e-9};
};

struct PwcetQuantile {
    double exceedance = 0.0;
    double pwcet = 0.0;  ///< NaN when the fit is degenerate
};

struct PwcetCampaignResult {
    Cycle et_isolation = 0;
    std::uint64_t nr = 0;             ///< scua bus requests (PMC)
    std::size_t runs = 0;
    Cycle high_water_mark = 0;
    Cycle low_water_mark = 0;
    double mean = 0.0;                ///< streamed (Chan-merged) moments
    double stddev = 0.0;
    std::size_t blocks = 0;           ///< complete blocks fed to the fit
    /// Live (max, fill) pairs the streamed fold held at the end — the
    /// memory-footprint evidence: ~runs/block_size, never ~runs.
    std::size_t live_values = 0;
    GumbelFit fit;                    ///< Gumbel over the block maxima
    std::vector<PwcetQuantile> quantiles;

    /// The composable bound the quantiles are compared against.
    [[nodiscard]] Cycle etb(Cycle ubd) const noexcept {
        return et_isolation + nr * ubd;
    }
};

class Machine;

namespace replay {
struct ScriptCache;
}  // namespace replay

namespace detail {

/// Identity of the program set a campaign installs on a machine: the
/// scua, the resolved contender list and the per-run cycle cap (which
/// re-scopes contender iteration counts). A machine whose last run used
/// the same fingerprint can be restarted in place — no program copies —
/// instead of reloaded; engine::MachineLease stores this tag next to
/// each cached machine. Never zero (zero means "nothing installed").
[[nodiscard]] std::uint64_t campaign_fingerprint(
    const Program& scua, const std::vector<Program>& contenders,
    const HwmCampaignOptions& options);

/// Runs run `run_index` of the campaign protocol on `machine`: resets
/// it to power-on state, installs the programs (or restarts them in
/// place when `loaded_campaign` already matches their fingerprint —
/// updated on return), draws the seeded release offsets, warms the
/// static footprints and runs to the scua's finish cycle. The single
/// protocol body shared by the hot leased path (hwm_campaign_run /
/// hwm_campaign_measure) and the differential tests' fresh-machine
/// naive-stepping reference — sharing it is what makes "bit-identical"
/// checkable rather than aspirational. Pass `loaded_campaign = 0` for a
/// machine whose program state is unknown.
///
/// `scripts` selects the execution mode: non-null enables micro-op
/// replay (src/replay) — scripts are decoded into the cache when its
/// campaign tag differs and attached to the cores each run; null (the
/// default, and the differential references' mode) interprets, and any
/// previously attached scripts are detached. Both modes produce
/// bit-identical results; replay is just faster.
///
/// `campaign` is an optional precomputed campaign_fingerprint(scua,
/// contenders, options): program fingerprints hash every instruction,
/// which is measurable per-run overhead for large contender bodies, so
/// shard loops hoist the hash out and pass it in. 0 (the default, and
/// never a valid fingerprint) means "compute it here"; a non-zero value
/// MUST equal what campaign_fingerprint would return for these inputs.
[[nodiscard]] Cycle execute_campaign_run(
    Machine& machine, std::uint64_t& loaded_campaign, const Program& scua,
    const std::vector<Program>& contenders,
    const HwmCampaignOptions& options, std::uint64_t run_index,
    replay::ScriptCache* scripts = nullptr, std::uint64_t campaign = 0);

/// One campaign run on a per-worker leased machine (machine reuse +
/// event-driven cycle skipping), returning the scua's finish cycle.
/// Thread-safe: the lease cache is thread-local. Shared by the serial
/// and parallel campaign paths, which is what keeps them bit-identical.
/// `campaign` as in execute_campaign_run: optional precomputed
/// campaign_fingerprint, 0 to compute per call.
[[nodiscard]] Cycle hwm_campaign_run(const MachineConfig& config,
                                     const Program& scua,
                                     const std::vector<Program>& contenders,
                                     const HwmCampaignOptions& options,
                                     std::uint64_t run_index,
                                     std::uint64_t campaign = 0);

/// hwm_campaign_run with the full Measurement snapshot (black-box PMCs
/// plus white-box histograms) instead of just the finish cycle. Same
/// setup, same seeding, same execution — m.exec_time equals
/// hwm_campaign_run(...) for equal inputs — so streamed accumulators
/// observe exactly the values the materializing path would have stored.
[[nodiscard]] Measurement hwm_campaign_measure(
    const MachineConfig& config, const Program& scua,
    const std::vector<Program>& contenders,
    const HwmCampaignOptions& options, std::uint64_t run_index,
    std::uint64_t campaign = 0);

/// hwm_campaign_run with the cycle-attribution profiler armed on the
/// leased machine: the run's finalized per-core cause timelines and
/// per-contender blame matrix are folded into `acc`, and the machine is
/// disarmed before the lease is released (cached machines must never
/// stay armed). Attribution is strictly observational, so the returned
/// finish cycle equals hwm_campaign_run(...) for equal inputs.
[[nodiscard]] Cycle hwm_campaign_attribute(
    const MachineConfig& config, const Program& scua,
    const std::vector<Program>& contenders,
    const HwmCampaignOptions& options, std::uint64_t run_index,
    AttributionAccumulator& acc, std::uint64_t campaign = 0);

}  // namespace detail

}  // namespace rrb
