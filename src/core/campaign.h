// Measurement campaigns: the MBTA observation protocol the ETB is
// validated against.
//
// A single contention run observes one alignment between the scua and its
// contenders. Industrial measurement-based practice runs *campaigns*:
// many runs with randomized release offsets, keeping the high-water mark
// (HWM) of the observed execution times. The composable bound
// ETB = et_isol + nr * ubdm must dominate the HWM of every campaign —
// and the gap between HWM and ETB is the (provably safe) pessimism.
#pragma once

#include <cstdint>
#include <vector>

#include "isa/program.h"
#include "machine/config.h"
#include "sim/types.h"

namespace rrb {

struct HwmCampaignOptions {
    std::size_t runs = 20;
    std::uint64_t seed = 1;
    /// Contender release offsets are drawn uniformly from
    /// [0, max_start_delay].
    Cycle max_start_delay = 997;
    Cycle max_cycles_per_run = 200'000'000;
};

struct HwmCampaignResult {
    Cycle et_isolation = 0;
    Cycle high_water_mark = 0;        ///< max observed contention time
    Cycle low_water_mark = 0;         ///< min observed contention time
    std::vector<Cycle> exec_times;    ///< one per run
    std::uint64_t nr = 0;             ///< scua bus requests (PMC)

    /// Max observed per-request slowdown: (HWM - isol) / nr. Compare with
    /// ubd: it can approach but never exceed it. Clamped to 0 when the
    /// HWM is below isolation (possible for hand-built results or warmth
    /// asymmetries) — the unsigned subtraction would otherwise wrap to a
    /// huge positive value.
    [[nodiscard]] double hwm_slowdown_per_request() const noexcept {
        return nr == 0 || high_water_mark <= et_isolation
                   ? 0.0
                   : static_cast<double>(high_water_mark - et_isolation) /
                         static_cast<double>(nr);
    }
};

/// Runs the campaign: `runs` contention executions of `scua` on core 0
/// against the contender programs on the other cores, each run with
/// fresh, seeded-random release offsets for the contenders.
///
/// Run i's offsets come from a Pcg32 seeded by
/// engine::SeedSequence(options.seed).seed_for(i) — a pure function of
/// (seed, i) — so the serial loop here and the sharded
/// engine::run_hwm_campaign_parallel produce bit-identical results at
/// any job count.
[[nodiscard]] HwmCampaignResult run_hwm_campaign(
    const MachineConfig& config, const Program& scua,
    const std::vector<Program>& contenders,
    const HwmCampaignOptions& options = {});

namespace detail {

/// One campaign run: builds a fresh machine, loads `scua` on core 0 and
/// the contenders (with seeded-random release offsets) on the rest, and
/// returns the scua's finish cycle. Thread-safe: everything it touches
/// is local. Shared by the serial and parallel campaign paths, which is
/// what keeps them bit-identical.
[[nodiscard]] Cycle hwm_campaign_run(const MachineConfig& config,
                                     const Program& scua,
                                     const std::vector<Program>& contenders,
                                     const HwmCampaignOptions& options,
                                     std::uint64_t run_index);

}  // namespace detail

}  // namespace rrb
