#include "core/store_span.h"

#include <algorithm>
#include <cmath>

#include "core/experiment.h"
#include "kernels/rsk.h"
#include "sim/contract.h"

namespace rrb {

StoreSpanEstimate estimate_ubd_store_span(
    const MachineConfig& config, const UbdEstimatorOptions& options) {
    RRB_REQUIRE(options.k_max >= 8, "sweep too short for a store span");
    RRB_REQUIRE(options.rsk_iterations >= 1, "need at least one iteration");

    const std::vector<Program> contenders =
        make_rsk_contenders(config, OpKind::kStore, options.unroll);

    // One unroll factor for the whole sweep (see estimator.cpp).
    const std::uint64_t il1_capacity_instrs =
        config.core.il1_geometry.size_bytes / Program::kInstrBytes;
    const std::uint64_t largest_group =
        static_cast<std::uint64_t>(config.core.dl1_geometry.ways + 1) *
        (1 + options.k_max);
    const auto unroll = static_cast<std::uint32_t>(std::min<std::uint64_t>(
        options.unroll,
        std::max<std::uint64_t>(1, il1_capacity_instrs / largest_group)));

    StoreSpanEstimate estimate;
    estimate.dbus.reserve(options.k_max + 1);
    for (std::uint32_t k = 0; k <= options.k_max; ++k) {
        RskParams params;
        params.dl1_geometry = config.core.dl1_geometry;
        params.il1_geometry = config.core.il1_geometry;
        params.access = OpKind::kStore;
        params.unroll = unroll;
        params.iterations = options.rsk_iterations;
        params.nop_latency = options.nop_latency;
        params.data_base = 0x0010'0000;
        const Program scua = make_rsk_nop(params, k);
        const SlowdownResult r = run_slowdown(config, scua, contenders, 0,
                                              options.max_cycles_per_run);
        RRB_ENSURE(!r.isolation.deadline_reached &&
                   !r.contention.deadline_reached);
        estimate.dbus.push_back(static_cast<double>(r.slowdown()));
    }

    const double plateau = estimate.dbus.front();
    if (plateau <= 0.0) return estimate;  // no contention at all
    const double epsilon = plateau * 0.02;

    // Boundary markers (for reporting): last index near the plateau and
    // first index of the sustained-zero tail.
    std::size_t plateau_end = 0;
    for (std::size_t k = 0; k < estimate.dbus.size(); ++k) {
        if (estimate.dbus[k] >= plateau - epsilon) {
            plateau_end = k;
        } else {
            break;
        }
    }
    std::size_t first_zero = estimate.dbus.size();
    for (std::size_t k = plateau_end + 1; k < estimate.dbus.size(); ++k) {
        if (estimate.dbus[k] > epsilon) continue;
        bool stays = true;
        for (std::size_t j = k; j < estimate.dbus.size(); ++j) {
            if (estimate.dbus[j] > epsilon) stays = false;
        }
        if (stays) {
            first_zero = k;
            break;
        }
    }
    if (first_zero >= estimate.dbus.size()) return estimate;  // span not
                                                              // covered
    estimate.plateau_end = plateau_end;
    estimate.first_zero = first_zero;

    // ubd extraction. The model is dbus(k)/store =
    // max(k*dnop + c, Nc*lbus) - max(k*dnop + c, lbus): a plateau of
    // height nr*ubd and a unit-slope (nr*dnop per k) ramp. The ratio
    // plateau/slope is therefore ubd/dnop exactly, independent of the
    // boundary indices — which a threshold search can only locate to
    // within its tolerance when one k-step is small against the plateau.
    // The slope is the median decrement over the interior of the ramp.
    std::vector<double> decrements;
    for (std::size_t k = plateau_end + 1; k + 1 < first_zero; ++k) {
        const double d = estimate.dbus[k] - estimate.dbus[k + 1];
        if (d > 0.0) decrements.push_back(d);
    }
    if (decrements.empty()) return estimate;
    std::nth_element(decrements.begin(),
                     decrements.begin() +
                         static_cast<std::ptrdiff_t>(decrements.size() / 2),
                     decrements.end());
    const double slope = decrements[decrements.size() / 2];
    RRB_ENSURE(slope > 0.0);
    estimate.ubd = static_cast<Cycle>(
        std::llround(plateau / slope *
                     static_cast<double>(options.nop_latency)));
    estimate.found = estimate.ubd > 0;
    return estimate;
}

CrossCheckedEstimate estimate_ubd_cross_checked(
    const MachineConfig& config, const UbdEstimatorOptions& options) {
    CrossCheckedEstimate out;
    out.load_path = estimate_ubd(config, options);
    out.store_path = estimate_ubd_store_span(config, options);
    out.agree = out.load_path.found && out.store_path.found &&
                out.load_path.ubd == out.store_path.ubd;
    if (out.agree) out.ubd = out.load_path.ubd;
    return out;
}

}  // namespace rrb
