// The paper's closed-form contention model for saturated round-robin buses.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/types.h"

namespace rrb {

/// Equation 1: the upper-bound delay of one bus request — the requester
/// has the lowest round-robin priority and every other requester has a
/// pending request that occupies the bus for lbus cycles.
///   ubd = (Nc - 1) * lbus
[[nodiscard]] Cycle ubd_eq1(CoreId num_cores, Cycle lbus);

/// Equation 2: under the synchrony effect (all contenders saturating), the
/// contention delay of a request whose injection time since the previous
/// request's completion is `delta`:
///   gamma(0)     = ubd
///   gamma(delta) = (ubd - (delta mod ubd)) mod ubd   for delta > 0
[[nodiscard]] Cycle gamma_eq2(Cycle delta, Cycle ubd);

/// Predicted per-request contention for the rsk-nop sweep (Figure 4):
/// entry k is gamma(delta0 + k * delta_nop) for k in [0, k_max].
/// delta0 is the architecture's intrinsic injection time (delta_rsk) and
/// delta_nop the latency added per nop.
[[nodiscard]] std::vector<double> sawtooth_model(Cycle ubd, Cycle delta0,
                                                 Cycle delta_nop,
                                                 std::uint32_t k_max);

/// The saw-tooth's peak positions in k (Section 4.1): gamma is maximal
/// (ubd - 1 when delta0 > 0) exactly when delta0 + k*delta_nop == 1
/// (mod ubd). Returns all peak k in [0, k_max].
[[nodiscard]] std::vector<std::uint32_t> sawtooth_peaks(Cycle ubd,
                                                        Cycle delta0,
                                                        Cycle delta_nop,
                                                        std::uint32_t k_max);

}  // namespace rrb
