#include "core/campaign.h"

#include "core/experiment.h"
#include "core/scenario.h"
#include "core/session.h"
#include "engine/machine_lease.h"
#include "engine/seed_sequence.h"
#include "machine/machine.h"
#include "obs/telemetry.h"
#include "replay/script_cache.h"
#include "sim/contract.h"
#include "sim/fnv.h"
#include "sim/rng.h"

namespace rrb {

namespace detail {

std::uint64_t campaign_fingerprint(const Program& scua,
                                   const std::vector<Program>& contenders,
                                   const HwmCampaignOptions& options) {
    Fnv1a h;
    h.u64(fingerprint(scua));
    h.u64(contenders.size());
    for (const Program& contender : contenders) {
        h.u64(fingerprint(contender));
    }
    // The cycle cap re-scopes contender iteration counts at load time,
    // so it is part of what "the same programs" means. Seed and start
    // delays are per-run inputs and deliberately excluded.
    h.u64(options.max_cycles_per_run);
    const std::uint64_t value = h.value();
    return value == 0 ? 1 : value;  // 0 is the "nothing installed" tag
}

Cycle execute_campaign_run(Machine& machine, std::uint64_t& loaded_campaign,
                           const Program& scua,
                           const std::vector<Program>& contenders,
                           const HwmCampaignOptions& options,
                           std::uint64_t run_index,
                           replay::ScriptCache* scripts,
                           std::uint64_t campaign) {
    // Per-run seed derivation (not one RNG shared across runs): run i's
    // offsets depend only on (options.seed, i), never on which thread or
    // in which order the run executes.
    const engine::SeedSequence seeds(options.seed);
    Pcg32 rng(seeds.seed_for(run_index), run_index);

    if (campaign == 0) {
        campaign = campaign_fingerprint(scua, contenders, options);
    }
    const bool reuse_programs = loaded_campaign == campaign;

    const MachineConfig& config = machine.config();
    if (reuse_programs) {
        // The machine already hosts exactly these programs: restore
        // power-on hardware state in place and restart the cores with
        // this run's offsets — no Program copies, no allocation.
        machine.reset_keep_programs();
        machine.restart_program(0, 0);
    } else {
        machine.reset();
        machine.load_program(0, scua);
    }
    std::size_t next = 0;
    for (CoreId c = 1; c < config.num_cores; ++c) {
        const Cycle delay =
            options.max_start_delay == 0
                ? 0
                : rng.next_below(static_cast<std::uint32_t>(
                      options.max_start_delay + 1));
        if (reuse_programs) {
            machine.restart_program(c, delay);
        } else {
            Program contender = contenders[next % contenders.size()];
            contender.iterations = options.max_cycles_per_run;
            machine.load_program(c, std::move(contender), delay);
        }
        ++next;
    }
    // Execution mode. Scripts attach before the warms so a replaying
    // core's redundant per-run IL1 warm is skipped; warming after the
    // loads instead of interleaved is behavior-preserving (each warm
    // touches only the core's own L1 and its private L2 partition).
    if (scripts != nullptr) {
        if (scripts->campaign != campaign) {
            replay::prepare_scripts(*scripts, machine, campaign);
        }
        for (CoreId c = 0; c < config.num_cores; ++c) {
            machine.attach_replay(c, scripts->per_core[c]);
        }
        obs::count(obs::kReplayRuns);
    } else {
        for (CoreId c = 0; c < config.num_cores; ++c) {
            machine.attach_replay(c, nullptr);
        }
    }
    for (CoreId c = 0; c < config.num_cores; ++c) {
        machine.warm_static_footprint(c);
    }
    loaded_campaign = campaign;
    const Cycle finish = machine.run_core(0, options.max_cycles_per_run);
    RRB_ENSURE(finish != kNoCycle);
    // Out-of-band telemetry: the machine's skip statistics were reset
    // with the run, so they are exactly this run's. Counting here (once
    // per run, after the fact) keeps every hook off the cycle loop.
    obs::count(obs::kRunsCompleted);
    obs::count(obs::kCyclesSimulated, finish);
    obs::count(obs::kEventsSkipped, machine.events_skipped());
    obs::count(obs::kCyclesSkipped, machine.cycles_skipped());
    return finish;
}

Cycle hwm_campaign_run(const MachineConfig& config, const Program& scua,
                       const std::vector<Program>& contenders,
                       const HwmCampaignOptions& options,
                       std::uint64_t run_index, std::uint64_t campaign) {
    engine::MachineLease lease(config);
    return execute_campaign_run(lease.machine(), lease.campaign(), scua,
                                contenders, options, run_index,
                                &lease.scripts(), campaign);
}

Measurement hwm_campaign_measure(const MachineConfig& config,
                                 const Program& scua,
                                 const std::vector<Program>& contenders,
                                 const HwmCampaignOptions& options,
                                 std::uint64_t run_index,
                                 std::uint64_t campaign) {
    engine::MachineLease lease(config);
    const Cycle finish =
        execute_campaign_run(lease.machine(), lease.campaign(), scua,
                             contenders, options, run_index,
                             &lease.scripts(), campaign);
    return snapshot_measurement(lease.machine(), 0, finish,
                                /*deadline_reached=*/false);
}

Cycle hwm_campaign_attribute(const MachineConfig& config,
                             const Program& scua,
                             const std::vector<Program>& contenders,
                             const HwmCampaignOptions& options,
                             std::uint64_t run_index,
                             AttributionAccumulator& acc,
                             std::uint64_t campaign) {
    engine::MachineLease lease(config);
    Machine& machine = lease.machine();
    machine.arm_attribution();
    // Leased machines outlive this run — never leave one armed, even
    // when the run throws (deadline ENSURE).
    struct Disarm {
        Machine& machine;
        ~Disarm() { machine.disarm_attribution(); }
    } disarm{machine};
    const Cycle finish = execute_campaign_run(
        machine, lease.campaign(), scua, contenders, options, run_index,
        /*scripts=*/nullptr, campaign);
    machine.finalize_attribution();
    acc.add(run_index, machine.attribution());
    return finish;
}

}  // namespace detail


HwmCampaignResult run_hwm_campaign(const MachineConfig& config,
                                   const Program& scua,
                                   const std::vector<Program>& contenders,
                                   const HwmCampaignOptions& options) {
    // Thin wrapper over the Scenario/Session layer. One worker keeps
    // the historical serial semantics — and by the engine's determinism
    // contract the numbers are bit-identical at any other width too.
    Session session;
    return session.jobs(1).hwm(Scenario::on(config)
                                   .scua(scua)
                                   .contenders(contenders)
                                   .protocol(options));
}

}  // namespace rrb
