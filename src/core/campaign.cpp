#include "core/campaign.h"

#include "core/experiment.h"
#include "core/scenario.h"
#include "core/session.h"
#include "engine/seed_sequence.h"
#include "machine/machine.h"
#include "sim/contract.h"
#include "sim/rng.h"

namespace rrb {

namespace {

/// Loads one campaign run's programs into `machine` and runs it to the
/// scua's finish. The single setup shared by the Cycle-only and the
/// full-Measurement campaign paths — which is what keeps their observed
/// execution times bit-identical.
Cycle execute_campaign_run(Machine& machine, const Program& scua,
                           const std::vector<Program>& contenders,
                           const HwmCampaignOptions& options,
                           std::uint64_t run_index) {
    // Per-run seed derivation (not one RNG shared across runs): run i's
    // offsets depend only on (options.seed, i), never on which thread or
    // in which order the run executes.
    const engine::SeedSequence seeds(options.seed);
    Pcg32 rng(seeds.seed_for(run_index), run_index);

    const MachineConfig& config = machine.config();
    machine.load_program(0, scua);
    machine.warm_static_footprint(0);
    std::size_t next = 0;
    for (CoreId c = 1; c < config.num_cores; ++c) {
        Program contender = contenders[next % contenders.size()];
        ++next;
        contender.iterations = options.max_cycles_per_run;
        const Cycle delay =
            options.max_start_delay == 0
                ? 0
                : rng.next_below(static_cast<std::uint32_t>(
                      options.max_start_delay + 1));
        machine.load_program(c, contender, delay);
        machine.warm_static_footprint(c);
    }
    const RunResult r = machine.run_until_core(0, options.max_cycles_per_run);
    RRB_ENSURE(!r.deadline_reached);
    return r.finish_cycle[0];
}

}  // namespace

namespace detail {

Cycle hwm_campaign_run(const MachineConfig& config, const Program& scua,
                       const std::vector<Program>& contenders,
                       const HwmCampaignOptions& options,
                       std::uint64_t run_index) {
    Machine machine(config);
    return execute_campaign_run(machine, scua, contenders, options,
                                run_index);
}

Measurement hwm_campaign_measure(const MachineConfig& config,
                                 const Program& scua,
                                 const std::vector<Program>& contenders,
                                 const HwmCampaignOptions& options,
                                 std::uint64_t run_index) {
    Machine machine(config);
    const Cycle finish = execute_campaign_run(machine, scua, contenders,
                                              options, run_index);
    return snapshot_measurement(machine, 0, finish,
                                /*deadline_reached=*/false);
}

}  // namespace detail


HwmCampaignResult run_hwm_campaign(const MachineConfig& config,
                                   const Program& scua,
                                   const std::vector<Program>& contenders,
                                   const HwmCampaignOptions& options) {
    // Thin wrapper over the Scenario/Session layer. One worker keeps
    // the historical serial semantics — and by the engine's determinism
    // contract the numbers are bit-identical at any other width too.
    Session session;
    return session.jobs(1).hwm(Scenario::on(config)
                                   .scua(scua)
                                   .contenders(contenders)
                                   .protocol(options));
}

}  // namespace rrb
