#include "core/calibrate.h"

#include <algorithm>

#include "core/experiment.h"
#include "kernels/rsk.h"
#include "sim/contract.h"

namespace rrb {

NopCalibration calibrate_delta_nop(const MachineConfig& config,
                                   std::size_t body_nops,
                                   std::uint64_t iterations,
                                   std::uint32_t nop_latency) {
    RRB_REQUIRE(body_nops >= 1, "need at least one nop");
    RRB_REQUIRE(iterations >= 1, "need at least one iteration");

    // "The loop body is made as big as possible without causing
    // instruction cache misses."
    const std::uint64_t il1_capacity_instrs =
        config.core.il1_geometry.size_bytes / Program::kInstrBytes;
    const std::size_t body =
        std::min<std::size_t>(body_nops, il1_capacity_instrs / 2);

    const Program kernel = make_nop_kernel(body, iterations, nop_latency);
    const Measurement m = run_isolation(config, kernel);
    RRB_ENSURE(!m.deadline_reached);

    NopCalibration cal;
    cal.nops_executed = static_cast<std::uint64_t>(body) * iterations;
    cal.exec_time = m.exec_time;
    cal.delta_nop = static_cast<double>(m.exec_time) /
                    static_cast<double>(cal.nops_executed);
    return cal;
}

}  // namespace rrb
