// Using ubdm (Section 4.3): composing an execution time bound (ETB) for
// measurement-based timing analysis by padding the isolated execution time
// with nr * ubdm — one worst-case contention delay per bus request.
#pragma once

#include <cstdint>

#include "core/experiment.h"
#include "isa/program.h"
#include "machine/config.h"

namespace rrb {

struct EtbResult {
    Cycle et_isolation = 0;   ///< measured in isolation
    std::uint64_t nr = 0;     ///< measured bus requests (PMC upper bound)
    Cycle ubdm = 0;           ///< the contention bound used
    Cycle pad = 0;            ///< nr * ubdm
    Cycle etb = 0;            ///< et_isolation + pad

    /// The observed worst execution time under the validation contention
    /// scenario, and whether the ETB actually bounded it.
    Cycle observed_worst = 0;
    [[nodiscard]] bool bounded() const noexcept {
        return observed_worst <= etb;
    }
    /// Pessimism: etb / observed_worst (>= 1 when bounded).
    [[nodiscard]] double pessimism() const noexcept {
        return observed_worst == 0 ? 0.0
                                   : static_cast<double>(etb) /
                                         static_cast<double>(observed_worst);
    }
};

/// Derives the ETB for `scua` using `ubdm`, then validates it against the
/// scua's execution time when run against Nc-1 load-rsk contenders (the
/// harshest contention the platform offers).
[[nodiscard]] EtbResult compute_and_validate_etb(const MachineConfig& config,
                                                 const Program& scua,
                                                 Cycle ubdm);

}  // namespace rrb
