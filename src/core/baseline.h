// The state-of-practice baselines the paper argues against (Section 1):
// deriving ubdm by running a scua (or an rsk) against rsk contenders and
// reading either the mean per-request slowdown det/nr or the largest
// observed per-request delay. Both systematically under-estimate ubd
// because of the synchrony effect — reproduced in Figure 6(b) where they
// yield 26 (`ref`) / 23 (`var`) against a true ubd of 27.
#pragma once

#include <cstdint>

#include "core/experiment.h"
#include "isa/program.h"
#include "machine/config.h"

namespace rrb {

struct NaiveUbdm {
    /// ubdm = det / nr: slowdown divided by the scua's bus requests — the
    /// measurement recipe of [15, 11, 5] described in Section 1.
    double ubdm_mean = 0.0;
    /// max per-request contention delay actually observed (white-box; what
    /// Figure 6(b) plots).
    std::uint64_t ubdm_max_gamma = 0;
    Cycle det = 0;                ///< execution-time increase
    std::uint64_t nr = 0;         ///< scua bus requests
    SlowdownResult runs;
};

/// Baseline 1: an arbitrary scua against Nc-1 rsk contenders.
[[nodiscard]] NaiveUbdm naive_ubdm_scua_vs_rsk(const MachineConfig& config,
                                               const Program& scua,
                                               OpKind contender_access =
                                                   OpKind::kLoad);

/// Baseline 2: an rsk as scua against Nc-1 copies of the same rsk
/// (Section 3.2).
[[nodiscard]] NaiveUbdm naive_ubdm_rsk_vs_rsk(const MachineConfig& config,
                                              OpKind access = OpKind::kLoad,
                                              std::uint64_t iterations = 200);

}  // namespace rrb
