// Scenario: a declarative, composable description of *what to run*.
//
// The paper's methodology is one protocol — a software component under
// analysis (scua) plus contenders on a randomized machine, observed
// under a measurement discipline — yet the low-level API exposes it as
// free functions each taking (config, scua, contenders, options...).
// A Scenario names that protocol once, fluently:
//
//   const Scenario s = Scenario::on(MachineConfig::ngmp_ref())
//                          .scua(make_autobench(Autobench::kCacheb,
//                                               0x0100'0000, 40))
//                          .rsk_contenders(OpKind::kLoad)
//                          .runs(100'000)
//                          .seed(7);
//
// and a Session (core/session.h) decides *how* to execute it: jobs,
// progress, streaming vs. materializing, single campaign vs. config
// sweep. The split is what lets one scenario drive hwm / pwcet /
// whitebox / sweep entry points without re-spelling the inputs.
//
// Scenarios are value types: cheap to copy, re-target (`with_config`)
// and mutate per grid point without aliasing surprises.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "core/campaign.h"
#include "isa/program.h"
#include "machine/config.h"
#include "sim/types.h"

namespace rrb {

class Scenario {
public:
    /// Starts a scenario on the given platform.
    [[nodiscard]] static Scenario on(MachineConfig config);

    // ------------------------------------------------ fluent builders

    /// The software component under analysis (runs on core 0).
    Scenario& scua(Program program);

    /// Explicit contender programs, cycled over the non-scua cores.
    /// Overrides any previously chosen contender policy.
    Scenario& contenders(std::vector<Program> programs);

    /// Contender policy: Nc-1 resource-stressing kernels of the given
    /// access type, derived from the scenario's *current* config — and
    /// re-derived whenever the scenario is re-targeted (`with_config`),
    /// which is what a config sweep needs. This is the default policy.
    Scenario& rsk_contenders(OpKind access);

    /// Campaign runs (randomized-alignment contention executions).
    Scenario& runs(std::size_t n);

    /// Root seed; run i draws offsets from a pure function of (seed, i).
    Scenario& seed(std::uint64_t s);

    /// Contender release offsets are uniform in [0, d].
    Scenario& max_start_delay(Cycle d);

    /// Per-run simulation cycle cap.
    Scenario& max_cycles(Cycle c);

    /// Replaces the whole run protocol at once — the exact-roundtrip
    /// path the legacy free-function wrappers use.
    Scenario& protocol(HwmCampaignOptions options);

    // --------------------------------------------------------- views

    /// A copy re-targeted at another platform. Policy contenders (rsk)
    /// re-derive against the new config; explicit contender lists are
    /// kept verbatim.
    [[nodiscard]] Scenario with_config(MachineConfig config) const;

    [[nodiscard]] const MachineConfig& config() const noexcept {
        return config_;
    }
    [[nodiscard]] bool has_scua() const noexcept {
        return scua_.has_value();
    }
    /// Precondition: has_scua().
    [[nodiscard]] const Program& scua_program() const;
    /// Resolves the contender policy against the current config.
    [[nodiscard]] std::vector<Program> contender_programs() const;
    [[nodiscard]] const HwmCampaignOptions& run_protocol() const noexcept {
        return protocol_;
    }

    /// Checks the scenario is executable: scua set, at least one run,
    /// at least one contender, and a valid machine config. Every
    /// Session entry point calls this first.
    void validate() const;

    /// Content hash of everything that determines the campaign's
    /// numbers: machine config, scua, resolved contenders, and the run
    /// protocol. Checkpoints (stats/checkpoint.h) stamp it so a merge
    /// or resume against a different scenario — a changed config field,
    /// another seed, a re-built contender — is rejected loudly instead
    /// of silently blending two campaigns. Program names are cosmetic
    /// and excluded; every timing-relevant field participates.
    [[nodiscard]] std::uint64_t fingerprint() const;

private:
    explicit Scenario(MachineConfig config);

    MachineConfig config_;
    std::optional<Program> scua_;
    /// Engaged = explicit contender list; disengaged = rsk policy.
    std::optional<std::vector<Program>> explicit_contenders_;
    OpKind rsk_access_ = OpKind::kLoad;
    HwmCampaignOptions protocol_;
};

}  // namespace rrb
