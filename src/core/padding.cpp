#include "core/padding.h"

#include "core/estimator.h"
#include "sim/contract.h"

namespace rrb {

EtbResult compute_and_validate_etb(const MachineConfig& config,
                                   const Program& scua, Cycle ubdm) {
    RRB_REQUIRE(ubdm >= 1, "ubdm must be positive");

    const SlowdownResult runs = run_slowdown(
        config, scua, make_rsk_contenders(config, OpKind::kLoad));
    RRB_ENSURE(!runs.isolation.deadline_reached &&
               !runs.contention.deadline_reached);

    EtbResult out;
    out.et_isolation = runs.isolation.exec_time;
    // nr from the isolation run is the request count the pad multiplies;
    // contention cannot add requests (same program, same caches).
    out.nr = runs.isolation.bus_requests;
    out.ubdm = ubdm;
    out.pad = out.nr * ubdm;
    out.etb = out.et_isolation + out.pad;
    out.observed_worst = runs.contention.exec_time;
    return out;
}

}  // namespace rrb
