#include "core/experiment.h"

#include "engine/campaign_engine.h"
#include "engine/machine_lease.h"
#include "machine/machine.h"
#include "sim/contract.h"
#include "sim/fnv.h"

namespace rrb {

namespace {

/// Program-set identity of an isolation run, for MachineLease's
/// restart-in-place fast path: the scua alone on its core under this
/// cycle cap. The leading tag keeps it out of campaign_fingerprint's
/// value space (a contention campaign installs contenders too, so the
/// two must never compare equal for one machine). Never zero.
std::uint64_t isolation_fingerprint(const Program& scua, CoreId scua_core,
                                    Cycle max_cycles) {
    Fnv1a h;
    h.u64(0x1507'1e5eULL);  // isolation tag
    h.u64(fingerprint(scua));
    h.u64(scua_core);
    h.u64(max_cycles);
    const std::uint64_t value = h.value();
    return value == 0 ? 1 : value;
}

}  // namespace

namespace detail {

Measurement snapshot_measurement(Machine& machine, CoreId scua_core,
                                 Cycle exec_time, bool deadline_reached) {
    Measurement m;
    m.exec_time = exec_time;
    m.deadline_reached = deadline_reached;

    const BusCoreCounters& counters = machine.bus().counters(scua_core);
    m.bus_requests = counters.requests;
    const Cycle elapsed = machine.now() == 0 ? 1 : machine.now();
    m.bus_utilization = machine.bus().utilization(elapsed);
    m.scua_bus_share = static_cast<double>(counters.busy_cycles) /
                       static_cast<double>(elapsed);
    m.gamma = counters.gamma;
    m.max_gamma = counters.max_wait;
    m.ready_contenders = counters.ready_contenders;
    m.injection_delta = machine.core(scua_core).stats().load_injection_delta;
    return m;
}

}  // namespace detail

Measurement run_isolation(const MachineConfig& config, const Program& scua,
                          CoreId scua_core, Cycle max_cycles) {
    RRB_REQUIRE(scua_core < config.num_cores, "scua core out of range");
    // Reuse this worker's cached machine instead of rebuilding one:
    // Machine::reset() is bit-identical to fresh construction (the
    // test_hotpath differential contract), so a leased isolation
    // baseline can never differ from the historical fresh-machine one.
    engine::MachineLease lease(config);
    Machine& machine = lease.machine();
    const std::uint64_t campaign =
        isolation_fingerprint(scua, scua_core, max_cycles);
    if (lease.campaign() == campaign) {
        machine.reset_keep_programs();
        machine.restart_program(scua_core, 0);
    } else {
        machine.reset();
        machine.load_program(scua_core, scua);
        lease.campaign() = campaign;
    }
    machine.warm_static_footprint(scua_core);
    const RunResult r = machine.run_until_core(scua_core, max_cycles);
    const Cycle et = r.deadline_reached ? r.cycles
                                        : r.finish_cycle[scua_core];
    return detail::snapshot_measurement(machine, scua_core, et,
                                        r.deadline_reached);
}

Measurement run_contention(const MachineConfig& config, const Program& scua,
                           const std::vector<Program>& contenders,
                           CoreId scua_core, Cycle max_cycles) {
    RRB_REQUIRE(scua_core < config.num_cores, "scua core out of range");
    RRB_REQUIRE(!contenders.empty(), "need at least one contender");

    Machine machine(config);
    machine.load_program(scua_core, scua);
    std::size_t next = 0;
    for (CoreId c = 0; c < config.num_cores; ++c) {
        if (c == scua_core) continue;
        Program contender = contenders[next % contenders.size()];
        ++next;
        // The contender must outlive the scua: give it an effectively
        // unbounded iteration count (bounded only by max_cycles).
        contender.iterations = max_cycles;  // >= 1 cycle per iteration
        machine.load_program(c, contender);
        machine.warm_static_footprint(c);
    }
    machine.warm_static_footprint(scua_core);

    const RunResult r = machine.run_until_core(scua_core, max_cycles);
    const Cycle et = r.deadline_reached ? r.cycles
                                        : r.finish_cycle[scua_core];
    return detail::snapshot_measurement(machine, scua_core, et,
                                        r.deadline_reached);
}

SlowdownResult run_slowdown(const MachineConfig& config, const Program& scua,
                            const std::vector<Program>& contenders,
                            CoreId scua_core, Cycle max_cycles) {
    SlowdownResult result;
    result.isolation = run_isolation(config, scua, scua_core, max_cycles);
    result.contention =
        run_contention(config, scua, contenders, scua_core, max_cycles);
    RRB_ENSURE(result.contention.exec_time >= result.isolation.exec_time);
    return result;
}

std::vector<SlowdownResult> run_slowdown_grid(
    const MachineConfig& config, const std::vector<Program>& scuas,
    const std::vector<Program>& contenders, std::size_t jobs,
    Cycle max_cycles) {
    engine::EngineOptions engine;
    engine.jobs = jobs;
    return engine::run_grid(
        scuas,
        [&](const Program& scua) {
            return run_slowdown(config, scua, contenders, 0, max_cycles);
        },
        engine);
}

}  // namespace rrb
