// Experiment harness: the measurement discipline of Sections 2-4.
//
// One experiment = a software component under analysis (scua) on one core,
// contender programs on the remaining cores, run until the scua finishes
// ("rsk must not complete execution before the scua" — contender programs
// are re-scoped to effectively infinite iterations). Results expose both
// the black-box quantities a COTS user can read (execution time, request
// counts, bus-utilization PMCs — NGMP counters 0x17/0x18) and white-box
// introspection (per-request contention delays) used only to *validate*
// the methodology, never inside it.
//
// Low-level layer: these free functions are the primitives underneath
// the Scenario/Session API (core/scenario.h, core/session.h). Prefer
// Session::isolation / Session::contention / Session::slowdown in new
// code; the functions here stay for single-run composition.
#pragma once

#include <cstdint>
#include <vector>

#include "isa/program.h"
#include "machine/config.h"
#include "stats/histogram.h"

namespace rrb {

struct Measurement {
    // --- black-box: observable on real COTS hardware ---
    Cycle exec_time = 0;            ///< scua cycles from reset to finish
    std::uint64_t bus_requests = 0; ///< scua's nr (PMC)
    double bus_utilization = 0.0;   ///< whole-bus occupancy (PMC 0x18-like)
    double scua_bus_share = 0.0;    ///< scua's own occupancy (PMC 0x17-like)

    // --- white-box: simulator introspection for validation figures ---
    Histogram gamma;                ///< per-request contention delay (scua)
    std::uint64_t max_gamma = 0;
    Histogram ready_contenders;     ///< Figure 6(a) metric (scua)
    Histogram injection_delta;      ///< delta between scua load requests
    bool deadline_reached = false;  ///< run hit the cycle cap (invalid)
};

/// Runs `scua` alone on core `scua_core` of a machine built from `config`.
[[nodiscard]] Measurement run_isolation(const MachineConfig& config,
                                        const Program& scua,
                                        CoreId scua_core = 0,
                                        Cycle max_cycles = 1'000'000'000);

/// Runs `scua` against contenders (cycled over the remaining cores if
/// fewer than Nc-1 are given). Contender iteration counts are raised so
/// they cannot finish before the scua.
[[nodiscard]] Measurement run_contention(const MachineConfig& config,
                                         const Program& scua,
                                         const std::vector<Program>& contenders,
                                         CoreId scua_core = 0,
                                         Cycle max_cycles = 1'000'000'000);

/// det(t, k) of Section 1: execution-time increase versus isolation.
struct SlowdownResult {
    Measurement isolation;
    Measurement contention;
    [[nodiscard]] Cycle slowdown() const noexcept {
        return contention.exec_time - isolation.exec_time;
    }
};

[[nodiscard]] SlowdownResult run_slowdown(const MachineConfig& config,
                                          const Program& scua,
                                          const std::vector<Program>& contenders,
                                          CoreId scua_core = 0,
                                          Cycle max_cycles = 1'000'000'000);

/// Grid version of run_slowdown: evaluates every scua concurrently on the
/// campaign engine (`jobs` workers; 0 = hardware concurrency) and returns
/// results in `scuas` order. Each grid point builds its own machines, so
/// results are identical to calling run_slowdown in a loop.
[[nodiscard]] std::vector<SlowdownResult> run_slowdown_grid(
    const MachineConfig& config, const std::vector<Program>& scuas,
    const std::vector<Program>& contenders, std::size_t jobs = 0,
    Cycle max_cycles = 1'000'000'000);

class Machine;

namespace detail {

/// Reads a finished machine's counters into a Measurement — the one
/// place the black-box PMC view and the white-box histograms are
/// snapshotted, shared by the experiment entry points and the campaign
/// measure path so both report identical statistics.
[[nodiscard]] Measurement snapshot_measurement(Machine& machine,
                                               CoreId scua_core,
                                               Cycle exec_time,
                                               bool deadline_reached);

}  // namespace detail

}  // namespace rrb
