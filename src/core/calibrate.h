// delta_nop calibration (Section 4.2).
//
// The saw-tooth is sampled at injection-time steps of delta_nop, so the
// period in *k* must be converted to cycles. The paper's recipe: run a
// kernel whose loop body is nothing but nop instructions (sized to stay
// inside the IL1) and divide its isolated execution time by the number of
// nops executed.
#pragma once

#include <cstdint>

#include "machine/config.h"
#include "sim/types.h"

namespace rrb {

struct NopCalibration {
    double delta_nop = 0.0;          ///< measured cycles per nop
    std::uint64_t nops_executed = 0;
    Cycle exec_time = 0;
    /// delta_nop rounded to the nearest integer cycle; the residual error
    /// is the loop-control dilution (< 2% by construction).
    [[nodiscard]] Cycle rounded() const noexcept {
        return static_cast<Cycle>(delta_nop + 0.5);
    }
    /// |delta_nop - rounded| / rounded: sanity signal for the confidence
    /// report.
    [[nodiscard]] double residual() const noexcept {
        const double r = static_cast<double>(rounded());
        return r == 0.0 ? 1.0 : (delta_nop > r ? delta_nop - r : r - delta_nop) / r;
    }
};

/// Measures delta_nop on the target machine configuration.
/// `body_nops` is clamped to what fits the IL1.
[[nodiscard]] NopCalibration calibrate_delta_nop(const MachineConfig& config,
                                                 std::size_t body_nops = 2048,
                                                 std::uint64_t iterations = 64,
                                                 std::uint32_t nop_latency = 1);

}  // namespace rrb
