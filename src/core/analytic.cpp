#include "core/analytic.h"

#include "sim/contract.h"

namespace rrb {

Cycle ubd_eq1(CoreId num_cores, Cycle lbus) {
    RRB_REQUIRE(num_cores >= 1, "need at least one core");
    RRB_REQUIRE(lbus >= 1, "bus occupancy must be >= 1");
    return (num_cores - 1) * lbus;
}

Cycle gamma_eq2(Cycle delta, Cycle ubd) {
    RRB_REQUIRE(ubd >= 1, "ubd must be >= 1");
    if (delta == 0) return ubd;
    return (ubd - (delta % ubd)) % ubd;
}

std::vector<double> sawtooth_model(Cycle ubd, Cycle delta0, Cycle delta_nop,
                                   std::uint32_t k_max) {
    RRB_REQUIRE(delta_nop >= 1, "delta_nop must be >= 1");
    std::vector<double> out;
    out.reserve(k_max + 1);
    for (std::uint32_t k = 0; k <= k_max; ++k) {
        out.push_back(static_cast<double>(
            gamma_eq2(delta0 + static_cast<Cycle>(k) * delta_nop, ubd)));
    }
    return out;
}

std::vector<std::uint32_t> sawtooth_peaks(Cycle ubd, Cycle delta0,
                                          Cycle delta_nop,
                                          std::uint32_t k_max) {
    const std::vector<double> model =
        sawtooth_model(ubd, delta0, delta_nop, k_max);
    std::vector<std::uint32_t> peaks;
    double best = 0.0;
    for (const double g : model) best = std::max(best, g);
    for (std::uint32_t k = 0; k <= k_max; ++k) {
        if (model[k] == best) peaks.push_back(k);
    }
    return peaks;
}

}  // namespace rrb
