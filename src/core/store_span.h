// Store-buffer-based ubd estimation — the second, independent measurement
// path implied by Section 5.3 / Figure 7(b).
//
// Store-buffer drains inject with delta = 0, so under saturation every
// drain suffers the full ubd and a drain slot frees every Nc*lbus cycles.
// The slowdown of rsk-nop(store, k) versus isolation is then
//
//     dbus(k)/store = max(k+1, Nc*lbus) - max(k+1, lbus)
//
// i.e. a plateau of height ubd while k+1 <= lbus, a unit-slope descending
// ramp for lbus < k+1 < Nc*lbus, and exactly zero afterwards. The length
// of the ramp — first-zero minus first-below-plateau plus one — equals
// ubd. Because this path reaches the true delta = 0 alignment (which the
// load path never can, Section 3.2), it cross-checks the load saw-tooth
// estimate: two structurally different measurements agreeing on one
// number is the "increased confidence" the paper's title asks for.
#pragma once

#include <cstdint>
#include <vector>

#include "core/estimator.h"
#include "machine/config.h"

namespace rrb {

struct StoreSpanEstimate {
    bool found = false;
    Cycle ubd = 0;
    std::size_t plateau_end = 0;  ///< last k on the plateau
    std::size_t first_zero = 0;   ///< first k with (sustained) zero slowdown
    std::vector<double> dbus;     ///< the store sweep, k = 0..k_max
};

/// Runs the store sweep and extracts ubd from the descending span.
/// `options.access` is ignored (forced to stores).
[[nodiscard]] StoreSpanEstimate estimate_ubd_store_span(
    const MachineConfig& config, const UbdEstimatorOptions& options = {});

/// Runs both the load saw-tooth path and the store span path and reports
/// agreement — the full cross-checked methodology.
struct CrossCheckedEstimate {
    UbdEstimate load_path;
    StoreSpanEstimate store_path;
    bool agree = false;        ///< both found and equal
    Cycle ubd = 0;             ///< the agreed value (when agree)
};

[[nodiscard]] CrossCheckedEstimate estimate_ubd_cross_checked(
    const MachineConfig& config, const UbdEstimatorOptions& options = {});

}  // namespace rrb
