// Umbrella header: the public API of the library.
//
//   #include "core/rrb.h"
//
//   rrb::MachineConfig cfg = rrb::MachineConfig::ngmp_ref();
//   rrb::UbdEstimate e = rrb::estimate_ubd(cfg);
//   // e.ubd == cfg.ubd_analytic() — derived with no bus timing knowledge.
#pragma once

#include "bus/arbiter.h"
#include "bus/bus.h"
#include "cache/cache.h"
#include "cache/partitioned_cache.h"
#include "core/analytic.h"
#include "core/baseline.h"
#include "core/calibrate.h"
#include "core/campaign.h"
#include "core/estimator.h"
#include "core/experiment.h"
#include "core/padding.h"
#include "core/store_span.h"
#include "cpu/core.h"
#include "dram/dram.h"
#include "engine/campaign_engine.h"
#include "engine/progress.h"
#include "engine/seed_sequence.h"
#include "engine/thread_pool.h"
#include "isa/program.h"
#include "kernels/autobench.h"
#include "kernels/rsk.h"
#include "machine/config.h"
#include "machine/machine.h"
#include "machine/pmc.h"
#include "rta/response_time.h"
#include "rta/task.h"
#include "sim/rng.h"
#include "sim/trace.h"
#include "sim/types.h"
#include "stats/ascii_chart.h"
#include "stats/csv.h"
#include "stats/evt.h"
#include "stats/histogram.h"
#include "stats/periodicity.h"
#include "stats/series.h"
