#include "core/scenario.h"

#include <utility>

#include "core/estimator.h"
#include "sim/contract.h"
#include "sim/fnv.h"

namespace rrb {

Scenario::Scenario(MachineConfig config) : config_(std::move(config)) {}

Scenario Scenario::on(MachineConfig config) {
    return Scenario(std::move(config));
}

Scenario& Scenario::scua(Program program) {
    scua_ = std::move(program);
    return *this;
}

Scenario& Scenario::contenders(std::vector<Program> programs) {
    explicit_contenders_ = std::move(programs);
    return *this;
}

Scenario& Scenario::rsk_contenders(OpKind access) {
    explicit_contenders_.reset();
    rsk_access_ = access;
    return *this;
}

Scenario& Scenario::runs(std::size_t n) {
    protocol_.runs = n;
    return *this;
}

Scenario& Scenario::seed(std::uint64_t s) {
    protocol_.seed = s;
    return *this;
}

Scenario& Scenario::max_start_delay(Cycle d) {
    protocol_.max_start_delay = d;
    return *this;
}

Scenario& Scenario::max_cycles(Cycle c) {
    protocol_.max_cycles_per_run = c;
    return *this;
}

Scenario& Scenario::protocol(HwmCampaignOptions options) {
    protocol_ = options;
    return *this;
}

Scenario Scenario::with_config(MachineConfig config) const {
    Scenario re = *this;
    re.config_ = std::move(config);
    return re;
}

const Program& Scenario::scua_program() const {
    RRB_REQUIRE(scua_.has_value(), "scenario has no scua program");
    return *scua_;
}

std::vector<Program> Scenario::contender_programs() const {
    if (explicit_contenders_.has_value()) return *explicit_contenders_;
    return make_rsk_contenders(config_, rsk_access_);
}

std::uint64_t Scenario::fingerprint() const {
    // Content folding delegates to the shared per-object fingerprints
    // (MachineConfig::fingerprint, rrb::fingerprint(Program)) so the
    // machine-lease cache and the checkpoint identity can never drift
    // on what "the same config / program" means. `name`s are cosmetic
    // and excluded; every timing-relevant field participates.
    Fnv1a h;
    h.u64(2);  // fingerprint schema version
    h.u64(config_.fingerprint());
    h.u64(scua_.has_value() ? 1 : 0);
    if (scua_.has_value()) h.u64(rrb::fingerprint(*scua_));
    // Resolved contenders, not the policy: two scenarios that produce
    // the same programs run the same campaign, however they were built.
    const std::vector<Program> contenders = contender_programs();
    h.u64(contenders.size());
    for (const Program& contender : contenders) {
        h.u64(rrb::fingerprint(contender));
    }
    h.u64(protocol_.runs);
    h.u64(protocol_.seed);
    h.u64(protocol_.max_start_delay);
    h.u64(protocol_.max_cycles_per_run);
    return h.value();
}

void Scenario::validate() const {
    config_.validate();
    RRB_REQUIRE(scua_.has_value(), "scenario needs a scua program");
    RRB_REQUIRE(protocol_.runs >= 1, "need at least one run");
    // Emptiness is decidable without building the programs: the rsk
    // policy always yields a (single, core-cycled) contender kernel.
    RRB_REQUIRE(!explicit_contenders_.has_value() ||
                    !explicit_contenders_->empty(),
                "need at least one contender");
}

}  // namespace rrb
