#include "core/scenario.h"

#include <utility>

#include "core/estimator.h"
#include "sim/contract.h"

namespace rrb {

Scenario::Scenario(MachineConfig config) : config_(std::move(config)) {}

Scenario Scenario::on(MachineConfig config) {
    return Scenario(std::move(config));
}

Scenario& Scenario::scua(Program program) {
    scua_ = std::move(program);
    return *this;
}

Scenario& Scenario::contenders(std::vector<Program> programs) {
    explicit_contenders_ = std::move(programs);
    return *this;
}

Scenario& Scenario::rsk_contenders(OpKind access) {
    explicit_contenders_.reset();
    rsk_access_ = access;
    return *this;
}

Scenario& Scenario::runs(std::size_t n) {
    protocol_.runs = n;
    return *this;
}

Scenario& Scenario::seed(std::uint64_t s) {
    protocol_.seed = s;
    return *this;
}

Scenario& Scenario::max_start_delay(Cycle d) {
    protocol_.max_start_delay = d;
    return *this;
}

Scenario& Scenario::max_cycles(Cycle c) {
    protocol_.max_cycles_per_run = c;
    return *this;
}

Scenario& Scenario::protocol(HwmCampaignOptions options) {
    protocol_ = options;
    return *this;
}

Scenario Scenario::with_config(MachineConfig config) const {
    Scenario re = *this;
    re.config_ = std::move(config);
    return re;
}

const Program& Scenario::scua_program() const {
    RRB_REQUIRE(scua_.has_value(), "scenario has no scua program");
    return *scua_;
}

std::vector<Program> Scenario::contender_programs() const {
    if (explicit_contenders_.has_value()) return *explicit_contenders_;
    return make_rsk_contenders(config_, rsk_access_);
}

void Scenario::validate() const {
    config_.validate();
    RRB_REQUIRE(scua_.has_value(), "scenario needs a scua program");
    RRB_REQUIRE(protocol_.runs >= 1, "need at least one run");
    // Emptiness is decidable without building the programs: the rsk
    // policy always yields a (single, core-cycled) contender kernel.
    RRB_REQUIRE(!explicit_contenders_.has_value() ||
                    !explicit_contenders_->empty(),
                "need at least one contender");
}

}  // namespace rrb
