#include "core/scenario.h"

#include <utility>

#include "core/estimator.h"
#include "sim/contract.h"
#include "sim/fnv.h"

namespace rrb {

Scenario::Scenario(MachineConfig config) : config_(std::move(config)) {}

Scenario Scenario::on(MachineConfig config) {
    return Scenario(std::move(config));
}

Scenario& Scenario::scua(Program program) {
    scua_ = std::move(program);
    return *this;
}

Scenario& Scenario::contenders(std::vector<Program> programs) {
    explicit_contenders_ = std::move(programs);
    return *this;
}

Scenario& Scenario::rsk_contenders(OpKind access) {
    explicit_contenders_.reset();
    rsk_access_ = access;
    return *this;
}

Scenario& Scenario::runs(std::size_t n) {
    protocol_.runs = n;
    return *this;
}

Scenario& Scenario::seed(std::uint64_t s) {
    protocol_.seed = s;
    return *this;
}

Scenario& Scenario::max_start_delay(Cycle d) {
    protocol_.max_start_delay = d;
    return *this;
}

Scenario& Scenario::max_cycles(Cycle c) {
    protocol_.max_cycles_per_run = c;
    return *this;
}

Scenario& Scenario::protocol(HwmCampaignOptions options) {
    protocol_ = options;
    return *this;
}

Scenario Scenario::with_config(MachineConfig config) const {
    Scenario re = *this;
    re.config_ = std::move(config);
    return re;
}

const Program& Scenario::scua_program() const {
    RRB_REQUIRE(scua_.has_value(), "scenario has no scua program");
    return *scua_;
}

std::vector<Program> Scenario::contender_programs() const {
    if (explicit_contenders_.has_value()) return *explicit_contenders_;
    return make_rsk_contenders(config_, rsk_access_);
}

namespace {

/// The content hash (sim/fnv.h) folded field by field; enums hash
/// their underlying value widened to u64.
class Fingerprint {
public:
    void u64(std::uint64_t v) { hash_.u64(v); }
    template <typename E>
    void enumerant(E e) {
        u64(static_cast<std::uint64_t>(e));
    }
    [[nodiscard]] std::uint64_t value() const noexcept {
        return hash_.value();
    }

private:
    Fnv1a hash_;
};

void fold_geometry(Fingerprint& h, const CacheGeometry& g) {
    h.u64(g.size_bytes);
    h.u64(g.ways);
    h.u64(g.line_bytes);
}

void fold_config(Fingerprint& h, const MachineConfig& c) {
    h.u64(c.num_cores);
    fold_geometry(h, c.core.il1_geometry);
    fold_geometry(h, c.core.dl1_geometry);
    h.enumerant(c.core.l1_replacement);
    h.u64(c.core.dl1_latency);
    h.u64(c.core.il1_latency);
    h.u64(c.core.store_buffer_entries);
    h.u64(c.core.loads_wait_store_buffer ? 1 : 0);
    fold_geometry(h, c.l2_geometry);
    h.enumerant(c.l2_replacement);
    h.enumerant(c.l2_write_policy);
    h.enumerant(c.l2_alloc_policy);
    h.enumerant(c.arbiter);
    h.u64(c.tdma_slot_cycles);
    h.u64(c.wrr_weights.size());
    for (const std::uint32_t w : c.wrr_weights) h.u64(w);
    h.u64(c.bus_transfer_cycles);
    h.u64(c.l2_hit_cycles);
    h.u64(c.store_service_cycles);
    h.u64(c.miss_request_cycles);
    h.u64(c.fill_response_cycles);
    h.u64(c.dram.capacity_bytes);
    h.u64(c.dram.num_banks);
    h.u64(c.dram.row_bytes);
    h.u64(c.dram.access_bytes);
    h.u64(c.dram.timing.t_rcd);
    h.u64(c.dram.timing.t_cl);
    h.u64(c.dram.timing.t_rp);
    h.u64(c.dram.timing.t_burst);
    h.u64(c.dram.timing.t_overhead);
    h.enumerant(c.dram.scheduling);
    h.enumerant(c.dram.page_policy);
    h.u64(c.dram.refresh_interval);
    h.u64(c.dram.refresh_duration);
}

void fold_program(Fingerprint& h, const Program& p) {
    // p.name is cosmetic and deliberately excluded.
    h.u64(p.body.size());
    for (const Instruction& instr : p.body) {
        h.enumerant(instr.kind);
        h.u64(instr.latency);
        h.enumerant(instr.addr.kind);
        h.u64(instr.addr.base);
        h.u64(instr.addr.stride_bytes);
        h.u64(instr.addr.range);
        h.u64(instr.addr.align);
        h.u64(instr.addr.salt);
    }
    h.u64(p.iterations);
    h.u64(p.code_base);
    h.u64(p.loop_control_cycles);
}

}  // namespace

std::uint64_t Scenario::fingerprint() const {
    Fingerprint h;
    h.u64(1);  // fingerprint schema version
    fold_config(h, config_);
    h.u64(scua_.has_value() ? 1 : 0);
    if (scua_.has_value()) fold_program(h, *scua_);
    // Resolved contenders, not the policy: two scenarios that produce
    // the same programs run the same campaign, however they were built.
    const std::vector<Program> contenders = contender_programs();
    h.u64(contenders.size());
    for (const Program& contender : contenders) fold_program(h, contender);
    h.u64(protocol_.runs);
    h.u64(protocol_.seed);
    h.u64(protocol_.max_start_delay);
    h.u64(protocol_.max_cycles_per_run);
    return h.value();
}

void Scenario::validate() const {
    config_.validate();
    RRB_REQUIRE(scua_.has_value(), "scenario needs a scua program");
    RRB_REQUIRE(protocol_.runs >= 1, "need at least one run");
    // Emptiness is decidable without building the programs: the rsk
    // policy always yields a (single, core-cycled) contender kernel.
    RRB_REQUIRE(!explicit_contenders_.has_value() ||
                    !explicit_contenders_->empty(),
                "need at least one contender");
}

}  // namespace rrb
