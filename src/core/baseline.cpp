#include "core/baseline.h"

#include "core/estimator.h"
#include "kernels/rsk.h"
#include "sim/contract.h"

namespace rrb {

namespace {

NaiveUbdm evaluate(const MachineConfig& config, const Program& scua,
                   const std::vector<Program>& contenders) {
    NaiveUbdm out;
    out.runs = run_slowdown(config, scua, contenders);
    RRB_ENSURE(!out.runs.isolation.deadline_reached &&
               !out.runs.contention.deadline_reached);
    out.det = out.runs.slowdown();
    out.nr = out.runs.contention.bus_requests;
    out.ubdm_mean = out.nr == 0 ? 0.0
                                : static_cast<double>(out.det) /
                                      static_cast<double>(out.nr);
    out.ubdm_max_gamma = out.runs.contention.max_gamma;
    return out;
}

}  // namespace

NaiveUbdm naive_ubdm_scua_vs_rsk(const MachineConfig& config,
                                 const Program& scua,
                                 OpKind contender_access) {
    return evaluate(config, scua,
                    make_rsk_contenders(config, contender_access));
}

NaiveUbdm naive_ubdm_rsk_vs_rsk(const MachineConfig& config, OpKind access,
                                std::uint64_t iterations) {
    RskParams params;
    params.dl1_geometry = config.core.dl1_geometry;
    params.access = access;
    params.iterations = iterations;
    const Program scua = make_rsk(params);
    return evaluate(config, scua, make_rsk_contenders(config, access));
}

}  // namespace rrb
