// The measurement-based ubd estimator (Section 4) — the paper's
// contribution.
//
// Inputs (Section 4.3): the bus arbitration policy is round-robin, and the
// instruction types that reach the bus. *No* bus latency or slot
// information is used anywhere in this file: every quantity is derived
// from execution-time measurements of rsk-nop(t, k) against Nc-1 rsk(t)
// contenders.
//
// Procedure:
//   1. calibrate delta_nop with the all-nop kernel;
//   2. (confidence) check that Nc-1 rsk saturate the bus, using the
//      utilization PMCs;
//   3. for k = 0..k_max, measure dbus(t, k) = et_contention - et_isolation
//      of rsk-nop(t, k);
//   4. the period of the dbus saw-tooth, in k steps, times delta_nop, is
//      ubd (Equation 3) — cross-checked across four period detectors.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/calibrate.h"
#include "isa/program.h"
#include "machine/config.h"
#include "stats/periodicity.h"

namespace rrb {

struct UbdEstimatorOptions {
    /// Instruction type t of rsk-nop(t, k) and the rsk contenders.
    OpKind access = OpKind::kLoad;
    /// Sweep range for k. Must cover at least two saw-tooth periods of the
    /// (unknown) ubd; 2.5x the expected ubd is a safe default on NGMP-class
    /// parts, and the estimator reports when no period was found so the
    /// user can re-run with a larger range.
    std::uint32_t k_max = 70;
    /// Loop-body repetitions per measurement (measurement length).
    std::uint64_t rsk_iterations = 100;
    /// Unroll factor of the rsk bodies.
    std::uint32_t unroll = 32;
    /// Latency of the platform's nop instruction as built into the
    /// kernels (models a slow integer pipe; Section 4.2's
    /// "unlikely case delta_nop > 1").
    std::uint32_t nop_latency = 1;
    /// Relative tolerance for "equal dbus" in the period detectors,
    /// as a fraction of the series range (simulations are deterministic,
    /// but a real board would need slack here).
    double relative_tolerance = 0.01;
    /// Bus utilization below this in the saturation check degrades
    /// confidence (Section 4.3: Nc-1 rsk "should suffice to increase the
    /// utilization of the bus to 100%, other than handshaking time").
    /// An unsaturated bus stretches the round-robin window by the
    /// contenders' re-injection gaps and the estimate becomes a
    /// conservative over-approximation (e.g. Nc = 2 with a load rsk).
    double min_saturation_utilization = 0.95;
    Cycle max_cycles_per_run = 200'000'000;
};

struct ConfidenceReport {
    double saturation_utilization = 0.0;  ///< bus load under Nc-1 rsk + rsk
    bool saturated = false;
    NopCalibration nop;
    int detector_votes = 0;  ///< period detectors agreeing (of 4)
    std::vector<std::string> warnings;
    [[nodiscard]] bool trustworthy() const noexcept {
        return warnings.empty();
    }
};

struct UbdEstimate {
    bool found = false;
    /// The estimate. When delta_nop = 1 this is simply the saw-tooth
    /// period; when delta_nop > 1 the sweep samples the delta axis with
    /// stride delta_nop and aliases: period_k = ubd / gcd(delta_nop, ubd).
    /// The estimator disambiguates among the candidates
    /// {period_k * g : g | delta_nop} using the measured per-request
    /// saw-tooth amplitude, which is ubd - gcd by construction. (The
    /// paper's Section 4.2 asserts the conversion is "easy" once
    /// delta_nop is known; the aliasing correction is the missing piece.)
    Cycle ubd = 0;
    std::size_t period_k = 0;      ///< saw-tooth period in nop-count steps
    double amplitude_per_request = 0.0;  ///< (max-min dbus) / nr
    std::uint64_t nr = 0;          ///< scua bus requests per measurement
    std::vector<double> dbus;      ///< dbus(t, k) for k = 0..k_max
    std::vector<double> et_isolation;
    std::vector<double> et_contention;
    PeriodConsensus consensus;
    ConfidenceReport confidence;
};

/// Runs the full methodology on the given platform configuration.
[[nodiscard]] UbdEstimate estimate_ubd(const MachineConfig& config,
                                       const UbdEstimatorOptions& options = {});

/// Helper: the rsk contender set (Nc - 1 copies of rsk(t)) used both by
/// the estimator and by the validation benches.
[[nodiscard]] std::vector<Program> make_rsk_contenders(
    const MachineConfig& config, OpKind access, std::uint32_t unroll = 32);

}  // namespace rrb
