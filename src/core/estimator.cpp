#include "core/estimator.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/experiment.h"
#include "machine/machine.h"
#include "kernels/rsk.h"
#include "sim/contract.h"

namespace rrb {

std::vector<Program> make_rsk_contenders(const MachineConfig& config,
                                         OpKind access,
                                         std::uint32_t unroll) {
    RskParams params;
    params.dl1_geometry = config.core.dl1_geometry;
    params.access = access;
    params.unroll = unroll;
    params.iterations = 1;  // re-scoped by run_contention
    // Contender data/code regions are distinct from the scua's for
    // clarity; L1s are private and the L2 is way-partitioned, so overlap
    // would not change timing.
    params.data_base = 0x0800'0000;
    params.code_base = 0x0004'0000;
    return {make_rsk(params)};
}

namespace {

/// One unroll factor for the whole sweep, sized so even the largest body
/// (k = k_max) fits the IL1. A factor that varied with k would vary the
/// per-measurement request count nr and destroy the periodicity of
/// dbus(k).
std::uint32_t sweep_unroll(const MachineConfig& config,
                           const UbdEstimatorOptions& options) {
    const std::uint64_t il1_capacity_instrs =
        config.core.il1_geometry.size_bytes / Program::kInstrBytes;
    const std::uint64_t largest_group =
        static_cast<std::uint64_t>(config.core.dl1_geometry.ways + 1) *
        (1 + options.k_max);
    const std::uint64_t cap =
        std::max<std::uint64_t>(1, il1_capacity_instrs / largest_group);
    return static_cast<std::uint32_t>(
        std::min<std::uint64_t>(options.unroll, cap));
}

Program make_scua_rsk_nop(const MachineConfig& config,
                          const UbdEstimatorOptions& options,
                          std::uint32_t unroll, std::uint32_t k) {
    RskParams params;
    params.dl1_geometry = config.core.dl1_geometry;
    params.il1_geometry = config.core.il1_geometry;
    params.access = options.access;
    params.unroll = unroll;
    params.iterations = options.rsk_iterations;
    params.nop_latency = options.nop_latency;
    params.data_base = 0x0010'0000;
    params.code_base = 0x0000'0000;
    return make_rsk_nop(params, k);
}

}  // namespace

UbdEstimate estimate_ubd(const MachineConfig& config,
                         const UbdEstimatorOptions& options) {
    RRB_REQUIRE(options.k_max >= 4, "sweep too short to contain a period");
    RRB_REQUIRE(options.rsk_iterations >= 1, "need at least one iteration");
    RRB_REQUIRE(options.relative_tolerance >= 0.0, "negative tolerance");

    UbdEstimate estimate;

    // Step 1: delta_nop calibration.
    estimate.confidence.nop =
        calibrate_delta_nop(config, 2048, 64, options.nop_latency);
    if (estimate.confidence.nop.residual() > 0.05) {
        estimate.confidence.warnings.push_back(
            "delta_nop is far from an integer cycle count; the saw-tooth "
            "is sampled unevenly");
    }

    const std::vector<Program> contenders =
        make_rsk_contenders(config, options.access, options.unroll);

    // Step 2: saturation confidence check — Section 4.3 requires that the
    // Nc-1 contenders *alone* drive the bus to ~100% utilization (read
    // from the PMC), otherwise their re-injection gaps stretch the
    // round-robin window and the estimate degrades to a conservative
    // over-approximation.
    {
        Machine machine(config);
        for (CoreId c = 1; c < config.num_cores; ++c) {
            Program contender = contenders[(c - 1) % contenders.size()];
            contender.iterations = options.max_cycles_per_run;
            machine.load_program(c, contender);
            machine.warm_static_footprint(c);
        }
        const Cycle probe_cycles = 50'000;
        machine.run(probe_cycles);
        estimate.confidence.saturation_utilization =
            config.num_cores > 1 ? machine.bus().utilization(machine.now())
                                 : 1.0;
        estimate.confidence.saturated =
            estimate.confidence.saturation_utilization >=
            options.min_saturation_utilization;
        if (!estimate.confidence.saturated) {
            estimate.confidence.warnings.push_back(
                "Nc-1 rsk alone do not saturate the bus; the synchrony "
                "window includes their re-injection gaps and the estimate "
                "is a conservative over-approximation");
        }
    }

    // Step 3: the k sweep.
    const std::uint32_t unroll = sweep_unroll(config, options);
    estimate.dbus.reserve(options.k_max + 1);
    for (std::uint32_t k = 0; k <= options.k_max; ++k) {
        const Program scua = make_scua_rsk_nop(config, options, unroll, k);
        const SlowdownResult r = run_slowdown(config, scua, contenders, 0,
                                              options.max_cycles_per_run);
        RRB_ENSURE(!r.isolation.deadline_reached &&
                   !r.contention.deadline_reached);
        if (k == 0) estimate.nr = r.isolation.bus_requests;
        estimate.et_isolation.push_back(
            static_cast<double>(r.isolation.exec_time));
        estimate.et_contention.push_back(
            static_cast<double>(r.contention.exec_time));
        estimate.dbus.push_back(static_cast<double>(r.slowdown()));
    }

    // Step 4: period detection (Equation 3) with detector cross-checking.
    double lo = estimate.dbus[0];
    double hi = estimate.dbus[0];
    for (const double v : estimate.dbus) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    const double tolerance = (hi - lo) * options.relative_tolerance;
    estimate.consensus = consensus_period(estimate.dbus, tolerance);
    estimate.confidence.detector_votes = estimate.consensus.votes;

    if (!estimate.consensus.found()) {
        estimate.confidence.warnings.push_back(
            "no saw-tooth period found; either the sweep is too short or "
            "the arbiter is not round-robin");
        return estimate;
    }
    if (estimate.consensus.votes < 2) {
        estimate.confidence.warnings.push_back(
            "period detectors disagree; treat the estimate with caution");
    }

    estimate.period_k = estimate.consensus.period;

    // Convert the period from nop-steps to cycles. With delta_nop = g*m
    // the sweep samples the delta axis with stride delta_nop, and the
    // fundamental relation is period_k = ubd / gcd(delta_nop, ubd): the
    // true ubd is one of {period_k * g : g | delta_nop}. Disambiguate by
    // the per-request saw-tooth amplitude, which equals
    // ubd - gcd(delta_nop, ubd) independently of the (unknown) intrinsic
    // injection time. (Section 4.2 leaves this aliasing correction
    // implicit.)
    const Cycle dn = estimate.confidence.nop.rounded();
    RRB_ENSURE(dn >= 1);
    estimate.amplitude_per_request =
        estimate.nr == 0 ? 0.0
                         : (hi - lo) / static_cast<double>(estimate.nr);
    Cycle best_candidate = static_cast<Cycle>(estimate.period_k) * dn;
    double best_error = std::numeric_limits<double>::infinity();
    for (Cycle g = 1; g <= dn; ++g) {
        if (dn % g != 0) continue;
        const Cycle candidate = static_cast<Cycle>(estimate.period_k) * g;
        const double predicted_amplitude =
            static_cast<double>(candidate) - static_cast<double>(g);
        const double error =
            std::fabs(estimate.amplitude_per_request - predicted_amplitude);
        if (error < best_error) {
            best_error = error;
            best_candidate = candidate;
        }
    }
    estimate.ubd = best_candidate;
    estimate.found = true;
    return estimate;
}

}  // namespace rrb
