// Session: the single entry point that executes Scenarios.
//
// A Scenario (core/scenario.h) says *what* to run; a Session owns the
// execution policy — worker budget, progress sink, one shared thread
// pool reused across calls — and exposes typed entry points:
//
//   Session session;
//   session.jobs(8).progress(&counter);
//   HwmCampaignResult   hwm = session.hwm(scenario);
//   PwcetCampaignResult p   = session.pwcet(scenario, PwcetSpec{});
//   auto                wb  = session.whitebox(scenario);
//   SweepResult         g   = session.sweep(scenario, axes, spec);
//
// Every entry point inherits the engine's determinism contract: results
// are bit-identical at every jobs value, including 1. sweep() runs a
// grid of MachineConfig variations (cores / lbus / arbiter axes) where
// each grid point is itself a streamed pWCET campaign; the whole grid
// drains as ONE flat (campaign × shard) queue on the session's shared
// pool (sched::CampaignScheduler) — no per-point barrier, so a wide
// grid keeps every worker busy to the end while each point's result
// stays bit-identical to a standalone pwcet() on that config. batch()
// does the same for heterogeneous scenarios and hands back one
// whole-campaign checkpoint per scenario.
//
// This is the high-level layer. The free functions in core/campaign.h,
// core/experiment.h and engine/ remain the low-level layer underneath;
// the legacy campaign entry points delegate here.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include <string>

#include "core/campaign.h"
#include "core/experiment.h"
#include "core/scenario.h"
#include "engine/reduce.h"
#include "machine/config.h"
#include "sim/types.h"
#include "stats/checkpoint.h"

namespace rrb {

namespace sched {
class BatchProgress;
}  // namespace sched

/// The statistical half of a pWCET campaign — everything that is not
/// the run protocol (which the Scenario owns): EVT block size and the
/// exceedance probabilities to quote quantiles at. Defaults come from
/// PwcetCampaignOptions, the low-level single source of truth.
struct PwcetSpec {
    std::size_t block_size = PwcetCampaignOptions{}.block_size;
    std::vector<double> exceedance = PwcetCampaignOptions{}.exceedance;
};

/// Axes of a MachineConfig grid. Empty axis = keep the base scenario's
/// value (a single implicit point on that axis); the grid is the cross
/// product of the non-empty axes, enumerated cores-major, then lbus,
/// then arbiter — a pure function of the axes, never of the jobs count.
struct SweepAxes {
    std::vector<CoreId> cores;
    std::vector<Cycle> lbus;  ///< bus occupancy of one L2 load hit
    std::vector<ArbiterKind> arbiters;

    [[nodiscard]] std::size_t points() const noexcept {
        const auto dim = [](std::size_t n) { return n == 0 ? 1 : n; };
        return dim(cores.size()) * dim(lbus.size()) * dim(arbiters.size());
    }
};

/// One grid point: the axis values it was built from, the derived
/// config, and the streamed pWCET campaign result — bit-identical to
/// running Session::pwcet standalone on `config` with the same
/// scenario protocol and spec.
struct SweepPoint {
    CoreId cores = 0;
    Cycle lbus = 0;
    ArbiterKind arbiter = ArbiterKind::kRoundRobin;
    MachineConfig config;
    PwcetCampaignResult result;
};

struct SweepResult {
    std::vector<SweepPoint> points;  ///< in axes enumeration order
};

/// One scenario of a batch() call: a label (names the checkpoint and
/// report lines; unique within the batch) plus the scenario and its
/// statistical spec. Scenarios may be fully heterogeneous — different
/// configs, workloads, run counts, seeds.
struct BatchItem {
    std::string name;
    Scenario scenario;
    PwcetSpec spec;
};

/// One completed batch campaign: the whole-campaign checkpoint (slice
/// 0 of 1 — loadable by merge() on its own or alongside nothing else)
/// and the finalized result, both bit-identical to running
/// `pwcet(scenario, spec)` standalone. Campaigns are independent
/// failure domains (sched::CampaignScheduler supervision): when a
/// scenario's campaign fails, its point comes back with ok == false
/// and the first captured error — checkpoint/result are
/// default-constructed and meaningless — while every other point is
/// exactly what an all-healthy batch would have produced.
struct BatchPointResult {
    std::string name;
    bool ok = true;
    std::string error;  ///< first captured failure, when !ok
    PwcetCheckpoint checkpoint;
    PwcetCampaignResult result;
};

struct BatchResult {
    std::vector<BatchPointResult> points;  ///< in batch order
};

/// Which slice of a checkpointed campaign to run: slice `index` of
/// `count`. Slices divide the campaign's shard plan (engine/reduce.h)
/// into contiguous ranges, so any full set of slices — run on any mix
/// of processes or machines — merges into exactly the monolithic
/// result.
struct SliceSpec {
    std::size_t index = 0;
    std::size_t count = 1;
};

class Session {
public:
    Session();
    ~Session();

    Session(const Session&) = delete;
    Session& operator=(const Session&) = delete;

    // --------------------------------------------- execution policy

    /// Worker budget; 0 = hardware concurrency. Must be set before the
    /// first campaign call — the shared pool is built lazily at that
    /// width and reused for the session's lifetime. The pool is sized
    /// to the budget, not to any one call's workload: clamping to the
    /// first campaign's run count would silently under-parallelize
    /// every later, larger call. Workers beyond a small campaign's
    /// needs just sleep.
    Session& jobs(std::size_t n);
    [[nodiscard]] std::size_t jobs() const noexcept { return jobs_; }

    /// The resolved worker count the shared pool has (or will be built
    /// with): the jobs budget, with 0 resolved to hardware concurrency.
    /// Front ends should report this rather than re-deriving the
    /// resolution policy.
    [[nodiscard]] std::size_t worker_budget() const noexcept;

    /// Optional progress sink. Campaign entry points report per run;
    /// sweep() reports per grid point.
    Session& progress(engine::ProgressCounter* sink);

    // ------------------------------------------------- entry points

    /// Single runs (no campaign randomization): the scua alone, and the
    /// scua against the scenario's contenders. Both respect the
    /// scenario protocol's cycle cap.
    [[nodiscard]] Measurement isolation(const Scenario& scenario) const;
    [[nodiscard]] Measurement contention(const Scenario& scenario) const;
    [[nodiscard]] SlowdownResult slowdown(const Scenario& scenario) const;

    /// Materializing HWM campaign (one exec time per run).
    [[nodiscard]] HwmCampaignResult hwm(const Scenario& scenario);

    /// Streamed pWCET campaign: O(runs / block_size) live memory.
    [[nodiscard]] PwcetCampaignResult pwcet(const Scenario& scenario,
                                            const PwcetSpec& spec = {});

    /// White-box campaign statistics through the sharded merge path.
    [[nodiscard]] engine::WhiteboxCampaignResult whitebox(
        const Scenario& scenario);

    /// Cycle-attribution campaign: every run executes with the
    /// profiler armed and the per-core cause timelines plus the
    /// per-contender blame matrix are summed over the campaign.
    /// Exact integer sums → bit-identical at every jobs value and
    /// through any shard/merge slicing.
    [[nodiscard]] engine::AttributionCampaignResult attribution(
        const Scenario& scenario);

    /// Grid of MachineConfig variations, each point a streamed pWCET
    /// campaign over the re-targeted scenario. See the module comment
    /// for the nesting/jobs contract.
    [[nodiscard]] SweepResult sweep(const Scenario& scenario,
                                    const SweepAxes& axes,
                                    const PwcetSpec& spec = {});

    /// Runs every scenario of the batch as one flat (campaign × shard)
    /// queue on the shared pool — concurrent heterogeneous campaigns,
    /// each result and checkpoint bit-identical to a standalone
    /// pwcet()/checkpoint() of that scenario. `monitor`, if given, must
    /// already be announce()d with one (name, runs) entry per item in
    /// batch order; the session's progress sink ticks per run across
    /// the whole batch.
    [[nodiscard]] BatchResult batch(const std::vector<BatchItem>& items,
                                    sched::BatchProgress* monitor = nullptr);

    // --------------------------------------- checkpointed campaigns

    /// Runs slice `slice.index` of `slice.count` of the scenario's
    /// pWCET campaign and writes its accumulator state plus campaign
    /// identity (scenario fingerprint, seed, run range, shard-plan
    /// hash) to `path`. Merging every slice — across processes or
    /// machines — is bit-identical to `pwcet(scenario, spec)` at every
    /// jobs value. Returns the checkpoint that was written.
    PwcetCheckpoint checkpoint(const Scenario& scenario,
                               const PwcetSpec& spec, const SliceSpec& slice,
                               const std::string& path);

    /// White-box overload: runs slice `slice.index` of `slice.count` of
    /// the scenario's *white-box* campaign (gamma / ready-contenders /
    /// injection histograms plus the run-ordered exec-time series) and
    /// writes the slice to `path`. Merging every slice reproduces
    /// `whitebox(scenario)` bit-identically — the distributed form of
    /// the validation-figure campaigns.
    WhiteboxCheckpoint checkpoint(const Scenario& scenario,
                                  const SliceSpec& slice,
                                  const std::string& path);

    /// Loads, cross-validates and merges checkpoint files into the
    /// full-campaign result. Throws CheckpointError — naming the file —
    /// on unreadable/corrupt input, on checkpoints from different
    /// campaigns, and on duplicate or missing slices.
    [[nodiscard]] MergedPwcetCampaign merge(
        const std::vector<std::string>& paths) const;

    /// White-box counterpart of merge(); rejects pwcet checkpoints (the
    /// file format tags its payload kind).
    [[nodiscard]] MergedWhiteboxCampaign merge_whitebox(
        const std::vector<std::string>& paths) const;

    /// Completes a partially checkpointed campaign: validates every
    /// checkpoint against this (scenario, spec) — mismatched
    /// fingerprints, seeds, plans and duplicate slices are rejected
    /// loudly — runs whatever shard ranges no checkpoint covers, and
    /// returns the merged result, bit-identical to `pwcet(scenario,
    /// spec)`. With full coverage nothing re-runs; with no paths this
    /// is the monolithic campaign.
    [[nodiscard]] PwcetCampaignResult resume(
        const Scenario& scenario, const PwcetSpec& spec,
        const std::vector<std::string>& paths);

    /// One defensive step resume took in recovery mode, recorded so the
    /// operator (and the telemetry report, via the
    /// checkpoints_quarantined / resume_shards_rerun counters) can see
    /// exactly what was salvaged versus recomputed.
    struct RecoveryAction {
        std::string path;    ///< the checkpoint file acted on
        std::string reason;  ///< why it could not be used as-is
        /// `<path>.corrupt` when the file was quarantined; empty when
        /// it was left in place (e.g. valid data duplicating coverage).
        std::string quarantined_to;
    };

    struct ResumeRecovery {
        std::vector<RecoveryAction> actions;
        std::uint64_t shards_rerun = 0;  ///< shards not taken from disk
    };

    /// Recovery-mode resume, for completing a campaign after a crash
    /// with whatever landed on disk: instead of throwing, an
    /// unreadable/corrupt/mismatched checkpoint is quarantined to
    /// `<path>.corrupt` and a duplicate-coverage file is ignored — each
    /// recorded in `recovery` — and the uncovered ranges re-run. The
    /// merged result is still bit-identical to `pwcet(scenario, spec)`:
    /// recovery changes which work re-runs, never what it computes.
    [[nodiscard]] PwcetCampaignResult resume(
        const Scenario& scenario, const PwcetSpec& spec,
        const std::vector<std::string>& paths, ResumeRecovery& recovery);

private:
    /// Shared body of the two resume overloads; `recovery == nullptr`
    /// is strict mode (every bad checkpoint throws).
    [[nodiscard]] PwcetCampaignResult resume_impl(
        const Scenario& scenario, const PwcetSpec& spec,
        const std::vector<std::string>& paths, ResumeRecovery* recovery);

    /// EngineOptions carrying the session policy and the shared pool.
    [[nodiscard]] engine::EngineOptions engine_options(
        engine::ProgressCounter* sink);
    [[nodiscard]] engine::ThreadPool& shared_pool();

    std::size_t jobs_ = 0;
    engine::ProgressCounter* progress_ = nullptr;
    std::unique_ptr<engine::ThreadPool> pool_;
};

}  // namespace rrb
