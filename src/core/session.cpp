#include "core/session.h"

#include <algorithm>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "engine/campaign_engine.h"
#include "engine/progress.h"
#include "engine/thread_pool.h"
#include "sim/contract.h"

namespace rrb {

namespace {

/// Applies the set axis values to a copy of the base config, sharing
/// MachineConfig::scaled's choices (one 64KB L2 way per core, the
/// retime_bus timing model) where an axis is present and keeping the
/// base's settings where it is not.
MachineConfig apply_axes(MachineConfig config, std::optional<CoreId> cores,
                         std::optional<Cycle> lbus,
                         std::optional<ArbiterKind> arbiter) {
    if (cores.has_value()) {
        RRB_REQUIRE(*cores >= 1, "need at least one core");
        config.num_cores = *cores;
        config.l2_geometry.ways = *cores;
        config.l2_geometry.size_bytes = 64ULL * 1024 * *cores;
    }
    if (lbus.has_value()) config.retime_bus(*lbus);
    if (arbiter.has_value()) config.arbiter = *arbiter;
    config.validate();
    return config;
}

/// The one place a (Scenario, PwcetSpec) pair becomes the low-level
/// campaign options — standalone pwcet and sweep grid points must
/// assemble them identically or the bit-identity contract breaks.
PwcetCampaignOptions to_campaign_options(const Scenario& scenario,
                                         const PwcetSpec& spec) {
    PwcetCampaignOptions options;
    options.protocol = scenario.run_protocol();
    options.block_size = spec.block_size;
    options.exceedance = spec.exceedance;
    return options;
}

}  // namespace

Session::Session() = default;
Session::~Session() = default;

Session& Session::jobs(std::size_t n) {
    RRB_REQUIRE(pool_ == nullptr,
                "set the jobs budget before the first campaign call");
    jobs_ = n;
    return *this;
}

Session& Session::progress(engine::ProgressCounter* sink) {
    progress_ = sink;
    return *this;
}

std::size_t Session::worker_budget() const noexcept {
    return jobs_ == 0 ? engine::ThreadPool::default_jobs() : jobs_;
}

engine::ThreadPool& Session::shared_pool() {
    if (pool_ == nullptr) {
        pool_ = std::make_unique<engine::ThreadPool>(worker_budget());
    }
    return *pool_;
}

engine::EngineOptions Session::engine_options(
    engine::ProgressCounter* sink) {
    engine::EngineOptions options;
    options.jobs = jobs_;
    options.progress = sink;
    options.pool = &shared_pool();
    return options;
}

Measurement Session::isolation(const Scenario& scenario) const {
    scenario.validate();
    Measurement m =
        run_isolation(scenario.config(), scenario.scua_program(), 0,
                      scenario.run_protocol().max_cycles_per_run);
    // A capped run is not a measurement — same contract as the
    // campaign paths. Probe with the low-level run_isolation when
    // deadline_reached is the thing being asked.
    RRB_ENSURE(!m.deadline_reached);
    return m;
}

Measurement Session::contention(const Scenario& scenario) const {
    scenario.validate();
    Measurement m =
        run_contention(scenario.config(), scenario.scua_program(),
                       scenario.contender_programs(), 0,
                       scenario.run_protocol().max_cycles_per_run);
    RRB_ENSURE(!m.deadline_reached);
    return m;
}

SlowdownResult Session::slowdown(const Scenario& scenario) const {
    return {isolation(scenario), contention(scenario)};
}

HwmCampaignResult Session::hwm(const Scenario& scenario) {
    scenario.validate();
    return engine::run_hwm_campaign_parallel(
        scenario.config(), scenario.scua_program(),
        scenario.contender_programs(), scenario.run_protocol(),
        engine_options(progress_));
}

PwcetCampaignResult Session::pwcet(const Scenario& scenario,
                                   const PwcetSpec& spec) {
    scenario.validate();
    return engine::run_pwcet_campaign(
        scenario.config(), scenario.scua_program(),
        scenario.contender_programs(), to_campaign_options(scenario, spec),
        engine_options(progress_));
}

engine::WhiteboxCampaignResult Session::whitebox(const Scenario& scenario) {
    scenario.validate();
    return engine::run_whitebox_campaign(
        scenario.config(), scenario.scua_program(),
        scenario.contender_programs(), scenario.run_protocol(),
        engine_options(progress_));
}

SweepResult Session::sweep(const Scenario& scenario, const SweepAxes& axes,
                           const PwcetSpec& spec) {
    scenario.validate();

    // Materialize the enumeration. An empty axis contributes a single
    // disengaged value: apply_axes leaves the base config's setting
    // completely untouched (re-timing the bus to an equal lbus would
    // still be a different machine).
    const auto materialize = [](const auto& axis) {
        using Value = typename std::decay_t<decltype(axis)>::value_type;
        std::vector<std::optional<Value>> values;
        if (axis.empty()) {
            values.push_back(std::nullopt);
        } else {
            for (const Value& v : axis) values.push_back(v);
        }
        return values;
    };
    const auto cores = materialize(axes.cores);
    const auto lbus = materialize(axes.lbus);
    const auto arbiters = materialize(axes.arbiters);

    if (progress_ != nullptr) progress_->begin(axes.points());

    SweepResult result;
    result.points.reserve(axes.points());
    for (const std::optional<CoreId>& c : cores) {
        for (const std::optional<Cycle>& l : lbus) {
            for (const std::optional<ArbiterKind>& a : arbiters) {
                SweepPoint point;
                point.config = apply_axes(scenario.config(), c, l, a);
                point.cores = point.config.num_cores;
                point.lbus = point.config.load_hit_service();
                point.arbiter = point.config.arbiter;
                // Grid points run one after another; each point's
                // campaign fans its shards across the shared pool, so
                // the session's jobs budget covers both nesting levels.
                // Per-run progress stays off here — the sweep reports
                // per point.
                point.result = pwcet_on_pool(point.config, scenario, spec);
                result.points.push_back(std::move(point));
                if (progress_ != nullptr) progress_->tick();
            }
        }
    }
    return result;
}

PwcetCampaignResult Session::pwcet_on_pool(const MachineConfig& config,
                                           const Scenario& scenario,
                                           const PwcetSpec& spec) {
    const Scenario point = scenario.with_config(config);
    return engine::run_pwcet_campaign(
        point.config(), point.scua_program(), point.contender_programs(),
        to_campaign_options(point, spec),
        engine_options(/*sink=*/nullptr));
}

}  // namespace rrb
