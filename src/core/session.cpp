#include "core/session.h"

#include <algorithm>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "engine/campaign_engine.h"
#include "engine/progress.h"
#include "engine/thread_pool.h"
#include "obs/telemetry.h"
#include "sched/campaign_scheduler.h"
#include "sim/contract.h"

namespace rrb {

namespace {

/// Applies the set axis values to a copy of the base config, sharing
/// MachineConfig::scaled's choices (one 64KB L2 way per core, the
/// retime_bus timing model) where an axis is present and keeping the
/// base's settings where it is not.
MachineConfig apply_axes(MachineConfig config, std::optional<CoreId> cores,
                         std::optional<Cycle> lbus,
                         std::optional<ArbiterKind> arbiter) {
    if (cores.has_value()) {
        RRB_REQUIRE(*cores >= 1, "need at least one core");
        config.num_cores = *cores;
        config.l2_geometry.ways = *cores;
        config.l2_geometry.size_bytes = 64ULL * 1024 * *cores;
    }
    if (lbus.has_value()) config.retime_bus(*lbus);
    if (arbiter.has_value()) config.arbiter = *arbiter;
    config.validate();
    return config;
}

/// The one place a (Scenario, PwcetSpec) pair becomes the low-level
/// campaign options — standalone pwcet and sweep grid points must
/// assemble them identically or the bit-identity contract breaks.
PwcetCampaignOptions to_campaign_options(const Scenario& scenario,
                                         const PwcetSpec& spec) {
    PwcetCampaignOptions options;
    options.protocol = scenario.run_protocol();
    options.block_size = spec.block_size;
    options.exceedance = spec.exceedance;
    return options;
}

/// The campaign identity a (scenario, spec) pair stamps into its
/// checkpoints — and the identity resume validates loaded checkpoints
/// against. Slice, run-range and isolation fields are filled by the
/// slice that ran.
CheckpointMeta campaign_meta(const Scenario& scenario, const PwcetSpec& spec,
                             const engine::ReducePlan& plan) {
    CheckpointMeta meta;
    meta.scenario_fingerprint = scenario.fingerprint();
    meta.seed = scenario.run_protocol().seed;
    meta.total_runs = scenario.run_protocol().runs;
    meta.block_size = spec.block_size;
    meta.shard_size = plan.shard_size;
    meta.plan_shards = plan.shards();
    meta.shard_plan_hash =
        shard_plan_hash(meta.total_runs, meta.shard_size, meta.plan_shards);
    meta.ubd_analytic = scenario.config().ubd_analytic();
    meta.exceedance = spec.exceedance;
    return meta;
}

/// Lowers a scenario into the scheduler's work unit — the same option
/// assembly (to_campaign_options) the standalone pwcet path uses, so a
/// scheduled campaign and a sequential one fold identical inputs.
sched::PwcetCampaignWork to_campaign_work(const Scenario& scenario,
                                          const PwcetSpec& spec,
                                          const char* span_name,
                                          std::uint64_t span_index) {
    sched::PwcetCampaignWork work;
    work.config = scenario.config();
    work.scua = scenario.scua_program();
    work.contenders = scenario.contender_programs();
    work.options = to_campaign_options(scenario, spec);
    work.span_name = span_name;
    work.span_index = span_index;
    return work;
}

/// The monolithic merge sequence over a full-plan slice: left-fold the
/// shards in index order, finalize against the slice's baseline —
/// exactly what engine::run_pwcet_campaign does after its reduce.
PwcetCampaignResult finalize_slice(const engine::PwcetShardSlice& slice,
                                   const std::vector<double>& exceedance) {
    PwcetAccumulator acc = slice.shards.front();
    for (std::size_t s = 1; s < slice.shards.size(); ++s) {
        acc.merge(slice.shards[s]);
    }
    return finalize_pwcet_campaign(acc, slice.et_isolation, slice.nr,
                                   exceedance);
}

}  // namespace

Session::Session() = default;
Session::~Session() = default;

Session& Session::jobs(std::size_t n) {
    RRB_REQUIRE(pool_ == nullptr,
                "set the jobs budget before the first campaign call");
    jobs_ = n;
    return *this;
}

Session& Session::progress(engine::ProgressCounter* sink) {
    progress_ = sink;
    return *this;
}

std::size_t Session::worker_budget() const noexcept {
    return jobs_ == 0 ? engine::ThreadPool::default_jobs() : jobs_;
}

engine::ThreadPool& Session::shared_pool() {
    if (pool_ == nullptr) {
        pool_ = std::make_unique<engine::ThreadPool>(worker_budget());
    }
    return *pool_;
}

engine::EngineOptions Session::engine_options(
    engine::ProgressCounter* sink) {
    engine::EngineOptions options;
    options.jobs = jobs_;
    options.progress = sink;
    options.pool = &shared_pool();
    return options;
}

Measurement Session::isolation(const Scenario& scenario) const {
    scenario.validate();
    Measurement m =
        run_isolation(scenario.config(), scenario.scua_program(), 0,
                      scenario.run_protocol().max_cycles_per_run);
    // A capped run is not a measurement — same contract as the
    // campaign paths. Probe with the low-level run_isolation when
    // deadline_reached is the thing being asked.
    RRB_ENSURE(!m.deadline_reached);
    return m;
}

Measurement Session::contention(const Scenario& scenario) const {
    scenario.validate();
    Measurement m =
        run_contention(scenario.config(), scenario.scua_program(),
                       scenario.contender_programs(), 0,
                       scenario.run_protocol().max_cycles_per_run);
    RRB_ENSURE(!m.deadline_reached);
    return m;
}

SlowdownResult Session::slowdown(const Scenario& scenario) const {
    return {isolation(scenario), contention(scenario)};
}

HwmCampaignResult Session::hwm(const Scenario& scenario) {
    scenario.validate();
    const obs::Span span("session.hwm", 0,
                         scenario.run_protocol().runs);
    return engine::run_hwm_campaign_parallel(
        scenario.config(), scenario.scua_program(),
        scenario.contender_programs(), scenario.run_protocol(),
        engine_options(progress_));
}

PwcetCampaignResult Session::pwcet(const Scenario& scenario,
                                   const PwcetSpec& spec) {
    scenario.validate();
    const obs::Span span("session.pwcet", 0,
                         scenario.run_protocol().runs);
    return engine::run_pwcet_campaign(
        scenario.config(), scenario.scua_program(),
        scenario.contender_programs(), to_campaign_options(scenario, spec),
        engine_options(progress_));
}

engine::WhiteboxCampaignResult Session::whitebox(const Scenario& scenario) {
    scenario.validate();
    const obs::Span span("session.whitebox", 0,
                         scenario.run_protocol().runs);
    return engine::run_whitebox_campaign(
        scenario.config(), scenario.scua_program(),
        scenario.contender_programs(), scenario.run_protocol(),
        engine_options(progress_));
}

engine::AttributionCampaignResult Session::attribution(
    const Scenario& scenario) {
    scenario.validate();
    const obs::Span span("session.attribution", 0,
                         scenario.run_protocol().runs);
    return engine::run_attribution_campaign(
        scenario.config(), scenario.scua_program(),
        scenario.contender_programs(), scenario.run_protocol(),
        engine_options(progress_));
}

SweepResult Session::sweep(const Scenario& scenario, const SweepAxes& axes,
                           const PwcetSpec& spec) {
    scenario.validate();

    // Materialize the enumeration. An empty axis contributes a single
    // disengaged value: apply_axes leaves the base config's setting
    // completely untouched (re-timing the bus to an equal lbus would
    // still be a different machine).
    const auto materialize = [](const auto& axis) {
        using Value = typename std::decay_t<decltype(axis)>::value_type;
        std::vector<std::optional<Value>> values;
        if (axis.empty()) {
            values.push_back(std::nullopt);
        } else {
            for (const Value& v : axis) values.push_back(v);
        }
        return values;
    };
    const auto cores = materialize(axes.cores);
    const auto lbus = materialize(axes.lbus);
    const auto arbiters = materialize(axes.arbiters);

    if (progress_ != nullptr) progress_->begin(axes.points());

    const obs::Span sweep_span(
        "session.sweep", 0,
        axes.points() * scenario.run_protocol().runs);
    // Lower the whole grid up front, then drain it as one flat
    // (campaign × shard) queue — no barrier between grid points, so
    // the tail shards of one point overlap the head of the next and
    // every worker stays busy to the end of the grid. Per-run progress
    // stays off — the sweep reports per completed point.
    sched::CampaignScheduler scheduler(shared_pool());
    SweepResult result;
    result.points.reserve(axes.points());
    for (const std::optional<CoreId>& c : cores) {
        for (const std::optional<Cycle>& l : lbus) {
            for (const std::optional<ArbiterKind>& a : arbiters) {
                SweepPoint point;
                point.config = apply_axes(scenario.config(), c, l, a);
                point.cores = point.config.num_cores;
                point.lbus = point.config.load_hit_service();
                point.arbiter = point.config.arbiter;
                scheduler.add(to_campaign_work(
                    scenario.with_config(point.config), spec, "grid-point",
                    result.points.size()));
                result.points.push_back(std::move(point));
            }
        }
    }
    sched::CampaignScheduler::RunOptions run_options;
    run_options.campaigns_done = progress_;
    scheduler.run(run_options);
    for (std::size_t p = 0; p < result.points.size(); ++p) {
        result.points[p].result =
            finalize_slice(scheduler.take(p), spec.exceedance);
    }
    return result;
}

BatchResult Session::batch(const std::vector<BatchItem>& items,
                           sched::BatchProgress* monitor) {
    RRB_REQUIRE(!items.empty(), "batch needs at least one scenario");
    RRB_REQUIRE(monitor == nullptr || monitor->campaigns() == items.size(),
                "batch monitor must be announced with one entry per item");
    std::size_t total_runs = 0;
    for (const BatchItem& item : items) {
        item.scenario.validate();
        total_runs += item.scenario.run_protocol().runs;
    }
    if (progress_ != nullptr) progress_->begin(total_runs);
    const obs::Span span("session.batch", 0, total_runs);

    sched::CampaignScheduler scheduler(shared_pool());
    for (std::size_t i = 0; i < items.size(); ++i) {
        scheduler.add(
            to_campaign_work(items[i].scenario, items[i].spec, "campaign", i));
    }
    sched::CampaignScheduler::RunOptions run_options;
    run_options.batch = monitor;
    run_options.runs = progress_;
    scheduler.run(run_options);

    BatchResult result;
    result.points.reserve(items.size());
    for (std::size_t i = 0; i < items.size(); ++i) {
        const BatchItem& item = items[i];
        const sched::CampaignScheduler::CampaignStatus& status =
            scheduler.status(i);
        if (status.failed) {
            // This scenario's failure domain only: report it and keep
            // collecting the healthy campaigns' results.
            BatchPointResult point;
            point.name = item.name;
            point.ok = false;
            point.error = status.error;
            result.points.push_back(std::move(point));
            continue;
        }
        engine::PwcetShardSlice slice = scheduler.take(i);
        const engine::ReducePlan plan =
            engine::ReducePlan::for_count(static_cast<std::uint64_t>(
                item.scenario.run_protocol().runs));

        BatchPointResult point;
        point.name = item.name;
        point.result = finalize_slice(slice, item.spec.exceedance);
        // The whole campaign as slice 0 of 1 — the exact checkpoint
        // `checkpoint(scenario, spec, {0, 1}, path)` would have written,
        // so batch output farms through the same merge tooling.
        point.checkpoint.meta = campaign_meta(item.scenario, item.spec, plan);
        point.checkpoint.meta.slice_index = 0;
        point.checkpoint.meta.slice_count = 1;
        point.checkpoint.meta.first_run = slice.first_run;
        point.checkpoint.meta.last_run = slice.last_run;
        point.checkpoint.meta.et_isolation = slice.et_isolation;
        point.checkpoint.meta.nr = slice.nr;
        point.checkpoint.first_shard = slice.first_shard;
        point.checkpoint.shards = std::move(slice.shards);
        result.points.push_back(std::move(point));
    }
    return result;
}

PwcetCheckpoint Session::checkpoint(const Scenario& scenario,
                                    const PwcetSpec& spec,
                                    const SliceSpec& slice,
                                    const std::string& path) {
    scenario.validate();
    const PwcetCampaignOptions options = to_campaign_options(scenario, spec);
    const engine::ReducePlan plan = engine::ReducePlan::for_count(
        static_cast<std::uint64_t>(options.protocol.runs));
    const engine::ReducePlan::ShardRange range =
        plan.slice(slice.index, slice.count);

    const obs::Span span("session.checkpoint", slice.index, range.size());
    engine::PwcetShardSlice run = engine::run_pwcet_campaign_shards(
        scenario.config(), scenario.scua_program(),
        scenario.contender_programs(), options, range,
        engine_options(progress_));

    PwcetCheckpoint checkpoint;
    checkpoint.meta = campaign_meta(scenario, spec, plan);
    checkpoint.meta.slice_index = slice.index;
    checkpoint.meta.slice_count = slice.count;
    checkpoint.meta.first_run = run.first_run;
    checkpoint.meta.last_run = run.last_run;
    checkpoint.meta.et_isolation = run.et_isolation;
    checkpoint.meta.nr = run.nr;
    checkpoint.first_shard = run.first_shard;
    checkpoint.shards = std::move(run.shards);
    save_pwcet_checkpoint(path, checkpoint);
    return checkpoint;
}

WhiteboxCheckpoint Session::checkpoint(const Scenario& scenario,
                                       const SliceSpec& slice,
                                       const std::string& path) {
    scenario.validate();
    const HwmCampaignOptions& options = scenario.run_protocol();
    const engine::ReducePlan plan = engine::ReducePlan::for_count(
        static_cast<std::uint64_t>(options.runs));
    const engine::ReducePlan::ShardRange range =
        plan.slice(slice.index, slice.count);

    const obs::Span span("session.checkpoint", slice.index, range.size());
    engine::WhiteboxShardSlice run = engine::run_whitebox_campaign_shards(
        scenario.config(), scenario.scua_program(),
        scenario.contender_programs(), options, range,
        engine_options(progress_));

    WhiteboxCheckpoint checkpoint;
    // The campaign identity minus the EVT half: white-box campaigns
    // have no block size or exceedance list (encoded as 0 / empty).
    checkpoint.meta = campaign_meta(scenario, PwcetSpec{}, plan);
    checkpoint.meta.block_size = 0;
    checkpoint.meta.exceedance.clear();
    checkpoint.meta.slice_index = slice.index;
    checkpoint.meta.slice_count = slice.count;
    checkpoint.meta.first_run = run.first_run;
    checkpoint.meta.last_run = run.last_run;
    checkpoint.meta.et_isolation = run.et_isolation;
    checkpoint.meta.nr = run.nr;
    checkpoint.first_shard = run.first_shard;
    checkpoint.shards = std::move(run.shards);
    save_whitebox_checkpoint(path, checkpoint);
    return checkpoint;
}

MergedPwcetCampaign Session::merge(
    const std::vector<std::string>& paths) const {
    RRB_REQUIRE(!paths.empty(), "merge needs at least one checkpoint file");
    std::vector<PwcetCheckpoint> checkpoints;
    checkpoints.reserve(paths.size());
    for (const std::string& path : paths) {
        checkpoints.push_back(load_pwcet_checkpoint(path));
    }
    return merge_pwcet_checkpoints(std::move(checkpoints), paths);
}

MergedWhiteboxCampaign Session::merge_whitebox(
    const std::vector<std::string>& paths) const {
    RRB_REQUIRE(!paths.empty(), "merge needs at least one checkpoint file");
    std::vector<WhiteboxCheckpoint> checkpoints;
    checkpoints.reserve(paths.size());
    for (const std::string& path : paths) {
        checkpoints.push_back(load_whitebox_checkpoint(path));
    }
    return merge_whitebox_checkpoints(std::move(checkpoints), paths);
}

PwcetCampaignResult Session::resume(const Scenario& scenario,
                                    const PwcetSpec& spec,
                                    const std::vector<std::string>& paths) {
    return resume_impl(scenario, spec, paths, nullptr);
}

PwcetCampaignResult Session::resume(const Scenario& scenario,
                                    const PwcetSpec& spec,
                                    const std::vector<std::string>& paths,
                                    ResumeRecovery& recovery) {
    return resume_impl(scenario, spec, paths, &recovery);
}

PwcetCampaignResult Session::resume_impl(
    const Scenario& scenario, const PwcetSpec& spec,
    const std::vector<std::string>& paths, ResumeRecovery* recovery) {
    scenario.validate();
    const obs::Span span("session.resume", 0,
                         scenario.run_protocol().runs);
    const PwcetCampaignOptions options = to_campaign_options(scenario, spec);
    const engine::ReducePlan plan = engine::ReducePlan::for_count(
        static_cast<std::uint64_t>(options.protocol.runs));
    CheckpointMeta expected = campaign_meta(scenario, spec, plan);

    // Load and validate: every checkpoint must identify as a slice of
    // *this* campaign before any of its state is trusted. The expected
    // meta knows everything except the isolation baseline (measured,
    // not specified); the first *accepted* checkpoint supplies it and
    // every later one must agree. In recovery mode a checkpoint that
    // fails to load or identify is quarantined (or, if unreadable at
    // the I/O level, just recorded) and its coverage recomputed; in
    // strict mode it throws exactly as before.
    constexpr std::size_t kNobody = static_cast<std::size_t>(-1);
    std::vector<PwcetAccumulator> by_shard(plan.shards());
    std::vector<std::size_t> owner(plan.shards(), kNobody);
    bool have_baseline = false;
    for (std::size_t i = 0; i < paths.size(); ++i) {
        PwcetCheckpoint checkpoint;
        try {
            checkpoint = load_pwcet_checkpoint(paths[i]);
            // Adopt the baseline transactionally: a mismatched first
            // checkpoint must not poison `expected` for its successors.
            CheckpointMeta candidate = expected;
            if (!have_baseline) {
                candidate.et_isolation = checkpoint.meta.et_isolation;
                candidate.nr = checkpoint.meta.nr;
            }
            require_same_campaign(checkpoint.meta, candidate, paths[i],
                                  "the campaign being resumed");
            expected = candidate;
            have_baseline = true;
        } catch (const CheckpointError& e) {
            if (recovery == nullptr) throw;
            RecoveryAction action;
            action.path = paths[i];
            action.reason = e.reason().empty() ? e.what() : e.reason();
            if (e.kind() != CheckpointError::Kind::kIo) {
                // The file exists but is not a usable slice of this
                // campaign — move it aside so a re-run cannot trip
                // over it again.
                action.quarantined_to = quarantine_checkpoint(paths[i]);
            }
            recovery->actions.push_back(std::move(action));
            continue;
        }
        bool duplicate_noted = false;
        for (std::size_t s = 0; s < checkpoint.shards.size(); ++s) {
            const std::size_t index =
                static_cast<std::size_t>(checkpoint.first_shard) + s;
            if (owner[index] != kNobody) {
                if (recovery == nullptr) {
                    throw CheckpointError("duplicate slice: shard " +
                                          std::to_string(index) +
                                          " appears in both " +
                                          paths[owner[index]] + " and " +
                                          paths[i]);
                }
                // Valid data, redundant coverage (e.g. the same slice
                // checkpointed twice across crashes): first owner
                // wins, the file stays in place.
                if (!duplicate_noted) {
                    duplicate_noted = true;
                    recovery->actions.push_back(
                        {paths[i],
                         "shard " + std::to_string(index) +
                             " already covered by " + paths[owner[index]] +
                             "; ignoring the duplicate coverage",
                         std::string()});
                }
                continue;
            }
            owner[index] = i;
            by_shard[index] = std::move(checkpoint.shards[s]);
        }
    }

    // Announce the whole campaign once, with the checkpointed runs
    // counted as already completed: the progress line (and any
    // heartbeat ETA built on it) sees "covered/total" from the first
    // tick instead of a cold start re-announced per uncovered range.
    engine::EngineOptions resumed_options = engine_options(progress_);
    if (progress_ != nullptr) {
        std::size_t covered_runs = 0;
        for (std::size_t s = 0; s < plan.shards(); ++s) {
            if (owner[s] != kNobody) {
                covered_runs += static_cast<std::size_t>(
                    plan.shard_end(s) - plan.shard_begin(s));
            }
        }
        progress_->begin_resumed(
            static_cast<std::size_t>(plan.count), covered_runs);
        resumed_options.progress_pre_announced = true;
    }

    // Run every maximal uncovered shard range, exactly as a checkpoint
    // slice would have.
    for (std::size_t s = 0; s < plan.shards();) {
        if (owner[s] != kNobody) {
            ++s;
            continue;
        }
        std::size_t end = s;
        while (end < plan.shards() && owner[end] == kNobody) ++end;
        obs::count(obs::kResumeShardsRerun,
                   static_cast<std::uint64_t>(end - s));
        if (recovery != nullptr) {
            recovery->shards_rerun += static_cast<std::uint64_t>(end - s);
        }
        engine::PwcetShardSlice fresh = engine::run_pwcet_campaign_shards(
            scenario.config(), scenario.scua_program(),
            scenario.contender_programs(), options, {s, end},
            resumed_options);
        if (have_baseline && (fresh.et_isolation != expected.et_isolation ||
                              fresh.nr != expected.nr)) {
            // The fingerprints matched, so a diverging deterministic
            // baseline means the checkpoint does not come from this
            // scenario after all.
            throw CheckpointError(
                "checkpointed isolation baseline disagrees with the "
                "scenario being resumed");
        }
        expected.et_isolation = fresh.et_isolation;
        expected.nr = fresh.nr;
        have_baseline = true;
        for (std::size_t f = 0; f < fresh.shards.size(); ++f) {
            by_shard[s + f] = std::move(fresh.shards[f]);
        }
        s = end;
    }

    // The monolithic merge sequence: left-fold in shard-index order.
    PwcetAccumulator acc = std::move(by_shard[0]);
    for (std::size_t s = 1; s < by_shard.size(); ++s) {
        acc.merge(by_shard[s]);
    }
    return finalize_pwcet_campaign(acc, expected.et_isolation, expected.nr,
                                   options.exceedance);
}

}  // namespace rrb
