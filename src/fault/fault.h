// Deterministic fault injection: the testing twin of src/obs/.
//
// Long checkpointed campaigns die in ways unit tests never exercise —
// a disk fills mid-checkpoint, a worker throws on one shard of one
// campaign, an fsync fails under memory pressure. This module lets
// tests and CI *schedule* those failures deterministically, at named
// sites the production code declares, so the recovery machinery
// (crash-safe checkpoint writes, the supervised scheduler, resume
// quarantine) can be proven correct by differential test instead of
// trusted by inspection.
//
// Design, mirroring src/obs/telemetry.h exactly:
//
//   * Disarmed is the default and costs one relaxed atomic load per
//     hook (`should_fire` returns false without touching the
//     injector). Every site sits off the per-run hot path — saves,
//     shard boundaries, decode — so campaigns are bit-identical and
//     hot-path rate is unchanged whether the hooks exist or not
//     (tests/test_fault.cpp asserts the bit-identity the same way
//     tests/test_telemetry.cpp does for counters).
//   * Compiling with RRB_NO_FAULTS removes even the load: the hooks
//     become constant-false inline functions and the optimizer deletes
//     the failure branches.
//   * Armed evaluation is deliberately boring: a mutex-guarded rule
//     walk. Sites fire at most once per shard / save / campaign, never
//     per run, so correctness (and TSan cleanliness) beats lock-free
//     cleverness here.
//
// Faults are armed from a spec string — by tests through
// `FaultInjector::instance().arm(spec)`, or for whole-process smoke
// tests through the `RRB_FAULTS` environment variable, which the CLI
// reads once per `cli::run` (see ScopedEnvArm). Spec grammar, entries
// comma-separated:
//
//   spec    := entry ("," entry)*
//   entry   := "seed=" N            set the injector seed (rate mode)
//            | site ["@" KEY] [":" trigger]
//   trigger := "*"                  fire on every matching evaluation
//            | FIRST ["+" COUNT]    fire on matching evaluations
//                                   [FIRST, FIRST+COUNT), 1-based;
//                                   COUNT defaults to 1
//            | "~" RATE             fire when the seed-derived hash of
//                                   the evaluation index is 0 mod RATE
//
// No trigger means "*". "@KEY" restricts a rule to evaluations carrying
// that key; a rule without "@" matches every key. What the key means is
// the site's contract: scheduler sites (shard-throw, transient-io) are
// keyed by campaign index in submission order, the engine reduce
// evaluates shard-throw keyed by plan shard index, checkpoint sites by
// save sequence number, decode-overflow by decode sequence number.
//
// Examples:
//   RRB_FAULTS='shard-throw@1:1'        first work item of campaign 1
//                                       throws; campaigns 0, 2, ... run
//                                       to completion
//   RRB_FAULTS='transient-io@0:1+2'     campaign 0's first item fails
//                                       twice, then succeeds — exercises
//                                       the scheduler's retry budget
//   RRB_FAULTS='ckpt-truncate:1'        the next checkpoint save tears
//                                       its temp file and "crashes"
//   RRB_FAULTS='seed=9,decode-overflow:~3'
//                                       roughly every third decode
//                                       overflows, chosen by seed 9
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

namespace rrb::fault {

/// Named injection sites. Each is declared by exactly one (or, for
/// kShardThrow, two — scheduler and engine reduce) production call
/// sites; the comment names the failure it simulates and the key the
/// site evaluates with.
enum class Site : unsigned {
    kCheckpointTruncate = 0,  ///< crash mid-write: torn temp file left
                              ///< behind (key: save sequence number)
    kCheckpointFsync,         ///< fsync of the temp file fails (key:
                              ///< save sequence number)
    kCheckpointRename,        ///< rename into place fails (key: save
                              ///< sequence number)
    kShardThrow,              ///< worker throws mid-campaign (key:
                              ///< campaign index in the scheduler,
                              ///< plan shard index in engine reduce)
    kDecodeOverflow,          ///< replay decode reports overflow and
                              ///< falls back to the interpreter (key:
                              ///< decode sequence number)
    kTransientIo,             ///< retryable transient failure, thrown
                              ///< as TransientError (key: campaign
                              ///< index in the scheduler)
    kSiteCount
};

/// Stable spec-grammar token for a site ("ckpt-truncate", ...).
[[nodiscard]] const char* site_name(Site s) noexcept;

/// The retryable failure class: the supervised scheduler retries a
/// work item that throws TransientError up to its bounded budget
/// before declaring the campaign failed. Anything else fails the
/// campaign on the first throw.
class TransientError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

#if !defined(RRB_NO_FAULTS)

namespace detail {
/// Process-wide armed flag; `should_fire`'s only cost while disarmed.
extern std::atomic<bool> g_armed;
}  // namespace detail

/// True when a fault spec is armed. One relaxed load.
[[nodiscard]] inline bool armed() noexcept {
    return detail::g_armed.load(std::memory_order_relaxed);
}

/// The process-wide injector. A leaked singleton like
/// obs::TelemetryRegistry: hooks deep in the engine may evaluate during
/// static teardown of whoever armed it.
class FaultInjector {
public:
    static FaultInjector& instance();

    /// Parses and arms `spec` (grammar above), replacing any armed
    /// rules and resetting all counters. Throws std::invalid_argument
    /// naming the offending entry on a malformed spec.
    void arm(const std::string& spec);

    /// Disarms every rule. Rules and their counters stay readable
    /// until the next arm().
    void disarm();

    /// Evaluates `site` with `key`: bumps the evaluation count of every
    /// matching rule and returns true when any rule fires. Called by
    /// the should_fire hook only while armed.
    [[nodiscard]] bool evaluate(Site site, std::uint64_t key) noexcept;

    /// Matching evaluations / fires so far, summed over `site`'s rules.
    [[nodiscard]] std::uint64_t evaluations(Site site) const;
    [[nodiscard]] std::uint64_t fired(Site site) const;

private:
    struct Rule {
        Site site = Site::kSiteCount;
        bool has_key = false;
        std::uint64_t key = 0;
        enum Mode { kAlways, kWindow, kRate } mode = kAlways;
        std::uint64_t first = 1;   ///< window: 1-based first firing eval
        std::uint64_t count = 1;   ///< window: number of firing evals
        std::uint64_t rate = 1;    ///< rate: fire when hash % rate == 0
        std::uint64_t evaluations = 0;
        std::uint64_t fired = 0;
    };

    FaultInjector() = default;

    mutable std::mutex mutex_;
    std::vector<Rule> rules_;
    std::uint64_t seed_ = 0;
};

/// The production hook: false after one relaxed load while disarmed;
/// otherwise asks the injector whether a rule fires for (site, key).
/// Never throws — the *call site* decides what failure to simulate.
[[nodiscard]] inline bool should_fire(Site site,
                                      std::uint64_t key = 0) noexcept {
    if (!armed()) return false;
    return FaultInjector::instance().evaluate(site, key);
}

#else  // RRB_NO_FAULTS: hooks compile to constant false.

[[nodiscard]] inline bool armed() noexcept { return false; }

[[nodiscard]] inline bool should_fire(Site /*site*/,
                                      std::uint64_t /*key*/ = 0) noexcept {
    return false;
}

#endif  // RRB_NO_FAULTS

/// RAII env arming for whole-process runs: arms from the RRB_FAULTS
/// environment variable when it is set and non-empty, and disarms on
/// destruction *only if this scope armed* — a test that armed the
/// injector programmatically before calling cli::run keeps its rules.
/// A malformed RRB_FAULTS throws std::invalid_argument out of the
/// constructor (the CLI maps it to a usage error, exit 1).
class ScopedEnvArm {
public:
    ScopedEnvArm();
    ~ScopedEnvArm();

    ScopedEnvArm(const ScopedEnvArm&) = delete;
    ScopedEnvArm& operator=(const ScopedEnvArm&) = delete;

private:
    bool armed_here_ = false;
};

}  // namespace rrb::fault
