#include "fault/fault.h"

#include <cstdlib>

namespace rrb::fault {

const char* site_name(Site s) noexcept {
    switch (s) {
        case Site::kCheckpointTruncate: return "ckpt-truncate";
        case Site::kCheckpointFsync: return "ckpt-fsync";
        case Site::kCheckpointRename: return "ckpt-rename";
        case Site::kShardThrow: return "shard-throw";
        case Site::kDecodeOverflow: return "decode-overflow";
        case Site::kTransientIo: return "transient-io";
        case Site::kSiteCount: break;
    }
    return "unknown";
}

#if !defined(RRB_NO_FAULTS)

namespace detail {
std::atomic<bool> g_armed{false};
}  // namespace detail

namespace {

/// SplitMix64 finalizer — the same mixer the engine derives per-run
/// seeds with, re-stated locally so fault/ stays a leaf module with no
/// dependency on engine/.
std::uint64_t mix64(std::uint64_t x) noexcept {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

[[noreturn]] void malformed(const std::string& entry,
                            const std::string& why) {
    throw std::invalid_argument("malformed fault spec entry '" + entry +
                                "': " + why);
}

std::uint64_t parse_u64(const std::string& entry, const std::string& text,
                        const std::string& what) {
    if (text.empty()) malformed(entry, what + " is empty");
    std::uint64_t value = 0;
    for (const char c : text) {
        if (c < '0' || c > '9') {
            malformed(entry, what + " '" + text + "' is not a number");
        }
        value = value * 10 + static_cast<std::uint64_t>(c - '0');
    }
    return value;
}

}  // namespace

FaultInjector& FaultInjector::instance() {
    // Leaked: hooks may evaluate during static teardown.
    static FaultInjector* injector = new FaultInjector();
    return *injector;
}

void FaultInjector::arm(const std::string& spec) {
    // Parse into locals first: a malformed spec must leave the
    // previously armed rules untouched.
    std::vector<Rule> rules;
    std::uint64_t seed = 0;
    std::size_t begin = 0;
    while (begin <= spec.size()) {
        std::size_t end = spec.find(',', begin);
        if (end == std::string::npos) end = spec.size();
        const std::string entry = spec.substr(begin, end - begin);
        begin = end + 1;
        if (entry.empty()) {
            if (spec.empty()) break;
            malformed(spec, "empty entry");
        }
        if (entry.rfind("seed=", 0) == 0) {
            seed = parse_u64(entry, entry.substr(5), "seed");
            continue;
        }
        Rule rule;
        std::string head = entry;
        const std::size_t colon = head.find(':');
        std::string trigger = "*";
        if (colon != std::string::npos) {
            trigger = head.substr(colon + 1);
            head = head.substr(0, colon);
        }
        const std::size_t at = head.find('@');
        if (at != std::string::npos) {
            rule.has_key = true;
            rule.key = parse_u64(entry, head.substr(at + 1), "key");
            head = head.substr(0, at);
        }
        rule.site = Site::kSiteCount;
        for (unsigned s = 0; s < static_cast<unsigned>(Site::kSiteCount);
             ++s) {
            if (head == site_name(static_cast<Site>(s))) {
                rule.site = static_cast<Site>(s);
                break;
            }
        }
        if (rule.site == Site::kSiteCount) {
            malformed(entry, "unknown site '" + head + "'");
        }
        if (trigger == "*") {
            rule.mode = Rule::kAlways;
        } else if (!trigger.empty() && trigger.front() == '~') {
            rule.mode = Rule::kRate;
            rule.rate = parse_u64(entry, trigger.substr(1), "rate");
            if (rule.rate == 0) malformed(entry, "rate must be >= 1");
        } else {
            rule.mode = Rule::kWindow;
            const std::size_t plus = trigger.find('+');
            if (plus == std::string::npos) {
                rule.first = parse_u64(entry, trigger, "first");
                rule.count = 1;
            } else {
                rule.first =
                    parse_u64(entry, trigger.substr(0, plus), "first");
                rule.count =
                    parse_u64(entry, trigger.substr(plus + 1), "count");
            }
            if (rule.first == 0) {
                malformed(entry, "first is 1-based, must be >= 1");
            }
        }
        rules.push_back(rule);
    }
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        rules_ = std::move(rules);
        seed_ = seed;
    }
    detail::g_armed.store(!spec.empty(), std::memory_order_relaxed);
}

void FaultInjector::disarm() {
    detail::g_armed.store(false, std::memory_order_relaxed);
}

bool FaultInjector::evaluate(Site site, std::uint64_t key) noexcept {
    const std::lock_guard<std::mutex> lock(mutex_);
    bool fire = false;
    for (Rule& rule : rules_) {
        if (rule.site != site) continue;
        if (rule.has_key && rule.key != key) continue;
        const std::uint64_t index = ++rule.evaluations;  // 1-based
        bool hit = false;
        switch (rule.mode) {
            case Rule::kAlways:
                hit = true;
                break;
            case Rule::kWindow:
                hit = index >= rule.first &&
                      index < rule.first + rule.count;
                break;
            case Rule::kRate:
                hit = mix64(seed_ ^
                            (static_cast<std::uint64_t>(site) << 32) ^
                            index) %
                          rule.rate ==
                      0;
                break;
        }
        if (hit) {
            ++rule.fired;
            fire = true;
        }
    }
    return fire;
}

std::uint64_t FaultInjector::evaluations(Site site) const {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t total = 0;
    for (const Rule& rule : rules_) {
        if (rule.site == site) total += rule.evaluations;
    }
    return total;
}

std::uint64_t FaultInjector::fired(Site site) const {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t total = 0;
    for (const Rule& rule : rules_) {
        if (rule.site == site) total += rule.fired;
    }
    return total;
}

ScopedEnvArm::ScopedEnvArm() {
    if (armed()) return;  // a test armed programmatically; keep it
    const char* spec = std::getenv("RRB_FAULTS");
    if (spec == nullptr || *spec == '\0') return;
    FaultInjector::instance().arm(spec);
    armed_here_ = true;
}

ScopedEnvArm::~ScopedEnvArm() {
    if (armed_here_) FaultInjector::instance().disarm();
}

#else  // RRB_NO_FAULTS

ScopedEnvArm::ScopedEnvArm() = default;
ScopedEnvArm::~ScopedEnvArm() = default;

#endif  // RRB_NO_FAULTS

}  // namespace rrb::fault
