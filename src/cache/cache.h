// Set-associative cache model (functional: state + hit/miss, no timing —
// latency is charged by the components that own the cache).
//
// Models the NGMP memory hierarchy pieces the paper fixes:
//   IL1/DL1: 16KB, 4-way, 32-byte lines, LRU; DL1 is write-through
//   no-allocate.
//   L2: 256KB, 4-way, LRU, way-partitioned one way per core (see
//   partitioned_cache.h).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/rng.h"
#include "sim/types.h"

namespace rrb {

struct CacheGeometry {
    std::uint64_t size_bytes = 16 * 1024;
    std::uint32_t ways = 4;
    std::uint32_t line_bytes = 32;

    [[nodiscard]] std::uint64_t num_sets() const noexcept {
        return size_bytes / (static_cast<std::uint64_t>(ways) * line_bytes);
    }
    [[nodiscard]] Addr line_of(Addr addr) const noexcept {
        return addr / line_bytes;
    }
    [[nodiscard]] std::uint64_t set_of(Addr addr) const noexcept {
        return line_of(addr) % num_sets();
    }
    [[nodiscard]] std::uint64_t tag_of(Addr addr) const noexcept {
        return line_of(addr) / num_sets();
    }
    /// Byte distance between two addresses mapping to the same set.
    [[nodiscard]] std::uint64_t set_stride() const noexcept {
        return num_sets() * line_bytes;
    }
    /// Throws std::invalid_argument when sizes are inconsistent or not
    /// powers of two.
    void validate() const;
};

/// kPlru is the tree-based pseudo-LRU found in many real cores; it needs
/// a power-of-two way count. The rsk construction (W+1 same-set lines)
/// defeats it just like true LRU for sequential access patterns.
enum class ReplacementPolicy : std::uint8_t { kLru, kFifo, kRandom, kPlru };
enum class WritePolicy : std::uint8_t { kWriteThrough, kWriteBack };
enum class AllocPolicy : std::uint8_t { kWriteAllocate, kNoWriteAllocate };

struct CacheStats {
    std::uint64_t read_hits = 0;
    std::uint64_t read_misses = 0;
    std::uint64_t write_hits = 0;
    std::uint64_t write_misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t writebacks = 0;

    [[nodiscard]] std::uint64_t hits() const noexcept {
        return read_hits + write_hits;
    }
    [[nodiscard]] std::uint64_t misses() const noexcept {
        return read_misses + write_misses;
    }
    [[nodiscard]] std::uint64_t accesses() const noexcept {
        return hits() + misses();
    }
    [[nodiscard]] double miss_ratio() const noexcept {
        return accesses() == 0 ? 0.0
                               : static_cast<double>(misses()) /
                                     static_cast<double>(accesses());
    }
};

/// Outcome of one access.
struct CacheAccess {
    bool hit = false;
    bool allocated = false;           ///< a line was filled by this access
    bool dirty_eviction = false;      ///< an eviction required a writeback
    std::optional<Addr> victim_line;  ///< line address evicted, if any
};

class Cache {
public:
    Cache(CacheGeometry geometry, ReplacementPolicy replacement,
          WritePolicy write_policy, AllocPolicy alloc_policy,
          std::uint64_t rng_seed = 1);

    /// Performs a read; on miss the line is allocated (the caller charges
    /// the fill latency / bus traffic).
    CacheAccess read(Addr addr);

    /// read() for callers that only need the hit/miss outcome (the L1s:
    /// write-through, so victim information is never consumed). Same
    /// state transitions and statistics, no access-record materialized.
    bool read_hit(Addr addr) {
        const std::uint64_t set = set_of(addr);
        const std::uint64_t tag = tag_of(addr);
        if (const auto way = find_way(set, tag)) {
            ++stats_.read_hits;
            touch(set, *way);
            return true;
        }
        ++stats_.read_misses;
        (void)install(set, tag, /*dirty=*/false);
        return false;
    }

    /// Performs a write. Write-through no-allocate: miss does not fill.
    /// Write-back write-allocate: miss fills and marks dirty.
    CacheAccess write(Addr addr);

    /// Hit test without touching replacement state.
    [[nodiscard]] bool probe(Addr addr) const;

    /// Monotone access counter: bumps on every replacement-state change
    /// (LRU touch, install). Callers that memoize "this line hit last
    /// time" revalidate against it — an unchanged tick proves no other
    /// line was touched or installed since, so the memoized line is
    /// still resident and still most-recently-used.
    [[nodiscard]] std::uint64_t access_tick() const noexcept {
        return tick_;
    }

    /// Fast path for re-reading the line that produced the most recent
    /// hit, guarded by access_tick(): counts the hit and skips lookup
    /// and replacement update. Exact: re-touching the MRU entry never
    /// changes the relative recency order (LRU) and re-pointing PLRU
    /// bits away from the already-protected way is idempotent, so every
    /// later victim choice is identical to the full read() path.
    void read_repeat_hit() noexcept { ++stats_.read_hits; }

    /// Drops every line (power-on state).
    void flush();

    /// Full power-on restore without reallocation: every line invalid,
    /// replacement state (LRU ticks, PLRU bits, random-victim RNG)
    /// re-seeded to construction values, statistics zeroed. After
    /// reset() the cache is bit-identical to a freshly constructed one
    /// — the property Machine::reset() needs for reused machines.
    void reset();

    /// Pre-loads a line without counting statistics (test setup / warmup).
    void warm(Addr addr);

    [[nodiscard]] const CacheStats& stats() const noexcept { return stats_; }
    void reset_stats() noexcept { stats_ = {}; }
    [[nodiscard]] const CacheGeometry& geometry() const noexcept {
        return geometry_;
    }

    /// Replay-mode statistics injection (src/replay): a replaying core
    /// skips the functional lookups and re-applies the pre-decoded
    /// outcome counts instead. Statistics only — tag/replacement state
    /// is deliberately untouched (the replaying core never reads it).
    void replay_read_hits(std::uint64_t n) noexcept {
        stats_.read_hits += n;
    }
    void replay_read_miss(bool evicted) noexcept {
        ++stats_.read_misses;
        if (evicted) ++stats_.evictions;
    }
    void replay_write(bool hit) noexcept {
        if (hit) {
            ++stats_.write_hits;
        } else {
            ++stats_.write_misses;
        }
    }

    /// Canonical hash of the functional state: per-line validity and
    /// tags, replacement state in a representation-independent form
    /// (LRU/FIFO orders as per-set ranks, not absolute ticks; PLRU
    /// bits; the victim RNG state), and nothing else. Two caches with
    /// equal fingerprints produce identical outcome sequences for any
    /// identical future access stream. Statistics are excluded. Used by
    /// the replay decoder's loop detection (src/replay/decode.cpp).
    [[nodiscard]] std::uint64_t state_fingerprint() const;

private:
    // Structure-of-arrays line storage: the lookup path scans only the
    // packed 12-byte/line {tag, valid_gen} pair — 8-byte tags and
    // 4-byte generations in parallel arrays, so a 2048-set L2
    // partition's lookup state fits a host L1d comfortably — while
    // replacement metadata (order, dirty) lives in a separate array
    // touched only on hits-with-update and installs.
    struct LineMeta {
        std::uint64_t order = 0;  ///< LRU timestamp or FIFO insertion tick
        bool dirty = false;
    };

    /// Index into the way array of the hit line, if present. Defined in
    /// the header so the read fast paths inline it.
    [[nodiscard]] std::optional<std::uint32_t> find_way(
        std::uint64_t set, std::uint64_t tag) const {
        const std::uint64_t* tags = &tags_[line_index(set, 0)];
        const std::uint32_t* gens = &valid_gen_[line_index(set, 0)];
        for (std::uint32_t w = 0; w < geometry_.ways; ++w) {
            if (gens[w] == generation_ && tags[w] == tag) return w;
        }
        return std::nullopt;
    }
    /// Tree-PLRU helpers (policy kPlru only).
    [[nodiscard]] std::uint32_t plru_victim(std::uint64_t set) const;
    void plru_touch(std::uint64_t set, std::uint32_t way);
    /// Updates replacement metadata after a hit or install.
    void touch(std::uint64_t set, std::uint32_t way);
    /// Chooses a victim way in the set according to the replacement policy.
    [[nodiscard]] std::uint32_t choose_victim(std::uint64_t set);
    /// Installs a tag into a way, returning eviction info.
    CacheAccess install(std::uint64_t set, std::uint64_t tag, bool dirty);

    [[nodiscard]] std::size_t line_index(std::uint64_t set,
                                         std::uint32_t way) const noexcept {
        return set * geometry_.ways + way;
    }

    // Shift/mask forms of the geometry's line/set/tag arithmetic,
    // precomputed once (line_bytes and num_sets are validated powers of
    // two). The access path runs these per simulated instruction; the
    // generic division forms in CacheGeometry cost a hardware divide
    // each.
    [[nodiscard]] std::uint64_t line_of(Addr addr) const noexcept {
        return addr >> line_shift_;
    }
    [[nodiscard]] std::uint64_t set_of(Addr addr) const noexcept {
        return line_of(addr) & set_mask_;
    }
    [[nodiscard]] std::uint64_t tag_of(Addr addr) const noexcept {
        return line_of(addr) >> set_shift_;
    }

    CacheGeometry geometry_;
    std::uint32_t line_shift_ = 0;  ///< log2(line_bytes)
    std::uint32_t set_shift_ = 0;   ///< log2(num_sets)
    std::uint64_t set_mask_ = 0;    ///< num_sets - 1
    /// Lines with valid_gen_ == this are live. flush() bumps the
    /// generation instead of touching every line, making the per-run
    /// cache invalidation of reused machines O(1); on the (rare) u32
    /// wrap the array is cleared in full so stale generations can never
    /// alias back to validity.
    std::uint32_t generation_ = 1;
    ReplacementPolicy replacement_;
    WritePolicy write_policy_;
    AllocPolicy alloc_policy_;
    std::vector<std::uint64_t> tags_;
    std::vector<std::uint32_t> valid_gen_;
    std::vector<LineMeta> meta_;
    std::vector<std::uint32_t> plru_bits_;  ///< one tree per set (kPlru)
    std::uint64_t tick_ = 0;  ///< monotonically increasing access counter
    std::uint64_t rng_seed_;  ///< construction seed, for reset()
    Pcg32 rng_;
    CacheStats stats_;
};

}  // namespace rrb
