// Set-associative cache model (functional: state + hit/miss, no timing —
// latency is charged by the components that own the cache).
//
// Models the NGMP memory hierarchy pieces the paper fixes:
//   IL1/DL1: 16KB, 4-way, 32-byte lines, LRU; DL1 is write-through
//   no-allocate.
//   L2: 256KB, 4-way, LRU, way-partitioned one way per core (see
//   partitioned_cache.h).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/rng.h"
#include "sim/types.h"

namespace rrb {

struct CacheGeometry {
    std::uint64_t size_bytes = 16 * 1024;
    std::uint32_t ways = 4;
    std::uint32_t line_bytes = 32;

    [[nodiscard]] std::uint64_t num_sets() const noexcept {
        return size_bytes / (static_cast<std::uint64_t>(ways) * line_bytes);
    }
    [[nodiscard]] Addr line_of(Addr addr) const noexcept {
        return addr / line_bytes;
    }
    [[nodiscard]] std::uint64_t set_of(Addr addr) const noexcept {
        return line_of(addr) % num_sets();
    }
    [[nodiscard]] std::uint64_t tag_of(Addr addr) const noexcept {
        return line_of(addr) / num_sets();
    }
    /// Byte distance between two addresses mapping to the same set.
    [[nodiscard]] std::uint64_t set_stride() const noexcept {
        return num_sets() * line_bytes;
    }
    /// Throws std::invalid_argument when sizes are inconsistent or not
    /// powers of two.
    void validate() const;
};

/// kPlru is the tree-based pseudo-LRU found in many real cores; it needs
/// a power-of-two way count. The rsk construction (W+1 same-set lines)
/// defeats it just like true LRU for sequential access patterns.
enum class ReplacementPolicy : std::uint8_t { kLru, kFifo, kRandom, kPlru };
enum class WritePolicy : std::uint8_t { kWriteThrough, kWriteBack };
enum class AllocPolicy : std::uint8_t { kWriteAllocate, kNoWriteAllocate };

struct CacheStats {
    std::uint64_t read_hits = 0;
    std::uint64_t read_misses = 0;
    std::uint64_t write_hits = 0;
    std::uint64_t write_misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t writebacks = 0;

    [[nodiscard]] std::uint64_t hits() const noexcept {
        return read_hits + write_hits;
    }
    [[nodiscard]] std::uint64_t misses() const noexcept {
        return read_misses + write_misses;
    }
    [[nodiscard]] std::uint64_t accesses() const noexcept {
        return hits() + misses();
    }
    [[nodiscard]] double miss_ratio() const noexcept {
        return accesses() == 0 ? 0.0
                               : static_cast<double>(misses()) /
                                     static_cast<double>(accesses());
    }
};

/// Outcome of one access.
struct CacheAccess {
    bool hit = false;
    bool allocated = false;           ///< a line was filled by this access
    bool dirty_eviction = false;      ///< an eviction required a writeback
    std::optional<Addr> victim_line;  ///< line address evicted, if any
};

class Cache {
public:
    Cache(CacheGeometry geometry, ReplacementPolicy replacement,
          WritePolicy write_policy, AllocPolicy alloc_policy,
          std::uint64_t rng_seed = 1);

    /// Performs a read; on miss the line is allocated (the caller charges
    /// the fill latency / bus traffic).
    CacheAccess read(Addr addr);

    /// Performs a write. Write-through no-allocate: miss does not fill.
    /// Write-back write-allocate: miss fills and marks dirty.
    CacheAccess write(Addr addr);

    /// Hit test without touching replacement state.
    [[nodiscard]] bool probe(Addr addr) const;

    /// Drops every line (power-on state).
    void flush();

    /// Pre-loads a line without counting statistics (test setup / warmup).
    void warm(Addr addr);

    [[nodiscard]] const CacheStats& stats() const noexcept { return stats_; }
    void reset_stats() noexcept { stats_ = {}; }
    [[nodiscard]] const CacheGeometry& geometry() const noexcept {
        return geometry_;
    }

private:
    struct Line {
        std::uint64_t tag = 0;
        bool valid = false;
        bool dirty = false;
        std::uint64_t order = 0;  ///< LRU timestamp or FIFO insertion tick
    };

    /// Index into the way array of the hit line, if present.
    [[nodiscard]] std::optional<std::uint32_t> find_way(std::uint64_t set,
                                                        std::uint64_t tag) const;
    /// Tree-PLRU helpers (policy kPlru only).
    [[nodiscard]] std::uint32_t plru_victim(std::uint64_t set) const;
    void plru_touch(std::uint64_t set, std::uint32_t way);
    /// Updates replacement metadata after a hit or install.
    void touch(std::uint64_t set, std::uint32_t way);
    /// Chooses a victim way in the set according to the replacement policy.
    [[nodiscard]] std::uint32_t choose_victim(std::uint64_t set);
    /// Installs a tag into a way, returning eviction info.
    CacheAccess install(std::uint64_t set, std::uint64_t tag, bool dirty);

    Line& line_at(std::uint64_t set, std::uint32_t way) {
        return lines_[set * geometry_.ways + way];
    }
    const Line& line_at(std::uint64_t set, std::uint32_t way) const {
        return lines_[set * geometry_.ways + way];
    }

    CacheGeometry geometry_;
    ReplacementPolicy replacement_;
    WritePolicy write_policy_;
    AllocPolicy alloc_policy_;
    std::vector<Line> lines_;
    std::vector<std::uint32_t> plru_bits_;  ///< one tree per set (kPlru)
    std::uint64_t tick_ = 0;  ///< monotonically increasing access counter
    Pcg32 rng_;
    CacheStats stats_;
};

}  // namespace rrb
