// Way-partitioned shared cache, NGMP style.
//
// The paper's setup: "The shared second level (L2) cache is split among
// cores with each core receiving one way of the 256KB 4-way L2. Hence,
// contention only happens on the bus and the memory controller."
//
// Way partitioning keeps the set count of the full cache but gives each
// core a private slice of the ways, so per-core behaviour is that of a
// smaller cache with the same sets and `ways_per_core` ways, and no
// cross-core eviction interference is possible by construction.
#pragma once

#include <cstdint>
#include <vector>

#include "cache/cache.h"
#include "sim/types.h"

namespace rrb {

class WayPartitionedCache {
public:
    /// Builds per-core partitions from the full geometry. Requires that
    /// `full.ways` is divisible by the number of cores.
    WayPartitionedCache(CacheGeometry full, CoreId num_cores,
                        ReplacementPolicy replacement, WritePolicy write_policy,
                        AllocPolicy alloc_policy, std::uint64_t rng_seed = 1);

    CacheAccess read(CoreId core, Addr addr);
    CacheAccess write(CoreId core, Addr addr);
    [[nodiscard]] bool probe(CoreId core, Addr addr) const;
    /// Installs a line without counting statistics (warm-up support).
    void warm(CoreId core, Addr addr);
    void flush();
    /// Power-on restore of every partition (see Cache::reset).
    void reset();

    [[nodiscard]] const CacheStats& stats(CoreId core) const;
    [[nodiscard]] CacheStats total_stats() const;

    [[nodiscard]] CoreId num_cores() const noexcept {
        return static_cast<CoreId>(partitions_.size());
    }
    [[nodiscard]] const CacheGeometry& partition_geometry() const noexcept {
        return partition_geometry_;
    }
    [[nodiscard]] std::uint32_t ways_per_core() const noexcept {
        return partition_geometry_.ways;
    }
    /// Victim-RNG seed of `core`'s partition (base seed + core). The
    /// replay decoder constructs its partition replica from this so a
    /// kRandom-replacement partition evicts identically.
    [[nodiscard]] std::uint64_t partition_rng_seed(CoreId core) const noexcept {
        return base_rng_seed_ + core;
    }

    /// Statistics-only injection for replay mode (Cache::replay_*): the
    /// replaying core re-applies the baked outcome of one partition read
    /// without touching tag/replacement state — which it never consults.
    void replay_read(CoreId core, bool hit, bool evicted) noexcept {
        Cache& p = partitions_[core];
        if (hit) {
            p.replay_read_hits(1);
        } else {
            p.replay_read_miss(evicted);
        }
    }

private:
    CacheGeometry partition_geometry_;
    std::vector<Cache> partitions_;
    std::uint64_t base_rng_seed_ = 1;
};

}  // namespace rrb
