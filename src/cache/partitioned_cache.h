// Way-partitioned shared cache, NGMP style.
//
// The paper's setup: "The shared second level (L2) cache is split among
// cores with each core receiving one way of the 256KB 4-way L2. Hence,
// contention only happens on the bus and the memory controller."
//
// Way partitioning keeps the set count of the full cache but gives each
// core a private slice of the ways, so per-core behaviour is that of a
// smaller cache with the same sets and `ways_per_core` ways, and no
// cross-core eviction interference is possible by construction.
#pragma once

#include <cstdint>
#include <vector>

#include "cache/cache.h"
#include "sim/types.h"

namespace rrb {

class WayPartitionedCache {
public:
    /// Builds per-core partitions from the full geometry. Requires that
    /// `full.ways` is divisible by the number of cores.
    WayPartitionedCache(CacheGeometry full, CoreId num_cores,
                        ReplacementPolicy replacement, WritePolicy write_policy,
                        AllocPolicy alloc_policy, std::uint64_t rng_seed = 1);

    CacheAccess read(CoreId core, Addr addr);
    CacheAccess write(CoreId core, Addr addr);
    [[nodiscard]] bool probe(CoreId core, Addr addr) const;
    /// Installs a line without counting statistics (warm-up support).
    void warm(CoreId core, Addr addr);
    void flush();
    /// Power-on restore of every partition (see Cache::reset).
    void reset();

    [[nodiscard]] const CacheStats& stats(CoreId core) const;
    [[nodiscard]] CacheStats total_stats() const;

    [[nodiscard]] CoreId num_cores() const noexcept {
        return static_cast<CoreId>(partitions_.size());
    }
    [[nodiscard]] const CacheGeometry& partition_geometry() const noexcept {
        return partition_geometry_;
    }
    [[nodiscard]] std::uint32_t ways_per_core() const noexcept {
        return partition_geometry_.ways;
    }

private:
    CacheGeometry partition_geometry_;
    std::vector<Cache> partitions_;
};

}  // namespace rrb
