#include "cache/cache.h"

#include <algorithm>
#include <bit>

#include "sim/contract.h"
#include "sim/fnv.h"

namespace rrb {

namespace {

bool is_pow2(std::uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

}  // namespace

void CacheGeometry::validate() const {
    RRB_REQUIRE(line_bytes >= 4 && is_pow2(line_bytes),
                "line size must be a power of two >= 4");
    RRB_REQUIRE(ways >= 1, "at least one way");
    RRB_REQUIRE(size_bytes >= static_cast<std::uint64_t>(ways) * line_bytes,
                "cache must hold at least one line per way");
    RRB_REQUIRE(size_bytes % (static_cast<std::uint64_t>(ways) * line_bytes) ==
                    0,
                "size must be a multiple of ways*line");
    RRB_REQUIRE(is_pow2(num_sets()), "number of sets must be a power of two");
}

Cache::Cache(CacheGeometry geometry, ReplacementPolicy replacement,
             WritePolicy write_policy, AllocPolicy alloc_policy,
             std::uint64_t rng_seed)
    : geometry_(geometry),
      replacement_(replacement),
      write_policy_(write_policy),
      alloc_policy_(alloc_policy),
      rng_seed_(rng_seed),
      rng_(rng_seed) {
    geometry_.validate();
    line_shift_ = static_cast<std::uint32_t>(
        std::countr_zero(static_cast<std::uint64_t>(geometry_.line_bytes)));
    set_shift_ = static_cast<std::uint32_t>(
        std::countr_zero(geometry_.num_sets()));
    set_mask_ = geometry_.num_sets() - 1;
    tags_.resize(geometry_.num_sets() * geometry_.ways);
    valid_gen_.resize(geometry_.num_sets() * geometry_.ways);
    meta_.resize(geometry_.num_sets() * geometry_.ways);
    if (replacement_ == ReplacementPolicy::kPlru) {
        RRB_REQUIRE(is_pow2(geometry_.ways) && geometry_.ways <= 32,
                    "tree-PLRU needs a power-of-two way count <= 32");
        plru_bits_.assign(geometry_.num_sets(), 0);
    }
}

std::uint32_t Cache::plru_victim(std::uint64_t set) const {
    const std::uint32_t bits = plru_bits_[set];
    std::uint32_t node = 0;
    std::uint32_t lo = 0;
    std::uint32_t size = geometry_.ways;
    while (size > 1) {
        const bool go_right = (bits >> node) & 1u;
        size /= 2;
        if (go_right) {
            lo += size;
            node = 2 * node + 2;
        } else {
            node = 2 * node + 1;
        }
    }
    return lo;
}

void Cache::plru_touch(std::uint64_t set, std::uint32_t way) {
    std::uint32_t& bits = plru_bits_[set];
    std::uint32_t node = 0;
    std::uint32_t lo = 0;
    std::uint32_t size = geometry_.ways;
    while (size > 1) {
        size /= 2;
        const bool in_right = way >= lo + size;
        if (in_right) {
            bits &= ~(1u << node);  // point the victim path left
            lo += size;
            node = 2 * node + 2;
        } else {
            bits |= (1u << node);  // point the victim path right
            node = 2 * node + 1;
        }
    }
}

void Cache::touch(std::uint64_t set, std::uint32_t way) {
    switch (replacement_) {
        case ReplacementPolicy::kLru:
            meta_[line_index(set, way)].order = ++tick_;
            break;
        case ReplacementPolicy::kPlru:
            plru_touch(set, way);
            break;
        case ReplacementPolicy::kFifo:
        case ReplacementPolicy::kRandom:
            break;  // hits do not update state
    }
}

std::uint32_t Cache::choose_victim(std::uint64_t set) {
    // Prefer an invalid way.
    const std::uint32_t* gens = &valid_gen_[line_index(set, 0)];
    for (std::uint32_t w = 0; w < geometry_.ways; ++w) {
        if (gens[w] != generation_) return w;
    }
    switch (replacement_) {
        case ReplacementPolicy::kLru:
        case ReplacementPolicy::kFifo: {
            // Smallest order = least recently used / first inserted.
            const LineMeta* metas = &meta_[line_index(set, 0)];
            std::uint32_t victim = 0;
            for (std::uint32_t w = 1; w < geometry_.ways; ++w) {
                if (metas[w].order < metas[victim].order) victim = w;
            }
            return victim;
        }
        case ReplacementPolicy::kRandom:
            return rng_.next_below(geometry_.ways);
        case ReplacementPolicy::kPlru:
            return plru_victim(set);
    }
    RRB_ENSURE(false);
}

CacheAccess Cache::install(std::uint64_t set, std::uint64_t tag, bool dirty) {
    CacheAccess result;
    const std::uint32_t way = choose_victim(set);
    const std::size_t idx = line_index(set, way);
    LineMeta& m = meta_[idx];
    if (valid_gen_[idx] == generation_) {
        ++stats_.evictions;
        result.victim_line = (tags_[idx] << set_shift_) + set;
        if (m.dirty) {
            ++stats_.writebacks;
            result.dirty_eviction = true;
        }
    }
    valid_gen_[idx] = generation_;
    tags_[idx] = tag;
    m.dirty = dirty;
    m.order = ++tick_;
    if (replacement_ == ReplacementPolicy::kPlru) plru_touch(set, way);
    result.allocated = true;
    return result;
}

CacheAccess Cache::read(Addr addr) {
    const std::uint64_t set = set_of(addr);
    const std::uint64_t tag = tag_of(addr);
    if (const auto way = find_way(set, tag)) {
        ++stats_.read_hits;
        touch(set, *way);
        CacheAccess result;
        result.hit = true;
        return result;
    }
    ++stats_.read_misses;
    CacheAccess result = install(set, tag, /*dirty=*/false);
    result.hit = false;
    return result;
}

CacheAccess Cache::write(Addr addr) {
    const std::uint64_t set = set_of(addr);
    const std::uint64_t tag = tag_of(addr);
    if (const auto way = find_way(set, tag)) {
        ++stats_.write_hits;
        touch(set, *way);
        if (write_policy_ == WritePolicy::kWriteBack) {
            meta_[line_index(set, *way)].dirty = true;
        }
        CacheAccess result;
        result.hit = true;
        return result;
    }
    ++stats_.write_misses;
    if (alloc_policy_ == AllocPolicy::kNoWriteAllocate) {
        // Miss without fill: the write is forwarded downstream unmodified.
        return {};
    }
    CacheAccess result =
        install(set, tag, write_policy_ == WritePolicy::kWriteBack);
    result.hit = false;
    return result;
}

bool Cache::probe(Addr addr) const {
    return find_way(set_of(addr), tag_of(addr)).has_value();
}

void Cache::flush() {
    // O(1): lines written under older generations become invalid, and
    // choose_victim prefers invalid ways, so stale order/tag values can
    // never influence a future access. PLRU trees carry no validity and
    // are cleared in place.
    ++generation_;
    if (generation_ == 0) {
        // 32-bit generation wrap: clear the array once so a line last
        // written four billion flushes ago cannot alias back to valid.
        std::fill(valid_gen_.begin(), valid_gen_.end(), 0u);
        generation_ = 1;
    }
    // A flush is a replacement-state change: advancing the access tick
    // invalidates any read_repeat_hit memo a caller holds.
    ++tick_;
    if (replacement_ == ReplacementPolicy::kPlru) {
        std::fill(plru_bits_.begin(), plru_bits_.end(), 0);
    }
}

void Cache::reset() {
    flush();
    // tick_ stays monotone across resets: victim choice only ever
    // compares orders of lines installed under the current generation,
    // so the absolute counter value is unobservable — and monotonicity
    // keeps stale read_repeat_hit memos detectable forever.
    rng_ = Pcg32(rng_seed_);
    stats_ = {};
}

std::uint64_t Cache::state_fingerprint() const {
    Fnv1a h;
    const std::uint64_t sets = geometry_.num_sets();
    for (std::uint64_t set = 0; set < sets; ++set) {
        for (std::uint32_t w = 0; w < geometry_.ways; ++w) {
            const std::size_t idx = line_index(set, w);
            const bool valid = valid_gen_[idx] == generation_;
            h.u64(valid ? 2 + (meta_[idx].dirty ? 1 : 0) : 1);
            h.u64(valid ? tags_[idx] : 0);
            if (valid && (replacement_ == ReplacementPolicy::kLru ||
                          replacement_ == ReplacementPolicy::kFifo)) {
                // Absolute order ticks grow forever; only their per-set
                // rank among valid ways is behaviorally meaningful.
                std::uint64_t rank = 0;
                for (std::uint32_t o = 0; o < geometry_.ways; ++o) {
                    const std::size_t oidx = line_index(set, o);
                    if (valid_gen_[oidx] == generation_ &&
                        meta_[oidx].order < meta_[idx].order) {
                        ++rank;
                    }
                }
                h.u64(rank);
            }
        }
        if (replacement_ == ReplacementPolicy::kPlru) {
            h.u64(plru_bits_[set]);
        }
    }
    if (replacement_ == ReplacementPolicy::kRandom) {
        h.u64(rng_.state());
        h.u64(rng_.stream_inc());
    }
    return h.value();
}

void Cache::warm(Addr addr) {
    const std::uint64_t set = set_of(addr);
    const std::uint64_t tag = tag_of(addr);
    if (find_way(set, tag)) return;
    // Install without statistics: remember, restore.
    const CacheStats saved = stats_;
    install(set, tag, /*dirty=*/false);
    stats_ = saved;
}

}  // namespace rrb
