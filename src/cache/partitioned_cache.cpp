#include "cache/partitioned_cache.h"

#include "sim/contract.h"

namespace rrb {

WayPartitionedCache::WayPartitionedCache(CacheGeometry full, CoreId num_cores,
                                         ReplacementPolicy replacement,
                                         WritePolicy write_policy,
                                         AllocPolicy alloc_policy,
                                         std::uint64_t rng_seed)
    : base_rng_seed_(rng_seed) {
    RRB_REQUIRE(num_cores >= 1, "need at least one core");
    full.validate();
    RRB_REQUIRE(full.ways % num_cores == 0,
                "ways must divide evenly across cores");
    const std::uint32_t ways_pc = full.ways / num_cores;

    // Same set count as the full cache, fewer ways.
    partition_geometry_ = full;
    partition_geometry_.ways = ways_pc;
    partition_geometry_.size_bytes =
        full.num_sets() * static_cast<std::uint64_t>(ways_pc) *
        full.line_bytes;
    partition_geometry_.validate();
    RRB_ENSURE(partition_geometry_.num_sets() == full.num_sets());

    partitions_.reserve(num_cores);
    for (CoreId c = 0; c < num_cores; ++c) {
        partitions_.emplace_back(partition_geometry_, replacement,
                                 write_policy, alloc_policy, rng_seed + c);
    }
}

CacheAccess WayPartitionedCache::read(CoreId core, Addr addr) {
    RRB_REQUIRE(core < partitions_.size(), "core id out of range");
    return partitions_[core].read(addr);
}

CacheAccess WayPartitionedCache::write(CoreId core, Addr addr) {
    RRB_REQUIRE(core < partitions_.size(), "core id out of range");
    return partitions_[core].write(addr);
}

bool WayPartitionedCache::probe(CoreId core, Addr addr) const {
    RRB_REQUIRE(core < partitions_.size(), "core id out of range");
    return partitions_[core].probe(addr);
}

void WayPartitionedCache::warm(CoreId core, Addr addr) {
    RRB_REQUIRE(core < partitions_.size(), "core id out of range");
    partitions_[core].warm(addr);
}

void WayPartitionedCache::flush() {
    for (Cache& p : partitions_) p.flush();
}

void WayPartitionedCache::reset() {
    for (Cache& p : partitions_) p.reset();
}

const CacheStats& WayPartitionedCache::stats(CoreId core) const {
    RRB_REQUIRE(core < partitions_.size(), "core id out of range");
    return partitions_[core].stats();
}

CacheStats WayPartitionedCache::total_stats() const {
    CacheStats total;
    for (const Cache& p : partitions_) {
        const CacheStats& s = p.stats();
        total.read_hits += s.read_hits;
        total.read_misses += s.read_misses;
        total.write_hits += s.write_hits;
        total.write_misses += s.write_misses;
        total.evictions += s.evictions;
        total.writebacks += s.writebacks;
    }
    return total;
}

}  // namespace rrb
