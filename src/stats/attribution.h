// Mergeable campaign accumulator for cycle attribution.
//
// Folds one finalized machine/attribution.h CycleAttribution per run and
// rides the reduce engine on the same contract as the other accumulators
// (stats/streaming.h): integer sums only, so merge is exact, associative
// over the engine's shard-order left fold, and bit-identical at every
// --jobs count and across checkpoint shard+merge (stats/checkpoint.h
// round-trips the raw state through CheckpointCodec).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "machine/attribution.h"
#include "obs/report.h"
#include "sim/types.h"

namespace rrb {

struct CheckpointCodec;

/// Sums of per-core cause timelines and per-contender blame matrices
/// over a campaign's runs. All storage is sized by the first add(), so
/// a reused accumulator's steady-state fold never allocates.
class AttributionAccumulator {
public:
    AttributionAccumulator() = default;

    /// Folds the finalized attribution of run `run_index`. The index
    /// does not enter the state (everything here is an exact sum); it
    /// is part of the campaign-accumulator concept's signature.
    void add(std::uint64_t run_index, const CycleAttribution& sample);

    /// Folds another accumulator over a disjoint run set in. Exact and
    /// commutative. Precondition: equal core counts (unless one is
    /// empty).
    void merge(const AttributionAccumulator& other);

    [[nodiscard]] std::uint64_t runs() const noexcept { return runs_; }
    [[nodiscard]] bool empty() const noexcept { return runs_ == 0; }
    [[nodiscard]] std::size_t num_cores() const noexcept {
        return num_cores_;
    }

    /// Summed machine cycles across runs (per-run machine elapsed time;
    /// closed accounting makes every core's timeline sum to this).
    [[nodiscard]] std::uint64_t machine_cycles() const noexcept {
        return machine_cycles_;
    }

    [[nodiscard]] std::uint64_t timeline(CoreId core,
                                         StallCause cause) const;
    [[nodiscard]] std::uint64_t blamed(CoreId victim,
                                       CoreId contender) const;
    [[nodiscard]] std::uint64_t dead_slot_cycles(CoreId victim) const;

    /// Sum of every timeline bucket of `core` (== machine_cycles() under
    /// closed accounting).
    [[nodiscard]] std::uint64_t core_total(CoreId core) const;
    /// Sum of blame row `victim` (excluding dead slots).
    [[nodiscard]] std::uint64_t blamed_total(CoreId victim) const;

private:
    friend struct CheckpointCodec;

    void require_core(CoreId core) const;

    std::size_t num_cores_ = 0;
    std::uint64_t runs_ = 0;
    std::uint64_t machine_cycles_ = 0;
    std::vector<std::uint64_t> timeline_;  ///< num_cores x kStallCauseCount
    std::vector<std::uint64_t> blame_;     ///< num_cores x num_cores
    std::vector<std::uint64_t> dead_;      ///< per victim
};

/// Flattens the accumulator into the telemetry layer's dependency-free
/// AttributionSummary (cause names filled from the StallCause enum) so
/// run reports and `rrbtool attribution` share one JSON rendering.
[[nodiscard]] obs::AttributionSummary attribution_summary(
    const AttributionAccumulator& acc);

}  // namespace rrb
