// Checkpoints: the serialize/deserialize half of "accumulators are
// mergeable", which turns one-process campaigns into distributable ones.
//
// Every streamed accumulator (stats/streaming.h) merges over disjoint
// run ranges, so a pWCET campaign can be split across processes or
// machines: each worker folds a slice of the shard plan, ships its
// compact accumulator state — never the raw runs — and a single merge
// reproduces the monolithic campaign. This module supplies the missing
// round-trip: a versioned, endian-stable, length-checked binary codec
// for the whole accumulator family plus the campaign metadata (scenario
// fingerprint, seed, run range, shard-plan hash) that lets a resume
// reject a mismatched checkpoint loudly instead of merging garbage.
//
// The determinism contract survives the trip because checkpoints store
// *per-plan-shard* accumulators, not a pre-merged slice: the final
// fan-in left-folds all shards in shard-index order — exactly the merge
// sequence the monolithic reduce performs — so even the rounding of the
// Chan-merged floating-point moments is bit-identical however the
// campaign was sliced. Doubles travel as IEEE-754 bit patterns (NaNs
// included), integers as fixed-width little-endian bytes, and the file
// ends in a checksum so truncation and corruption fail before any
// accumulator state is trusted.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/campaign.h"
#include "obs/report.h"
#include "sim/types.h"
#include "stats/attribution.h"
#include "stats/histogram.h"
#include "stats/series.h"
#include "stats/streaming.h"

namespace rrb {

/// Any malformed, truncated, corrupt or mismatched checkpoint: bad
/// magic, unknown version, short reads, checksum failures, and merge
/// rejections (fingerprint / plan / coverage mismatches). Deliberately
/// distinct from std::invalid_argument (caller bugs): a bad checkpoint
/// is bad *data*, typically from another process or machine.
class CheckpointError : public std::runtime_error {
public:
    /// Why the checkpoint was rejected, structured so recovery code
    /// (Session::resume's quarantine scan, the CLI) can act on the
    /// class of failure instead of parsing the message:
    ///   kIo       — the file could not be read/written/renamed
    ///   kCorrupt  — the bytes decode to no valid checkpoint
    ///   kMismatch — a valid checkpoint of a *different* campaign
    enum class Kind { kIo, kCorrupt, kMismatch };

    explicit CheckpointError(const std::string& what)
        : CheckpointError(Kind::kCorrupt, std::string(), what) {}

    CheckpointError(Kind kind, std::string path, std::string reason)
        : std::runtime_error(path.empty() ? reason
                                          : path + ": " + reason),
          kind_(kind),
          path_(std::move(path)),
          reason_(std::move(reason)) {}

    [[nodiscard]] Kind kind() const noexcept { return kind_; }
    /// The offending file, empty when the error predates a path (pure
    /// byte-level decode).
    [[nodiscard]] const std::string& path() const noexcept {
        return path_;
    }
    /// The path-free explanation (what() is "path: reason").
    [[nodiscard]] const std::string& reason() const noexcept {
        return reason_;
    }

private:
    Kind kind_ = Kind::kCorrupt;
    std::string path_;
    std::string reason_;
};

/// Little-endian byte encoder. Fixed-width fields only — the format
/// must not depend on host endianness or integer sizes.
class CheckpointWriter {
public:
    void u8(std::uint8_t v);
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    /// IEEE-754 bit pattern via the u64 path: round-trips every double
    /// bit-exactly, NaN payloads and signed zeros included.
    void f64(double v);

    [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept {
        return buf_;
    }

private:
    std::vector<std::uint8_t> buf_;
};

/// Bounds-checked little-endian decoder; every read past the end throws
/// CheckpointError — a truncated file can never yield a value.
class CheckpointReader {
public:
    explicit CheckpointReader(std::span<const std::uint8_t> bytes)
        : bytes_(bytes) {}

    [[nodiscard]] std::uint8_t u8();
    [[nodiscard]] std::uint32_t u32();
    [[nodiscard]] std::uint64_t u64();
    [[nodiscard]] double f64();

    [[nodiscard]] std::size_t remaining() const noexcept {
        return bytes_.size() - offset_;
    }

private:
    std::span<const std::uint8_t> bytes_;
    std::size_t offset_ = 0;
};

/// save/load for the accumulator family. Befriended by the accumulators
/// so raw state (e.g. StreamingMoments' m2) round-trips bit-exactly;
/// loads re-establish every class invariant or throw CheckpointError.
struct CheckpointCodec {
    static void save(CheckpointWriter& w, const StreamingExtremes<Cycle>& a);
    [[nodiscard]] static StreamingExtremes<Cycle> load_extremes(
        CheckpointReader& r);

    static void save(CheckpointWriter& w, const StreamingMoments& a);
    [[nodiscard]] static StreamingMoments load_moments(CheckpointReader& r);

    static void save(CheckpointWriter& w, const StreamingBlockMaxima& a);
    [[nodiscard]] static StreamingBlockMaxima load_block_maxima(
        CheckpointReader& r);

    static void save(CheckpointWriter& w,
                     const StreamingPeaksOverThreshold& a);
    [[nodiscard]] static StreamingPeaksOverThreshold load_pot(
        CheckpointReader& r);

    static void save(CheckpointWriter& w, const Histogram& a);
    [[nodiscard]] static Histogram load_histogram(CheckpointReader& r);

    static void save(CheckpointWriter& w, const Series& a);
    [[nodiscard]] static Series load_series(CheckpointReader& r);

    static void save(CheckpointWriter& w, const WhiteboxAccumulator& a);
    [[nodiscard]] static WhiteboxAccumulator load_whitebox(
        CheckpointReader& r);

    static void save(CheckpointWriter& w, const PwcetAccumulator& a);
    [[nodiscard]] static PwcetAccumulator load_pwcet(CheckpointReader& r);

    static void save(CheckpointWriter& w, const AttributionAccumulator& a);
    [[nodiscard]] static AttributionAccumulator load_attribution(
        CheckpointReader& r);
};

/// Campaign identity a checkpoint carries so resumes and merges can
/// verify they are fan-in of *one* campaign. Two checkpoints belong
/// together iff every field here except the slice/run-range ones is
/// equal; the run range says which part this checkpoint holds.
struct CheckpointMeta {
    /// Scenario::fingerprint() of (config, scua, contenders, protocol).
    std::uint64_t scenario_fingerprint = 0;
    std::uint64_t seed = 0;
    std::uint64_t total_runs = 0;
    std::uint64_t block_size = 0;
    /// The producer's ReducePlan, pinned: shard size, shard count, and a
    /// hash over (total_runs, shard_size, plan_shards). A checkpoint
    /// written under a different plan (e.g. a future engine with another
    /// kTargetShards) must be rejected, not merged into a different tree.
    std::uint64_t shard_size = 1;
    std::uint64_t plan_shards = 0;
    std::uint64_t shard_plan_hash = 0;
    /// Which slice of how many produced this checkpoint (informational;
    /// coverage is validated from the shard payload, not from these).
    std::uint64_t slice_index = 0;
    std::uint64_t slice_count = 1;
    /// Run range [first_run, last_run) this checkpoint's shards cover.
    std::uint64_t first_run = 0;
    std::uint64_t last_run = 0;
    /// Isolation baseline of the campaign (identical for every slice).
    Cycle et_isolation = 0;
    std::uint64_t nr = 0;
    /// Equation-1 per-request bound of the scenario's config, so a merge
    /// can report the ETB verdict without rebuilding the scenario.
    Cycle ubd_analytic = 0;
    /// Exceedance probabilities the final quantiles are quoted at.
    std::vector<double> exceedance;
};

/// The campaign-identity half of a telemetry run report, filled from a
/// checkpoint's metadata: the same fields `merge` validates are the
/// ones that let a collection of shard run-reports be recognized as one
/// distributed campaign.
[[nodiscard]] obs::CampaignInfo telemetry_info(const CheckpointMeta& meta);

/// The hash stored in CheckpointMeta::shard_plan_hash.
[[nodiscard]] std::uint64_t shard_plan_hash(std::uint64_t total_runs,
                                            std::uint64_t shard_size,
                                            std::uint64_t plan_shards);

/// One campaign slice on disk: metadata plus the per-plan-shard
/// accumulators for shards [first_shard, first_shard + shards.size()).
struct PwcetCheckpoint {
    CheckpointMeta meta;
    std::uint64_t first_shard = 0;
    std::vector<PwcetAccumulator> shards;
};

/// A white-box campaign slice on disk — the WhiteboxAccumulator
/// counterpart of PwcetCheckpoint, for distributing validation-figure
/// campaigns (gamma / ready-contenders / injection histograms plus the
/// run-ordered exec-time series). The file format tags its payload
/// kind, so a pwcet checkpoint can never be merged as a white-box one
/// or vice versa. Whitebox metadata carries block_size 0 and an empty
/// exceedance list (no EVT half exists).
struct WhiteboxCheckpoint {
    CheckpointMeta meta;
    std::uint64_t first_shard = 0;
    std::vector<WhiteboxAccumulator> shards;
};

[[nodiscard]] std::vector<std::uint8_t> encode_pwcet_checkpoint(
    const PwcetCheckpoint& checkpoint);
[[nodiscard]] PwcetCheckpoint decode_pwcet_checkpoint(
    std::span<const std::uint8_t> bytes);

[[nodiscard]] std::vector<std::uint8_t> encode_whitebox_checkpoint(
    const WhiteboxCheckpoint& checkpoint);
[[nodiscard]] WhiteboxCheckpoint decode_whitebox_checkpoint(
    std::span<const std::uint8_t> bytes);

/// File forms. Saves are crash-safe: the bytes go to a same-directory
/// temp file (`<path>.tmp`) which is fsynced, renamed over `path`, and
/// the directory fsynced — a crash at any point leaves either the old
/// complete file or the new complete file at `path`, never torn bytes
/// (at worst a stale `.tmp`, which no loader ever reads). Load throws
/// CheckpointError naming the path on any I/O or decode failure.
void save_pwcet_checkpoint(const std::string& path,
                           const PwcetCheckpoint& checkpoint);
[[nodiscard]] PwcetCheckpoint load_pwcet_checkpoint(const std::string& path);
void save_whitebox_checkpoint(const std::string& path,
                              const WhiteboxCheckpoint& checkpoint);
[[nodiscard]] WhiteboxCheckpoint load_whitebox_checkpoint(
    const std::string& path);

/// Takes a bad checkpoint file out of the live set by renaming it to
/// `<path>.corrupt` (overwriting an earlier quarantine of the same
/// path), so a re-run of the same resume/merge never trips over it
/// again, and returns the quarantine path. Bumps the
/// checkpoints_quarantined telemetry counter. Throws
/// CheckpointError(Kind::kIo) if the rename itself fails.
std::string quarantine_checkpoint(const std::string& path);

/// The accumulator-to-result step shared by the monolithic campaign
/// (engine/reduce.cpp) and the checkpoint merge: one implementation, so
/// a merged campaign cannot drift from a single-process one.
[[nodiscard]] PwcetCampaignResult finalize_pwcet_campaign(
    const PwcetAccumulator& acc, Cycle et_isolation, std::uint64_t nr,
    const std::vector<double>& exceedance);

/// Throws CheckpointError — naming `source` and `reference_name` —
/// unless `meta` identifies the same campaign as `reference`: equal
/// scenario fingerprint, seed, run count, block size, shard plan,
/// exceedance list and isolation baseline. Slice and run-range fields
/// are excluded (they say which *part*, not which campaign). The one
/// identity check behind both merge_pwcet_checkpoints and
/// Session::resume.
void require_same_campaign(const CheckpointMeta& meta,
                           const CheckpointMeta& reference,
                           const std::string& source,
                           const std::string& reference_name);

struct MergedPwcetCampaign {
    CheckpointMeta meta;  ///< the shared campaign identity
    PwcetCampaignResult result;
};

/// Fan-in: validates the checkpoints are slices of one campaign (equal
/// fingerprint / seed / plan / spec), that their shards cover the whole
/// plan exactly once (duplicates and gaps both throw, naming the shard),
/// then left-folds all shard accumulators in shard-index order — the
/// monolithic merge sequence — and finalizes. `sources` (parallel to
/// `checkpoints`, typically file paths) names offenders in errors; pass
/// {} to report by slice position instead.
[[nodiscard]] MergedPwcetCampaign merge_pwcet_checkpoints(
    std::vector<PwcetCheckpoint> checkpoints,
    const std::vector<std::string>& sources = {});

/// White-box fan-in on the same validation + merge-order contract; the
/// merged accumulator is bit-identical to the monolithic
/// engine::run_whitebox_campaign's (histograms are exact integer adds,
/// and shard-order series merge reconstructs run order).
struct MergedWhiteboxCampaign {
    CheckpointMeta meta;  ///< the shared campaign identity
    Cycle et_isolation = 0;
    std::uint64_t nr = 0;
    WhiteboxAccumulator stats;
};

[[nodiscard]] MergedWhiteboxCampaign merge_whitebox_checkpoints(
    std::vector<WhiteboxCheckpoint> checkpoints,
    const std::vector<std::string>& sources = {});

}  // namespace rrb
