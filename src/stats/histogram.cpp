#include "stats/histogram.h"

#include <algorithm>
#include <cmath>

#include "sim/contract.h"

namespace rrb {

void Histogram::add_slow(std::uint64_t value, std::uint64_t count) {
    if (count == 0) return;
    if (value < kDenseLimit) {
        if (value >= dense_.size()) {
            dense_.resize(static_cast<std::size_t>(value) + 1, 0);
        }
        dense_[static_cast<std::size_t>(value)] += count;
    } else {
        overflow_[value] += count;
    }
    total_ += count;
}

void Histogram::clear() noexcept {
    std::fill(dense_.begin(), dense_.end(), 0);
    overflow_.clear();
    total_ = 0;
}

std::uint64_t Histogram::count(std::uint64_t value) const {
    if (value < kDenseLimit) {
        return value < dense_.size()
                   ? dense_[static_cast<std::size_t>(value)]
                   : 0;
    }
    const auto it = overflow_.find(value);
    return it == overflow_.end() ? 0 : it->second;
}

double Histogram::fraction(std::uint64_t value) const {
    if (total_ == 0) return 0.0;
    return static_cast<double>(count(value)) / static_cast<double>(total_);
}

std::uint64_t Histogram::min() const {
    RRB_REQUIRE(!empty(), "histogram is empty");
    for (std::size_t v = 0; v < dense_.size(); ++v) {
        if (dense_[v] != 0) return v;
    }
    return overflow_.begin()->first;
}

std::uint64_t Histogram::max() const {
    RRB_REQUIRE(!empty(), "histogram is empty");
    if (!overflow_.empty()) return overflow_.rbegin()->first;
    for (std::size_t v = dense_.size(); v-- > 0;) {
        if (dense_[v] != 0) return v;
    }
    RRB_ENSURE(false);  // total_ > 0 guarantees an observed value exists
}

double Histogram::mean() const {
    if (total_ == 0) return 0.0;
    double acc = 0.0;
    for (std::size_t v = 0; v < dense_.size(); ++v) {
        if (dense_[v] != 0) {
            acc += static_cast<double>(v) * static_cast<double>(dense_[v]);
        }
    }
    for (const auto& [value, count] : overflow_) {
        acc += static_cast<double>(value) * static_cast<double>(count);
    }
    return acc / static_cast<double>(total_);
}

std::uint64_t Histogram::mode() const {
    RRB_REQUIRE(!empty(), "histogram is empty");
    std::uint64_t best_value = 0;
    std::uint64_t best_count = 0;
    // Increasing value order, strict improvement: smallest value wins ties.
    for (std::size_t v = 0; v < dense_.size(); ++v) {
        if (dense_[v] > best_count) {
            best_count = dense_[v];
            best_value = v;
        }
    }
    for (const auto& [value, count] : overflow_) {
        if (count > best_count) {
            best_count = count;
            best_value = value;
        }
    }
    return best_value;
}

double Histogram::mode_fraction() const {
    if (total_ == 0) return 0.0;
    return fraction(mode());
}

std::uint64_t Histogram::quantile(double q) const {
    RRB_REQUIRE(!empty(), "histogram is empty");
    RRB_REQUIRE(q >= 0.0 && q <= 1.0, "quantile must be in [0,1]");
    // Nearest-rank definition: smallest value whose cumulative count reaches
    // ceil(q * total).
    const auto rank = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(total_)));
    const std::uint64_t target = rank == 0 ? 1 : rank;
    std::uint64_t cumulative = 0;
    for (std::size_t v = 0; v < dense_.size(); ++v) {
        cumulative += dense_[v];
        if (dense_[v] != 0 && cumulative >= target) return v;
    }
    for (const auto& [value, count] : overflow_) {
        cumulative += count;
        if (cumulative >= target) return value;
    }
    return max();
}

std::vector<std::pair<std::uint64_t, std::uint64_t>> Histogram::buckets()
    const {
    std::vector<std::pair<std::uint64_t, std::uint64_t>> result;
    for (std::size_t v = 0; v < dense_.size(); ++v) {
        if (dense_[v] != 0) result.emplace_back(v, dense_[v]);
    }
    result.insert(result.end(), overflow_.begin(), overflow_.end());
    return result;
}

void Histogram::merge(const Histogram& other) {
    for (std::size_t v = 0; v < other.dense_.size(); ++v) {
        if (other.dense_[v] != 0) add(v, other.dense_[v]);
    }
    for (const auto& [value, count] : other.overflow_) add(value, count);
}

}  // namespace rrb
