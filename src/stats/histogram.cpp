#include "stats/histogram.h"

#include <cmath>

#include "sim/contract.h"

namespace rrb {

void Histogram::add(std::uint64_t value, std::uint64_t count) {
    if (count == 0) return;
    counts_[value] += count;
    total_ += count;
}

std::uint64_t Histogram::count(std::uint64_t value) const {
    const auto it = counts_.find(value);
    return it == counts_.end() ? 0 : it->second;
}

double Histogram::fraction(std::uint64_t value) const {
    if (total_ == 0) return 0.0;
    return static_cast<double>(count(value)) / static_cast<double>(total_);
}

std::uint64_t Histogram::min() const {
    RRB_REQUIRE(!empty(), "histogram is empty");
    return counts_.begin()->first;
}

std::uint64_t Histogram::max() const {
    RRB_REQUIRE(!empty(), "histogram is empty");
    return counts_.rbegin()->first;
}

double Histogram::mean() const {
    if (total_ == 0) return 0.0;
    double acc = 0.0;
    for (const auto& [value, count] : counts_) {
        acc += static_cast<double>(value) * static_cast<double>(count);
    }
    return acc / static_cast<double>(total_);
}

std::uint64_t Histogram::mode() const {
    RRB_REQUIRE(!empty(), "histogram is empty");
    std::uint64_t best_value = 0;
    std::uint64_t best_count = 0;
    for (const auto& [value, count] : counts_) {
        if (count > best_count) {
            best_count = count;
            best_value = value;
        }
    }
    return best_value;
}

double Histogram::mode_fraction() const {
    if (total_ == 0) return 0.0;
    return fraction(mode());
}

std::uint64_t Histogram::quantile(double q) const {
    RRB_REQUIRE(!empty(), "histogram is empty");
    RRB_REQUIRE(q >= 0.0 && q <= 1.0, "quantile must be in [0,1]");
    // Nearest-rank definition: smallest value whose cumulative count reaches
    // ceil(q * total).
    const auto rank = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(total_)));
    const std::uint64_t target = rank == 0 ? 1 : rank;
    std::uint64_t cumulative = 0;
    for (const auto& [value, count] : counts_) {
        cumulative += count;
        if (cumulative >= target) return value;
    }
    return counts_.rbegin()->first;
}

std::vector<std::pair<std::uint64_t, std::uint64_t>> Histogram::buckets()
    const {
    return {counts_.begin(), counts_.end()};
}

void Histogram::merge(const Histogram& other) {
    for (const auto& [value, count] : other.counts_) add(value, count);
}

}  // namespace rrb
