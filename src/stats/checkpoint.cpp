#include "stats/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <bit>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <utility>

#include "fault/fault.h"
#include "obs/telemetry.h"
#include "sim/contract.h"
#include "sim/fnv.h"

namespace rrb {

namespace {

// 8-byte magic + format version. Bump the version on ANY layout change:
// an old reader must reject a new file (and vice versa) rather than
// misinterpret bytes into plausible-looking statistics.
// v2: a payload-kind byte follows the version (pwcet vs whitebox
// campaign slices share one container format).
constexpr std::uint8_t kMagic[8] = {'R', 'R', 'B', 'C', 'K', 'P', 'T', '1'};
constexpr std::uint32_t kFormatVersion = 2;

enum PayloadKind : std::uint8_t {
    kPayloadPwcet = 1,
    kPayloadWhitebox = 2,
};

const char* payload_name(std::uint8_t kind) {
    switch (kind) {
        case kPayloadPwcet: return "pwcet";
        case kPayloadWhitebox: return "whitebox";
    }
    return "unknown";
}

/// The trailer checksum over a byte range.
std::uint64_t fnv1a(std::span<const std::uint8_t> bytes) {
    Fnv1a hash;
    hash.bytes(bytes);
    return hash.value();
}

[[noreturn]] void corrupt(const std::string& what) {
    throw CheckpointError("corrupt checkpoint: " + what);
}

}  // namespace

// ------------------------------------------------------ writer / reader

void CheckpointWriter::u8(std::uint8_t v) { buf_.push_back(v); }

void CheckpointWriter::u32(std::uint32_t v) {
    for (int shift = 0; shift < 32; shift += 8) {
        buf_.push_back(static_cast<std::uint8_t>(v >> shift));
    }
}

void CheckpointWriter::u64(std::uint64_t v) {
    for (int shift = 0; shift < 64; shift += 8) {
        buf_.push_back(static_cast<std::uint8_t>(v >> shift));
    }
}

void CheckpointWriter::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

std::uint8_t CheckpointReader::u8() {
    if (remaining() < 1) corrupt("truncated (read past end)");
    return bytes_[offset_++];
}

std::uint32_t CheckpointReader::u32() {
    if (remaining() < 4) corrupt("truncated (read past end)");
    std::uint32_t v = 0;
    for (int shift = 0; shift < 32; shift += 8) {
        v |= static_cast<std::uint32_t>(bytes_[offset_++]) << shift;
    }
    return v;
}

std::uint64_t CheckpointReader::u64() {
    if (remaining() < 8) corrupt("truncated (read past end)");
    std::uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 8) {
        v |= static_cast<std::uint64_t>(bytes_[offset_++]) << shift;
    }
    return v;
}

double CheckpointReader::f64() { return std::bit_cast<double>(u64()); }

// ------------------------------------------------------------- codec

void CheckpointCodec::save(CheckpointWriter& w,
                           const StreamingExtremes<Cycle>& a) {
    w.u64(a.count_);
    w.u64(a.min_);
    w.u64(a.max_);
}

StreamingExtremes<Cycle> CheckpointCodec::load_extremes(CheckpointReader& r) {
    StreamingExtremes<Cycle> a;
    a.count_ = r.u64();
    a.min_ = r.u64();
    a.max_ = r.u64();
    if (a.count_ == 0) {
        return StreamingExtremes<Cycle>{};  // canonical empty state
    }
    if (a.min_ > a.max_) corrupt("extremes with min > max");
    return a;
}

void CheckpointCodec::save(CheckpointWriter& w, const StreamingMoments& a) {
    w.u64(a.count_);
    w.f64(a.mean_);
    w.f64(a.m2_);
}

StreamingMoments CheckpointCodec::load_moments(CheckpointReader& r) {
    StreamingMoments a;
    a.count_ = r.u64();
    a.mean_ = r.f64();
    a.m2_ = r.f64();
    // No finiteness check: a campaign that folded a NaN observation has
    // NaN moments, and the round-trip must reproduce that state
    // bit-exactly rather than launder it.
    if (a.count_ == 0) return StreamingMoments{};
    return a;
}

void CheckpointCodec::save(CheckpointWriter& w,
                           const StreamingBlockMaxima& a) {
    w.u64(a.block_size_);
    w.u64(a.count_);
    w.u64(a.blocks_.size());
    for (const auto& [index, block] : a.blocks_) {
        w.u64(index);
        w.f64(block.max);
        w.u64(block.filled);
    }
}

StreamingBlockMaxima CheckpointCodec::load_block_maxima(CheckpointReader& r) {
    const std::uint64_t block_size = r.u64();
    if (block_size == 0) corrupt("block maxima with block size 0");
    StreamingBlockMaxima a(static_cast<std::size_t>(block_size));
    a.count_ = r.u64();
    const std::uint64_t n = r.u64();
    std::uint64_t filled_total = 0;
    std::uint64_t previous_index = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
        const std::uint64_t index = r.u64();
        if (i > 0 && index <= previous_index) {
            corrupt("block indices out of order");
        }
        previous_index = index;
        StreamingBlockMaxima::Block block;
        block.max = r.f64();
        block.filled = r.u64();
        if (block.filled == 0 || block.filled > block_size) {
            corrupt("block fill outside [1, block_size]");
        }
        filled_total += block.filled;
        a.blocks_.emplace(index, block);
    }
    if (filled_total != a.count_) {
        corrupt("block fills do not sum to the observation count");
    }
    return a;
}

void CheckpointCodec::save(CheckpointWriter& w,
                           const StreamingPeaksOverThreshold& a) {
    w.f64(a.threshold_);
    w.u64(a.count_);
    w.u64(a.exceedances_.size());
    for (const double v : a.exceedances_) w.f64(v);
}

StreamingPeaksOverThreshold CheckpointCodec::load_pot(CheckpointReader& r) {
    const double threshold = r.f64();
    StreamingPeaksOverThreshold a(threshold);
    a.count_ = r.u64();
    const std::uint64_t n = r.u64();
    if (n > a.count_) corrupt("more exceedances than observations");
    a.exceedances_.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) {
        const double v = r.f64();
        if (!(v > threshold)) corrupt("exceedance not above the threshold");
        a.exceedances_.push_back(v);
    }
    return a;
}

void CheckpointCodec::save(CheckpointWriter& w, const Histogram& a) {
    const auto buckets = a.buckets();
    w.u64(buckets.size());
    for (const auto& [value, count] : buckets) {
        w.u64(value);
        w.u64(count);
    }
}

Histogram CheckpointCodec::load_histogram(CheckpointReader& r) {
    Histogram a;
    const std::uint64_t n = r.u64();
    std::uint64_t previous_value = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
        const std::uint64_t value = r.u64();
        const std::uint64_t count = r.u64();
        if (i > 0 && value <= previous_value) {
            corrupt("histogram buckets out of order");
        }
        previous_value = value;
        if (count == 0) corrupt("histogram bucket with zero count");
        a.add(value, count);
    }
    return a;
}

void CheckpointCodec::save(CheckpointWriter& w, const Series& a) {
    w.u64(a.size());
    for (const double v : a.values()) w.f64(v);
}

Series CheckpointCodec::load_series(CheckpointReader& r) {
    const std::uint64_t n = r.u64();
    std::vector<double> values;
    values.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) values.push_back(r.f64());
    return Series(std::move(values));
}

void CheckpointCodec::save(CheckpointWriter& w,
                           const WhiteboxAccumulator& a) {
    w.u64(a.runs_);
    w.u64(a.max_gamma_);
    save(w, a.gamma_);
    save(w, a.ready_contenders_);
    save(w, a.injection_delta_);
    save(w, a.exec_times_);
    save(w, a.extremes_);
}

WhiteboxAccumulator CheckpointCodec::load_whitebox(CheckpointReader& r) {
    WhiteboxAccumulator a;
    a.runs_ = r.u64();
    a.max_gamma_ = r.u64();
    a.gamma_ = load_histogram(r);
    a.ready_contenders_ = load_histogram(r);
    a.injection_delta_ = load_histogram(r);
    a.exec_times_ = load_series(r);
    a.extremes_ = load_extremes(r);
    if (a.exec_times_.size() != a.runs_ || a.extremes_.count() != a.runs_) {
        corrupt("white-box sample sizes disagree with the run count");
    }
    return a;
}

void CheckpointCodec::save(CheckpointWriter& w, const PwcetAccumulator& a) {
    save(w, a.extremes_);
    save(w, a.moments_);
    save(w, a.blocks_);
}

PwcetAccumulator CheckpointCodec::load_pwcet(CheckpointReader& r) {
    const StreamingExtremes<Cycle> extremes = load_extremes(r);
    const StreamingMoments moments = load_moments(r);
    StreamingBlockMaxima blocks = load_block_maxima(r);
    if (extremes.count() != moments.count() ||
        extremes.count() != blocks.count()) {
        corrupt("pwcet accumulator parts disagree on the run count");
    }
    PwcetAccumulator a(blocks.block_size());
    a.extremes_ = extremes;
    a.moments_ = moments;
    a.blocks_ = std::move(blocks);
    return a;
}

void CheckpointCodec::save(CheckpointWriter& w,
                           const AttributionAccumulator& a) {
    w.u64(a.num_cores_);
    w.u64(a.runs_);
    w.u64(a.machine_cycles_);
    for (const std::uint64_t v : a.timeline_) w.u64(v);
    for (const std::uint64_t v : a.blame_) w.u64(v);
    for (const std::uint64_t v : a.dead_) w.u64(v);
}

AttributionAccumulator CheckpointCodec::load_attribution(
    CheckpointReader& r) {
    AttributionAccumulator a;
    a.num_cores_ = static_cast<std::size_t>(r.u64());
    a.runs_ = r.u64();
    a.machine_cycles_ = r.u64();
    if (a.num_cores_ == 0) {
        if (a.runs_ != 0 || a.machine_cycles_ != 0) {
            corrupt("attribution runs without cores");
        }
        return AttributionAccumulator{};  // canonical empty state
    }
    if (a.num_cores_ > 1024) corrupt("implausible attribution core count");
    a.timeline_.resize(a.num_cores_ * kStallCauseCount);
    a.blame_.resize(a.num_cores_ * a.num_cores_);
    a.dead_.resize(a.num_cores_);
    for (std::uint64_t& v : a.timeline_) v = r.u64();
    for (std::uint64_t& v : a.blame_) v = r.u64();
    for (std::uint64_t& v : a.dead_) v = r.u64();
    // Closed accounting survives the trip: every core's timeline must
    // still sum to the accumulated machine cycles.
    for (CoreId c = 0; c < a.num_cores_; ++c) {
        if (a.core_total(c) != a.machine_cycles_) {
            corrupt("attribution timeline does not close");
        }
    }
    return a;
}

// -------------------------------------------------- campaign checkpoint

obs::CampaignInfo telemetry_info(const CheckpointMeta& meta) {
    obs::CampaignInfo info;
    info.scenario_fingerprint = meta.scenario_fingerprint;
    info.seed = meta.seed;
    info.total_runs = meta.total_runs;
    info.block_size = meta.block_size;
    info.shard_size = meta.shard_size;
    info.plan_shards = meta.plan_shards;
    info.first_run = meta.first_run;
    info.last_run = meta.last_run;
    info.slice_index = meta.slice_index;
    info.slice_count = meta.slice_count;
    return info;
}

std::uint64_t shard_plan_hash(std::uint64_t total_runs,
                              std::uint64_t shard_size,
                              std::uint64_t plan_shards) {
    Fnv1a hash;
    hash.u64(total_runs);
    hash.u64(shard_size);
    hash.u64(plan_shards);
    return hash.value();
}

namespace {

void encode_meta(CheckpointWriter& w, const CheckpointMeta& meta) {
    w.u64(meta.scenario_fingerprint);
    w.u64(meta.seed);
    w.u64(meta.total_runs);
    w.u64(meta.block_size);
    w.u64(meta.shard_size);
    w.u64(meta.plan_shards);
    w.u64(meta.shard_plan_hash);
    w.u64(meta.slice_index);
    w.u64(meta.slice_count);
    w.u64(meta.first_run);
    w.u64(meta.last_run);
    w.u64(meta.et_isolation);
    w.u64(meta.nr);
    w.u64(meta.ubd_analytic);
    w.u64(meta.exceedance.size());
    for (const double e : meta.exceedance) w.f64(e);
}

CheckpointMeta decode_meta(CheckpointReader& r, PayloadKind kind) {
    CheckpointMeta meta;
    meta.scenario_fingerprint = r.u64();
    meta.seed = r.u64();
    meta.total_runs = r.u64();
    meta.block_size = r.u64();
    meta.shard_size = r.u64();
    meta.plan_shards = r.u64();
    meta.shard_plan_hash = r.u64();
    meta.slice_index = r.u64();
    meta.slice_count = r.u64();
    meta.first_run = r.u64();
    meta.last_run = r.u64();
    meta.et_isolation = r.u64();
    meta.nr = r.u64();
    meta.ubd_analytic = r.u64();
    const std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
        meta.exceedance.push_back(r.f64());
    }
    if (kind == kPayloadPwcet && meta.block_size == 0) {
        corrupt("block size 0");
    }
    if (kind == kPayloadWhitebox &&
        (meta.block_size != 0 || !meta.exceedance.empty())) {
        corrupt("whitebox checkpoint carrying EVT parameters");
    }
    if (meta.shard_size == 0 || meta.plan_shards == 0) {
        corrupt("empty shard plan");
    }
    if (meta.shard_plan_hash !=
        shard_plan_hash(meta.total_runs, meta.shard_size,
                        meta.plan_shards)) {
        throw CheckpointError(
            "checkpoint was written under a different shard plan "
            "(engine version mismatch?) — re-run the campaign instead of "
            "merging across plans");
    }
    if (meta.first_run > meta.last_run || meta.last_run > meta.total_runs) {
        corrupt("run range outside the campaign");
    }
    return meta;
}

}  // namespace

namespace {

/// Shared container prolog: magic + version + payload kind byte, with
/// the whole file (checksum, payload) still to be read by the caller.
void encode_header(CheckpointWriter& w, PayloadKind kind) {
    for (const std::uint8_t b : kMagic) w.u8(b);
    w.u32(kFormatVersion);
    w.u8(kind);
}

/// Appends the trailer checksum over everything written so far.
std::vector<std::uint8_t> seal(const CheckpointWriter& w) {
    std::vector<std::uint8_t> bytes = w.bytes();
    const std::uint64_t checksum = fnv1a(bytes);
    CheckpointWriter trailer;
    trailer.u64(checksum);
    bytes.insert(bytes.end(), trailer.bytes().begin(),
                 trailer.bytes().end());
    return bytes;
}

/// Verifies magic, checksum, version and payload kind; returns a reader
/// positioned at the metadata.
CheckpointReader open_checkpoint(std::span<const std::uint8_t> bytes,
                                 PayloadKind expected_kind) {
    if (bytes.size() < sizeof(kMagic) + 4 + 1 + 8) {
        corrupt("too short to hold a header");
    }
    for (std::size_t i = 0; i < sizeof(kMagic); ++i) {
        if (bytes[i] != kMagic[i]) {
            throw CheckpointError("not a checkpoint (bad magic bytes)");
        }
    }
    // Verify the trailer checksum before trusting any field beyond the
    // magic: a flipped byte must fail here, not parse into plausible
    // statistics.
    const std::span<const std::uint8_t> body =
        bytes.subspan(0, bytes.size() - 8);
    CheckpointReader trailer(bytes.subspan(bytes.size() - 8));
    if (fnv1a(body) != trailer.u64()) {
        corrupt("checksum mismatch (truncated or corrupted file)");
    }

    CheckpointReader r(body.subspan(sizeof(kMagic)));
    const std::uint32_t version = r.u32();
    if (version != kFormatVersion) {
        throw CheckpointError(
            "unsupported checkpoint format version " +
            std::to_string(version) + " (this build reads version " +
            std::to_string(kFormatVersion) + ")");
    }
    const std::uint8_t kind = r.u8();
    if (kind != expected_kind) {
        throw CheckpointError(
            std::string("checkpoint holds a ") + payload_name(kind) +
            " campaign, not a " + payload_name(expected_kind) +
            " one — refusing to merge across campaign kinds");
    }
    return r;
}

}  // namespace

std::vector<std::uint8_t> encode_pwcet_checkpoint(
    const PwcetCheckpoint& checkpoint) {
    CheckpointWriter w;
    encode_header(w, kPayloadPwcet);
    encode_meta(w, checkpoint.meta);
    w.u64(checkpoint.first_shard);
    w.u64(checkpoint.shards.size());
    for (const PwcetAccumulator& shard : checkpoint.shards) {
        CheckpointCodec::save(w, shard);
    }
    return seal(w);
}

PwcetCheckpoint decode_pwcet_checkpoint(std::span<const std::uint8_t> bytes) {
    CheckpointReader r = open_checkpoint(bytes, kPayloadPwcet);
    PwcetCheckpoint checkpoint;
    checkpoint.meta = decode_meta(r, kPayloadPwcet);
    checkpoint.first_shard = r.u64();
    const std::uint64_t n_shards = r.u64();
    // Overflow-proof range check: `first_shard + n_shards` could wrap
    // and slip a huge first_shard past the bound, and these indices go
    // on to address plan-sized vectors in merge/resume.
    if (checkpoint.first_shard > checkpoint.meta.plan_shards ||
        n_shards > checkpoint.meta.plan_shards - checkpoint.first_shard) {
        corrupt("shard range outside the plan");
    }
    std::uint64_t folded = 0;
    for (std::uint64_t i = 0; i < n_shards; ++i) {
        PwcetAccumulator shard = CheckpointCodec::load_pwcet(r);
        if (shard.blocks().block_size() != checkpoint.meta.block_size) {
            corrupt("shard block size disagrees with the metadata");
        }
        folded += shard.extremes().count();
        checkpoint.shards.push_back(std::move(shard));
    }
    if (folded != checkpoint.meta.last_run - checkpoint.meta.first_run) {
        corrupt("shard observation counts do not cover the run range");
    }
    if (r.remaining() != 0) corrupt("trailing bytes after the payload");
    return checkpoint;
}

std::vector<std::uint8_t> encode_whitebox_checkpoint(
    const WhiteboxCheckpoint& checkpoint) {
    CheckpointWriter w;
    encode_header(w, kPayloadWhitebox);
    encode_meta(w, checkpoint.meta);
    w.u64(checkpoint.first_shard);
    w.u64(checkpoint.shards.size());
    for (const WhiteboxAccumulator& shard : checkpoint.shards) {
        CheckpointCodec::save(w, shard);
    }
    return seal(w);
}

WhiteboxCheckpoint decode_whitebox_checkpoint(
    std::span<const std::uint8_t> bytes) {
    CheckpointReader r = open_checkpoint(bytes, kPayloadWhitebox);
    WhiteboxCheckpoint checkpoint;
    checkpoint.meta = decode_meta(r, kPayloadWhitebox);
    checkpoint.first_shard = r.u64();
    const std::uint64_t n_shards = r.u64();
    if (checkpoint.first_shard > checkpoint.meta.plan_shards ||
        n_shards > checkpoint.meta.plan_shards - checkpoint.first_shard) {
        corrupt("shard range outside the plan");
    }
    std::uint64_t folded = 0;
    for (std::uint64_t i = 0; i < n_shards; ++i) {
        WhiteboxAccumulator shard = CheckpointCodec::load_whitebox(r);
        folded += shard.runs();
        checkpoint.shards.push_back(std::move(shard));
    }
    if (folded != checkpoint.meta.last_run - checkpoint.meta.first_run) {
        corrupt("shard observation counts do not cover the run range");
    }
    if (r.remaining() != 0) corrupt("trailing bytes after the payload");
    return checkpoint;
}

namespace {

std::vector<std::uint8_t> read_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        throw CheckpointError(CheckpointError::Kind::kIo, path,
                              "could not open checkpoint file");
    }
    std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    if (in.bad()) {
        throw CheckpointError(CheckpointError::Kind::kIo, path,
                              "could not read checkpoint file");
    }
    return bytes;
}

[[noreturn]] void io_error(int fd, const std::string& path,
                           const std::string& reason) {
    const int err = errno;
    if (fd >= 0) ::close(fd);
    throw CheckpointError(
        CheckpointError::Kind::kIo, path,
        err != 0 ? reason + " (" + std::strerror(err) + ")" : reason);
}

/// Every save is numbered process-wide so fault specs can target "the
/// Nth save" (ckpt-truncate:2) regardless of which campaign issues it.
std::uint64_t next_save_sequence() {
    static std::atomic<std::uint64_t> sequence{0};
    return sequence.fetch_add(1, std::memory_order_relaxed) + 1;
}

// Crash-safe publication: write <path>.tmp in the same directory (a
// rename must not cross filesystems), fsync the data, rename over
// `path`, fsync the directory so the rename itself is durable. The
// final path only ever holds a complete old file or a complete new
// file; every injected or real failure before the rename leaves at
// worst a stale .tmp no loader reads. The fault hooks simulate a crash
// at each stage by throwing *after* producing exactly the on-disk
// state the crash would leave.
void write_file(const std::string& path,
                const std::vector<std::uint8_t>& bytes) {
    const std::uint64_t sequence = next_save_sequence();
    const std::string tmp = path + ".tmp";
    errno = 0;
    const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) io_error(-1, path, "could not create " + tmp);
    std::size_t limit = bytes.size();
    const bool torn =
        fault::should_fire(fault::Site::kCheckpointTruncate, sequence);
    if (torn) limit /= 2;  // the crash lands mid-payload
    std::size_t written = 0;
    while (written < limit) {
        const ::ssize_t n = ::write(fd, bytes.data() + written,
                                    limit - written);
        if (n < 0) {
            if (errno == EINTR) continue;
            io_error(fd, path, "could not write " + tmp);
        }
        written += static_cast<std::size_t>(n);
    }
    if (torn) {
        ::close(fd);
        errno = 0;
        io_error(-1, path,
                 "injected crash left a torn temp file " + tmp);
    }
    if (fault::should_fire(fault::Site::kCheckpointFsync, sequence)) {
        ::close(fd);
        errno = 0;
        io_error(-1, path, "injected fsync failure on " + tmp);
    }
    if (::fsync(fd) != 0) io_error(fd, path, "could not fsync " + tmp);
    if (::close(fd) != 0) io_error(-1, path, "could not close " + tmp);
    if (fault::should_fire(fault::Site::kCheckpointRename, sequence)) {
        errno = 0;
        io_error(-1, path,
                 "injected rename failure publishing " + tmp);
    }
    errno = 0;
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        io_error(-1, path, "could not rename " + tmp + " into place");
    }
    // Durability of the rename: fsync the containing directory.
    const std::size_t slash = path.find_last_of('/');
    const std::string dir =
        slash == std::string::npos ? "." : path.substr(0, slash + 1);
    errno = 0;
    const int dirfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (dirfd < 0) io_error(-1, path, "could not open directory " + dir);
    if (::fsync(dirfd) != 0) {
        io_error(dirfd, path, "could not fsync directory " + dir);
    }
    ::close(dirfd);
}

}  // namespace

std::string quarantine_checkpoint(const std::string& path) {
    const std::string target = path + ".corrupt";
    errno = 0;
    if (std::rename(path.c_str(), target.c_str()) != 0) {
        io_error(-1, path, "could not quarantine to " + target);
    }
    obs::count(obs::kCheckpointsQuarantined);
    return target;
}

void save_pwcet_checkpoint(const std::string& path,
                           const PwcetCheckpoint& checkpoint) {
    write_file(path, encode_pwcet_checkpoint(checkpoint));
}

PwcetCheckpoint load_pwcet_checkpoint(const std::string& path) {
    try {
        return decode_pwcet_checkpoint(read_file(path));
    } catch (const CheckpointError& e) {
        if (!e.path().empty()) throw;
        throw CheckpointError(e.kind(), path, e.reason());
    }
}

void save_whitebox_checkpoint(const std::string& path,
                              const WhiteboxCheckpoint& checkpoint) {
    write_file(path, encode_whitebox_checkpoint(checkpoint));
}

WhiteboxCheckpoint load_whitebox_checkpoint(const std::string& path) {
    try {
        return decode_whitebox_checkpoint(read_file(path));
    } catch (const CheckpointError& e) {
        if (!e.path().empty()) throw;
        throw CheckpointError(e.kind(), path, e.reason());
    }
}

// ----------------------------------------------------------- merge

PwcetCampaignResult finalize_pwcet_campaign(
    const PwcetAccumulator& acc, Cycle et_isolation, std::uint64_t nr,
    const std::vector<double>& exceedance) {
    RRB_REQUIRE(!acc.extremes().empty(),
                "cannot finalize a campaign with no observations");
    PwcetCampaignResult result;
    result.et_isolation = et_isolation;
    result.nr = nr;
    result.runs = static_cast<std::size_t>(acc.extremes().count());
    result.high_water_mark = acc.extremes().max();
    result.low_water_mark = acc.extremes().min();
    result.mean = acc.moments().mean();
    result.stddev = acc.moments().stddev();
    result.blocks = acc.blocks().complete_blocks();
    result.live_values = acc.blocks().live_values();
    result.fit = acc.blocks().fit();
    result.quantiles.reserve(exceedance.size());
    for (const double e : exceedance) {
        // pwcet() yields NaN on a degenerate fit's behalf only for bad p;
        // an invalid fit (too few blocks / zero spread) is still a valid
        // extrapolation-free row, so quote NaN explicitly there too.
        result.quantiles.push_back(
            {e, result.fit.valid()
                    ? result.fit.pwcet(e)
                    : std::numeric_limits<double>::quiet_NaN()});
    }
    return result;
}

void require_same_campaign(const CheckpointMeta& meta,
                           const CheckpointMeta& reference,
                           const std::string& source,
                           const std::string& reference_name) {
    const auto mismatch = [&](const char* what) {
        throw CheckpointError(
            CheckpointError::Kind::kMismatch, source,
            std::string(what) + " differs from " + reference_name +
                " — these checkpoints are not slices of one campaign");
    };
    if (meta.scenario_fingerprint != reference.scenario_fingerprint) {
        mismatch("scenario fingerprint");
    }
    if (meta.seed != reference.seed) mismatch("campaign seed");
    if (meta.total_runs != reference.total_runs) mismatch("run count");
    if (meta.block_size != reference.block_size) mismatch("block size");
    // The plan fields individually, not just their hash: callers size
    // shard-coverage tables by plan_shards, so a checkpoint written
    // under a different plan must never get as far as indexing them —
    // even under a hash collision.
    if (meta.shard_plan_hash != reference.shard_plan_hash ||
        meta.shard_size != reference.shard_size ||
        meta.plan_shards != reference.plan_shards) {
        mismatch("shard plan");
    }
    if (meta.exceedance != reference.exceedance) {
        mismatch("exceedance list");
    }
    if (meta.et_isolation != reference.et_isolation ||
        meta.nr != reference.nr) {
        mismatch("isolation baseline");
    }
    if (meta.ubd_analytic != reference.ubd_analytic) {
        mismatch("analytic ubd");
    }
}

MergedPwcetCampaign merge_pwcet_checkpoints(
    std::vector<PwcetCheckpoint> checkpoints,
    const std::vector<std::string>& sources) {
    if (checkpoints.empty()) {
        throw CheckpointError("merge needs at least one checkpoint");
    }
    const auto source = [&](std::size_t i) {
        return i < sources.size() ? sources[i]
                                  : "checkpoint #" + std::to_string(i + 1);
    };

    const CheckpointMeta& reference = checkpoints.front().meta;
    for (std::size_t i = 1; i < checkpoints.size(); ++i) {
        require_same_campaign(checkpoints[i].meta, reference, source(i),
                              source(0));
    }

    // Coverage: every plan shard exactly once — a duplicate slice (the
    // same shard from two files) is as wrong as a missing one.
    constexpr std::size_t kNobody = std::numeric_limits<std::size_t>::max();
    std::vector<std::size_t> owner(
        static_cast<std::size_t>(reference.plan_shards), kNobody);
    std::vector<const PwcetAccumulator*> by_shard(owner.size(), nullptr);
    for (std::size_t i = 0; i < checkpoints.size(); ++i) {
        const PwcetCheckpoint& checkpoint = checkpoints[i];
        for (std::size_t s = 0; s < checkpoint.shards.size(); ++s) {
            const std::size_t index =
                static_cast<std::size_t>(checkpoint.first_shard) + s;
            if (owner[index] != kNobody) {
                throw CheckpointError(
                    "duplicate slice: shard " + std::to_string(index) +
                    " appears in both " + source(owner[index]) + " and " +
                    source(i));
            }
            owner[index] = i;
            by_shard[index] = &checkpoint.shards[s];
        }
    }
    for (std::size_t index = 0; index < owner.size(); ++index) {
        if (owner[index] == kNobody) {
            throw CheckpointError(
                "incomplete campaign: shard " + std::to_string(index) +
                " of " + std::to_string(owner.size()) +
                " is covered by no checkpoint");
        }
    }

    // The monolithic merge sequence: left-fold in shard-index order.
    PwcetAccumulator acc = *by_shard[0];
    for (std::size_t index = 1; index < by_shard.size(); ++index) {
        acc.merge(*by_shard[index]);
    }

    MergedPwcetCampaign merged;
    merged.meta = reference;
    merged.result = finalize_pwcet_campaign(
        acc, reference.et_isolation, reference.nr, reference.exceedance);
    return merged;
}

MergedWhiteboxCampaign merge_whitebox_checkpoints(
    std::vector<WhiteboxCheckpoint> checkpoints,
    const std::vector<std::string>& sources) {
    if (checkpoints.empty()) {
        throw CheckpointError("merge needs at least one checkpoint");
    }
    const auto source = [&](std::size_t i) {
        return i < sources.size() ? sources[i]
                                  : "checkpoint #" + std::to_string(i + 1);
    };

    const CheckpointMeta& reference = checkpoints.front().meta;
    for (std::size_t i = 1; i < checkpoints.size(); ++i) {
        require_same_campaign(checkpoints[i].meta, reference, source(i),
                              source(0));
    }

    // Coverage: every plan shard exactly once, as in the pwcet fan-in.
    constexpr std::size_t kNobody = std::numeric_limits<std::size_t>::max();
    std::vector<std::size_t> owner(
        static_cast<std::size_t>(reference.plan_shards), kNobody);
    std::vector<const WhiteboxAccumulator*> by_shard(owner.size(), nullptr);
    for (std::size_t i = 0; i < checkpoints.size(); ++i) {
        const WhiteboxCheckpoint& checkpoint = checkpoints[i];
        for (std::size_t s = 0; s < checkpoint.shards.size(); ++s) {
            const std::size_t index =
                static_cast<std::size_t>(checkpoint.first_shard) + s;
            if (owner[index] != kNobody) {
                throw CheckpointError(
                    "duplicate slice: shard " + std::to_string(index) +
                    " appears in both " + source(owner[index]) + " and " +
                    source(i));
            }
            owner[index] = i;
            by_shard[index] = &checkpoint.shards[s];
        }
    }
    for (std::size_t index = 0; index < owner.size(); ++index) {
        if (owner[index] == kNobody) {
            throw CheckpointError(
                "incomplete campaign: shard " + std::to_string(index) +
                " of " + std::to_string(owner.size()) +
                " is covered by no checkpoint");
        }
    }

    // The monolithic merge sequence: left-fold in shard-index order, so
    // the exec-time series comes out in run order.
    MergedWhiteboxCampaign merged;
    merged.meta = reference;
    merged.et_isolation = reference.et_isolation;
    merged.nr = reference.nr;
    merged.stats = *by_shard[0];
    for (std::size_t index = 1; index < by_shard.size(); ++index) {
        merged.stats.merge(*by_shard[index]);
    }
    return merged;
}

}  // namespace rrb
