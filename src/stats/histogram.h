// Integer-valued histogram with exact counts.
//
// Used throughout the evaluation: Figure 6(a) (number of ready contenders
// per request) and Figure 6(b) (per-request contention delay) are both
// histograms over small non-negative integers.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace rrb {

class Histogram {
public:
    /// Adds one observation of `value`.
    void add(std::uint64_t value, std::uint64_t count = 1);

    /// Total number of observations.
    [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

    /// Count for an exact value (0 when never observed).
    [[nodiscard]] std::uint64_t count(std::uint64_t value) const;

    /// Fraction of observations equal to `value`; 0 when empty.
    [[nodiscard]] double fraction(std::uint64_t value) const;

    /// Smallest / largest observed value. Precondition: !empty().
    [[nodiscard]] std::uint64_t min() const;
    [[nodiscard]] std::uint64_t max() const;

    /// Mean of the observations; 0 when empty.
    [[nodiscard]] double mean() const;

    /// The most frequent value (smallest such value on ties).
    /// Precondition: !empty().
    [[nodiscard]] std::uint64_t mode() const;

    /// Fraction of observations that equal the mode; 0 when empty.
    [[nodiscard]] double mode_fraction() const;

    /// Exact p-quantile (nearest-rank). Precondition: !empty(), 0<=q<=1.
    [[nodiscard]] std::uint64_t quantile(double q) const;

    [[nodiscard]] bool empty() const noexcept { return total_ == 0; }

    /// (value, count) pairs in increasing value order.
    [[nodiscard]] std::vector<std::pair<std::uint64_t, std::uint64_t>>
    buckets() const;

    /// Merges another histogram into this one.
    void merge(const Histogram& other);

private:
    std::map<std::uint64_t, std::uint64_t> counts_;
    std::uint64_t total_ = 0;
};

}  // namespace rrb
