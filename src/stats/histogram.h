// Integer-valued histogram with exact counts.
//
// Used throughout the evaluation: Figure 6(a) (number of ready contenders
// per request) and Figure 6(b) (per-request contention delay) are both
// histograms over small non-negative integers.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace rrb {

class Histogram {
public:
    /// Adds one observation of `value`. Inline fast path: a value the
    /// dense table already spans (every steady-state PMC update — the
    /// simulator calls this several times per bus transaction) is two
    /// additions; growth and large values take the out-of-line path.
    void add(std::uint64_t value, std::uint64_t count = 1) {
        if (value < dense_.size() && count != 0) {
            dense_[static_cast<std::size_t>(value)] += count;
            total_ += count;
            return;
        }
        add_slow(value, count);
    }

    /// Forgets every observation but keeps the dense storage, so a
    /// cleared histogram refills without allocating — the contract the
    /// reused-machine hot path (Machine::reset) relies on for its
    /// zero-steady-state-allocation guarantee.
    void clear() noexcept;

    /// Total number of observations.
    [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

    /// Count for an exact value (0 when never observed).
    [[nodiscard]] std::uint64_t count(std::uint64_t value) const;

    /// Fraction of observations equal to `value`; 0 when empty.
    [[nodiscard]] double fraction(std::uint64_t value) const;

    /// Smallest / largest observed value. Precondition: !empty().
    [[nodiscard]] std::uint64_t min() const;
    [[nodiscard]] std::uint64_t max() const;

    /// Mean of the observations; 0 when empty.
    [[nodiscard]] double mean() const;

    /// The most frequent value (smallest such value on ties).
    /// Precondition: !empty().
    [[nodiscard]] std::uint64_t mode() const;

    /// Fraction of observations that equal the mode; 0 when empty.
    [[nodiscard]] double mode_fraction() const;

    /// Exact p-quantile (nearest-rank). Precondition: !empty(), 0<=q<=1.
    [[nodiscard]] std::uint64_t quantile(double q) const;

    [[nodiscard]] bool empty() const noexcept { return total_ == 0; }

    /// (value, count) pairs in increasing value order.
    [[nodiscard]] std::vector<std::pair<std::uint64_t, std::uint64_t>>
    buckets() const;

    /// Merges another histogram into this one.
    void merge(const Histogram& other);

private:
    void add_slow(std::uint64_t value, std::uint64_t count);

    /// Values below kDenseLimit live in a flat table indexed by value;
    /// anything larger spills into the ordered overflow map. The
    /// simulator's histograms (per-request gamma <= ubd, contender
    /// counts <= Nc, injection deltas, DRAM latencies) are small-valued,
    /// so the request path stays on the dense side — O(1) adds with no
    /// node allocation — while arbitrary values remain exact.
    static constexpr std::uint64_t kDenseLimit = 4096;

    std::vector<std::uint64_t> dense_;  ///< count of value v at index v
    std::map<std::uint64_t, std::uint64_t> overflow_;  ///< v >= kDenseLimit
    std::uint64_t total_ = 0;
};

}  // namespace rrb
