// Small numeric-series helpers shared by the saw-tooth analysis and the
// benchmark harnesses.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace rrb {

/// Summary statistics of a series.
struct SeriesSummary {
    double min = 0.0;
    double max = 0.0;
    double mean = 0.0;
    double stddev = 0.0;  ///< population standard deviation
};

[[nodiscard]] SeriesSummary summarize(std::span<const double> xs);

/// Ordered sample container with a shard merge, the Series counterpart of
/// Histogram::merge: `a.merge(b)` appends b's values after a's, so
/// merging shard series in shard order reconstructs the original sample
/// order exactly (the white-box campaign path relies on this). Merge is
/// associative with the empty series as identity; it is order-preserving
/// rather than commutative, but every permutation-invariant statistic of
/// the result (min/max/count, and mean/stddev up to summation rounding)
/// is merge-order-free.
class Series {
public:
    Series() = default;
    explicit Series(std::vector<double> values) : values_(std::move(values)) {}

    void add(double x) { values_.push_back(x); }

    /// Appends `other`'s values after this series' values.
    void merge(const Series& other);

    [[nodiscard]] std::size_t size() const noexcept { return values_.size(); }
    [[nodiscard]] bool empty() const noexcept { return values_.empty(); }
    [[nodiscard]] const std::vector<double>& values() const noexcept {
        return values_;
    }
    [[nodiscard]] SeriesSummary summary() const { return summarize(values_); }

private:
    std::vector<double> values_;
};

/// Indices of strict local maxima: xs[i-1] < xs[i] >= xs[i+1] with plateau
/// handling (the first index of a plateau that is higher than both sides).
/// Endpoints are considered maxima when they dominate their single
/// neighbour — the saw-tooth of Figure 7(a) peaks at the first swept k.
[[nodiscard]] std::vector<std::size_t> local_maxima(
    std::span<const double> xs);

/// First differences: out[i] = xs[i+1] - xs[i].
[[nodiscard]] std::vector<double> diff(std::span<const double> xs);

/// Normalized autocorrelation r(lag) over lags [1, max_lag].
/// r(0) would be 1 by construction and is not included.
[[nodiscard]] std::vector<double> autocorrelation(std::span<const double> xs,
                                                  std::size_t max_lag);

/// Linear interpolation utility used for chart scaling.
[[nodiscard]] double lerp(double a, double b, double t);

}  // namespace rrb
