#include "stats/attribution.h"

#include "sim/contract.h"

namespace rrb {

void AttributionAccumulator::add(std::uint64_t /*run_index*/,
                                 const CycleAttribution& sample) {
    const std::size_t cores = sample.num_cores();
    if (num_cores_ == 0) {
        num_cores_ = cores;
        timeline_.assign(cores * kStallCauseCount, 0);
        blame_.assign(cores * cores, 0);
        dead_.assign(cores, 0);
    }
    RRB_REQUIRE(cores == num_cores_, "attribution core-count mismatch");
    ++runs_;
    machine_cycles_ += sample.total(0);
    for (CoreId c = 0; c < cores; ++c) {
        for (std::size_t cause = 0; cause < kStallCauseCount; ++cause) {
            timeline_[c * kStallCauseCount + cause] +=
                sample.timeline(c, static_cast<StallCause>(cause));
        }
        for (CoreId w = 0; w < cores; ++w) {
            blame_[c * num_cores_ + w] += sample.blamed(c, w);
        }
        dead_[c] += sample.dead_slot_cycles(c);
    }
}

void AttributionAccumulator::merge(const AttributionAccumulator& other) {
    if (other.runs_ == 0) return;
    if (runs_ == 0 && num_cores_ == 0) {
        *this = other;
        return;
    }
    RRB_REQUIRE(other.num_cores_ == num_cores_,
                "attribution core-count mismatch");
    runs_ += other.runs_;
    machine_cycles_ += other.machine_cycles_;
    for (std::size_t i = 0; i < timeline_.size(); ++i) {
        timeline_[i] += other.timeline_[i];
    }
    for (std::size_t i = 0; i < blame_.size(); ++i) {
        blame_[i] += other.blame_[i];
    }
    for (std::size_t i = 0; i < dead_.size(); ++i) {
        dead_[i] += other.dead_[i];
    }
}

void AttributionAccumulator::require_core(CoreId core) const {
    RRB_REQUIRE(core < num_cores_, "core id out of range");
}

std::uint64_t AttributionAccumulator::timeline(CoreId core,
                                               StallCause cause) const {
    require_core(core);
    return timeline_[core * kStallCauseCount +
                     static_cast<std::size_t>(cause)];
}

std::uint64_t AttributionAccumulator::blamed(CoreId victim,
                                             CoreId contender) const {
    require_core(victim);
    require_core(contender);
    return blame_[victim * num_cores_ + contender];
}

std::uint64_t AttributionAccumulator::dead_slot_cycles(CoreId victim) const {
    require_core(victim);
    return dead_[victim];
}

std::uint64_t AttributionAccumulator::core_total(CoreId core) const {
    require_core(core);
    std::uint64_t sum = 0;
    for (std::size_t cause = 0; cause < kStallCauseCount; ++cause) {
        sum += timeline_[core * kStallCauseCount + cause];
    }
    return sum;
}

std::uint64_t AttributionAccumulator::blamed_total(CoreId victim) const {
    require_core(victim);
    std::uint64_t sum = 0;
    for (CoreId w = 0; w < num_cores_; ++w) {
        sum += blame_[victim * num_cores_ + w];
    }
    return sum;
}

obs::AttributionSummary attribution_summary(
    const AttributionAccumulator& acc) {
    obs::AttributionSummary summary;
    summary.num_cores = acc.num_cores();
    summary.runs = acc.runs();
    summary.machine_cycles = acc.machine_cycles();
    summary.causes.reserve(kStallCauseCount);
    for (std::size_t cause = 0; cause < kStallCauseCount; ++cause) {
        summary.causes.emplace_back(
            to_string(static_cast<StallCause>(cause)));
    }
    const std::size_t cores = acc.num_cores();
    summary.timeline.reserve(cores * kStallCauseCount);
    summary.blame.reserve(cores * cores);
    summary.dead_slot.reserve(cores);
    for (CoreId c = 0; c < cores; ++c) {
        for (std::size_t cause = 0; cause < kStallCauseCount; ++cause) {
            summary.timeline.push_back(
                acc.timeline(c, static_cast<StallCause>(cause)));
        }
    }
    for (CoreId v = 0; v < cores; ++v) {
        for (CoreId w = 0; w < cores; ++w) {
            summary.blame.push_back(acc.blamed(v, w));
        }
        summary.dead_slot.push_back(acc.dead_slot_cycles(v));
    }
    return summary;
}

}  // namespace rrb
