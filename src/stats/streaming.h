// Streaming, mergeable statistics for O(1)-memory measurement campaigns.
//
// MBPTA campaigns at 10^5+ runs cannot afford to materialize one value
// per run the way `HwmCampaignResult::exec_times` does. The pWCET-path
// accumulators (extremes, moments, block maxima) instead fold
// observations as they stream by, holding constant or O(runs/block_size)
// state; WhiteboxAccumulator is the exception — its run-ordered Series
// is O(runs) by design, since the validation figures want the sample —
// and buys parallelism, not memory. Every accumulator merges with
// another over a *disjoint* run range. Two laws make the sharded
// campaign engine's determinism contract work:
//
//   1. Order determinism. merge(a, b) where b's runs all follow a's runs
//      equals folding b's observations after a's. The reduce engine
//      (engine/reduce.h) assigns shards contiguous run ranges and merges
//      them in shard order, so the overall fold order is run order —
//      independent of which thread computed which shard.
//   2. Exactness where it matters. Extremes, histogram counts and block
//      maxima are exact (integer or max/min operations), so they are
//      bit-identical at every job count by law 1 alone. Floating-point
//      moments use Chan's parallel merge, whose rounding depends on the
//      *merge tree*; the reduce engine pins the tree to a pure function
//      of the run count (never the job count), which restores
//      bit-identical results for them too.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

#include "core/experiment.h"
#include "sim/contract.h"
#include "sim/types.h"
#include "stats/evt.h"
#include "stats/histogram.h"
#include "stats/series.h"

namespace rrb {

/// Serialization backdoor (stats/checkpoint.h): accumulators befriend
/// the codec so checkpoints can round-trip their raw state bit-exactly
/// (e.g. StreamingMoments' m2, which no public accessor exposes without
/// a lossy divide) while the public API keeps its invariants.
struct CheckpointCodec;

/// Running min/max/count — the streamed form of HWM/LWM tracking.
template <typename T>
class StreamingExtremes {
public:
    void add(T value) noexcept {
        if (count_ == 0 || value < min_) min_ = value;
        if (count_ == 0 || value > max_) max_ = value;
        ++count_;
    }

    /// Folds another accumulator in. Exact and commutative.
    void merge(const StreamingExtremes& other) noexcept {
        if (other.count_ == 0) return;
        if (count_ == 0) {
            *this = other;
            return;
        }
        if (other.min_ < min_) min_ = other.min_;
        if (other.max_ > max_) max_ = other.max_;
        count_ += other.count_;
    }

    [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
    [[nodiscard]] bool empty() const noexcept { return count_ == 0; }

    /// Precondition: !empty().
    [[nodiscard]] T min() const {
        RRB_REQUIRE(count_ > 0, "extremes of an empty stream");
        return min_;
    }
    [[nodiscard]] T max() const {
        RRB_REQUIRE(count_ > 0, "extremes of an empty stream");
        return max_;
    }

private:
    friend struct CheckpointCodec;

    T min_{};
    T max_{};
    std::uint64_t count_ = 0;
};

/// Streaming mean / variance via Welford updates and Chan's parallel
/// merge (Chan, Golub, LeVeque 1979): two accumulators over disjoint
/// samples combine in O(1) without revisiting either sample.
class StreamingMoments {
public:
    void add(double x) noexcept {
        ++count_;
        const double delta = x - mean_;
        mean_ += delta / static_cast<double>(count_);
        m2_ += delta * (x - mean_);
    }

    void merge(const StreamingMoments& other) noexcept;

    [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
    [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
    [[nodiscard]] double mean() const noexcept { return mean_; }
    /// Population variance (divide by n), matching summarize().
    [[nodiscard]] double variance() const noexcept {
        return count_ == 0 ? 0.0 : m2_ / static_cast<double>(count_);
    }
    [[nodiscard]] double stddev() const noexcept;

private:
    friend struct CheckpointCodec;

    std::uint64_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;  ///< sum of squared deviations from the mean
};

/// Online block-maxima reduction: observations arrive keyed by run index
/// (in any order, each index exactly once), are folded into their block
/// max, and only O(runs / block_size) live values are ever held — one
/// (max, fill) pair per touched block. Complete blocks feed fit_gumbel
/// in block order, which makes the fit bit-identical to the classical
/// serial `fit_gumbel(block_maxima(sample, block_size))` on the same
/// values: max is an exact fold, and the maxima vector comes out in the
/// same order with trailing partial blocks dropped.
class StreamingBlockMaxima {
public:
    explicit StreamingBlockMaxima(std::size_t block_size = 50);

    /// Folds the observation of run `run_index`. Each run index must be
    /// added exactly once across all merged accumulators.
    void add(std::uint64_t run_index, double value);

    /// Folds another accumulator over a disjoint run-index set in.
    /// Precondition: equal block sizes.
    void merge(const StreamingBlockMaxima& other);

    [[nodiscard]] std::size_t block_size() const noexcept {
        return block_size_;
    }
    /// Observations folded so far.
    [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
    /// Blocks currently tracked — the accumulator's live-memory footprint
    /// (each is one (max, fill) pair).
    [[nodiscard]] std::size_t live_values() const noexcept {
        return blocks_.size();
    }
    [[nodiscard]] std::size_t complete_blocks() const noexcept;

    /// Maxima of the complete blocks, in block-index order.
    [[nodiscard]] std::vector<double> maxima() const;

    /// fit_gumbel over maxima() — the streamed EVT fit.
    [[nodiscard]] GumbelFit fit() const;

private:
    friend struct CheckpointCodec;

    struct Block {
        double max = 0.0;
        std::uint64_t filled = 0;
    };

    std::size_t block_size_;
    std::uint64_t count_ = 0;
    std::map<std::uint64_t, Block> blocks_;  ///< block index -> state
};

/// Streaming peaks-over-threshold: the exceedance store a GPD (or
/// exponential-tail) fitter needs, produced on the same fold/merge
/// contract as the other accumulators so a POT-based pWCET path can
/// land later without touching the reduce engine. Counts every
/// observation, keeps only those strictly above the threshold — in
/// fold order, which the reduce engine's contiguous shards plus
/// shard-order merging make run order. Live memory is O(exceedances),
/// which a well-chosen threshold keeps a small fraction of runs.
class StreamingPeaksOverThreshold {
public:
    explicit StreamingPeaksOverThreshold(double threshold = 0.0)
        : threshold_(threshold) {}

    /// Folds the observation of run `run_index`. The index does not
    /// enter the state (exceedances are kept in fold order); it is part
    /// of the campaign-accumulator concept's signature.
    void add(std::uint64_t run_index, double value);
    /// Campaign form: folds the run's execution time, so the
    /// accumulator rides engine::run_campaign_reduce unchanged.
    void add(std::uint64_t run_index, const Measurement& m);

    /// Folds a later shard in (other's runs follow this one's).
    /// Precondition: equal thresholds.
    void merge(const StreamingPeaksOverThreshold& other);

    [[nodiscard]] double threshold() const noexcept { return threshold_; }
    /// All observations folded, exceeding or not.
    [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
    [[nodiscard]] std::size_t exceedance_count() const noexcept {
        return exceedances_.size();
    }
    /// Empirical P(X > threshold); 0 on an empty stream.
    [[nodiscard]] double exceedance_rate() const noexcept;
    /// The observations above the threshold, in run order.
    [[nodiscard]] const std::vector<double>& exceedances() const noexcept {
        return exceedances_;
    }
    /// The excesses (value - threshold) a GPD fitter consumes.
    [[nodiscard]] std::vector<double> excesses() const;

private:
    friend struct CheckpointCodec;

    double threshold_;
    std::uint64_t count_ = 0;
    std::vector<double> exceedances_;
};

/// White-box campaign statistics: the per-request histograms and series
/// the validation figures need, produced shard-wise. Histogram merge is
/// exact integer addition (associative and commutative); the exec-time
/// Series appends, so shard-order merging reconstructs run order.
class WhiteboxAccumulator {
public:
    /// Folds run `run_index`'s measurement in. Runs must be added in
    /// increasing run order within one accumulator (the reduce engine's
    /// contiguous shards do this naturally) so exec_times() is run-ordered.
    void add(std::uint64_t run_index, const Measurement& m);

    /// Folds a later shard in (other's runs follow this one's).
    void merge(const WhiteboxAccumulator& other);

    [[nodiscard]] std::uint64_t runs() const noexcept { return runs_; }
    [[nodiscard]] const Histogram& gamma() const noexcept { return gamma_; }
    [[nodiscard]] const Histogram& ready_contenders() const noexcept {
        return ready_contenders_;
    }
    [[nodiscard]] const Histogram& injection_delta() const noexcept {
        return injection_delta_;
    }
    [[nodiscard]] std::uint64_t max_gamma() const noexcept {
        return max_gamma_;
    }
    /// Per-run execution times in run order.
    [[nodiscard]] const Series& exec_times() const noexcept {
        return exec_times_;
    }
    [[nodiscard]] const StreamingExtremes<Cycle>& extremes() const noexcept {
        return extremes_;
    }

private:
    friend struct CheckpointCodec;

    std::uint64_t runs_ = 0;
    std::uint64_t max_gamma_ = 0;
    Histogram gamma_;
    Histogram ready_contenders_;
    Histogram injection_delta_;
    Series exec_times_;
    StreamingExtremes<Cycle> extremes_;
};

/// Everything a pWCET campaign keeps per run — and nothing more:
/// extremes (HWM/LWM), moments (mean/stddev) and the online block-maxima
/// fold feeding the Gumbel fit. Live memory is O(runs / block_size).
class PwcetAccumulator {
public:
    explicit PwcetAccumulator(std::size_t block_size = 50)
        : blocks_(block_size) {}

    void add(std::uint64_t run_index, const Measurement& m);

    void merge(const PwcetAccumulator& other);

    [[nodiscard]] const StreamingExtremes<Cycle>& extremes() const noexcept {
        return extremes_;
    }
    [[nodiscard]] const StreamingMoments& moments() const noexcept {
        return moments_;
    }
    [[nodiscard]] const StreamingBlockMaxima& blocks() const noexcept {
        return blocks_;
    }

private:
    friend struct CheckpointCodec;

    StreamingExtremes<Cycle> extremes_;
    StreamingMoments moments_;
    StreamingBlockMaxima blocks_;
};

}  // namespace rrb
