#include "stats/series.h"

#include <algorithm>
#include <cmath>

#include "sim/contract.h"

namespace rrb {

void Series::merge(const Series& other) {
    // Self-merge duplicates the sample; insert from a copy-safe range.
    if (this == &other) {
        const std::size_t n = values_.size();
        values_.reserve(2 * n);
        for (std::size_t i = 0; i < n; ++i) values_.push_back(values_[i]);
        return;
    }
    values_.insert(values_.end(), other.values_.begin(), other.values_.end());
}

SeriesSummary summarize(std::span<const double> xs) {
    SeriesSummary s;
    if (xs.empty()) return s;
    s.min = *std::min_element(xs.begin(), xs.end());
    s.max = *std::max_element(xs.begin(), xs.end());
    double acc = 0.0;
    for (double x : xs) acc += x;
    s.mean = acc / static_cast<double>(xs.size());
    double var = 0.0;
    for (double x : xs) var += (x - s.mean) * (x - s.mean);
    s.stddev = std::sqrt(var / static_cast<double>(xs.size()));
    return s;
}

std::vector<std::size_t> local_maxima(std::span<const double> xs) {
    std::vector<std::size_t> out;
    const std::size_t n = xs.size();
    if (n == 0) return out;
    if (n == 1) return {0};

    for (std::size_t i = 0; i < n; ++i) {
        const bool left_ok = (i == 0) || xs[i] > xs[i - 1];
        if (!left_ok) continue;
        // Walk over a potential plateau.
        std::size_t j = i;
        while (j + 1 < n && xs[j + 1] == xs[i]) ++j;
        const bool right_ok = (j == n - 1) || xs[i] > xs[j + 1];
        if (right_ok) out.push_back(i);
    }
    return out;
}

std::vector<double> diff(std::span<const double> xs) {
    std::vector<double> out;
    if (xs.size() < 2) return out;
    out.reserve(xs.size() - 1);
    for (std::size_t i = 0; i + 1 < xs.size(); ++i) {
        out.push_back(xs[i + 1] - xs[i]);
    }
    return out;
}

std::vector<double> autocorrelation(std::span<const double> xs,
                                    std::size_t max_lag) {
    RRB_REQUIRE(max_lag >= 1, "need at least one lag");
    const std::size_t n = xs.size();
    std::vector<double> out;
    if (n < 2) return out;

    const SeriesSummary s = summarize(xs);
    double denom = 0.0;
    for (double x : xs) denom += (x - s.mean) * (x - s.mean);

    const std::size_t lags = std::min(max_lag, n - 1);
    out.reserve(lags);
    for (std::size_t lag = 1; lag <= lags; ++lag) {
        double num = 0.0;
        for (std::size_t i = 0; i + lag < n; ++i) {
            num += (xs[i] - s.mean) * (xs[i + lag] - s.mean);
        }
        out.push_back(denom == 0.0 ? 0.0 : num / denom);
    }
    return out;
}

double lerp(double a, double b, double t) { return a + (b - a) * t; }

}  // namespace rrb
