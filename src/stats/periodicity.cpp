#include "stats/periodicity.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "sim/contract.h"
#include "stats/series.h"

namespace rrb {

namespace {

bool close(double a, double b, double tol) { return std::fabs(a - b) <= tol; }

}  // namespace

PeriodEstimate exact_period(std::span<const double> xs, double tolerance) {
    RRB_REQUIRE(tolerance >= 0.0, "tolerance must be non-negative");
    const std::size_t n = xs.size();
    if (n < 4) return {};
    for (std::size_t p = 1; p <= n / 2; ++p) {
        bool ok = true;
        for (std::size_t i = 0; i + p < n; ++i) {
            if (!close(xs[i], xs[i + p], tolerance)) {
                ok = false;
                break;
            }
        }
        // Reject the degenerate "constant series" match: a period-1 match
        // means there is no structure to measure.
        if (ok && p == 1) return {};
        if (ok) return {p, 1.0};
    }
    return {};
}

PeriodEstimate peak_spacing_period(std::span<const double> xs) {
    const std::vector<std::size_t> peaks = local_maxima(xs);
    if (peaks.size() < 2) return {};
    std::vector<std::size_t> spacings;
    spacings.reserve(peaks.size() - 1);
    for (std::size_t i = 0; i + 1 < peaks.size(); ++i) {
        spacings.push_back(peaks[i + 1] - peaks[i]);
    }
    std::vector<std::size_t> sorted = spacings;
    std::sort(sorted.begin(), sorted.end());
    const std::size_t median = sorted[sorted.size() / 2];
    if (median == 0) return {};
    const auto agreeing = static_cast<double>(
        std::count(spacings.begin(), spacings.end(), median));
    return {median, agreeing / static_cast<double>(spacings.size())};
}

PeriodEstimate autocorrelation_period(std::span<const double> xs,
                                      std::size_t min_lag,
                                      double min_correlation) {
    RRB_REQUIRE(min_lag >= 1, "min_lag must be >= 1");
    const std::size_t n = xs.size();
    if (n < 2 * min_lag + 2) return {};
    const std::vector<double> ac = autocorrelation(xs, n / 2);
    if (ac.size() < min_lag) return {};

    // Find the first local maximum of the autocorrelation at lag >= min_lag
    // that clears the threshold; this picks the fundamental period rather
    // than one of its multiples (which correlate equally well).
    std::size_t best_lag = 0;
    double best_r = min_correlation;
    for (std::size_t lag = min_lag; lag <= ac.size(); ++lag) {
        const double r = ac[lag - 1];
        const double prev = lag >= 2 ? ac[lag - 2] : -1.0;
        const double next = lag < ac.size() ? ac[lag] : -1.0;
        const bool is_local_max = r >= prev && r >= next;
        if (is_local_max && r > best_r) {
            best_lag = lag;
            best_r = r;
            break;  // first qualifying local max = fundamental
        }
    }
    if (best_lag == 0) return {};
    return {best_lag, std::clamp(best_r, 0.0, 1.0)};
}

PeriodEstimate equal_value_period(std::span<const double> xs,
                                  double tolerance) {
    RRB_REQUIRE(tolerance >= 0.0, "tolerance must be non-negative");
    const std::size_t n = xs.size();
    if (n < 3) return {};

    std::size_t min_dist = 0;
    std::size_t pairs_total = 0;
    std::vector<std::size_t> distances;
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < n; ++j) {
            if (!close(xs[i], xs[j], tolerance)) continue;
            const std::size_t d = j - i;
            ++pairs_total;
            distances.push_back(d);
            if (min_dist == 0 || d < min_dist) min_dist = d;
        }
    }
    if (min_dist == 0) return {};
    // A flat series matches everything at distance 1; that is noise, not a
    // saw-tooth.
    if (min_dist == 1) return {};

    std::size_t consistent = 0;
    for (const std::size_t d : distances) {
        if (d % min_dist == 0) ++consistent;
    }
    return {min_dist,
            static_cast<double>(consistent) / static_cast<double>(pairs_total)};
}

PeriodConsensus consensus_period(std::span<const double> xs,
                                 double tolerance) {
    PeriodConsensus c;
    c.exact = exact_period(xs, tolerance);
    c.equal_value = equal_value_period(xs, tolerance);
    c.peaks = peak_spacing_period(xs);
    c.autocorr = autocorrelation_period(xs);

    std::map<std::size_t, int> votes;
    for (const PeriodEstimate* e :
         {&c.exact, &c.equal_value, &c.peaks, &c.autocorr}) {
        if (e->found()) ++votes[e->period];
    }
    if (votes.empty()) return c;

    int best_votes = 0;
    for (const auto& [period, v] : votes) best_votes = std::max(best_votes, v);

    const PeriodEstimate* priority[] = {&c.exact, &c.equal_value, &c.peaks,
                                        &c.autocorr};
    if (best_votes >= 2) {
        // Majority vote; tie-break by detector priority (exact first).
        for (const PeriodEstimate* e : priority) {
            if (e->found() && votes[e->period] == best_votes) {
                c.period = e->period;
                c.votes = best_votes;
                break;
            }
        }
    } else {
        // No agreement: fall back to the single most confident detector.
        // Under measurement noise the value-based detectors fail first
        // while autocorrelation (score = correlation) stays reliable; a
        // fixed priority order would pick a noise-corrupted value match.
        const PeriodEstimate* best = nullptr;
        for (const PeriodEstimate* e : priority) {
            if (e->found() && (best == nullptr || e->score > best->score)) {
                best = e;
            }
        }
        if (best != nullptr) {
            c.period = best->period;
            c.votes = 1;
        }
    }
    return c;
}

}  // namespace rrb
