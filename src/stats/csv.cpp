#include "stats/csv.h"

#include <cmath>
#include <cstdio>
#include <fstream>

#include "sim/contract.h"

namespace rrb {

std::string to_csv(std::span<const std::string> column_names,
                   std::span<const std::vector<double>> columns) {
    RRB_REQUIRE(column_names.size() == columns.size(),
                "one name per column required");
    std::string out = "index";
    for (const auto& name : column_names) out += "," + name;
    out += "\n";

    std::size_t rows = 0;
    for (const auto& col : columns) rows = std::max(rows, col.size());

    char buf[40];
    for (std::size_t r = 0; r < rows; ++r) {
        out += std::to_string(r);
        for (const auto& col : columns) {
            out += ",";
            if (r < col.size()) {
                std::snprintf(buf, sizeof buf, "%.6g", col[r]);
                out += buf;
            }
        }
        out += "\n";
    }
    return out;
}

bool write_text_file(const std::string& path, const std::string& text) {
    std::ofstream f(path);
    if (!f) return false;
    f << text;
    return static_cast<bool>(f);
}

}  // namespace rrb
