#include "stats/streaming.h"

#include <algorithm>
#include <cmath>

namespace rrb {

// ------------------------------------------------------ StreamingMoments

void StreamingMoments::merge(const StreamingMoments& other) noexcept {
    if (other.count_ == 0) return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    const double delta = other.mean_ - mean_;
    const double n_a = static_cast<double>(count_);
    const double n_b = static_cast<double>(other.count_);
    const double n = n_a + n_b;
    m2_ += other.m2_ + delta * delta * (n_a * n_b / n);
    mean_ += delta * (n_b / n);
    count_ += other.count_;
}

double StreamingMoments::stddev() const noexcept {
    return std::sqrt(variance());
}

// --------------------------------------------------- StreamingBlockMaxima

StreamingBlockMaxima::StreamingBlockMaxima(std::size_t block_size)
    : block_size_(block_size) {
    RRB_REQUIRE(block_size >= 1, "block size must be positive");
}

void StreamingBlockMaxima::add(std::uint64_t run_index, double value) {
    Block& block = blocks_[run_index / block_size_];
    if (block.filled == 0 || value > block.max) block.max = value;
    ++block.filled;
    RRB_ENSURE(block.filled <= block_size_);  // duplicate run index otherwise
    ++count_;
}

void StreamingBlockMaxima::merge(const StreamingBlockMaxima& other) {
    RRB_REQUIRE(block_size_ == other.block_size_,
                "merging block-maxima streams of different block sizes");
    for (const auto& [index, incoming] : other.blocks_) {
        Block& block = blocks_[index];
        // Max over disjoint subsets of the block: exact, order-free.
        if (block.filled == 0 || incoming.max > block.max) {
            block.max = incoming.max;
        }
        block.filled += incoming.filled;
        RRB_ENSURE(block.filled <= block_size_);
    }
    count_ += other.count_;
}

std::size_t StreamingBlockMaxima::complete_blocks() const noexcept {
    std::size_t complete = 0;
    for (const auto& [index, block] : blocks_) {
        if (block.filled == block_size_) ++complete;
    }
    return complete;
}

std::vector<double> StreamingBlockMaxima::maxima() const {
    std::vector<double> out;
    out.reserve(blocks_.size());
    // std::map iterates in block-index order — the serial block order.
    for (const auto& [index, block] : blocks_) {
        if (block.filled == block_size_) out.push_back(block.max);
    }
    return out;
}

GumbelFit StreamingBlockMaxima::fit() const { return fit_gumbel(maxima()); }

// ------------------------------------------- StreamingPeaksOverThreshold

void StreamingPeaksOverThreshold::add(std::uint64_t run_index,
                                      double value) {
    (void)run_index;  // order is the caller's contract; nothing keyed here
    ++count_;
    if (value > threshold_) exceedances_.push_back(value);
}

void StreamingPeaksOverThreshold::add(std::uint64_t run_index,
                                      const Measurement& m) {
    add(run_index, static_cast<double>(m.exec_time));
}

void StreamingPeaksOverThreshold::merge(
    const StreamingPeaksOverThreshold& other) {
    RRB_REQUIRE(threshold_ == other.threshold_,
                "merging POT streams with different thresholds");
    // Later shard: append keeps the exceedances in run order.
    exceedances_.insert(exceedances_.end(), other.exceedances_.begin(),
                        other.exceedances_.end());
    count_ += other.count_;
}

double StreamingPeaksOverThreshold::exceedance_rate() const noexcept {
    return count_ == 0 ? 0.0
                       : static_cast<double>(exceedances_.size()) /
                             static_cast<double>(count_);
}

std::vector<double> StreamingPeaksOverThreshold::excesses() const {
    std::vector<double> out;
    out.reserve(exceedances_.size());
    for (const double v : exceedances_) out.push_back(v - threshold_);
    return out;
}

// ---------------------------------------------------- WhiteboxAccumulator

void WhiteboxAccumulator::add(std::uint64_t run_index, const Measurement& m) {
    (void)run_index;  // order is the caller's contract; nothing keyed here
    ++runs_;
    max_gamma_ = std::max(max_gamma_, m.max_gamma);
    gamma_.merge(m.gamma);
    ready_contenders_.merge(m.ready_contenders);
    injection_delta_.merge(m.injection_delta);
    exec_times_.add(static_cast<double>(m.exec_time));
    extremes_.add(m.exec_time);
}

void WhiteboxAccumulator::merge(const WhiteboxAccumulator& other) {
    runs_ += other.runs_;
    max_gamma_ = std::max(max_gamma_, other.max_gamma_);
    gamma_.merge(other.gamma_);
    ready_contenders_.merge(other.ready_contenders_);
    injection_delta_.merge(other.injection_delta_);
    exec_times_.merge(other.exec_times_);
    extremes_.merge(other.extremes_);
}

// ------------------------------------------------------- PwcetAccumulator

void PwcetAccumulator::add(std::uint64_t run_index, const Measurement& m) {
    extremes_.add(m.exec_time);
    moments_.add(static_cast<double>(m.exec_time));
    blocks_.add(run_index, static_cast<double>(m.exec_time));
}

void PwcetAccumulator::merge(const PwcetAccumulator& other) {
    extremes_.merge(other.extremes_);
    moments_.merge(other.moments_);
    blocks_.merge(other.blocks_);
}

}  // namespace rrb
