// Plain-text chart rendering for the benchmark harnesses: the paper's
// figures are reproduced as ASCII so the benches are self-contained and
// their output can be diffed in CI.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "stats/histogram.h"

namespace rrb {

struct ChartOptions {
    std::size_t height = 12;     ///< rows of the plot area
    std::size_t max_width = 96;  ///< samples beyond this are decimated
    std::string title;
    std::string x_label;
    std::string y_label;
};

/// Renders a column chart of the series (one column per sample), scaled so
/// min..max spans the height. Suitable for the Figure 7 saw-tooth plots.
[[nodiscard]] std::string render_series(std::span<const double> ys,
                                        const ChartOptions& opts = {});

/// Renders a horizontal bar chart of a histogram, one row per bucket:
/// `value | ######## count (percent)`.
[[nodiscard]] std::string render_histogram(const Histogram& h,
                                           const ChartOptions& opts = {});

/// Renders several named series as aligned numeric columns (a paper-style
/// table): header row then one row per index.
[[nodiscard]] std::string render_table(
    std::span<const std::string> column_names,
    std::span<const std::vector<double>> columns,
    std::string_view index_name = "k");

}  // namespace rrb
