// Period detection over sampled series.
//
// The methodology of the paper boils down to: the slowdown dbus(t, k) of
// rsk-nop as a function of the nop count k is a saw-tooth whose period (in
// injection-time cycles) equals the bus upper-bound delay ubd (Section 4,
// Equation 3). These detectors recover that period from the measured
// series. Several independent detectors are provided so the estimator can
// cross-check them (Ablation B) — confidence is the whole point of the
// paper, so a single fragile detector would be self-defeating.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

namespace rrb {

/// Result of one detector run.
struct PeriodEstimate {
    std::size_t period = 0;   ///< 0 means "no period found"
    double score = 0.0;       ///< detector-specific quality in [0,1]
    [[nodiscard]] bool found() const noexcept { return period != 0; }
};

/// Smallest p in [1, n/2] such that xs[i] == xs[i+p] within `tolerance`
/// for every comparable i. Exact and strict; returns not-found on noisy
/// data. score = 1 when found.
[[nodiscard]] PeriodEstimate exact_period(std::span<const double> xs,
                                          double tolerance = 0.0);

/// Median spacing between successive local maxima of the series.
/// Robust to value noise but needs >= 2 peaks. score = fraction of
/// spacings equal to the median spacing.
[[nodiscard]] PeriodEstimate peak_spacing_period(std::span<const double> xs);

/// Lag (>= min_lag) with the highest autocorrelation, provided that best
/// correlation is at least `min_correlation`. score = that correlation
/// clamped to [0,1]. Robust to moderate noise.
[[nodiscard]] PeriodEstimate autocorrelation_period(
    std::span<const double> xs, std::size_t min_lag = 2,
    double min_correlation = 0.5);

/// The paper's Equation 3 read literally: the smallest |ki - kj| over pairs
/// ki != kj with dbus(ki) == dbus(kj) (within tolerance). Within one
/// saw-tooth ramp the values are strictly monotone, so the smallest
/// equal-value distance is one full period. score = fraction of all
/// equal-value pairs whose distance is a multiple of the reported period.
[[nodiscard]] PeriodEstimate equal_value_period(std::span<const double> xs,
                                                double tolerance = 0.0);

/// Combines the detectors above by majority vote; ties are broken in favor
/// of exact_period, then equal_value, then peak spacing, then
/// autocorrelation. Returns nullopt when no detector finds a period.
struct PeriodConsensus {
    std::size_t period = 0;
    PeriodEstimate exact;
    PeriodEstimate equal_value;
    PeriodEstimate peaks;
    PeriodEstimate autocorr;
    int votes = 0;            ///< detectors agreeing with `period`
    [[nodiscard]] bool found() const noexcept { return period != 0; }
};

[[nodiscard]] PeriodConsensus consensus_period(std::span<const double> xs,
                                               double tolerance = 0.0);

}  // namespace rrb
