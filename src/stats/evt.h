// Extreme-value statistics for measurement-based probabilistic timing
// analysis (MBPTA) — the research context of the paper (Section 1
// motivates ubdm as an input that "ultimately increases confidence on
// MBTA", and the group's MBPTA line fits extreme-value distributions to
// execution-time maxima).
//
// This module fits a Gumbel (EV type I) distribution to block maxima of
// campaign execution times via the method of moments:
//     beta = s * sqrt(6) / pi,   mu = mean - gamma_e * beta
// and exposes pWCET quantiles. It intentionally stays simple (no MLE, no
// GPD): the benches use it to show that an EVT projection from
// randomized campaigns still undershoots the composable ETB — sampling
// cannot replace the analytic pad.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace rrb {

struct GumbelFit {
    double mu = 0.0;    ///< location
    double beta = 0.0;  ///< scale (> 0 unless the sample is degenerate)
    std::size_t sample_size = 0;

    [[nodiscard]] bool valid() const noexcept {
        return sample_size >= 2 && beta > 0.0;
    }

    /// Quantile x with P(X <= x) = p (inverse CDF). Domain: 0 < p < 1;
    /// out-of-range (or NaN) p returns quiet NaN instead of a garbage
    /// extrapolation, so report code can filter with std::isnan.
    [[nodiscard]] double quantile(double p) const;

    /// pWCET at an exceedance probability per run, e.g. 1e-9:
    /// quantile(1 - exceedance). Same domain guard as quantile: NaN
    /// outside (0, 1).
    [[nodiscard]] double pwcet(double exceedance_probability) const;

    /// CDF at x.
    [[nodiscard]] double cdf(double x) const;
};

/// Fits a Gumbel distribution to the sample by the method of moments.
[[nodiscard]] GumbelFit fit_gumbel(std::span<const double> sample);

/// Splits the sample into consecutive blocks of `block_size` and returns
/// the per-block maxima (the classical block-maxima reduction; trailing
/// partial blocks are dropped).
[[nodiscard]] std::vector<double> block_maxima(std::span<const double> xs,
                                               std::size_t block_size);

}  // namespace rrb
