// Minimal CSV writer so every bench can dump its figure data for external
// plotting alongside the ASCII rendering.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace rrb {

/// Builds CSV text: header from `column_names`, then one row per index with
/// the per-column values ("" for missing trailing values).
[[nodiscard]] std::string to_csv(std::span<const std::string> column_names,
                                 std::span<const std::vector<double>> columns);

/// Writes text to a file, creating parent directories is NOT attempted;
/// returns false on I/O failure.
bool write_text_file(const std::string& path, const std::string& text);

}  // namespace rrb
