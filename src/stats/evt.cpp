#include "stats/evt.h"

#include <cmath>
#include <limits>

#include "sim/contract.h"
#include "stats/series.h"

namespace rrb {

namespace {

constexpr double kEulerMascheroni = 0.5772156649015328606;
constexpr double kPi = 3.14159265358979323846;

}  // namespace

double GumbelFit::quantile(double p) const {
    // Domain guard: outside (0,1) the inverse CDF is undefined (log of a
    // non-positive number); NaN comparisons are false, so NaN p lands
    // here too.
    if (!(p > 0.0 && p < 1.0)) {
        return std::numeric_limits<double>::quiet_NaN();
    }
    // x = mu - beta * ln(-ln(p))
    return mu - beta * std::log(-std::log(p));
}

double GumbelFit::pwcet(double exceedance_probability) const {
    if (!(exceedance_probability > 0.0 && exceedance_probability < 1.0)) {
        return std::numeric_limits<double>::quiet_NaN();
    }
    return quantile(1.0 - exceedance_probability);
}

double GumbelFit::cdf(double x) const {
    if (beta <= 0.0) return x >= mu ? 1.0 : 0.0;
    return std::exp(-std::exp(-(x - mu) / beta));
}

GumbelFit fit_gumbel(std::span<const double> sample) {
    GumbelFit fit;
    fit.sample_size = sample.size();
    if (sample.size() < 2) return fit;
    const SeriesSummary s = summarize(sample);
    // Method of moments with the sample (population) std deviation.
    fit.beta = s.stddev * std::sqrt(6.0) / kPi;
    fit.mu = s.mean - kEulerMascheroni * fit.beta;
    return fit;
}

std::vector<double> block_maxima(std::span<const double> xs,
                                 std::size_t block_size) {
    RRB_REQUIRE(block_size >= 1, "block size must be positive");
    std::vector<double> maxima;
    for (std::size_t start = 0; start + block_size <= xs.size();
         start += block_size) {
        double best = xs[start];
        for (std::size_t i = start + 1; i < start + block_size; ++i) {
            best = std::max(best, xs[i]);
        }
        maxima.push_back(best);
    }
    return maxima;
}

}  // namespace rrb
