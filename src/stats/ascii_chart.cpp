#include "stats/ascii_chart.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "sim/contract.h"
#include "stats/series.h"

namespace rrb {

namespace {

std::string format_double(double v) {
    char buf[32];
    if (v == std::floor(v) && std::fabs(v) < 1e15) {
        std::snprintf(buf, sizeof buf, "%.0f", v);
    } else {
        std::snprintf(buf, sizeof buf, "%.3f", v);
    }
    return buf;
}

}  // namespace

std::string render_series(std::span<const double> ys,
                          const ChartOptions& opts) {
    RRB_REQUIRE(opts.height >= 2, "chart height must be >= 2");
    if (ys.empty()) return "(empty series)\n";

    // Decimate if wider than the budget (keep every stride-th sample).
    std::vector<double> data;
    const std::size_t stride =
        ys.size() <= opts.max_width ? 1 : (ys.size() + opts.max_width - 1) /
                                              opts.max_width;
    for (std::size_t i = 0; i < ys.size(); i += stride) data.push_back(ys[i]);

    const SeriesSummary s = summarize(data);
    const double span = s.max - s.min;

    std::string out;
    if (!opts.title.empty()) out += opts.title + "\n";
    out += "  max=" + format_double(s.max) + "  min=" + format_double(s.min) +
           (stride > 1 ? "  (every " + std::to_string(stride) + "th sample)"
                       : "") +
           "\n";

    const std::size_t h = opts.height;
    for (std::size_t row = 0; row < h; ++row) {
        // row 0 = top of chart.
        const double threshold =
            span == 0.0
                ? s.min
                : s.min + span * static_cast<double>(h - row) /
                              static_cast<double>(h);
        std::string line = "  |";
        for (const double y : data) {
            const bool filled =
                span == 0.0 ? row == h - 1 : y >= threshold - span * 1e-12;
            line += filled ? '#' : ' ';
        }
        out += line + "\n";
    }
    out += "  +" + std::string(data.size(), '-') + "\n";
    if (!opts.x_label.empty()) out += "   " + opts.x_label + "\n";
    return out;
}

std::string render_histogram(const Histogram& h, const ChartOptions& opts) {
    if (h.empty()) return "(empty histogram)\n";
    std::string out;
    if (!opts.title.empty()) out += opts.title + "\n";

    std::uint64_t max_count = 0;
    for (const auto& [value, count] : h.buckets()) {
        max_count = std::max(max_count, count);
    }
    const std::size_t bar_budget = std::max<std::size_t>(opts.max_width, 8);

    for (const auto& [value, count] : h.buckets()) {
        const auto bar_len = static_cast<std::size_t>(
            std::llround(static_cast<double>(count) /
                         static_cast<double>(max_count) *
                         static_cast<double>(bar_budget)));
        char head[64];
        std::snprintf(head, sizeof head, "  %6llu |",
                      static_cast<unsigned long long>(value));
        char tail[96];
        std::snprintf(tail, sizeof tail, " %llu (%.2f%%)",
                      static_cast<unsigned long long>(count),
                      100.0 * h.fraction(value));
        out += head + std::string(bar_len, '#') + tail + "\n";
    }
    return out;
}

std::string render_table(std::span<const std::string> column_names,
                         std::span<const std::vector<double>> columns,
                         std::string_view index_name) {
    RRB_REQUIRE(column_names.size() == columns.size(),
                "one name per column required");
    std::size_t rows = 0;
    for (const auto& col : columns) rows = std::max(rows, col.size());

    std::string out(index_name);
    for (const auto& name : column_names) out += "\t" + name;
    out += "\n";
    for (std::size_t r = 0; r < rows; ++r) {
        out += std::to_string(r);
        for (const auto& col : columns) {
            out += "\t";
            out += r < col.size() ? format_double(col[r]) : "-";
        }
        out += "\n";
    }
    return out;
}

}  // namespace rrb
