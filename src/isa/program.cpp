#include "isa/program.h"

#include <algorithm>

#include "sim/contract.h"

namespace rrb {

std::uint64_t fingerprint(const Program& program) {
    // splitmix64-chained content hash. The campaign hot path evaluates
    // this per run to decide whether a leased machine's programs can be
    // reused in place; the byte-at-a-time FNV fold costs ~64 dependent
    // multiply-xors per field, the splitmix chain 5 — same collision
    // quality for a same-build, in-memory identity.
    std::uint64_t h = 0x243f6a8885a308d3ULL;  // pi, nothing-up-my-sleeve
    const auto fold = [&h](std::uint64_t v) {
        h += 0x9e3779b97f4a7c15ULL;
        std::uint64_t z = h ^ v;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        h = z ^ (z >> 31);
    };
    fold(program.body.size());
    for (const Instruction& instr : program.body) {
        fold(static_cast<std::uint64_t>(instr.kind) |
             static_cast<std::uint64_t>(instr.latency) << 8 |
             static_cast<std::uint64_t>(instr.addr.kind) << 40);
        fold(instr.addr.base);
        fold(instr.addr.stride_bytes);
        fold(instr.addr.range);
        fold(instr.addr.align);
        fold(instr.addr.salt);
    }
    fold(program.iterations);
    fold(program.code_base);
    fold(program.loop_control_cycles);
    return h;
}

namespace {

/// splitmix64: a high-quality stateless mixer; address randomization must be
/// a pure function of (iteration, salt) for reproducibility.
std::uint64_t mix64(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

}  // namespace

const char* to_string(OpKind kind) noexcept {
    switch (kind) {
        case OpKind::kLoad: return "load";
        case OpKind::kStore: return "store";
        case OpKind::kNop: return "nop";
        case OpKind::kAlu: return "alu";
    }
    return "?";
}

AddrPattern AddrPattern::fixed(Addr base) {
    AddrPattern p;
    p.kind = Kind::kFixed;
    p.base = base;
    return p;
}

AddrPattern AddrPattern::stride(Addr base, std::uint64_t stride_bytes,
                                std::uint64_t range) {
    RRB_REQUIRE(range > 0, "stride pattern needs a non-empty range");
    AddrPattern p;
    p.kind = Kind::kStride;
    p.base = base;
    p.stride_bytes = stride_bytes;
    p.range = range;
    return p;
}

AddrPattern AddrPattern::random(Addr base, std::uint64_t range,
                                std::uint64_t align, std::uint64_t salt) {
    RRB_REQUIRE(range > 0, "random pattern needs a non-empty range");
    RRB_REQUIRE(align > 0, "alignment must be positive");
    RRB_REQUIRE(range >= align, "range must cover at least one slot");
    AddrPattern p;
    p.kind = Kind::kRandom;
    p.base = base;
    p.range = range;
    p.align = align;
    p.salt = salt;
    return p;
}

Addr AddrPattern::address(std::uint64_t iteration) const {
    // This runs once per simulated load/store; footprints are usually
    // powers of two, where the reduction is a mask instead of a 64-bit
    // hardware divide.
    const auto reduce = [](std::uint64_t v, std::uint64_t m) {
        return (m & (m - 1)) == 0 ? v & (m - 1) : v % m;
    };
    switch (kind) {
        case Kind::kFixed:
            return base;
        case Kind::kStride:
            return base + reduce(iteration * stride_bytes, range);
        case Kind::kRandom: {
            const std::uint64_t slots = range / align;
            const std::uint64_t slot =
                reduce(mix64(iteration ^ (salt * 0x9e3779b9ULL)), slots);
            return base + slot * align;
        }
    }
    return base;
}

std::uint64_t Program::count(OpKind k) const noexcept {
    return static_cast<std::uint64_t>(
        std::count_if(body.begin(), body.end(),
                      [k](const Instruction& i) { return i.kind == k; }));
}

Program make_trace_program(const std::vector<TraceOp>& trace,
                           std::uint64_t iterations, Addr code_base,
                           std::string name) {
    RRB_REQUIRE(!trace.empty(), "trace must not be empty");
    ProgramBuilder b(std::move(name));
    b.code_base(code_base).iterations(iterations);
    for (const TraceOp& op : trace) {
        switch (op.kind) {
            case OpKind::kLoad:
                b.load(AddrPattern::fixed(op.addr));
                break;
            case OpKind::kStore:
                b.store(AddrPattern::fixed(op.addr));
                break;
            case OpKind::kNop:
                b.nop(1, op.latency);
                break;
            case OpKind::kAlu:
                b.alu(1, op.latency);
                break;
        }
    }
    return b.build();
}

ProgramBuilder::ProgramBuilder(std::string name) {
    prog_.name = std::move(name);
}

ProgramBuilder& ProgramBuilder::load(AddrPattern addr) {
    prog_.body.push_back({OpKind::kLoad, 1, addr});
    return *this;
}

ProgramBuilder& ProgramBuilder::store(AddrPattern addr) {
    prog_.body.push_back({OpKind::kStore, 1, addr});
    return *this;
}

ProgramBuilder& ProgramBuilder::nop(std::uint32_t count,
                                    std::uint32_t latency) {
    RRB_REQUIRE(latency >= 1, "latency must be at least one cycle");
    for (std::uint32_t i = 0; i < count; ++i) {
        prog_.body.push_back({OpKind::kNop, latency, {}});
    }
    return *this;
}

ProgramBuilder& ProgramBuilder::alu(std::uint32_t count,
                                    std::uint32_t latency) {
    RRB_REQUIRE(latency >= 1, "latency must be at least one cycle");
    for (std::uint32_t i = 0; i < count; ++i) {
        prog_.body.push_back({OpKind::kAlu, latency, {}});
    }
    return *this;
}

ProgramBuilder& ProgramBuilder::unroll(std::uint32_t factor) {
    RRB_REQUIRE(factor >= 1, "unroll factor must be >= 1");
    const std::vector<Instruction> once = prog_.body;
    for (std::uint32_t i = 1; i < factor; ++i) {
        prog_.body.insert(prog_.body.end(), once.begin(), once.end());
    }
    return *this;
}

ProgramBuilder& ProgramBuilder::iterations(std::uint64_t n) {
    RRB_REQUIRE(n >= 1, "at least one iteration");
    prog_.iterations = n;
    return *this;
}

ProgramBuilder& ProgramBuilder::code_base(Addr base) {
    prog_.code_base = base;
    return *this;
}

ProgramBuilder& ProgramBuilder::loop_control(std::uint32_t cycles) {
    prog_.loop_control_cycles = cycles;
    return *this;
}

Program ProgramBuilder::build() const {
    RRB_REQUIRE(!prog_.body.empty(), "program body must not be empty");
    return prog_;
}

}  // namespace rrb
