// The kernel ISA: the minimal instruction set needed to express resource
// stressing kernels (rsk, rsk-nop) and EEMBC-Autobench-like workloads.
//
// A Program is a loop body executed `iterations` times by an in-order core
// (src/cpu). Instructions carry an address *pattern* rather than a fixed
// address so a small body can describe large streaming / random footprints
// deterministically (the pattern is a pure function of the iteration
// index — no hidden RNG state, so simulations are bit-reproducible).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.h"

namespace rrb {

enum class OpKind : std::uint8_t {
    kLoad,   ///< data read; misses in DL1 go to the bus and stall the core
    kStore,  ///< data write; write-through, retires into the store buffer
    kNop,    ///< no memory effect; occupies the pipeline `latency` cycles
    kAlu,    ///< compute; like kNop but named so op mixes are documented
};

const char* to_string(OpKind kind) noexcept;

/// Address generator: address(iteration) for a load/store slot.
struct AddrPattern {
    enum class Kind : std::uint8_t {
        kFixed,   ///< always `base`
        kStride,  ///< base + (iteration * stride) % range, line-aligned walk
        kRandom,  ///< base + uniform-hash(iteration) over `range`, `align`ed
    };

    Kind kind = Kind::kFixed;
    Addr base = 0;
    std::uint64_t stride_bytes = 0;  ///< kStride only
    std::uint64_t range = 0;   ///< bytes of footprint, kStride/kRandom
    std::uint64_t align = 4;   ///< kRandom: alignment of generated address
    std::uint64_t salt = 0;    ///< kRandom: decorrelates slots

    [[nodiscard]] static AddrPattern fixed(Addr base);
    [[nodiscard]] static AddrPattern stride(Addr base, std::uint64_t stride_bytes,
                                            std::uint64_t range);
    [[nodiscard]] static AddrPattern random(Addr base, std::uint64_t range,
                                            std::uint64_t align,
                                            std::uint64_t salt = 0);

    /// The address this slot produces on the given loop iteration.
    [[nodiscard]] Addr address(std::uint64_t iteration) const;
};

struct Instruction {
    OpKind kind = OpKind::kNop;
    std::uint32_t latency = 1;  ///< execute cycles for kNop/kAlu (>= 1)
    AddrPattern addr;           ///< meaningful for kLoad/kStore only
};

/// A kernel: a loop body run a fixed number of iterations.
struct Program {
    std::string name;
    std::vector<Instruction> body;
    std::uint64_t iterations = 1;

    /// Base address of the code; instruction i of the body sits at
    /// code_base + i * kInstrBytes. Instruction fetch goes through IL1.
    Addr code_base = 0;

    /// Compute cycles charged at the end of every body pass to model the
    /// loop decrement + branch. The paper unrolls rsk bodies precisely to
    /// dilute this overhead below 2%.
    std::uint32_t loop_control_cycles = 2;

    static constexpr std::uint64_t kInstrBytes = 4;

    [[nodiscard]] std::uint64_t total_instructions() const noexcept {
        return body.size() * iterations;
    }
    [[nodiscard]] std::uint64_t code_bytes() const noexcept {
        return body.size() * kInstrBytes;
    }
    /// Count of body slots of one kind.
    [[nodiscard]] std::uint64_t count(OpKind kind) const noexcept;
};

/// Content hash of everything that determines a program's timing: the
/// body (kinds, latencies, address patterns), iteration count, code
/// base and loop-control cost. `name` is cosmetic and excluded. Used by
/// Scenario::fingerprint and by the campaign machine cache
/// (engine::MachineLease) to decide whether a reused machine already
/// hosts the right programs.
[[nodiscard]] std::uint64_t fingerprint(const Program& program);

/// One entry of an explicit memory trace (see make_trace_program).
struct TraceOp {
    OpKind kind = OpKind::kNop;     ///< kLoad, kStore or kNop/kAlu
    Addr addr = 0;                  ///< for loads/stores
    std::uint32_t latency = 1;      ///< for kNop/kAlu entries
};

/// Builds a program that replays an explicit memory trace — the bridge
/// for downstream users who have an address trace of their application
/// (e.g. from a debugger or an instrumented build) rather than source:
/// each trace entry becomes one instruction with a fixed address.
/// The body is the whole trace; `iterations` repeats it.
[[nodiscard]] Program make_trace_program(const std::vector<TraceOp>& trace,
                                         std::uint64_t iterations = 1,
                                         Addr code_base = 0,
                                         std::string name = "trace");

/// Fluent builder for programs.
class ProgramBuilder {
public:
    explicit ProgramBuilder(std::string name);

    ProgramBuilder& load(AddrPattern addr);
    ProgramBuilder& store(AddrPattern addr);
    ProgramBuilder& nop(std::uint32_t count = 1, std::uint32_t latency = 1);
    ProgramBuilder& alu(std::uint32_t count = 1, std::uint32_t latency = 1);

    /// Replicates everything added so far `factor` times (loop unrolling).
    ProgramBuilder& unroll(std::uint32_t factor);

    ProgramBuilder& iterations(std::uint64_t n);
    ProgramBuilder& code_base(Addr base);
    ProgramBuilder& loop_control(std::uint32_t cycles);

    [[nodiscard]] Program build() const;

private:
    Program prog_;
};

}  // namespace rrb
