#include "cpu/core.h"

#include "replay/microop.h"
#include "sim/contract.h"

namespace rrb {

void CoreConfig::validate() const {
    il1_geometry.validate();
    dl1_geometry.validate();
    RRB_REQUIRE(dl1_latency >= 1, "DL1 latency must be >= 1");
    RRB_REQUIRE(il1_latency >= 1, "IL1 latency must be >= 1");
    RRB_REQUIRE(store_buffer_entries >= 1, "store buffer needs an entry");
}

InOrderCore::InOrderCore(CoreId id, const CoreConfig& config,
                         CoreBusPort& port)
    : id_(id),
      config_(config),
      port_(port),
      il1_(config.il1_geometry, config.l1_replacement,
           WritePolicy::kWriteThrough, AllocPolicy::kWriteAllocate,
           /*rng_seed=*/id * 2 + 1),
      dl1_(config.dl1_geometry, config.l1_replacement,
           WritePolicy::kWriteThrough, AllocPolicy::kNoWriteAllocate,
           /*rng_seed=*/id * 2 + 2),
      il1_line_mask_(~static_cast<Addr>(config.il1_geometry.line_bytes - 1)),
      dl1_line_mask_(~static_cast<Addr>(config.dl1_geometry.line_bytes - 1)),
      store_buffer_(config.store_buffer_entries) {
    config_.validate();
}

void InOrderCore::set_program(Program program, Cycle start_delay) {
    RRB_REQUIRE(!program.body.empty(), "program body must not be empty");
    program_ = std::move(program);
    script_ = nullptr;  // a script decodes one exact program
    l2_baked_ = false;
    restart(start_delay);
}

void InOrderCore::attach_script(const replay::MicroOpScript* script) {
    RRB_REQUIRE(script == nullptr || attr_ == nullptr,
                "replay elides the per-instruction attribution charge "
                "points; armed runs must interpret");
    script_ = script;
    l2_baked_ = script_ != nullptr && script_->l2_baked;
    rp_ = 0;
    remaining_instrs_ =
        script_ != nullptr ? script_->total_instructions : 0;
}

void InOrderCore::restart(Cycle start_delay) {
    iteration_ = 0;
    pc_ = 0;
    next_free_ = start_delay;
    fetched_ = false;
    waiting_ifetch_ = false;
    waiting_load_ = false;
    retired_all_ = false;
    done_ = false;
    finish_cycle_ = kNoCycle;
    store_buffer_.clear();
    drain_in_flight_ = false;
    prev_load_completion_ = kNoCycle;
    fetch_memo_line_ = kNoCycle;
    fetch_memo_tick_ = 0;
    attr_cause_dirty_ = true;  // pending resets to kIdle when (re)armed
    rp_ = 0;
    remaining_instrs_ =
        script_ != nullptr ? script_->total_instructions : 0;
    stats_.reset();
}

void InOrderCore::reset() {
    restart(0);
    il1_.reset();
    dl1_.reset();
}

Cycle InOrderCore::finish_cycle() const {
    RRB_REQUIRE(done_, "core has not finished");
    return finish_cycle_;
}

Addr InOrderCore::fetch_addr() const noexcept {
    return program_.code_base + pc_ * Program::kInstrBytes;
}

void InOrderCore::advance_pc() {
    fetched_ = false;
    ++stats_.instructions;
    ++pc_;
    if (pc_ == program_.body.size()) {
        pc_ = 0;
        ++iteration_;
        // Loop decrement + branch overhead at every body boundary. The
        // paper unrolls rsk bodies precisely to keep this below 2%.
        next_free_ += program_.loop_control_cycles;
        if (iteration_ == program_.iterations) retired_all_ = true;
    }
}

void InOrderCore::start_drain_if_needed(Cycle now) {
    if (drain_in_flight_ || store_buffer_.empty()) return;
    drain_in_flight_ = true;
    const Addr addr = store_buffer_.front();
    // ready = now: the head entry is eligible the same cycle the previous
    // drain completed — injection time 0, the delta = 0 case of Eq. 2.
    port_.request(BusOp::kDataStore, addr, now, BusSlot::kStoreDrain);
}

void InOrderCore::on_bus_complete(BusSlot slot, Cycle completion) {
    switch (slot) {
        case BusSlot::kIfetch:
            waiting_ifetch_ = false;
            fetched_ = true;
            next_free_ = completion;
            return;
        case BusSlot::kLoad:
            waiting_load_ = false;
            next_free_ = completion;
            prev_load_completion_ = completion;
            if (script_ != nullptr) {
                // Replay twin of the advance_pc below: the kLoadMiss op
                // stayed current while its fill was in flight; retire it
                // now, charging a body-boundary's loop control after the
                // data returns, exactly like the interpreter.
                fetched_ = false;
                ++stats_.instructions;
                if ((script_->ops[rp_].flags & replay::MicroOp::kWrap) !=
                    0) {
                    next_free_ += program_.loop_control_cycles;
                }
                advance_rp(1, 1);
                return;
            }
            // pc advances here so loop-control overhead at a body
            // boundary is charged after the data returns.
            advance_pc();
            return;
        case BusSlot::kStoreDrain:
            RRB_ENSURE(drain_in_flight_ && !store_buffer_.empty());
            store_buffer_.pop_front();
            drain_in_flight_ = false;
            ++stats_.store_drains;
            return;
    }
    RRB_ENSURE(false);
}

Cycle InOrderCore::execute_instruction(Cycle now) {
    if (attr_ != nullptr && attr_cause_dirty_) {
        // The interval since the last charge belongs to whatever was
        // pending — idle before release or a stall retry; from this
        // cycle on the core is executing again. When compute is already
        // pending the charge is deferred: every consumer of pending
        // (the next cause change, the holder hooks, finalize) settles
        // the lazy tail, and the dirty mirror keeps the armed
        // per-instruction cost to one predictable member-flag compare.
        attr_->charge(id_, attr_->pending(id_), now);
        attr_->set_pending(id_, StallCause::kCompute);
        attr_cause_dirty_ = false;
    }
    const Instruction& instr = program_.body[pc_];

    // Instruction fetch through IL1 (free when it hits; stalls on miss).
    if (!fetched_) {
        const Addr line = fetch_addr() & il1_line_mask_;
        if (line == fetch_memo_line_ &&
            il1_.access_tick() == fetch_memo_tick_) {
            il1_.read_repeat_hit();
            fetched_ = true;
        } else {
            const bool hit = il1_.read_hit(fetch_addr());
            if (!hit) {
                fetch_memo_line_ = kNoCycle;
                ++stats_.ifetch_requests;
                waiting_ifetch_ = true;
                port_.request(BusOp::kInstrFetch, line, now,
                              BusSlot::kIfetch);
                return kNoCycle;  // the fill completion wakes us
            }
            fetched_ = true;
            fetch_memo_line_ = line;
            fetch_memo_tick_ = il1_.access_tick();
        }
    }

    switch (instr.kind) {
        case OpKind::kNop:
        case OpKind::kAlu: {
            if (instr.kind == OpKind::kNop) ++stats_.nops;
            next_free_ = now + instr.latency;
            advance_pc();
            // Batch the rest of a straight nop/alu run whose fetches are
            // guaranteed memo hits (same warm code line, no intervening
            // IL1 state change): pure compute touches neither memory nor
            // the bus, so executing instruction k of the run "early"
            // while setting next_free_ to the exact naive-stepping value
            // leaves every scua-observable identical — the machine then
            // skips the whole run in one jump instead of one tick per
            // instruction. The cap bounds the lookahead a core that
            // never finishes (an infinite-iteration contender) can have
            // accumulated when the run is cut off by the scua finishing.
            constexpr std::uint32_t kMaxComputeBatch = 64;
            std::uint32_t batched = 0;
            while (!retired_all_ && batched < kMaxComputeBatch) {
                const Instruction& chained = program_.body[pc_];
                if (chained.kind != OpKind::kNop &&
                    chained.kind != OpKind::kAlu) {
                    break;
                }
                const Addr chain_line = fetch_addr() & il1_line_mask_;
                if (chain_line != fetch_memo_line_ ||
                    il1_.access_tick() != fetch_memo_tick_) {
                    break;
                }
                il1_.read_repeat_hit();
                if (chained.kind == OpKind::kNop) ++stats_.nops;
                next_free_ += chained.latency;
                advance_pc();
                ++batched;
            }
            return next_free_;
        }
        case OpKind::kLoad: {
            // Single AHB master port: a load miss may not overtake queued
            // stores.
            if (config_.loads_wait_store_buffer &&
                (drain_in_flight_ || !store_buffer_.empty())) {
                ++stats_.load_gate_stall_cycles;
                if (attr_ != nullptr) {
                    // Settle the lazy tail (compute since the last
                    // charge) before the cause changes.
                    attr_->charge(id_, attr_->pending(id_), now);
                    attr_->set_pending(id_, StallCause::kStoreGate);
                    attr_cause_dirty_ = true;
                }
                return now + 1;  // retry next cycle
            }
            ++stats_.loads;
            const Addr addr = instr.addr.address(iteration_);
            if (dl1_.read_hit(addr)) {
                next_free_ = now + config_.dl1_latency;
                advance_pc();
                return next_free_;
            }
            ++stats_.load_miss_requests;
            const Cycle ready = now + config_.dl1_latency;
            if (prev_load_completion_ != kNoCycle) {
                stats_.load_injection_delta.add(ready -
                                                prev_load_completion_);
            }
            waiting_load_ = true;
            const Addr line = addr & dl1_line_mask_;
            port_.request(BusOp::kDataLoad, line, ready, BusSlot::kLoad);
            return kNoCycle;  // the fill completion wakes us
        }
        case OpKind::kStore: {
            // The head entry stays in the buffer while its drain is in
            // flight, so the buffer size alone is the occupancy.
            if (store_buffer_.size() >= config_.store_buffer_entries) {
                ++stats_.store_full_stall_cycles;
                if (attr_ != nullptr) {
                    attr_->charge(id_, attr_->pending(id_), now);
                    attr_->set_pending(id_, StallCause::kStoreBufferFull);
                    attr_cause_dirty_ = true;
                }
                return now + 1;  // retry next cycle
            }
            ++stats_.stores;
            const Addr addr = instr.addr.address(iteration_);
            dl1_.write(addr);  // write-through, no-allocate
            const Addr line = addr & dl1_line_mask_;
            store_buffer_.push_back(line);
            next_free_ = now + 1;  // retires as soon as buffered
            advance_pc();
            return next_free_;
        }
    }
    RRB_ENSURE(false);
}

void InOrderCore::advance_rp(std::uint32_t ops, std::uint64_t instrs)
    noexcept {
    rp_ += ops;
    remaining_instrs_ -= instrs;
    if (remaining_instrs_ == 0) {
        retired_all_ = true;
        return;
    }
    if (script_->looping && rp_ == script_->tail_start) {
        // End of a steady-state pass: re-enter the loop region unless
        // exactly the tail remains — then fall through into the tail
        // ops, whose last op retires the program.
        if (remaining_instrs_ > script_->tail_instrs) {
            rp_ = script_->loop_start;
        }
    }
}

Cycle InOrderCore::replay_execute(Cycle now) {
    const replay::MicroOp& op = script_->ops[rp_];

    // Span fast path: ops [rp_, rp_ + span_ops) are compute / DL1-hit
    // loads (plus at most one terminal store) that provably execute
    // back-to-back. With a clean store buffer no op in the range can
    // stall (no gate, no full-buffer, no drain posting mid-span), so
    // executing them in one tick with next_free_ = now + sum(cycles)
    // is cycle-exact. `!fetched_` excludes re-entry after a partial
    // stall attempt, which would double-charge the head op's fetch.
    if (op.span_ops >= 2 && !fetched_ &&
        ((op.flags & replay::MicroOp::kSpanNeedsClean) == 0 ||
         (store_buffer_.empty() && !drain_in_flight_))) {
        il1_.replay_read_hits(op.span_il1_hits);
        stats_.instructions += op.span_instrs;
        stats_.nops += op.span_nops;
        if (op.span_loads != 0) {
            stats_.loads += op.span_loads;
            dl1_.replay_read_hits(op.span_loads);
        }
        if ((op.flags & replay::MicroOp::kSpanStore) != 0) {
            const replay::MicroOp& last =
                script_->ops[rp_ + op.span_ops - 1];
            ++stats_.stores;
            dl1_.replay_write((last.flags &
                               replay::MicroOp::kDl1WriteHit) != 0);
            store_buffer_.push_back(last.line);
        }
        next_free_ = now + op.span_cycles;
        advance_rp(op.span_ops, op.span_instrs);
        return next_free_;
    }

    // Primitive path: one op per tick — the interpreter's cycle-level
    // behavior, minus the functional work it pre-computed.
    switch (op.kind) {
        case replay::MicroOp::Kind::kCompute: {
            if (!fetched_) {
                if ((op.flags & replay::MicroOp::kIl1FetchHit) != 0) {
                    il1_.replay_read_hits(1);
                }
            }
            il1_.replay_read_hits(op.il1_chain_hits);
            stats_.instructions += op.instrs;
            stats_.nops += op.nops;
            fetched_ = false;
            next_free_ = now + op.cycles;
            advance_rp(1, op.instrs);
            return next_free_;
        }
        case replay::MicroOp::Kind::kLoadHit:
        case replay::MicroOp::Kind::kLoadMiss: {
            // The fetch hit is charged once, before the gate check, and
            // survives stall retries through fetched_ — the interpreter
            // fetches before gating in exactly this order.
            if (!fetched_) {
                if ((op.flags & replay::MicroOp::kIl1FetchHit) != 0) {
                    il1_.replay_read_hits(1);
                }
                fetched_ = true;
            }
            if (config_.loads_wait_store_buffer &&
                (drain_in_flight_ || !store_buffer_.empty())) {
                ++stats_.load_gate_stall_cycles;
                return now + 1;  // retry next cycle
            }
            ++stats_.loads;
            if (op.kind == replay::MicroOp::Kind::kLoadHit) {
                dl1_.replay_read_hits(1);
                stats_.instructions += 1;
                fetched_ = false;
                next_free_ = now + op.cycles;
                advance_rp(1, 1);
                return next_free_;
            }
            dl1_.replay_read_miss(
                (op.flags & replay::MicroOp::kDl1Evict) != 0);
            ++stats_.load_miss_requests;
            const Cycle ready = now + op.cycles;  // cycles = dl1_latency
            if (prev_load_completion_ != kNoCycle) {
                stats_.load_injection_delta.add(ready -
                                                prev_load_completion_);
            }
            waiting_load_ = true;
            if (l2_baked_) {
                port_.request_baked(
                    BusOp::kDataLoad, op.line, ready, BusSlot::kLoad,
                    (op.flags & replay::MicroOp::kL2Hit) != 0,
                    (op.flags & replay::MicroOp::kL2Evict) != 0);
            } else {
                port_.request(BusOp::kDataLoad, op.line, ready,
                              BusSlot::kLoad);
            }
            return kNoCycle;  // the fill completion wakes us
        }
        case replay::MicroOp::Kind::kStore: {
            if (!fetched_) {
                if ((op.flags & replay::MicroOp::kIl1FetchHit) != 0) {
                    il1_.replay_read_hits(1);
                }
                fetched_ = true;
            }
            if (store_buffer_.size() >= config_.store_buffer_entries) {
                ++stats_.store_full_stall_cycles;
                return now + 1;  // retry next cycle
            }
            ++stats_.stores;
            dl1_.replay_write(
                (op.flags & replay::MicroOp::kDl1WriteHit) != 0);
            store_buffer_.push_back(op.line);
            stats_.instructions += 1;
            fetched_ = false;
            next_free_ = now + op.cycles;
            advance_rp(1, 1);
            return next_free_;
        }
        case replay::MicroOp::Kind::kIfetchMiss: {
            il1_.replay_read_miss(
                (op.flags & replay::MicroOp::kIl1Evict) != 0);
            ++stats_.ifetch_requests;
            waiting_ifetch_ = true;
            // The op is consumed now; the next op is this same
            // instruction re-executed with fetched_ set by the fill.
            advance_rp(1, 0);
            if (l2_baked_) {
                port_.request_baked(
                    BusOp::kInstrFetch, op.line, now, BusSlot::kIfetch,
                    (op.flags & replay::MicroOp::kL2Hit) != 0,
                    (op.flags & replay::MicroOp::kL2Evict) != 0);
            } else {
                port_.request(BusOp::kInstrFetch, op.line, now,
                              BusSlot::kIfetch);
            }
            return kNoCycle;  // the fill completion wakes us
        }
    }
    RRB_ENSURE(false);
}

Cycle InOrderCore::tick(Cycle now) {
    if (done_) return kNoCycle;

    start_drain_if_needed(now);

    if (retired_all_) {
        if (attr_ != nullptr) {
            // The loop-control tail [*, next_free_) is still compute (or
            // whatever was pending); only past next_free_ is the core
            // purely waiting on its store buffer.
            const Cycle tail = now < next_free_ ? now : next_free_;
            attr_->charge(id_, attr_->pending(id_), tail);
            if (now >= next_free_) {
                attr_->charge(id_, StallCause::kDrainWait, now);
                attr_->set_pending(id_, StallCause::kDrainWait);
                attr_cause_dirty_ = true;
            }
        }
        // The program ends when the trailing loop-control cycles have
        // elapsed and every buffered store has been performed.
        if (store_buffer_.empty() && !drain_in_flight_ &&
            now >= next_free_) {
            done_ = true;
            finish_cycle_ = now;
            if (attr_ != nullptr) {
                attr_->set_pending(id_, StallCause::kIdle);
                attr_cause_dirty_ = true;
            }
            return kNoCycle;
        }
        if (!store_buffer_.empty() || drain_in_flight_) {
            return kNoCycle;  // the drain's bus completion wakes us
        }
        return next_free_;  // the done transition fires then
    }

    if (waiting_ifetch_ || waiting_load_) return kNoCycle;
    if (now < next_free_) return next_free_;
    return script_ != nullptr ? replay_execute(now)
                              : execute_instruction(now);
}


}  // namespace rrb
