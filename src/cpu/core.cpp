#include "cpu/core.h"

#include "sim/contract.h"

namespace rrb {

void CoreConfig::validate() const {
    il1_geometry.validate();
    dl1_geometry.validate();
    RRB_REQUIRE(dl1_latency >= 1, "DL1 latency must be >= 1");
    RRB_REQUIRE(il1_latency >= 1, "IL1 latency must be >= 1");
    RRB_REQUIRE(store_buffer_entries >= 1, "store buffer needs an entry");
}

InOrderCore::InOrderCore(CoreId id, const CoreConfig& config,
                         CoreBusPort& port)
    : id_(id),
      config_(config),
      port_(port),
      il1_(config.il1_geometry, config.l1_replacement,
           WritePolicy::kWriteThrough, AllocPolicy::kWriteAllocate,
           /*rng_seed=*/id * 2 + 1),
      dl1_(config.dl1_geometry, config.l1_replacement,
           WritePolicy::kWriteThrough, AllocPolicy::kNoWriteAllocate,
           /*rng_seed=*/id * 2 + 2),
      il1_line_mask_(~static_cast<Addr>(config.il1_geometry.line_bytes - 1)),
      dl1_line_mask_(~static_cast<Addr>(config.dl1_geometry.line_bytes - 1)),
      store_buffer_(config.store_buffer_entries) {
    config_.validate();
}

void InOrderCore::set_program(Program program, Cycle start_delay) {
    RRB_REQUIRE(!program.body.empty(), "program body must not be empty");
    program_ = std::move(program);
    restart(start_delay);
}

void InOrderCore::restart(Cycle start_delay) {
    iteration_ = 0;
    pc_ = 0;
    next_free_ = start_delay;
    fetched_ = false;
    waiting_ifetch_ = false;
    waiting_load_ = false;
    retired_all_ = false;
    done_ = false;
    finish_cycle_ = kNoCycle;
    store_buffer_.clear();
    drain_in_flight_ = false;
    prev_load_completion_ = kNoCycle;
    fetch_memo_line_ = kNoCycle;
    fetch_memo_tick_ = 0;
    attr_cause_dirty_ = true;  // pending resets to kIdle when (re)armed
    stats_.reset();
}

void InOrderCore::reset() {
    restart(0);
    il1_.reset();
    dl1_.reset();
}

Cycle InOrderCore::finish_cycle() const {
    RRB_REQUIRE(done_, "core has not finished");
    return finish_cycle_;
}

Addr InOrderCore::fetch_addr() const noexcept {
    return program_.code_base + pc_ * Program::kInstrBytes;
}

void InOrderCore::advance_pc() {
    fetched_ = false;
    ++stats_.instructions;
    ++pc_;
    if (pc_ == program_.body.size()) {
        pc_ = 0;
        ++iteration_;
        // Loop decrement + branch overhead at every body boundary. The
        // paper unrolls rsk bodies precisely to keep this below 2%.
        next_free_ += program_.loop_control_cycles;
        if (iteration_ == program_.iterations) retired_all_ = true;
    }
}

void InOrderCore::start_drain_if_needed(Cycle now) {
    if (drain_in_flight_ || store_buffer_.empty()) return;
    drain_in_flight_ = true;
    const Addr addr = store_buffer_.front();
    // ready = now: the head entry is eligible the same cycle the previous
    // drain completed — injection time 0, the delta = 0 case of Eq. 2.
    port_.request(BusOp::kDataStore, addr, now, BusSlot::kStoreDrain);
}

void InOrderCore::on_bus_complete(BusSlot slot, Cycle completion) {
    switch (slot) {
        case BusSlot::kIfetch:
            waiting_ifetch_ = false;
            fetched_ = true;
            next_free_ = completion;
            return;
        case BusSlot::kLoad:
            waiting_load_ = false;
            next_free_ = completion;
            prev_load_completion_ = completion;
            // pc advances here so loop-control overhead at a body
            // boundary is charged after the data returns.
            advance_pc();
            return;
        case BusSlot::kStoreDrain:
            RRB_ENSURE(drain_in_flight_ && !store_buffer_.empty());
            store_buffer_.pop_front();
            drain_in_flight_ = false;
            ++stats_.store_drains;
            return;
    }
    RRB_ENSURE(false);
}

Cycle InOrderCore::execute_instruction(Cycle now) {
    if (attr_ != nullptr && attr_cause_dirty_) {
        // The interval since the last charge belongs to whatever was
        // pending — idle before release or a stall retry; from this
        // cycle on the core is executing again. When compute is already
        // pending the charge is deferred: every consumer of pending
        // (the next cause change, the holder hooks, finalize) settles
        // the lazy tail, and the dirty mirror keeps the armed
        // per-instruction cost to one predictable member-flag compare.
        attr_->charge(id_, attr_->pending(id_), now);
        attr_->set_pending(id_, StallCause::kCompute);
        attr_cause_dirty_ = false;
    }
    const Instruction& instr = program_.body[pc_];

    // Instruction fetch through IL1 (free when it hits; stalls on miss).
    if (!fetched_) {
        const Addr line = fetch_addr() & il1_line_mask_;
        if (line == fetch_memo_line_ &&
            il1_.access_tick() == fetch_memo_tick_) {
            il1_.read_repeat_hit();
            fetched_ = true;
        } else {
            const bool hit = il1_.read_hit(fetch_addr());
            if (!hit) {
                fetch_memo_line_ = kNoCycle;
                ++stats_.ifetch_requests;
                waiting_ifetch_ = true;
                port_.request(BusOp::kInstrFetch, line, now,
                              BusSlot::kIfetch);
                return kNoCycle;  // the fill completion wakes us
            }
            fetched_ = true;
            fetch_memo_line_ = line;
            fetch_memo_tick_ = il1_.access_tick();
        }
    }

    switch (instr.kind) {
        case OpKind::kNop:
        case OpKind::kAlu: {
            if (instr.kind == OpKind::kNop) ++stats_.nops;
            next_free_ = now + instr.latency;
            advance_pc();
            // Batch the rest of a straight nop/alu run whose fetches are
            // guaranteed memo hits (same warm code line, no intervening
            // IL1 state change): pure compute touches neither memory nor
            // the bus, so executing instruction k of the run "early"
            // while setting next_free_ to the exact naive-stepping value
            // leaves every scua-observable identical — the machine then
            // skips the whole run in one jump instead of one tick per
            // instruction. The cap bounds the lookahead a core that
            // never finishes (an infinite-iteration contender) can have
            // accumulated when the run is cut off by the scua finishing.
            constexpr std::uint32_t kMaxComputeBatch = 64;
            std::uint32_t batched = 0;
            while (!retired_all_ && batched < kMaxComputeBatch) {
                const Instruction& chained = program_.body[pc_];
                if (chained.kind != OpKind::kNop &&
                    chained.kind != OpKind::kAlu) {
                    break;
                }
                const Addr chain_line = fetch_addr() & il1_line_mask_;
                if (chain_line != fetch_memo_line_ ||
                    il1_.access_tick() != fetch_memo_tick_) {
                    break;
                }
                il1_.read_repeat_hit();
                if (chained.kind == OpKind::kNop) ++stats_.nops;
                next_free_ += chained.latency;
                advance_pc();
                ++batched;
            }
            return next_free_;
        }
        case OpKind::kLoad: {
            // Single AHB master port: a load miss may not overtake queued
            // stores.
            if (config_.loads_wait_store_buffer &&
                (drain_in_flight_ || !store_buffer_.empty())) {
                ++stats_.load_gate_stall_cycles;
                if (attr_ != nullptr) {
                    // Settle the lazy tail (compute since the last
                    // charge) before the cause changes.
                    attr_->charge(id_, attr_->pending(id_), now);
                    attr_->set_pending(id_, StallCause::kStoreGate);
                    attr_cause_dirty_ = true;
                }
                return now + 1;  // retry next cycle
            }
            ++stats_.loads;
            const Addr addr = instr.addr.address(iteration_);
            if (dl1_.read_hit(addr)) {
                next_free_ = now + config_.dl1_latency;
                advance_pc();
                return next_free_;
            }
            ++stats_.load_miss_requests;
            const Cycle ready = now + config_.dl1_latency;
            if (prev_load_completion_ != kNoCycle) {
                stats_.load_injection_delta.add(ready -
                                                prev_load_completion_);
            }
            waiting_load_ = true;
            const Addr line = addr & dl1_line_mask_;
            port_.request(BusOp::kDataLoad, line, ready, BusSlot::kLoad);
            return kNoCycle;  // the fill completion wakes us
        }
        case OpKind::kStore: {
            // The head entry stays in the buffer while its drain is in
            // flight, so the buffer size alone is the occupancy.
            if (store_buffer_.size() >= config_.store_buffer_entries) {
                ++stats_.store_full_stall_cycles;
                if (attr_ != nullptr) {
                    attr_->charge(id_, attr_->pending(id_), now);
                    attr_->set_pending(id_, StallCause::kStoreBufferFull);
                    attr_cause_dirty_ = true;
                }
                return now + 1;  // retry next cycle
            }
            ++stats_.stores;
            const Addr addr = instr.addr.address(iteration_);
            dl1_.write(addr);  // write-through, no-allocate
            const Addr line = addr & dl1_line_mask_;
            store_buffer_.push_back(line);
            next_free_ = now + 1;  // retires as soon as buffered
            advance_pc();
            return next_free_;
        }
    }
    RRB_ENSURE(false);
}

Cycle InOrderCore::tick(Cycle now) {
    if (done_) return kNoCycle;

    start_drain_if_needed(now);

    if (retired_all_) {
        if (attr_ != nullptr) {
            // The loop-control tail [*, next_free_) is still compute (or
            // whatever was pending); only past next_free_ is the core
            // purely waiting on its store buffer.
            const Cycle tail = now < next_free_ ? now : next_free_;
            attr_->charge(id_, attr_->pending(id_), tail);
            if (now >= next_free_) {
                attr_->charge(id_, StallCause::kDrainWait, now);
                attr_->set_pending(id_, StallCause::kDrainWait);
                attr_cause_dirty_ = true;
            }
        }
        // The program ends when the trailing loop-control cycles have
        // elapsed and every buffered store has been performed.
        if (store_buffer_.empty() && !drain_in_flight_ &&
            now >= next_free_) {
            done_ = true;
            finish_cycle_ = now;
            if (attr_ != nullptr) {
                attr_->set_pending(id_, StallCause::kIdle);
                attr_cause_dirty_ = true;
            }
            return kNoCycle;
        }
        if (!store_buffer_.empty() || drain_in_flight_) {
            return kNoCycle;  // the drain's bus completion wakes us
        }
        return next_free_;  // the done transition fires then
    }

    if (waiting_ifetch_ || waiting_load_) return kNoCycle;
    if (now < next_free_) return next_free_;
    return execute_instruction(now);
}


}  // namespace rrb
