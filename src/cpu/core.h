// In-order core model (LEON4-like for the purposes of the paper).
//
// Timing rules — these are the rules that make the injection time delta
// of Section 3 come out exactly as the paper describes:
//   * an instruction occupying n cycles that starts at cycle s finishes at
//     s+n-1; the next instruction starts at s+n;
//   * a load performs its DL1 lookup for dl1_latency cycles; on a miss the
//     bus request becomes ready at (start + dl1_latency). When the bus/L2
//     deliver the data at cycle C, the next instruction starts at C.
//     Hence two back-to-back loads have injection time delta = dl1_latency
//     (1 in the `ref` architecture, 4 in `var`), and k interposed nops give
//     delta = k * nop_latency + dl1_latency;
//   * a store retires into the store buffer in 1 cycle unless the buffer
//     is full (write-through, no-allocate). The buffer drains in FIFO
//     order; the next drain is posted the same cycle the previous one
//     completes, i.e. drains have injection time delta = 0 — the one case
//     where a request can suffer the full ubd (Section 5.3);
//   * instruction fetch is pipelined and free on IL1 hits; an IL1 miss
//     stalls the core until the line returns over the bus.
#pragma once

#include <cstdint>

#include "bus/bus.h"
#include "cache/cache.h"
#include "isa/program.h"
#include "machine/attribution.h"
#include "sim/ring_buffer.h"
#include "sim/types.h"
#include "stats/histogram.h"

namespace rrb {

namespace replay {
struct MicroOp;
struct MicroOpScript;
}  // namespace replay

/// Which continuation a completed bus transaction resumes on its core —
/// the POD completion token that replaced per-request std::function
/// callbacks on the hot path. The token travels as BusRequest::tag /
/// DramRequest::tag through the whole split-transaction chain and is
/// dispatched through InOrderCore::on_bus_complete's fixed switch.
enum class BusSlot : std::uint8_t {
    kIfetch,      ///< IL1 miss fill: resume fetch
    kLoad,        ///< DL1 miss fill: retire the load, advance the pc
    kStoreDrain,  ///< store-buffer head drained into the L2
};

/// Interface the machine gives each core for memory traffic that leaves
/// the L1s. The implementation decides L2 hit/miss, bus occupancy and
/// split transactions; when the transaction finishes — data available
/// (loads / fetches) or write performed (stores) — the implementation
/// calls InOrderCore::on_bus_complete(slot, completion_cycle).
class CoreBusPort {
public:
    virtual ~CoreBusPort() = default;
    virtual void request(BusOp op, Addr addr, Cycle ready, BusSlot slot) = 0;

    /// request() for a transaction whose L2 outcome was pre-decoded into
    /// the replay script (MicroOpScript::l2_baked): `l2_hit`/`l2_evict`
    /// stand in for the live partition lookup the machine would perform
    /// at issue time. The default ignores the hints and performs a live
    /// request — correct for test ports, which model no L2.
    virtual void request_baked(BusOp op, Addr addr, Cycle ready,
                               BusSlot slot, bool l2_hit, bool l2_evict) {
        (void)l2_hit;
        (void)l2_evict;
        request(op, addr, ready, slot);
    }
};

struct CoreConfig {
    CacheGeometry il1_geometry{16 * 1024, 4, 32};
    CacheGeometry dl1_geometry{16 * 1024, 4, 32};
    ReplacementPolicy l1_replacement = ReplacementPolicy::kLru;

    /// DL1 lookup latency: 1 in the paper's `ref` NGMP model, 4 in `var`.
    std::uint32_t dl1_latency = 1;
    /// IL1 hit cost is hidden by pipelining; kept for completeness.
    std::uint32_t il1_latency = 1;

    std::uint32_t store_buffer_entries = 8;

    /// When true (default, single AHB master port semantics) a load miss
    /// waits until the store buffer has fully drained before issuing.
    bool loads_wait_store_buffer = true;

    void validate() const;
};

struct CoreStats {
    std::uint64_t instructions = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t nops = 0;
    std::uint64_t load_miss_requests = 0;  ///< DL1 misses sent to the bus
    std::uint64_t ifetch_requests = 0;     ///< IL1 misses sent to the bus
    std::uint64_t store_drains = 0;
    std::uint64_t store_full_stall_cycles = 0;
    std::uint64_t load_gate_stall_cycles = 0;  ///< waiting for SB drain
    /// Injection time between consecutive data-load bus requests:
    /// ready(r_i) - completion(r_{i-1}). This is the delta of Section 3.
    Histogram load_injection_delta;

    /// Zeroes the counters in place, keeping histogram storage.
    void reset() noexcept {
        instructions = 0;
        loads = 0;
        stores = 0;
        nops = 0;
        load_miss_requests = 0;
        ifetch_requests = 0;
        store_drains = 0;
        store_full_stall_cycles = 0;
        load_gate_stall_cycles = 0;
        load_injection_delta.clear();
    }
};

class InOrderCore {
public:
    InOrderCore(CoreId id, const CoreConfig& config, CoreBusPort& port);

    /// Installs the program and resets execution state (not cache
    /// contents; use warm_static_footprint()/flush as needed).
    /// `start_delay` holds the core idle until that cycle — used by the
    /// measurement campaigns to randomize the alignment between the scua
    /// and its contenders.
    void set_program(Program program, Cycle start_delay = 0);

    /// Resets execution state for a fresh run of the already-installed
    /// program — set_program without the program copy. The machine-reuse
    /// hot path restarts cores between campaign runs with this.
    void restart(Cycle start_delay = 0);

    /// Full power-on restore without reallocation: restart(0) plus L1
    /// caches reset (Cache::reset) and statistics zeroed. After reset()
    /// the core is bit-identical to a freshly constructed one with the
    /// same program installed.
    void reset();

    /// Advances one cycle. Call exactly once per cycle, after bus
    /// completions have been delivered for this cycle. Returns the
    /// earliest future cycle at which this core can do observable work
    /// again, given no bus completion arrives first: a concrete cycle
    /// when it is idle until next_free_ (start delays, multi-cycle
    /// nops, retired tail) or retrying a stall next cycle (stall PMCs
    /// charge per cycle, so stalls are never skippable), and kNoCycle
    /// when only a bus completion can unblock it (in-flight miss or
    /// fetch, drains pending, done). The machine's cycle skipper
    /// consumes this without a second state scan; other callers may
    /// ignore it.
    Cycle tick(Cycle now);

    /// Completion dispatch: the bus transaction for `slot` finished at
    /// `completion`. Called by the machine (or a test port) exactly once
    /// per issued request, during the completing cycle's phase 1.
    void on_bus_complete(BusSlot slot, Cycle completion);

    [[nodiscard]] bool done() const noexcept { return done_; }
    /// Cycle at which the program retired and the store buffer drained.
    /// Precondition: done().
    [[nodiscard]] Cycle finish_cycle() const;

    [[nodiscard]] const CoreStats& stats() const noexcept { return stats_; }
    [[nodiscard]] Cache& il1() noexcept { return il1_; }
    [[nodiscard]] Cache& dl1() noexcept { return dl1_; }
    [[nodiscard]] const Cache& il1() const noexcept { return il1_; }
    [[nodiscard]] const Cache& dl1() const noexcept { return dl1_; }
    [[nodiscard]] CoreId id() const noexcept { return id_; }
    [[nodiscard]] const Program& program() const noexcept { return program_; }

    /// Store buffer occupancy (tests / introspection). The entry being
    /// drained remains in the buffer until its transaction completes.
    [[nodiscard]] std::size_t store_buffer_depth() const noexcept {
        return store_buffer_.size();
    }

    /// Attaches (non-null) or detaches (null) a pre-decoded micro-op
    /// script (src/replay): the core then replays the pre-computed
    /// functional outcomes — which instructions retire, which L1
    /// lookups hit, which lines go to the bus — while all timing
    /// (stalls, drains, bus/DRAM waits) stays live. The script must
    /// have been decoded from exactly this core's installed program and
    /// configuration; results are then bit-identical to interpreting.
    /// Resets the replay cursor for a fresh run. Mutually exclusive
    /// with armed attribution (the machine enforces it).
    void attach_script(const replay::MicroOpScript* script);
    [[nodiscard]] bool has_script() const noexcept {
        return script_ != nullptr;
    }
    /// True when the attached script carries baked L2 outcomes — the
    /// machine then skips this core's live L2 partition entirely
    /// (lookups at issue time and the per-run partition warm).
    [[nodiscard]] bool replay_l2_baked() const noexcept {
        return l2_baked_;
    }

    /// Arms (non-null) or disarms (null) cycle attribution. The sink is
    /// machine-owned; the core only charges through it when armed.
    void attach_attribution(CycleAttribution* attribution) noexcept {
        attr_ = attribution;
        attr_cause_dirty_ = true;
    }

    /// True while a demand request (ifetch or load fill) is in flight —
    /// the interval up to the machine's current cycle is then covered by
    /// the bus/DRAM attribution flushes, not by the core.
    [[nodiscard]] bool waiting_on_bus() const noexcept {
        return waiting_ifetch_ || waiting_load_;
    }

private:
    void start_drain_if_needed(Cycle now);
    /// Executes at cycle `now`, returning the core's next event cycle
    /// (each terminal branch knows it outright).
    Cycle execute_instruction(Cycle now);
    /// execute_instruction's replay twin: drives the attached script
    /// through the same port/store-buffer/stall machinery.
    Cycle replay_execute(Cycle now);
    /// Consumes `ops` script ops retiring `instrs` instructions:
    /// advances the cursor, handles loop-region wrap and retirement.
    void advance_rp(std::uint32_t ops, std::uint64_t instrs) noexcept;
    [[nodiscard]] Addr fetch_addr() const noexcept;
    void advance_pc();

    CoreId id_;
    CoreConfig config_;
    CoreBusPort& port_;
    Cache il1_;
    Cache dl1_;
    Program program_;
    Addr il1_line_mask_;  ///< ~(line_bytes - 1), line rounding sans divide
    Addr dl1_line_mask_;

    // Execution state.
    std::uint64_t iteration_ = 0;
    std::size_t pc_ = 0;
    Cycle next_free_ = 0;       ///< core can start an instruction here
    bool fetched_ = false;      ///< current instruction passed ifetch
    bool waiting_ifetch_ = false;
    bool waiting_load_ = false;
    bool retired_all_ = false;
    bool done_ = false;
    Cycle finish_cycle_ = kNoCycle;

    // Store buffer: queued line addresses not yet drained. Sized to the
    // configured entry count once; never reallocates.
    RingBuffer<Addr> store_buffer_;
    bool drain_in_flight_ = false;

    // Injection-time bookkeeping.
    Cycle prev_load_completion_ = kNoCycle;

    // Fetch memo: the IL1 line of the last instruction fetch that hit,
    // valid while the IL1's access_tick is unchanged (no other touch or
    // install happened). Straight-line code re-fetches the same 32-byte
    // line for ~8 instructions; the memo turns those lookups into one
    // compare + a hit-counter bump with bit-identical cache behavior.
    Addr fetch_memo_line_ = kNoCycle;
    std::uint64_t fetch_memo_tick_ = 0;

    // Replay state: the attached script (null = interpret), the cursor
    // into its ops, and the instructions left to retire — the retirement
    // authority in replay mode (pc_/iteration_ stay untouched).
    const replay::MicroOpScript* script_ = nullptr;
    std::uint32_t rp_ = 0;
    std::uint64_t remaining_instrs_ = 0;
    bool l2_baked_ = false;  ///< mirror of script_->l2_baked (hot path)

    /// Armed cycle-attribution sink (null when disarmed — the default).
    CycleAttribution* attr_ = nullptr;
    /// Mirror of `attr_->pending(id_) != kCompute`, kept on the core's
    /// own hot cache line. Only this core ever sets its pending cause,
    /// so the mirror cannot go stale; it spares the per-instruction
    /// deref into the attribution arrays (~6k instructions/run on the
    /// bench workload).
    bool attr_cause_dirty_ = true;

    CoreStats stats_;
};

}  // namespace rrb
