// In-order core model (LEON4-like for the purposes of the paper).
//
// Timing rules — these are the rules that make the injection time delta
// of Section 3 come out exactly as the paper describes:
//   * an instruction occupying n cycles that starts at cycle s finishes at
//     s+n-1; the next instruction starts at s+n;
//   * a load performs its DL1 lookup for dl1_latency cycles; on a miss the
//     bus request becomes ready at (start + dl1_latency). When the bus/L2
//     deliver the data at cycle C, the next instruction starts at C.
//     Hence two back-to-back loads have injection time delta = dl1_latency
//     (1 in the `ref` architecture, 4 in `var`), and k interposed nops give
//     delta = k * nop_latency + dl1_latency;
//   * a store retires into the store buffer in 1 cycle unless the buffer
//     is full (write-through, no-allocate). The buffer drains in FIFO
//     order; the next drain is posted the same cycle the previous one
//     completes, i.e. drains have injection time delta = 0 — the one case
//     where a request can suffer the full ubd (Section 5.3);
//   * instruction fetch is pipelined and free on IL1 hits; an IL1 miss
//     stalls the core until the line returns over the bus.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>

#include "bus/bus.h"
#include "cache/cache.h"
#include "isa/program.h"
#include "sim/types.h"
#include "stats/histogram.h"

namespace rrb {

/// Interface the machine gives each core for memory traffic that leaves
/// the L1s. The implementation decides L2 hit/miss, bus occupancy and
/// split transactions; `on_complete` fires with the cycle at which the
/// data is available (loads / fetches) or the write has been performed
/// (stores).
class CoreBusPort {
public:
    virtual ~CoreBusPort() = default;
    virtual void request(BusOp op, Addr addr, Cycle ready,
                         std::function<void(Cycle completion)> on_complete) = 0;
};

struct CoreConfig {
    CacheGeometry il1_geometry{16 * 1024, 4, 32};
    CacheGeometry dl1_geometry{16 * 1024, 4, 32};
    ReplacementPolicy l1_replacement = ReplacementPolicy::kLru;

    /// DL1 lookup latency: 1 in the paper's `ref` NGMP model, 4 in `var`.
    std::uint32_t dl1_latency = 1;
    /// IL1 hit cost is hidden by pipelining; kept for completeness.
    std::uint32_t il1_latency = 1;

    std::uint32_t store_buffer_entries = 8;

    /// When true (default, single AHB master port semantics) a load miss
    /// waits until the store buffer has fully drained before issuing.
    bool loads_wait_store_buffer = true;

    void validate() const;
};

struct CoreStats {
    std::uint64_t instructions = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t nops = 0;
    std::uint64_t load_miss_requests = 0;  ///< DL1 misses sent to the bus
    std::uint64_t ifetch_requests = 0;     ///< IL1 misses sent to the bus
    std::uint64_t store_drains = 0;
    std::uint64_t store_full_stall_cycles = 0;
    std::uint64_t load_gate_stall_cycles = 0;  ///< waiting for SB drain
    /// Injection time between consecutive data-load bus requests:
    /// ready(r_i) - completion(r_{i-1}). This is the delta of Section 3.
    Histogram load_injection_delta;
};

class InOrderCore {
public:
    InOrderCore(CoreId id, const CoreConfig& config, CoreBusPort& port);

    /// Installs the program and resets execution state (not cache
    /// contents; use warm_static_footprint()/flush as needed).
    /// `start_delay` holds the core idle until that cycle — used by the
    /// measurement campaigns to randomize the alignment between the scua
    /// and its contenders.
    void set_program(Program program, Cycle start_delay = 0);

    /// Advances one cycle. Call exactly once per cycle, after bus
    /// completions have been delivered for this cycle.
    void tick(Cycle now);

    [[nodiscard]] bool done() const noexcept { return done_; }
    /// Cycle at which the program retired and the store buffer drained.
    /// Precondition: done().
    [[nodiscard]] Cycle finish_cycle() const;

    [[nodiscard]] const CoreStats& stats() const noexcept { return stats_; }
    [[nodiscard]] Cache& il1() noexcept { return il1_; }
    [[nodiscard]] Cache& dl1() noexcept { return dl1_; }
    [[nodiscard]] const Cache& il1() const noexcept { return il1_; }
    [[nodiscard]] const Cache& dl1() const noexcept { return dl1_; }
    [[nodiscard]] CoreId id() const noexcept { return id_; }
    [[nodiscard]] const Program& program() const noexcept { return program_; }

    /// Store buffer occupancy (tests / introspection). The entry being
    /// drained remains in the buffer until its transaction completes.
    [[nodiscard]] std::size_t store_buffer_depth() const noexcept {
        return store_buffer_.size();
    }

private:
    void start_drain_if_needed(Cycle now);
    void execute_instruction(Cycle now);
    [[nodiscard]] Addr fetch_addr() const noexcept;
    void advance_pc();

    CoreId id_;
    CoreConfig config_;
    CoreBusPort& port_;
    Cache il1_;
    Cache dl1_;
    Program program_;

    // Execution state.
    std::uint64_t iteration_ = 0;
    std::size_t pc_ = 0;
    Cycle next_free_ = 0;       ///< core can start an instruction here
    bool fetched_ = false;      ///< current instruction passed ifetch
    bool waiting_ifetch_ = false;
    bool waiting_load_ = false;
    bool retired_all_ = false;
    bool done_ = false;
    Cycle finish_cycle_ = kNoCycle;

    // Store buffer: queued line addresses not yet drained.
    std::deque<Addr> store_buffer_;
    bool drain_in_flight_ = false;

    // Injection-time bookkeeping.
    Cycle prev_load_completion_ = kNoCycle;

    CoreStats stats_;
};

}  // namespace rrb
