#include "sim/trace.h"

#include <algorithm>

#include "sim/contract.h"

namespace rrb {

const char* to_string(TraceKind kind) noexcept {
    switch (kind) {
        case TraceKind::kRequestReady: return "ready";
        case TraceKind::kBusGrant: return "grant";
        case TraceKind::kBusRelease: return "release";
        case TraceKind::kLoadComplete: return "load-complete";
        case TraceKind::kStoreRetired: return "store-retired";
        case TraceKind::kStoreDrained: return "store-drained";
        case TraceKind::kCoreStall: return "stall";
        case TraceKind::kDramActivate: return "dram-act";
        case TraceKind::kDramAccess: return "dram-access";
        case TraceKind::kDramPrecharge: return "dram-pre";
    }
    return "?";
}

std::vector<TraceEvent> Tracer::filtered(
    const std::function<bool(const TraceEvent&)>& pred) const {
    std::vector<TraceEvent> out;
    std::copy_if(events_.begin(), events_.end(), std::back_inserter(out),
                 pred);
    return out;
}

std::string Tracer::render_bus_timeline(Cycle first, Cycle last,
                                        CoreId num_cores) const {
    RRB_REQUIRE(last >= first, "empty window");
    RRB_REQUIRE(num_cores > 0, "need at least one core");
    const auto width = static_cast<std::size_t>(last - first + 1);

    // One row per core, prefixed later with a label.
    std::vector<std::string> rows(num_cores, std::string(width, ' '));

    auto clamp_col = [&](Cycle c) -> std::size_t {
        return static_cast<std::size_t>(c - first);
    };

    // Pass 1: '.' from request-ready to grant (waiting).
    std::vector<Cycle> waiting_since(num_cores, kNoCycle);
    // Pass 2: '#' from grant to release (holding the bus).
    std::vector<Cycle> holding_since(num_cores, kNoCycle);

    for (const TraceEvent& e : events_) {
        if (e.core >= num_cores) continue;
        switch (e.kind) {
            case TraceKind::kRequestReady:
                waiting_since[e.core] = e.cycle;
                break;
            case TraceKind::kBusGrant: {
                if (waiting_since[e.core] != kNoCycle) {
                    const Cycle from = std::max(first, waiting_since[e.core]);
                    for (Cycle c = from; c < e.cycle && c <= last; ++c) {
                        rows[e.core][clamp_col(c)] = '.';
                    }
                    waiting_since[e.core] = kNoCycle;
                }
                holding_since[e.core] = e.cycle;
                break;
            }
            case TraceKind::kBusRelease: {
                if (holding_since[e.core] != kNoCycle) {
                    const Cycle from = std::max(first, holding_since[e.core]);
                    for (Cycle c = from; c <= e.cycle && c <= last; ++c) {
                        if (c >= first) rows[e.core][clamp_col(c)] = '#';
                    }
                    holding_since[e.core] = kNoCycle;
                }
                break;
            }
            default:
                break;
        }
    }

    std::string out;
    for (CoreId c = 0; c < num_cores; ++c) {
        out += "c" + std::to_string(c) + " |" + rows[c] + "|\n";
    }
    return out;
}

}  // namespace rrb
