// Deterministic pseudo-random number generation for workload synthesis.
//
// PCG32 (O'Neill, 2014): small state, excellent statistical quality, and --
// unlike std::mt19937 -- a sequence that is identical across standard-library
// implementations, which keeps every experiment in this repository
// bit-reproducible.
#pragma once

#include <cstdint>

namespace rrb {

class Pcg32 {
public:
    /// Seeds the generator. Two generators with equal (seed, stream) produce
    /// identical sequences; distinct streams are statistically independent.
    explicit Pcg32(std::uint64_t seed = 0x853c49e6748fea9bULL,
                   std::uint64_t stream = 0xda3e39cb94b95bdbULL);

    /// Uniform 32-bit value.
    std::uint32_t next_u32();

    /// Uniform value in [0, bound). Precondition: bound > 0. Uses rejection
    /// sampling, so the distribution is exactly uniform.
    std::uint32_t next_below(std::uint32_t bound);

    /// Uniform value in [lo, hi] inclusive. Precondition: lo <= hi.
    std::uint32_t next_in(std::uint32_t lo, std::uint32_t hi);

    /// Uniform double in [0, 1).
    double next_double();

    /// Bernoulli trial with probability p (clamped to [0,1]).
    bool next_bool(double p);

    /// Raw generator state, exposed for canonical state fingerprints
    /// (replay decode loop detection): two generators with equal
    /// (state, stream_inc) produce identical future sequences.
    [[nodiscard]] std::uint64_t state() const noexcept { return state_; }
    [[nodiscard]] std::uint64_t stream_inc() const noexcept { return inc_; }

private:
    std::uint64_t state_;
    std::uint64_t inc_;
};

}  // namespace rrb
