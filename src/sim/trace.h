// Cycle-stamped event tracing.
//
// The simulator components emit TraceEvents through an optional Tracer.
// Tracing is used by the timeline benches (Figures 2 and 5 of the paper)
// and by tests that assert on exact arbitration sequences; normal
// experiment runs leave the tracer disabled so it costs one branch.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/types.h"

namespace rrb {

enum class TraceKind : std::uint8_t {
    kRequestReady,    ///< a bus request became eligible for arbitration
    kBusGrant,        ///< arbiter granted the bus to a core
    kBusRelease,      ///< a bus transaction finished
    kLoadComplete,    ///< load data returned to the core
    kStoreRetired,    ///< store entered the store buffer
    kStoreDrained,    ///< store buffer entry finished its bus transaction
    kCoreStall,       ///< core stalled (full store buffer / pending miss)
    kDramActivate,    ///< DRAM row activation
    kDramAccess,      ///< DRAM column read/write burst
    kDramPrecharge,   ///< DRAM row precharge
};

/// Human-readable name of a trace kind (stable, used in golden tests).
const char* to_string(TraceKind kind) noexcept;

struct TraceEvent {
    Cycle cycle = 0;
    TraceKind kind = TraceKind::kRequestReady;
    CoreId core = 0;     ///< originating requester
    std::uint64_t arg = 0;  ///< kind-specific payload (address, delay, ...)
};

/// Buffering tracer. Disabled by default; enabling keeps every event in
/// memory for later inspection or rendering.
class Tracer {
public:
    void enable() noexcept { enabled_ = true; }
    void disable() noexcept { enabled_ = false; }
    [[nodiscard]] bool enabled() const noexcept { return enabled_; }

    void record(Cycle cycle, TraceKind kind, CoreId core,
                std::uint64_t arg = 0) {
        if (enabled_) events_.push_back({cycle, kind, core, arg});
    }

    [[nodiscard]] const std::vector<TraceEvent>& events() const noexcept {
        return events_;
    }
    void clear() noexcept { events_.clear(); }

    /// Events matching a predicate, in emission order.
    [[nodiscard]] std::vector<TraceEvent> filtered(
        const std::function<bool(const TraceEvent&)>& pred) const;

    /// Renders an ASCII per-core timeline of bus occupancy between
    /// [first, last] cycles: one row per core, '#' while the core holds the
    /// bus, '.' while it has a request waiting, ' ' otherwise.
    [[nodiscard]] std::string render_bus_timeline(Cycle first, Cycle last,
                                                  CoreId num_cores) const;

private:
    bool enabled_ = false;
    std::vector<TraceEvent> events_;
};

}  // namespace rrb
