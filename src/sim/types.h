// Fundamental types shared by every simulator module.
#pragma once

#include <cstdint>
#include <limits>

namespace rrb {

/// Simulation time in core clock cycles.
using Cycle = std::uint64_t;

/// Sentinel for "no cycle" / "not yet scheduled".
inline constexpr Cycle kNoCycle = std::numeric_limits<Cycle>::max();

/// Identifier of a bus requester (a core, in this model).
using CoreId = std::uint32_t;

/// Physical byte address as seen by caches / bus / DRAM.
using Addr = std::uint64_t;

}  // namespace rrb
