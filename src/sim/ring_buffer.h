// Reusable FIFO ring buffer for the simulator hot path.
//
// std::deque allocates and frees chunk blocks as elements cross chunk
// boundaries, which puts heap traffic on the per-request path of every
// simulated cycle. This ring keeps one flat buffer that only ever grows
// (doubling when full) and is retained across Machine::reset(), so the
// steady state of a reused machine performs no allocation at all.
#pragma once

#include <cstddef>
#include <vector>

#include "sim/contract.h"

namespace rrb {

template <typename T>
class RingBuffer {
public:
    RingBuffer() = default;
    explicit RingBuffer(std::size_t initial_capacity) {
        reserve(initial_capacity);
    }

    [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
    [[nodiscard]] std::size_t size() const noexcept { return size_; }
    [[nodiscard]] std::size_t capacity() const noexcept {
        return buffer_.size();
    }

    void push_back(const T& value) {
        if (size_ == buffer_.size()) grow();
        buffer_[(head_ + size_) & mask_] = value;
        ++size_;
    }

    [[nodiscard]] const T& front() const {
        RRB_REQUIRE(size_ > 0, "front of an empty ring buffer");
        return buffer_[head_];
    }

    /// Element `index` positions behind the front (0 = front()).
    [[nodiscard]] const T& at(std::size_t index) const {
        RRB_REQUIRE(index < size_, "ring buffer index out of range");
        return buffer_[(head_ + index) & mask_];
    }

    void pop_front() {
        RRB_REQUIRE(size_ > 0, "pop of an empty ring buffer");
        head_ = (head_ + 1) & mask_;
        --size_;
    }

    /// Drops every element; the backing storage is retained.
    void clear() noexcept {
        head_ = 0;
        size_ = 0;
    }

    /// Grows the backing storage to at least `capacity` elements.
    void reserve(std::size_t capacity) {
        if (capacity > buffer_.size()) reallocate(capacity);
    }

private:
    void grow() { reallocate(buffer_.empty() ? 4 : buffer_.size() * 2); }

    void reallocate(std::size_t capacity) {
        // Power-of-two storage so the wraparound is a mask, not a
        // divide — these queues are popped on the per-request path.
        std::size_t rounded = 4;
        while (rounded < capacity) rounded *= 2;
        std::vector<T> next(rounded);
        for (std::size_t i = 0; i < size_; ++i) {
            next[i] = buffer_[(head_ + i) & mask_];
        }
        buffer_ = std::move(next);
        mask_ = rounded - 1;
        head_ = 0;
    }

    std::vector<T> buffer_;
    std::size_t mask_ = 0;  ///< buffer_.size() - 1 once allocated
    std::size_t head_ = 0;
    std::size_t size_ = 0;
};

}  // namespace rrb
