// Incremental 64-bit FNV-1a — the one hash used for content
// fingerprints and checkpoint checksums (Scenario::fingerprint,
// stats/checkpoint.h). Not cryptographic; it exists to turn silent
// mismatches and corruption into loud errors. Multi-byte values fold
// little-endian byte by byte after widening to u64, so a hash is a pure
// function of the logical values — independent of host endianness and
// integer widths.
#pragma once

#include <cstdint>
#include <span>

namespace rrb {

class Fnv1a {
public:
    void byte(std::uint8_t b) noexcept { hash_ = (hash_ ^ b) * kPrime; }

    void bytes(std::span<const std::uint8_t> bs) noexcept {
        for (const std::uint8_t b : bs) byte(b);
    }

    void u64(std::uint64_t v) noexcept {
        for (int shift = 0; shift < 64; shift += 8) {
            byte(static_cast<std::uint8_t>(v >> shift));
        }
    }

    [[nodiscard]] std::uint64_t value() const noexcept { return hash_; }

private:
    static constexpr std::uint64_t kOffsetBasis = 1469598103934665603ULL;
    static constexpr std::uint64_t kPrime = 1099511628211ULL;

    std::uint64_t hash_ = kOffsetBasis;
};

}  // namespace rrb
