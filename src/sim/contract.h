// Lightweight contract checking in the spirit of the C++ Core Guidelines
// (I.5 "state preconditions", I.7 "state postconditions", E.12).
//
// RRB_REQUIRE  -- precondition on public API input; throws std::invalid_argument.
// RRB_ENSURE   -- internal invariant / postcondition; aborts in all builds,
//                 because a broken simulator invariant means every number we
//                 report afterwards would be wrong.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace rrb::detail {

[[noreturn]] inline void contract_violation(const char* kind, const char* expr,
                                            const char* file, int line) {
    std::fprintf(stderr, "%s violated: %s at %s:%d\n", kind, expr, file, line);
    std::abort();
}

}  // namespace rrb::detail

#define RRB_REQUIRE(cond, msg)                                        \
    do {                                                              \
        if (!(cond)) {                                                \
            throw std::invalid_argument(std::string("precondition " #cond \
                                                    " failed: ") +   \
                                        (msg));                       \
        }                                                             \
    } while (0)

#define RRB_ENSURE(cond)                                                     \
    do {                                                                     \
        if (!(cond)) {                                                       \
            ::rrb::detail::contract_violation("invariant", #cond, __FILE__,  \
                                              __LINE__);                     \
        }                                                                    \
    } while (0)
