#include "sim/rng.h"

#include "sim/contract.h"

namespace rrb {

Pcg32::Pcg32(std::uint64_t seed, std::uint64_t stream)
    : state_(0), inc_((stream << 1u) | 1u) {
    next_u32();
    state_ += seed;
    next_u32();
}

std::uint32_t Pcg32::next_u32() {
    const std::uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    const auto xorshifted =
        static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
    const auto rot = static_cast<std::uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

std::uint32_t Pcg32::next_below(std::uint32_t bound) {
    RRB_REQUIRE(bound > 0, "bound must be positive");
    // Rejection sampling: discard the non-multiple-of-bound tail.
    const std::uint32_t threshold = (0u - bound) % bound;
    for (;;) {
        const std::uint32_t r = next_u32();
        if (r >= threshold) return r % bound;
    }
}

std::uint32_t Pcg32::next_in(std::uint32_t lo, std::uint32_t hi) {
    RRB_REQUIRE(lo <= hi, "range must be non-empty");
    const std::uint32_t span = hi - lo;
    if (span == 0xffffffffu) return next_u32();
    return lo + next_below(span + 1u);
}

double Pcg32::next_double() {
    // 32 uniform bits scaled into [0,1).
    return static_cast<double>(next_u32()) * (1.0 / 4294967296.0);
}

bool Pcg32::next_bool(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return next_double() < p;
}

}  // namespace rrb
