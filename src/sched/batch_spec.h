// Declarative multi-scenario batch specs for `rrbtool batch`.
//
// A spec file names any number of scenarios, each with the same knobs
// the `pwcet` command takes as flags:
//
//   # contention study, 2026-08
//   [scenario small-rr]
//   runs = 600
//   seed = 7
//   block-size = 30
//
//   [scenario wide-bus]
//   cores = 2
//   lbus = 5
//   runs = 400
//   exceedance = 1e-3,1e-6
//
// Keys per scenario (all optional): cores, lbus (together select the
// scaled platform, defaults 4 / 9 — exactly `pwcet --cores/--lbus`),
// var (true = NGMP variant when neither cores nor lbus is set),
// arbiter (rr|tdma|wrr|fixed), iterations (default 40), runs (default
// 40 blocks), seed (default 1), block-size (default 50), exceedance
// (comma-separated probabilities in (0,1)), max-start-delay (cycles).
//
// Materialization mirrors the pwcet command's flag handling key for
// key: a spec entry and the equivalent `rrbtool pwcet` invocation
// build the *same scenario fingerprint*, so a batch checkpoint merges
// and byte-diffs against a standalone run (CI does exactly that).
// Scenario names become checkpoint file stems and must be unique and
// filesystem-safe ([A-Za-z0-9._-]).
#pragma once

#include <string>
#include <vector>

#include "core/session.h"

namespace rrb::sched {

/// Parses a spec file's text into ready-to-run batch items, in file
/// order. Throws std::invalid_argument naming the line on malformed
/// input — an unknown key, a bad value, a duplicate or unsafe name —
/// rather than running a campaign the user did not describe.
[[nodiscard]] std::vector<BatchItem> parse_batch_spec(
    const std::string& text);

}  // namespace rrb::sched
