// Global campaign scheduler: (campaign × plan-shard) as the unit of work.
//
// Session::sweep used to run grid points one after another: each point
// fanned its shards across the shared pool, then *barriered* before the
// next point — on a wide grid a many-core box idles at every boundary,
// and heterogeneous scenarios could not run concurrently at all. The
// CampaignScheduler flattens any number of pWCET campaigns into one
// global work queue (every campaign's isolation baseline plus every
// shard of its reduce plan) and drains it across the one shared
// ThreadPool with no barrier until the whole batch is done.
//
// Determinism: a shard accumulator depends only on (plan, shard index,
// fold) — the engine/reduce.h contract — and the isolation baseline is
// a deterministic measurement, so *which worker* runs *which item when*
// cannot leak into any campaign's numbers. take() reassembles exactly
// the PwcetShardSlice the sequential run_pwcet_campaign_shards would
// have produced, bit for bit, at every jobs value.
//
// Lease affinity: workers keep per-thread machine caches keyed by
// MachineConfig::fingerprint (engine::MachineLease). The dispatch loop
// prefers handing a worker another item of the fingerprint it just ran
// — the machine is hot in its cache — and falls back to *stealing* from
// the fingerprint class with the most work left, so no core ever idles
// while any queue is non-empty. Dispatch decisions are observable via
// the sched_* telemetry counters (hits + steals == dispatches).
//
// Supervision: each campaign is its own failure domain. A work item
// that throws marks *its* campaign failed (first exception captured;
// sched_failures counts campaigns, not throws) while every other
// campaign keeps draining — already-queued items of a failed campaign
// are dispatched but skipped (sched_items_skipped), so the dispatch
// invariant hits + steals == dispatches == enqueued always holds.
// Failures of class fault::TransientError (transient I/O, lease
// rebuild) are retried in place up to a bounded per-item budget
// (sched_retries) before counting as a campaign failure. take() on a
// failed campaign rethrows its captured exception; status() reports
// without throwing — how Session::batch turns one bad scenario into a
// per-point error instead of a poisoned batch.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/campaign.h"
#include "engine/progress.h"
#include "engine/reduce.h"
#include "engine/thread_pool.h"
#include "isa/program.h"
#include "machine/config.h"
#include "obs/heartbeat.h"

namespace rrb::sched {

/// Aggregate + per-campaign progress for one scheduler batch, readable
/// by a heartbeat thread while workers tick. announce() fixes the
/// structure (names, totals) before any concurrent access; the counters
/// themselves are lock-free.
class BatchProgress {
public:
    /// Declares the batch: one (name, total runs) per campaign, in
    /// campaign order. Call once, before the scheduler runs and before
    /// any reporter thread samples. Re-announcing resets everything.
    void announce(
        const std::vector<std::pair<std::string, std::size_t>>& campaigns);

    [[nodiscard]] engine::ProgressCounter& aggregate() noexcept {
        return aggregate_;
    }
    [[nodiscard]] const engine::ProgressCounter& aggregate() const noexcept {
        return aggregate_;
    }
    [[nodiscard]] std::size_t campaigns() const noexcept {
        return campaigns_.size();
    }
    [[nodiscard]] const std::string& name(std::size_t i) const {
        return campaigns_[i].name;
    }
    [[nodiscard]] engine::ProgressCounter& campaign(std::size_t i) {
        return campaigns_[i].progress;
    }
    [[nodiscard]] const engine::ProgressCounter& campaign(
        std::size_t i) const {
        return campaigns_[i].progress;
    }

    /// View for HeartbeatMeter's multi-campaign sample. The pointers
    /// stay valid until the next announce().
    [[nodiscard]] std::vector<obs::CampaignSample> samples() const;

private:
    struct Entry {
        std::string name;
        engine::ProgressCounter progress;
    };

    engine::ProgressCounter aggregate_;
    std::deque<Entry> campaigns_;  ///< deque: counters must not move
};

/// One pWCET campaign to schedule: the re-targeted scenario lowered to
/// engine inputs (the same lowering Session::pwcet uses).
struct PwcetCampaignWork {
    MachineConfig config;
    Program scua;
    std::vector<Program> contenders;
    PwcetCampaignOptions options;
    /// Span identity for the telemetry timeline. The name must be a
    /// static string (obs::SpanRecord does not copy it).
    const char* span_name = "campaign";
    std::uint64_t span_index = 0;
};

class CampaignScheduler {
public:
    /// The scheduler drains onto `pool` and owns it for the duration of
    /// run() — the ThreadPool contract forbids concurrent batches.
    explicit CampaignScheduler(engine::ThreadPool& pool);
    ~CampaignScheduler();

    CampaignScheduler(const CampaignScheduler&) = delete;
    CampaignScheduler& operator=(const CampaignScheduler&) = delete;

    /// Enqueues a campaign; returns its index (take() key). Validates
    /// the options eagerly, on the calling thread. Must precede run().
    std::size_t add(PwcetCampaignWork work);

    struct RunOptions {
        /// Ticked once per contention run (aggregate and the owning
        /// campaign's counter). The scheduler never calls begin() —
        /// announce totals via BatchProgress::announce.
        BatchProgress* batch = nullptr;
        /// Ticked once per contention run. Pre-announced by the caller.
        engine::ProgressCounter* runs = nullptr;
        /// Ticked once per *completed campaign* — the sweep's per-point
        /// progress contract. Pre-announced by the caller.
        engine::ProgressCounter* campaigns_done = nullptr;
    };

    /// Drains every queued item across the pool; returns when the whole
    /// batch is done. Call once. Never throws for item failures: each
    /// campaign is supervised independently (see the module comment) —
    /// inspect status() or let take() rethrow per campaign.
    void run(const RunOptions& options);
    void run() { run(RunOptions{}); }

    /// Post-run verdict for one campaign: ok, or failed with the first
    /// captured exception's message.
    struct CampaignStatus {
        bool failed = false;
        std::string error;
    };

    /// Valid after run(). Never throws.
    [[nodiscard]] const CampaignStatus& status(std::size_t index) const;

    /// Moves campaign `index`'s result out as the full-plan slice —
    /// bit-identical to engine::run_pwcet_campaign_shards over the same
    /// inputs with range {0, plan.shards()}. Valid once per campaign,
    /// after run(). Rethrows the campaign's first captured exception if
    /// it failed.
    [[nodiscard]] engine::PwcetShardSlice take(std::size_t index);

    /// Total work items (isolation baselines + shards) this batch holds.
    [[nodiscard]] std::size_t work_items() const noexcept;

private:
    struct Campaign;
    struct WorkItem;
    struct Bucket;
    struct State;

    void execute(const WorkItem& item, const RunOptions& options);
    void run_item(const WorkItem& item, const RunOptions& options);
    void fail(Campaign& campaign, std::exception_ptr error) noexcept;
    [[nodiscard]] bool next_item(std::uint64_t& last_fingerprint,
                                 WorkItem& out);

    engine::ThreadPool& pool_;
    std::vector<std::unique_ptr<Campaign>> campaigns_;
    std::unique_ptr<State> state_;
    bool ran_ = false;
};

}  // namespace rrb::sched
