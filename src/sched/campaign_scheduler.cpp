#include "sched/campaign_scheduler.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <optional>
#include <string>

#include "core/experiment.h"
#include "fault/fault.h"
#include "obs/telemetry.h"
#include "sim/contract.h"

namespace rrb::sched {

namespace {

/// Shard index standing for "measure the isolation baseline" — the one
/// per-campaign item that is not a reduce shard. Scheduled through the
/// same queue (same fingerprint bucket) so the baseline also lands on a
/// worker with a hot lease.
constexpr std::size_t kIsolationItem = static_cast<std::size_t>(-1);

/// Per-item attempt budget: a TransientError is retried in place this
/// many times total before it counts as the campaign's failure. The
/// item restarts from a fresh accumulator, so a retry cannot perturb
/// results — only the advisory progress counters may overshoot if the
/// failure struck mid-fold.
constexpr std::size_t kMaxAttempts = 3;

/// Human-readable first line for CampaignStatus::error.
std::string describe(const std::exception_ptr& error) {
    try {
        std::rethrow_exception(error);
    } catch (const std::exception& e) {
        return e.what();
    } catch (...) {
        return "unknown error";
    }
}

}  // namespace

void BatchProgress::announce(
    const std::vector<std::pair<std::string, std::size_t>>& campaigns) {
    campaigns_.clear();
    std::size_t total = 0;
    for (const auto& [name, runs] : campaigns) {
        Entry& entry = campaigns_.emplace_back();
        entry.name = name;
        entry.progress.begin(runs);
        total += runs;
    }
    aggregate_.begin(total);
}

std::vector<obs::CampaignSample> BatchProgress::samples() const {
    std::vector<obs::CampaignSample> out;
    out.reserve(campaigns_.size());
    for (const Entry& entry : campaigns_) {
        out.push_back({&entry.name, &entry.progress});
    }
    return out;
}

struct CampaignScheduler::Campaign {
    PwcetCampaignWork work;
    engine::ReducePlan plan;
    std::uint64_t fingerprint = 0;  ///< config fingerprint, never 0
    std::uint64_t span = 0;         ///< campaign span, open while running
    std::atomic<std::size_t> remaining{0};  ///< items left (isol + shards)
    Cycle et_isolation = 0;
    std::uint64_t nr = 0;
    std::vector<std::optional<PwcetAccumulator>> slots;  ///< by shard
    bool taken = false;
    /// Failure domain: set once by the first throwing item (later items
    /// of this campaign are skipped, not executed). The flag is the
    /// workers' fast check; error/status are written under the state
    /// mutex before the flag is released.
    std::atomic<bool> failed{false};
    std::exception_ptr error;
    CampaignStatus status;
};

/// One queued (campaign, shard) unit of work.
struct CampaignScheduler::WorkItem {
    std::size_t campaign = 0;
    std::size_t shard = 0;  ///< kIsolationItem for the baseline
};

/// All queued items of one config fingerprint, drained front to back
/// (isolation first, then shards ascending, campaign-major — so one
/// bucket finishes a campaign before starting the next and take() can
/// stream early results while later campaigns still run).
struct CampaignScheduler::Bucket {
    std::uint64_t fingerprint = 0;
    std::vector<WorkItem> items;
    std::size_t head = 0;  ///< items[0, head) already dispatched

    [[nodiscard]] std::size_t left() const noexcept {
        return items.size() - head;
    }
};

struct CampaignScheduler::State {
    std::mutex mutex;
    std::vector<Bucket> buckets;
    std::size_t remaining = 0;  ///< undispatched items across buckets
};

CampaignScheduler::CampaignScheduler(engine::ThreadPool& pool)
    : pool_(pool), state_(std::make_unique<State>()) {}

CampaignScheduler::~CampaignScheduler() = default;

std::size_t CampaignScheduler::add(PwcetCampaignWork work) {
    RRB_REQUIRE(!ran_, "cannot add campaigns after run()");
    // The same eager validation the sequential engine entry points do,
    // on the calling thread — a malformed campaign must not surface as
    // a worker-side failure halfway through an unrelated batch.
    RRB_REQUIRE(work.options.protocol.runs >= 1, "need at least one run");
    RRB_REQUIRE(work.options.block_size >= 1, "block size must be positive");
    for (const double e : work.options.exceedance) {
        RRB_REQUIRE(e > 0.0 && e < 1.0, "exceedance probability in (0,1)");
    }
    RRB_REQUIRE(!work.contenders.empty(), "need at least one contender");
    work.config.validate();

    auto campaign = std::make_unique<Campaign>();
    campaign->plan = engine::ReducePlan::for_count(
        static_cast<std::uint64_t>(work.options.protocol.runs));
    const std::uint64_t fp = work.config.fingerprint();
    campaign->fingerprint = fp == 0 ? 1 : fp;  // 0 = "no lease" sentinel
    campaign->work = std::move(work);
    campaigns_.push_back(std::move(campaign));
    return campaigns_.size() - 1;
}

std::size_t CampaignScheduler::work_items() const noexcept {
    std::size_t total = 0;
    for (const std::unique_ptr<Campaign>& c : campaigns_) {
        total += c->plan.shards() + 1;
    }
    return total;
}

void CampaignScheduler::run(const RunOptions& options) {
    RRB_REQUIRE(!ran_, "a CampaignScheduler drains exactly once");
    ran_ = true;

    std::size_t total_items = 0;
    for (std::size_t index = 0; index < campaigns_.size(); ++index) {
        Campaign& campaign = *campaigns_[index];
        const std::size_t shards = campaign.plan.shards();
        campaign.slots.assign(shards, std::nullopt);
        campaign.remaining.store(shards + 1, std::memory_order_relaxed);
        // The campaign span parents every shard span, whatever worker
        // runs it — opened here, under the submitting thread's current
        // span (session.sweep / session.batch), closed by whichever
        // worker finishes the campaign's last item.
        campaign.span = obs::enabled()
                            ? obs::TelemetryRegistry::instance().open_span(
                                  campaign.work.span_name,
                                  obs::current_span(),
                                  campaign.work.span_index,
                                  campaign.work.options.protocol.runs)
                            : 0;

        Bucket* bucket = nullptr;
        for (Bucket& b : state_->buckets) {
            if (b.fingerprint == campaign.fingerprint) {
                bucket = &b;
                break;
            }
        }
        if (bucket == nullptr) {
            bucket = &state_->buckets.emplace_back();
            bucket->fingerprint = campaign.fingerprint;
        }
        bucket->items.push_back({index, kIsolationItem});
        for (std::size_t s = 0; s < shards; ++s) {
            bucket->items.push_back({index, s});
        }
        total_items += shards + 1;
    }
    state_->remaining = total_items;
    obs::count(obs::kSchedItemsEnqueued, total_items);
    if (total_items == 0) return;

    // One drain loop per pool worker (never more loops than items):
    // each loop pulls items — affinity first, steal otherwise — until
    // the queue is dry. execute() supervises every item, so no loop
    // ever dies: failures are captured per campaign and the loops keep
    // draining the surviving campaigns' work.
    const std::size_t loops = std::min(pool_.thread_count(), total_items);
    for (std::size_t w = 0; w < loops; ++w) {
        pool_.submit([this, &options] {
            std::uint64_t last_fingerprint = 0;
            WorkItem item;
            while (next_item(last_fingerprint, item)) {
                execute(item, options);
            }
        });
    }
    pool_.wait_idle();
}

bool CampaignScheduler::next_item(std::uint64_t& last_fingerprint,
                                  WorkItem& out) {
    const std::scoped_lock lock(state_->mutex);
    if (state_->remaining == 0) return false;

    // Affinity: another item of the fingerprint this worker just ran —
    // its thread-local MachineLease still holds the hot machine.
    Bucket* pick = nullptr;
    bool hit = false;
    if (last_fingerprint != 0) {
        for (Bucket& b : state_->buckets) {
            if (b.fingerprint == last_fingerprint && b.left() > 0) {
                pick = &b;
                hit = true;
                break;
            }
        }
    }
    // Steal fallback: the fingerprint class with the most work left, so
    // idle workers pile onto the longest queue instead of all chasing
    // the same nearly-done one.
    if (pick == nullptr) {
        std::size_t best = 0;
        for (Bucket& b : state_->buckets) {
            if (b.left() > best) {
                best = b.left();
                pick = &b;
            }
        }
    }
    out = pick->items[pick->head++];
    --state_->remaining;
    last_fingerprint = pick->fingerprint;
    obs::count(obs::kSchedDispatches);
    obs::count(hit ? obs::kSchedAffinityHits : obs::kSchedSteals);
    return true;
}

void CampaignScheduler::fail(Campaign& campaign,
                             std::exception_ptr error) noexcept {
    const std::scoped_lock lock(state_->mutex);
    if (campaign.status.failed) return;  // first failure wins
    campaign.status.failed = true;
    campaign.status.error = describe(error);
    campaign.error = std::move(error);
    campaign.failed.store(true, std::memory_order_release);
    obs::count(obs::kSchedFailures);
}

void CampaignScheduler::execute(const WorkItem& item,
                                const RunOptions& options) {
    Campaign& campaign = *campaigns_[item.campaign];
    if (campaign.failed.load(std::memory_order_acquire)) {
        // The campaign already failed; its remaining queued items are
        // drained without work so `remaining` still reaches zero (the
        // span closes, sweep progress ticks) and other campaigns' items
        // behind them in the bucket are reached.
        obs::count(obs::kSchedItemsSkipped);
    } else {
        for (std::size_t attempt = 1;; ++attempt) {
            try {
                run_item(item, options);
                break;
            } catch (const fault::TransientError&) {
                if (attempt < kMaxAttempts) {
                    obs::count(obs::kSchedRetries);
                    continue;
                }
                fail(campaign, std::current_exception());
                break;
            } catch (...) {
                fail(campaign, std::current_exception());
                break;
            }
        }
    }

    if (campaign.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        if (campaign.span != 0) {
            obs::TelemetryRegistry::instance().close_span(campaign.span);
        }
        if (options.campaigns_done != nullptr) {
            options.campaigns_done->tick();
        }
    }
}

void CampaignScheduler::run_item(const WorkItem& item,
                                 const RunOptions& options) {
    Campaign& campaign = *campaigns_[item.campaign];
    const PwcetCampaignWork& work = campaign.work;

    // Fault sites, evaluated at item start — before any progress tick,
    // so an injected retry replays the item exactly (key: campaign
    // index in submission order; shard items only, so a rule's match
    // count is the campaign's shard count).
    if (item.shard != kIsolationItem) {
        if (fault::should_fire(fault::Site::kTransientIo,
                               item.campaign)) {
            throw fault::TransientError(
                "injected transient I/O failure (campaign " +
                std::to_string(item.campaign) + ")");
        }
        if (fault::should_fire(fault::Site::kShardThrow,
                               item.campaign)) {
            throw std::runtime_error(
                "injected shard worker failure (campaign " +
                std::to_string(item.campaign) + ")");
        }
    }

    if (item.shard == kIsolationItem) {
        // The deterministic baseline the sequential slice measures
        // before its reduce — here just another queue item, so it also
        // lands on a worker holding (or about to hold) this config's
        // lease.
        const obs::Span span("isolation", campaign.span, 0, 1);
        const Measurement isol =
            run_isolation(work.config, work.scua, 0,
                          work.options.protocol.max_cycles_per_run);
        RRB_ENSURE(!isol.deadline_reached);
        campaign.et_isolation = isol.exec_time;
        campaign.nr = isol.bus_requests;
    } else {
        const std::uint64_t first = campaign.plan.shard_begin(item.shard);
        const std::uint64_t last = campaign.plan.shard_end(item.shard);
        const std::uint64_t begin_ns =
            obs::enabled() ? obs::TelemetryRegistry::instance().now_ns()
                           : 0;
        // Explicit parent: the *owning campaign's* span, never whatever
        // campaign this worker happened to touch before — concurrent
        // heterogeneous campaigns keep their timelines separate.
        const obs::Span span("shard", campaign.span, item.shard,
                             last - first);
        PwcetAccumulator acc(work.options.block_size);
        // Hash the campaign identity once per shard, not once per run.
        const std::uint64_t fp = detail::campaign_fingerprint(
            work.scua, work.contenders, work.options.protocol);
        for (std::uint64_t i = first; i < last; ++i) {
            acc.add(i, detail::hwm_campaign_measure(
                           work.config, work.scua, work.contenders,
                           work.options.protocol, i, fp));
            if (options.runs != nullptr) options.runs->tick();
            if (options.batch != nullptr) {
                options.batch->aggregate().tick();
                options.batch->campaign(item.campaign).tick();
            }
        }
        campaign.slots[item.shard].emplace(std::move(acc));
        obs::count(obs::kShardsCompleted);
        if (obs::enabled()) {
            obs::count(obs::kShardWallNs,
                       obs::TelemetryRegistry::instance().now_ns() -
                           begin_ns);
        }
    }
}

const CampaignScheduler::CampaignStatus& CampaignScheduler::status(
    std::size_t index) const {
    RRB_REQUIRE(ran_, "run() the batch before reading statuses");
    RRB_REQUIRE(index < campaigns_.size(), "campaign index out of range");
    return campaigns_[index]->status;
}

engine::PwcetShardSlice CampaignScheduler::take(std::size_t index) {
    RRB_REQUIRE(ran_, "run() the batch before taking results");
    RRB_REQUIRE(index < campaigns_.size(), "campaign index out of range");
    Campaign& campaign = *campaigns_[index];
    RRB_REQUIRE(!campaign.taken, "campaign result already taken");
    if (campaign.status.failed) {
        // The caller asked for a result that does not exist; hand the
        // original failure back on the calling thread (Session::sweep's
        // "throws on failure" contract rides on this).
        std::rethrow_exception(campaign.error);
    }
    campaign.taken = true;

    engine::PwcetShardSlice slice;
    slice.et_isolation = campaign.et_isolation;
    slice.nr = campaign.nr;
    slice.first_shard = 0;
    const std::size_t shards = campaign.plan.shards();
    if (shards > 0) {
        slice.first_run = campaign.plan.shard_begin(0);
        slice.last_run = campaign.plan.shard_end(shards - 1);
    }
    slice.shards.reserve(shards);
    for (std::optional<PwcetAccumulator>& slot : campaign.slots) {
        slice.shards.push_back(std::move(*slot));
    }
    return slice;
}

}  // namespace rrb::sched
