#include "sched/batch_spec.h"

#include <cstdlib>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string_view>

#include "kernels/autobench.h"

namespace rrb::sched {

namespace {

/// One [scenario] block as written, before materialization. Defaults
/// mirror the pwcet command's flag defaults — the equivalence the CI
/// byte-diff relies on.
struct SpecEntry {
    std::string name;
    std::size_t line = 0;  ///< where the block header sits (messages)
    std::optional<CoreId> cores;
    std::optional<Cycle> lbus;
    bool variant = false;
    std::optional<ArbiterKind> arbiter;
    std::uint64_t iterations = 40;
    std::optional<std::size_t> runs;
    std::uint64_t seed = 1;
    std::size_t block_size = 50;
    std::vector<double> exceedance;
    std::optional<Cycle> max_start_delay;
};

[[noreturn]] void fail(std::size_t line, const std::string& what) {
    throw std::invalid_argument("batch spec line " + std::to_string(line) +
                                ": " + what);
}

std::string_view trim(std::string_view text) {
    while (!text.empty() && (text.front() == ' ' || text.front() == '\t')) {
        text.remove_prefix(1);
    }
    while (!text.empty() &&
           (text.back() == ' ' || text.back() == '\t' ||
            text.back() == '\r')) {
        text.remove_suffix(1);
    }
    return text;
}

bool safe_name(std::string_view name) {
    if (name.empty()) return false;
    for (const char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                        c == '-';
        if (!ok) return false;
    }
    return true;
}

std::uint64_t parse_number(std::string_view text, std::size_t line,
                           const std::string& key) {
    if (text.empty()) fail(line, key + " needs a number");
    std::uint64_t value = 0;
    for (const char c : text) {
        if (c < '0' || c > '9') fail(line, key + " needs a number");
        value = value * 10 + static_cast<std::uint64_t>(c - '0');
    }
    return value;
}

bool parse_bool(std::string_view text, std::size_t line,
                const std::string& key) {
    if (text == "true" || text == "1" || text == "yes") return true;
    if (text == "false" || text == "0" || text == "no") return false;
    fail(line, key + " needs true or false");
}

ArbiterKind parse_arbiter(std::string_view text, std::size_t line) {
    if (text == "rr") return ArbiterKind::kRoundRobin;
    if (text == "tdma") return ArbiterKind::kTdma;
    if (text == "wrr") return ArbiterKind::kWeightedRoundRobin;
    if (text == "fixed") return ArbiterKind::kFixedPriority;
    fail(line, "unknown arbiter '" + std::string(text) +
                   "' (rr, tdma, wrr, fixed)");
}

std::vector<double> parse_exceedance(std::string_view text,
                                     std::size_t line) {
    std::vector<double> values;
    std::string item;
    std::istringstream stream{std::string(text)};
    while (std::getline(stream, item, ',')) {
        const std::string_view trimmed = trim(item);
        char* end = nullptr;
        const std::string owned(trimmed);
        const double value = std::strtod(owned.c_str(), &end);
        if (owned.empty() || end != owned.c_str() + owned.size() ||
            !(value > 0.0 && value < 1.0)) {
            fail(line, "exceedance needs probabilities in (0,1), got '" +
                           owned + "'");
        }
        values.push_back(value);
    }
    if (values.empty()) {
        fail(line, "exceedance needs a comma-separated probability list");
    }
    return values;
}

void apply_key(SpecEntry& entry, std::string_view key,
               std::string_view value, std::size_t line) {
    const std::string k(key);
    if (key == "cores") {
        entry.cores = static_cast<CoreId>(parse_number(value, line, k));
    } else if (key == "lbus") {
        entry.lbus = static_cast<Cycle>(parse_number(value, line, k));
    } else if (key == "var") {
        entry.variant = parse_bool(value, line, k);
    } else if (key == "arbiter") {
        entry.arbiter = parse_arbiter(value, line);
    } else if (key == "iterations") {
        entry.iterations = parse_number(value, line, k);
    } else if (key == "runs") {
        entry.runs = static_cast<std::size_t>(parse_number(value, line, k));
    } else if (key == "seed") {
        entry.seed = parse_number(value, line, k);
    } else if (key == "block-size") {
        entry.block_size =
            static_cast<std::size_t>(parse_number(value, line, k));
        if (entry.block_size == 0) {
            fail(line, "block-size must be at least 1");
        }
    } else if (key == "exceedance") {
        entry.exceedance = parse_exceedance(value, line);
    } else if (key == "max-start-delay") {
        entry.max_start_delay =
            static_cast<Cycle>(parse_number(value, line, k));
    } else {
        fail(line, "unknown key '" + k + "'");
    }
}

/// The pwcet command's scenario construction, key for key: scaled
/// platform when cores/lbus are set (defaults 4 / 9), NGMP ref/var
/// otherwise; cache-buster scua against load-rsk contenders; runs
/// defaulting to 40 blocks. Divergence here would silently break the
/// batch-vs-standalone byte-identity the spec format promises.
BatchItem materialize(const SpecEntry& entry) {
    MachineConfig config =
        (entry.cores.has_value() || entry.lbus.has_value())
            ? MachineConfig::scaled(entry.cores.value_or(4),
                                    entry.lbus.value_or(9))
            : (entry.variant ? MachineConfig::ngmp_var()
                             : MachineConfig::ngmp_ref());
    if (entry.arbiter.has_value()) config.arbiter = *entry.arbiter;
    config.validate();

    Scenario scenario =
        Scenario::on(config)
            .scua(make_autobench(Autobench::kCacheb, 0x0100'0000,
                                 entry.iterations, 9))
            .rsk_contenders(OpKind::kLoad)
            .runs(entry.runs.value_or(40 * entry.block_size))
            .seed(entry.seed);
    if (entry.max_start_delay.has_value()) {
        scenario.max_start_delay(*entry.max_start_delay);
    }

    PwcetSpec spec;
    spec.block_size = entry.block_size;
    if (!entry.exceedance.empty()) spec.exceedance = entry.exceedance;
    return BatchItem{entry.name, std::move(scenario), std::move(spec)};
}

}  // namespace

std::vector<BatchItem> parse_batch_spec(const std::string& text) {
    std::vector<SpecEntry> entries;
    std::istringstream stream(text);
    std::string raw;
    std::size_t line_no = 0;
    while (std::getline(stream, raw)) {
        ++line_no;
        const std::string_view line = trim(raw);
        if (line.empty() || line.front() == '#') continue;
        if (line.front() == '[') {
            if (line.back() != ']') fail(line_no, "unterminated '['");
            const std::string_view inner =
                trim(line.substr(1, line.size() - 2));
            constexpr std::string_view kPrefix = "scenario";
            if (inner.substr(0, kPrefix.size()) != kPrefix ||
                inner.size() == kPrefix.size() ||
                (inner[kPrefix.size()] != ' ' &&
                 inner[kPrefix.size()] != '\t')) {
                fail(line_no, "expected [scenario NAME]");
            }
            const std::string_view name = trim(inner.substr(kPrefix.size()));
            if (!safe_name(name)) {
                fail(line_no, "scenario name must be non-empty and use "
                              "only [A-Za-z0-9._-]");
            }
            for (const SpecEntry& e : entries) {
                if (e.name == name) {
                    fail(line_no, "duplicate scenario name '" +
                                      std::string(name) + "'");
                }
            }
            SpecEntry entry;
            entry.name = std::string(name);
            entry.line = line_no;
            entries.push_back(std::move(entry));
            continue;
        }
        const std::size_t eq = line.find('=');
        if (eq == std::string_view::npos) {
            fail(line_no, "expected 'key = value' or [scenario NAME]");
        }
        if (entries.empty()) {
            fail(line_no, "key outside any [scenario] block");
        }
        apply_key(entries.back(), trim(line.substr(0, eq)),
                  trim(line.substr(eq + 1)), line_no);
    }
    if (entries.empty()) {
        throw std::invalid_argument(
            "batch spec declares no [scenario] blocks");
    }

    std::vector<BatchItem> items;
    items.reserve(entries.size());
    for (const SpecEntry& entry : entries) {
        items.push_back(materialize(entry));
    }
    return items;
}

}  // namespace rrb::sched
