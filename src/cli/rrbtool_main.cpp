#include <iostream>
#include <string>
#include <vector>

#include "cli/cli.h"

int main(int argc, char** argv) {
    const std::vector<std::string> args(argv + 1, argv + argc);
    return rrb::cli::run(args, std::cout, std::cerr);
}
