#include "cli/cli.h"

#include <cstdint>
#include <optional>
#include <ostream>
#include <sstream>
#include <string>

#include "core/rrb.h"
#include "sim/contract.h"

namespace rrb::cli {

namespace {

struct ParsedFlags {
    std::optional<CoreId> cores;
    std::optional<Cycle> lbus;
    bool variant = false;
    std::uint32_t k_max = 70;
    std::uint64_t iterations = 40;
    std::uint32_t nop_latency = 1;
    bool store_span = false;
    std::size_t runs = 20;
    std::uint64_t seed = 1;
    std::size_t jobs = 0;  ///< 0 = hardware concurrency
    std::string csv_path;
    std::string error;  ///< non-empty when parsing failed
};

std::optional<std::uint64_t> parse_number(const std::string& text) {
    if (text.empty()) return std::nullopt;
    std::uint64_t value = 0;
    for (const char c : text) {
        if (c < '0' || c > '9') return std::nullopt;
        value = value * 10 + static_cast<std::uint64_t>(c - '0');
    }
    return value;
}

ParsedFlags parse_flags(const std::vector<std::string>& args,
                        std::size_t first) {
    ParsedFlags flags;
    for (std::size_t i = first; i < args.size(); ++i) {
        const std::string& arg = args[i];
        auto next_number = [&](const char* name)
            -> std::optional<std::uint64_t> {
            if (i + 1 >= args.size()) {
                flags.error = std::string(name) + " needs a value";
                return std::nullopt;
            }
            const auto value = parse_number(args[++i]);
            if (!value) flags.error = std::string(name) + " needs a number";
            return value;
        };
        if (arg == "--cores") {
            if (const auto v = next_number("--cores")) {
                flags.cores = static_cast<CoreId>(*v);
            }
        } else if (arg == "--lbus") {
            if (const auto v = next_number("--lbus")) flags.lbus = *v;
        } else if (arg == "--var") {
            flags.variant = true;
        } else if (arg == "--kmax") {
            if (const auto v = next_number("--kmax")) {
                flags.k_max = static_cast<std::uint32_t>(*v);
            }
        } else if (arg == "--iterations") {
            if (const auto v = next_number("--iterations")) {
                flags.iterations = *v;
            }
        } else if (arg == "--nop-latency") {
            if (const auto v = next_number("--nop-latency")) {
                flags.nop_latency = static_cast<std::uint32_t>(*v);
            }
        } else if (arg == "--store-span") {
            flags.store_span = true;
        } else if (arg == "--runs") {
            if (const auto v = next_number("--runs")) {
                flags.runs = static_cast<std::size_t>(*v);
            }
        } else if (arg == "--seed") {
            if (const auto v = next_number("--seed")) flags.seed = *v;
        } else if (arg == "--jobs") {
            if (const auto v = next_number("--jobs")) {
                flags.jobs = static_cast<std::size_t>(*v);
            }
        } else if (arg == "--csv") {
            if (i + 1 >= args.size()) {
                flags.error = "--csv needs a path";
            } else {
                flags.csv_path = args[++i];
            }
        } else {
            flags.error = "unknown flag: " + arg;
        }
        if (!flags.error.empty()) break;
    }
    return flags;
}

MachineConfig build_config(const ParsedFlags& flags) {
    if (flags.cores || flags.lbus) {
        return MachineConfig::scaled(flags.cores.value_or(4),
                                     flags.lbus.value_or(9));
    }
    return flags.variant ? MachineConfig::ngmp_var()
                         : MachineConfig::ngmp_ref();
}

UbdEstimatorOptions build_options(const ParsedFlags& flags) {
    UbdEstimatorOptions opt;
    opt.k_max = flags.k_max;
    opt.unroll = 8;
    opt.rsk_iterations = flags.iterations;
    opt.nop_latency = flags.nop_latency;
    return opt;
}

int cmd_estimate(const ParsedFlags& flags, std::ostream& out) {
    const MachineConfig config = build_config(flags);
    const UbdEstimatorOptions options = build_options(flags);

    if (flags.store_span) {
        const CrossCheckedEstimate e =
            estimate_ubd_cross_checked(config, options);
        out << "load path : "
            << (e.load_path.found ? std::to_string(e.load_path.ubd)
                                  : std::string("not found"))
            << " (period " << e.load_path.period_k << ", votes "
            << e.load_path.confidence.detector_votes << "/4)\n";
        out << "store path: "
            << (e.store_path.found ? std::to_string(e.store_path.ubd)
                                   : std::string("not found"))
            << "\n";
        out << "cross-check: " << (e.agree ? "AGREE" : "DISAGREE") << "\n";
        if (e.agree) out << "ubd = " << e.ubd << " cycles\n";
        return e.agree ? 0 : 2;
    }

    const UbdEstimate e = estimate_ubd(config, options);
    if (!e.found) {
        out << "no saw-tooth period found\n";
        for (const auto& w : e.confidence.warnings) {
            out << "warning: " << w << "\n";
        }
        return 2;
    }
    out << "ubd = " << e.ubd << " cycles (period " << e.period_k
        << " nop steps, delta_nop = " << e.confidence.nop.delta_nop
        << ", votes " << e.confidence.detector_votes << "/4, saturation "
        << static_cast<int>(100.0 * e.confidence.saturation_utilization)
        << "%)\n";
    for (const auto& w : e.confidence.warnings) {
        out << "warning: " << w << "\n";
    }
    if (!flags.csv_path.empty()) {
        const std::vector<std::string> names = {"dbus", "et_isolation",
                                                "et_contention"};
        const std::vector<std::vector<double>> cols = {
            e.dbus, e.et_isolation, e.et_contention};
        if (!write_text_file(flags.csv_path, to_csv(names, cols))) {
            out << "warning: could not write " << flags.csv_path << "\n";
        } else {
            out << "sweep written to " << flags.csv_path << "\n";
        }
    }
    return 0;
}

int cmd_calibrate(const ParsedFlags& flags, std::ostream& out) {
    const MachineConfig config = build_config(flags);
    const NopCalibration cal =
        calibrate_delta_nop(config, 2048, 64, flags.nop_latency);
    out << "delta_nop = " << cal.delta_nop << " cycles ("
        << cal.nops_executed << " nops in " << cal.exec_time
        << " cycles; rounded " << cal.rounded() << ", residual "
        << cal.residual() << ")\n";
    return 0;
}

int cmd_baseline(const ParsedFlags& flags, std::ostream& out) {
    const MachineConfig config = build_config(flags);
    const NaiveUbdm naive =
        naive_ubdm_rsk_vs_rsk(config, OpKind::kLoad, flags.iterations);
    out << "naive rsk-vs-rsk: ubdm(mean det/nr) = " << naive.ubdm_mean
        << ", ubdm(max observed delay) = " << naive.ubdm_max_gamma
        << ", true ubd = " << config.ubd_analytic() << "\n";
    return 0;
}

int cmd_campaign(const ParsedFlags& flags, std::ostream& out) {
    RRB_REQUIRE(flags.runs >= 1, "--runs must be at least 1");
    const MachineConfig config = build_config(flags);
    const Program scua =
        make_autobench(Autobench::kCacheb, 0x0100'0000, flags.iterations, 9);

    HwmCampaignOptions options;
    options.runs = flags.runs;
    options.seed = flags.seed;

    engine::ProgressCounter progress;
    engine::EngineOptions eng;
    eng.jobs = flags.jobs;
    eng.progress = &progress;
    const std::size_t jobs = engine::effective_jobs(eng.jobs, options.runs);

    const HwmCampaignResult hwm = engine::run_hwm_campaign_parallel(
        config, scua, make_rsk_contenders(config, OpKind::kLoad), options,
        eng);

    const Cycle etb = hwm.et_isolation + hwm.nr * config.ubd_analytic();
    const bool bounded = hwm.high_water_mark <= etb;
    out << "campaign: " << options.runs << " runs on " << jobs
        << " jobs, seed " << options.seed << " ("
        << engine::render_progress(progress) << ")\n";
    out << "et_isol = " << hwm.et_isolation << " cycles, nr = " << hwm.nr
        << "\n";
    out << "hwm = " << hwm.high_water_mark << ", lwm = "
        << hwm.low_water_mark << ", hwm/req = "
        << hwm.hwm_slowdown_per_request() << " (ubd = "
        << config.ubd_analytic() << ")\n";
    out << "etb = " << etb << ", bounded: " << (bounded ? "yes" : "NO")
        << ", margin = "
        << (bounded ? etb - hwm.high_water_mark : Cycle{0}) << " cycles\n";
    return bounded ? 0 : 2;
}

int cmd_sweep(const ParsedFlags& flags, std::ostream& out) {
    const MachineConfig config = build_config(flags);
    const UbdEstimate e = estimate_ubd(config, build_options(flags));
    const std::vector<std::string> names = {"dbus"};
    const std::vector<std::vector<double>> cols = {e.dbus};
    const std::string csv = to_csv(names, cols);
    if (flags.csv_path.empty()) {
        out << csv;
    } else if (write_text_file(flags.csv_path, csv)) {
        out << "sweep written to " << flags.csv_path << "\n";
    } else {
        out << "error: could not write " << flags.csv_path << "\n";
        return 2;
    }
    return 0;
}

}  // namespace

std::string usage() {
    return "rrbtool — measurement-based contention bounds for round-robin "
           "buses\n"
           "\n"
           "usage: rrbtool <command> [flags]\n"
           "\n"
           "commands:\n"
           "  estimate   run the rsk-nop methodology and report ubd\n"
           "  calibrate  measure delta_nop with the all-nop kernel\n"
           "  baseline   run the naive rsk-vs-rsk measurement\n"
           "  campaign   run a randomized HWM campaign vs the ETB bound\n"
           "  sweep      dump the dbus(k) series as CSV\n"
           "  help       show this text\n"
           "\n"
           "platform flags:\n"
           "  --cores N --lbus L   scaled platform (default: NGMP ref)\n"
           "  --var                NGMP variant (DL1 latency 4)\n"
           "\n"
           "measurement flags:\n"
           "  --kmax K             nop sweep range (default 70)\n"
           "  --iterations I       rsk loop iterations (default 40)\n"
           "  --nop-latency L      slow-nop platforms (default 1)\n"
           "  --store-span         cross-check with the store-buffer path\n"
           "  --csv FILE           write the sweep data to FILE\n"
           "\n"
           "campaign flags:\n"
           "  --runs R             campaign runs (default 20)\n"
           "  --seed S             campaign root seed (default 1)\n"
           "  --jobs N             parallel jobs; 0 = hardware "
           "concurrency\n"
           "                       (results are identical for every N)\n";
}

int run(const std::vector<std::string>& args, std::ostream& out,
        std::ostream& err) {
    if (args.empty() || args[0] == "help" || args[0] == "--help") {
        out << usage();
        return args.empty() ? 1 : 0;
    }
    const std::string& command = args[0];
    const ParsedFlags flags = parse_flags(args, 1);
    if (!flags.error.empty()) {
        err << "error: " << flags.error << "\n\n" << usage();
        return 1;
    }

    try {
        if (command == "estimate") return cmd_estimate(flags, out);
        if (command == "calibrate") return cmd_calibrate(flags, out);
        if (command == "baseline") return cmd_baseline(flags, out);
        if (command == "campaign") return cmd_campaign(flags, out);
        if (command == "sweep") return cmd_sweep(flags, out);
    } catch (const std::invalid_argument& e) {
        err << "error: " << e.what() << "\n";
        return 1;
    }
    err << "error: unknown command '" << command << "'\n\n" << usage();
    return 1;
}

}  // namespace rrb::cli
