#include "cli/cli.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <limits>
#include <mutex>
#include <optional>
#include <ostream>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "core/rrb.h"
#include "fault/fault.h"
#include "obs/heartbeat.h"
#include "sched/batch_spec.h"
#include "sched/campaign_scheduler.h"
#include "obs/report.h"
#include "obs/telemetry.h"
#include "obs/trace_export.h"
#include "sim/contract.h"

namespace rrb::cli {

namespace {

struct ParsedFlags {
    std::optional<CoreId> cores;
    std::optional<Cycle> lbus;
    bool variant = false;
    std::uint32_t k_max = 70;
    std::uint64_t iterations = 40;
    std::uint32_t nop_latency = 1;
    bool store_span = false;
    std::optional<std::size_t> runs;  ///< default is per command
    std::uint64_t seed = 1;
    std::size_t jobs = 0;  ///< 0 = hardware concurrency
    std::size_t block_size = 50;
    std::vector<double> exceedances;  ///< empty = pwcet defaults
    std::vector<CoreId> cores_axis;
    std::vector<Cycle> lbus_axis;
    std::vector<ArbiterKind> arbiter_axis;
    std::optional<SliceSpec> shard;  ///< --shard i/N
    std::string checkpoint_out;
    std::string out_dir = ".";      ///< --out-dir: batch checkpoint dir
    std::string telemetry_out;      ///< --telemetry: JSON run report path
    std::string trace_out;          ///< --trace: Chrome-trace JSON path
    std::uint64_t heartbeat = 0;    ///< --heartbeat: seconds, 0 = off
    /// --max-regression-pct: telemetry-diff gate threshold; disengaged =
    /// report-only (never exit 3).
    std::optional<double> max_regression_pct;
    std::vector<std::string> inputs;  ///< positional args (merge files)
    std::string csv_path;
    std::string error;  ///< non-empty when parsing failed
};

/// Which flags each command accepts. Parsing rejects — with a non-zero
/// exit naming the flag — both flags nothing knows and flags that
/// exist but do not apply to the command at hand: a silently ignored
/// `calibrate --runs 5` would report numbers for a campaign that never
/// ran.
struct CommandSpec {
    std::string_view name;
    std::vector<std::string_view> flags;
    /// Accepts positional (non-flag) arguments — checkpoint files for
    /// `merge`. Everywhere else a stray positional fails the parse.
    bool takes_files = false;
};

const std::vector<CommandSpec>& command_specs() {
    static const std::vector<CommandSpec> specs = {
        {"estimate",
         {"--cores", "--lbus", "--var", "--kmax", "--iterations",
          "--nop-latency", "--store-span", "--csv"}},
        {"calibrate", {"--cores", "--lbus", "--var", "--nop-latency"}},
        {"baseline", {"--cores", "--lbus", "--var", "--iterations"}},
        {"isolation",
         {"--cores", "--lbus", "--var", "--iterations", "--telemetry",
          "--heartbeat"}},
        {"contention",
         {"--cores", "--lbus", "--var", "--iterations", "--telemetry",
          "--heartbeat"}},
        {"slowdown",
         {"--cores", "--lbus", "--var", "--iterations", "--telemetry",
          "--heartbeat"}},
        {"campaign",
         {"--cores", "--lbus", "--var", "--runs", "--seed", "--jobs",
          "--iterations", "--telemetry", "--heartbeat", "--trace"}},
        {"attribution",
         {"--cores", "--lbus", "--var", "--runs", "--seed", "--jobs",
          "--iterations", "--telemetry", "--heartbeat", "--trace"}},
        {"pwcet",
         {"--cores", "--lbus", "--var", "--runs", "--seed", "--jobs",
          "--iterations", "--block-size", "--exceedance", "--shard",
          "--checkpoint-out", "--telemetry", "--heartbeat", "--trace"}},
        {"batch",
         {"--out-dir", "--jobs", "--telemetry", "--heartbeat"},
         /*takes_files=*/true},
        {"merge", {"--telemetry"}, /*takes_files=*/true},
        {"whitebox",
         {"--cores", "--lbus", "--var", "--runs", "--seed", "--jobs",
          "--iterations", "--shard", "--checkpoint-out", "--telemetry",
          "--heartbeat", "--trace"}},
        {"merge-whitebox", {"--telemetry"}, /*takes_files=*/true},
        {"sweep",
         {"--cores", "--lbus", "--var", "--kmax", "--iterations", "--csv"}},
        {"sweep-pwcet",
         {"--var", "--cores-axis", "--lbus-axis", "--arbiter-axis",
          "--runs", "--seed", "--jobs", "--iterations", "--block-size",
          "--exceedance", "--telemetry", "--heartbeat", "--trace"}},
        {"telemetry-diff", {"--max-regression-pct"}, /*takes_files=*/true},
    };
    return specs;
}

const CommandSpec* find_command(std::string_view name) {
    for (const CommandSpec& spec : command_specs()) {
        if (spec.name == name) return &spec;
    }
    return nullptr;
}

std::optional<std::uint64_t> parse_number(const std::string& text) {
    if (text.empty()) return std::nullopt;
    std::uint64_t value = 0;
    for (const char c : text) {
        if (c < '0' || c > '9') return std::nullopt;
        value = value * 10 + static_cast<std::uint64_t>(c - '0');
    }
    return value;
}

/// Splits "a,b,c" into items. An empty text yields no items; a
/// trailing comma yields a trailing empty item (getline would drop it,
/// and "2," silently becoming {"2"} is exactly the kind of half-parsed
/// input the flag validators exist to reject).
std::vector<std::string> split_list(const std::string& text) {
    std::vector<std::string> items;
    std::string item;
    std::istringstream stream(text);
    while (std::getline(stream, item, ',')) items.push_back(item);
    if (!text.empty() && text.back() == ',') items.emplace_back();
    return items;
}

/// Comma-separated number list ("2,4,8"), each value capped at `max` —
/// a value that would truncate on the way into a narrower config field
/// must fail the parse, not run a grid the user never asked for. On
/// failure `values` is empty and `error` says which item and why.
struct NumberListParse {
    std::vector<std::uint64_t> values;
    std::string error;
};

NumberListParse parse_number_list(const std::string& text,
                                  std::uint64_t max) {
    NumberListParse result;
    const std::vector<std::string> items = split_list(text);
    if (items.empty()) {
        result.error = "needs a comma-separated list of numbers";
        return result;
    }
    for (const std::string& item : items) {
        const auto value = parse_number(item);
        if (!value) {
            result.values.clear();
            result.error = "has a non-number item '" + item + "'";
            return result;
        }
        if (*value > max) {
            result.values.clear();
            result.error = "value " + item + " is out of range (max " +
                           std::to_string(max) + ")";
            return result;
        }
        result.values.push_back(*value);
    }
    return result;
}

/// Strict full-string double parse ("1e-9", "0.001"). No partial reads.
std::optional<double> parse_probability(const std::string& text) {
    if (text.empty()) return std::nullopt;
    char* end = nullptr;
    const double value = std::strtod(text.c_str(), &end);
    if (end != text.c_str() + text.size()) return std::nullopt;
    if (!(value > 0.0 && value < 1.0)) return std::nullopt;
    return value;
}

/// Strict full-string non-negative percentage ("5", "2.5", "0").
std::optional<double> parse_percentage(const std::string& text) {
    if (text.empty()) return std::nullopt;
    char* end = nullptr;
    const double value = std::strtod(text.c_str(), &end);
    if (end != text.c_str() + text.size()) return std::nullopt;
    if (!(value >= 0.0)) return std::nullopt;
    return value;
}

/// "--shard i/N": run slice i of N (0-based, i < N). Half-typed or
/// out-of-range specs fail the parse with a message naming the flag —
/// "--shard 4/4" silently running the wrong slice would poison a whole
/// distributed campaign.
std::optional<SliceSpec> parse_shard(const std::string& text,
                                     std::string& error) {
    const std::size_t slash = text.find('/');
    if (slash == std::string::npos) {
        error = "--shard needs the form i/N, e.g. 0/4";
        return std::nullopt;
    }
    const auto index = parse_number(text.substr(0, slash));
    const auto count = parse_number(text.substr(slash + 1));
    if (!index || !count) {
        error = "--shard needs the form i/N, e.g. 0/4";
        return std::nullopt;
    }
    if (*count == 0) {
        error = "--shard slice count must be at least 1";
        return std::nullopt;
    }
    if (*index >= *count) {
        error = "--shard index " + std::to_string(*index) +
                " must be below the slice count " + std::to_string(*count);
        return std::nullopt;
    }
    return SliceSpec{static_cast<std::size_t>(*index),
                     static_cast<std::size_t>(*count)};
}

std::optional<ArbiterKind> parse_arbiter(const std::string& text) {
    if (text == "rr") return ArbiterKind::kRoundRobin;
    if (text == "tdma") return ArbiterKind::kTdma;
    if (text == "wrr") return ArbiterKind::kWeightedRoundRobin;
    if (text == "fixed") return ArbiterKind::kFixedPriority;
    return std::nullopt;
}

const char* arbiter_name(ArbiterKind kind) {
    switch (kind) {
        case ArbiterKind::kRoundRobin: return "rr";
        case ArbiterKind::kTdma: return "tdma";
        case ArbiterKind::kWeightedRoundRobin: return "wrr";
        case ArbiterKind::kFixedPriority: return "fixed";
    }
    return "?";
}

ParsedFlags parse_flags(const std::vector<std::string>& args,
                        std::size_t first, const CommandSpec& command) {
    ParsedFlags flags;
    const auto allowed = [&command](std::string_view flag) {
        return std::find(command.flags.begin(), command.flags.end(),
                         flag) != command.flags.end();
    };
    for (std::size_t i = first; i < args.size(); ++i) {
        const std::string& arg = args[i];
        auto next_number = [&](const char* name)
            -> std::optional<std::uint64_t> {
            if (i + 1 >= args.size()) {
                flags.error = std::string(name) + " needs a value";
                return std::nullopt;
            }
            const auto value = parse_number(args[++i]);
            if (!value) flags.error = std::string(name) + " needs a number";
            return value;
        };
        auto next_number_list = [&](const char* name, std::uint64_t max)
            -> std::optional<std::vector<std::uint64_t>> {
            if (i + 1 >= args.size()) {
                flags.error = std::string(name) +
                              " needs a comma-separated list of numbers";
                return std::nullopt;
            }
            NumberListParse parsed = parse_number_list(args[++i], max);
            if (!parsed.error.empty()) {
                flags.error = std::string(name) + " " + parsed.error;
                return std::nullopt;
            }
            return std::move(parsed.values);
        };
        if (arg.empty() || arg[0] != '-') {
            // Positional argument: a checkpoint file for `merge`, an
            // error anywhere else (a mistyped flag value would
            // otherwise configure an experiment the user never asked
            // for).
            if (command.takes_files) {
                flags.inputs.push_back(arg);
                continue;
            }
            flags.error = "unexpected argument '" + arg + "'";
            break;
        }
        if (!allowed(arg)) {
            // One message when the flag exists for another command,
            // another when nothing knows it — both fail the parse.
            bool known = false;
            for (const CommandSpec& spec : command_specs()) {
                if (std::find(spec.flags.begin(), spec.flags.end(), arg) !=
                    spec.flags.end()) {
                    known = true;
                    break;
                }
            }
            flags.error = known
                              ? arg + " does not apply to the '" +
                                    std::string(command.name) + "' command"
                              : "unknown flag: " + arg;
            break;
        }
        if (arg == "--cores") {
            if (const auto v = next_number("--cores")) {
                flags.cores = static_cast<CoreId>(*v);
            }
        } else if (arg == "--lbus") {
            if (const auto v = next_number("--lbus")) flags.lbus = *v;
        } else if (arg == "--var") {
            flags.variant = true;
        } else if (arg == "--kmax") {
            if (const auto v = next_number("--kmax")) {
                flags.k_max = static_cast<std::uint32_t>(*v);
            }
        } else if (arg == "--iterations") {
            if (const auto v = next_number("--iterations")) {
                flags.iterations = *v;
            }
        } else if (arg == "--nop-latency") {
            if (const auto v = next_number("--nop-latency")) {
                flags.nop_latency = static_cast<std::uint32_t>(*v);
            }
        } else if (arg == "--store-span") {
            flags.store_span = true;
        } else if (arg == "--runs") {
            if (const auto v = next_number("--runs")) {
                flags.runs = static_cast<std::size_t>(*v);
            }
        } else if (arg == "--seed") {
            if (const auto v = next_number("--seed")) flags.seed = *v;
        } else if (arg == "--jobs") {
            if (const auto v = next_number("--jobs")) {
                flags.jobs = static_cast<std::size_t>(*v);
            }
        } else if (arg == "--block-size") {
            if (const auto v = next_number("--block-size")) {
                flags.block_size = static_cast<std::size_t>(*v);
            }
        } else if (arg == "--shard") {
            if (i + 1 >= args.size()) {
                flags.error = "--shard needs a value like 0/4";
            } else {
                flags.shard = parse_shard(args[++i], flags.error);
            }
        } else if (arg == "--checkpoint-out") {
            if (i + 1 >= args.size()) {
                flags.error = "--checkpoint-out needs a path";
            } else {
                flags.checkpoint_out = args[++i];
            }
        } else if (arg == "--out-dir") {
            if (i + 1 >= args.size()) {
                flags.error = "--out-dir needs a path";
            } else {
                flags.out_dir = args[++i];
            }
        } else if (arg == "--telemetry") {
            if (i + 1 >= args.size()) {
                flags.error = "--telemetry needs a path";
            } else {
                flags.telemetry_out = args[++i];
            }
        } else if (arg == "--trace") {
            if (i + 1 >= args.size()) {
                flags.error = "--trace needs a path";
            } else {
                flags.trace_out = args[++i];
            }
        } else if (arg == "--max-regression-pct") {
            if (i + 1 >= args.size()) {
                flags.error = "--max-regression-pct needs a value";
            } else if (const auto pct = parse_percentage(args[++i])) {
                flags.max_regression_pct = *pct;
            } else {
                flags.error = "--max-regression-pct needs a non-negative "
                              "percentage, e.g. 5 or 2.5";
            }
        } else if (arg == "--heartbeat") {
            if (const auto v = next_number("--heartbeat")) {
                if (*v == 0) {
                    flags.error =
                        "--heartbeat needs at least 1 (seconds)";
                } else {
                    flags.heartbeat = *v;
                }
            }
        } else if (arg == "--exceedance") {
            if (i + 1 >= args.size()) {
                flags.error = "--exceedance needs a value";
            } else if (const auto p = parse_probability(args[++i])) {
                flags.exceedances.push_back(*p);
            } else {
                flags.error =
                    "--exceedance needs a probability in (0,1), e.g. 1e-9";
            }
        } else if (arg == "--csv") {
            if (i + 1 >= args.size()) {
                flags.error = "--csv needs a path";
            } else {
                flags.csv_path = args[++i];
            }
        } else if (arg == "--cores-axis") {
            if (const auto vs = next_number_list(
                    "--cores-axis", std::numeric_limits<CoreId>::max())) {
                for (const std::uint64_t v : *vs) {
                    flags.cores_axis.push_back(static_cast<CoreId>(v));
                }
            }
        } else if (arg == "--lbus-axis") {
            if (const auto vs = next_number_list(
                    "--lbus-axis", std::numeric_limits<Cycle>::max())) {
                for (const std::uint64_t v : *vs) {
                    flags.lbus_axis.push_back(static_cast<Cycle>(v));
                }
            }
        } else if (arg == "--arbiter-axis") {
            if (i + 1 >= args.size()) {
                flags.error = "--arbiter-axis needs a comma-separated list "
                              "of rr,tdma,wrr,fixed";
            } else {
                const std::vector<std::string> items =
                    split_list(args[++i]);
                for (const std::string& item : items) {
                    const auto kind = parse_arbiter(item);
                    if (!kind) {
                        flags.error = "--arbiter-axis: unknown arbiter '" +
                                      item + "' (rr, tdma, wrr, fixed)";
                        break;
                    }
                    flags.arbiter_axis.push_back(*kind);
                }
                if (flags.error.empty() && items.empty()) {
                    flags.error = "--arbiter-axis needs a comma-separated "
                                  "list of rr,tdma,wrr,fixed";
                }
            }
        } else {
            flags.error = "unknown flag: " + arg;
        }
        if (!flags.error.empty()) break;
    }
    return flags;
}

/// Live progress for long campaigns: a background thread polls the
/// ProgressCounter and prints a status line to `err` until destruction.
/// Two modes: by default one line per 5 percentage points (long
/// campaigns only — short ones stay silent so command output, which the
/// determinism tests diff, is deterministic); with `--heartbeat S` one
/// line every S seconds regardless of campaign length. Both render
/// through obs::HeartbeatMeter, so every line carries runs/sec and an
/// ETA, plus worker utilization when telemetry is enabled.
class ProgressReporter {
public:
    /// Campaigns below this many runs finish faster than a human can
    /// read a progress line; don't emit any (heartbeat mode excepted —
    /// the user explicitly asked for a pulse).
    static constexpr std::size_t kMinRuns = 10'000;

    ProgressReporter(const engine::ProgressCounter& progress,
                     std::ostream& err, std::size_t total_runs,
                     std::uint64_t heartbeat_sec = 0,
                     std::size_t workers = 0) {
        if (heartbeat_sec == 0 && total_runs < kMinRuns) return;
        thread_ = std::thread([this, &progress, &err, heartbeat_sec,
                               workers] {
            // Threshold mode prints one line per 5 percentage points
            // (<= 20 lines however long the campaign runs), and is
            // quiet until the campaign announces its batch — the
            // zero-initialized counter would render "0/0 (100%)" during
            // the isolation run. The meter is primed on every poll so
            // its rate window spans polls, not prints.
            obs::HeartbeatMeter meter(workers);
            std::size_t next_percent = 5;
            const auto interval =
                heartbeat_sec > 0
                    ? std::chrono::milliseconds(1000 * heartbeat_sec)
                    : std::chrono::milliseconds(500);
            std::unique_lock<std::mutex> lock(mutex_);
            while (!done_cv_.wait_for(lock, interval,
                                      [this] { return stopping_; })) {
                if (progress.total() == 0) continue;
                const std::string line = meter.sample(progress);
                if (heartbeat_sec > 0) {
                    err << line << "\n";
                    continue;
                }
                const std::size_t percent = static_cast<std::size_t>(
                    100.0 * progress.fraction());
                if (percent >= next_percent) {
                    err << line << "\n";
                    next_percent = percent + 5;
                }
            }
        });
    }

    ~ProgressReporter() {
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            stopping_ = true;
        }
        done_cv_.notify_all();
        if (thread_.joinable()) thread_.join();
    }

    ProgressReporter(const ProgressReporter&) = delete;
    ProgressReporter& operator=(const ProgressReporter&) = delete;

private:
    std::mutex mutex_;
    std::condition_variable done_cv_;
    bool stopping_ = false;
    std::thread thread_;
};

/// Batch counterpart of ProgressReporter: renders the aggregate line
/// plus one per-scenario chip through HeartbeatMeter's multi-campaign
/// form, so concurrent heterogeneous campaigns report cleanly on one
/// stderr line instead of interleaving.
class BatchReporter {
public:
    BatchReporter(const sched::BatchProgress& monitor, std::ostream& err,
                  std::uint64_t heartbeat_sec, std::size_t workers) {
        if (heartbeat_sec == 0 &&
            monitor.aggregate().total() < ProgressReporter::kMinRuns) {
            return;
        }
        thread_ = std::thread([this, &monitor, &err, heartbeat_sec,
                               workers] {
            obs::HeartbeatMeter meter(workers);
            const std::vector<obs::CampaignSample> campaigns =
                monitor.samples();
            std::size_t next_percent = 5;
            const auto interval =
                heartbeat_sec > 0
                    ? std::chrono::milliseconds(1000 * heartbeat_sec)
                    : std::chrono::milliseconds(500);
            std::unique_lock<std::mutex> lock(mutex_);
            while (!done_cv_.wait_for(lock, interval,
                                      [this] { return stopping_; })) {
                const std::string line =
                    meter.sample(monitor.aggregate(), campaigns);
                if (heartbeat_sec > 0) {
                    err << line << "\n";
                    continue;
                }
                const std::size_t percent = static_cast<std::size_t>(
                    100.0 * monitor.aggregate().fraction());
                if (percent >= next_percent) {
                    err << line << "\n";
                    next_percent = percent + 5;
                }
            }
        });
    }

    ~BatchReporter() {
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            stopping_ = true;
        }
        done_cv_.notify_all();
        if (thread_.joinable()) thread_.join();
    }

    BatchReporter(const BatchReporter&) = delete;
    BatchReporter& operator=(const BatchReporter&) = delete;

private:
    std::mutex mutex_;
    std::condition_variable done_cv_;
    bool stopping_ = false;
    std::thread thread_;
};

/// Arms the telemetry registry for one campaign command when
/// --telemetry or --heartbeat asked for it, and writes the JSON run
/// report at the end. Strictly out-of-band: nothing here touches the
/// command's stdout, so reports stay byte-identical with telemetry on
/// or off. The registry is reset on arm (each command's report covers
/// exactly that command) and disabled on finish (embedding callers —
/// the CLI tests run many commands in-process — never leak state).
class TelemetrySession {
public:
    TelemetrySession(const ParsedFlags& flags, std::string command)
        : path_(flags.telemetry_out),
          trace_path_(flags.trace_out),
          active_(!flags.telemetry_out.empty() || flags.heartbeat > 0 ||
                  !flags.trace_out.empty()),
          command_(std::move(command)) {
        if (!active_) return;
        obs::TelemetryRegistry& registry =
            obs::TelemetryRegistry::instance();
        registry.reset();
        registry.enable();
        begin_ns_ = registry.now_ns();
    }

    ~TelemetrySession() {
        // A command that threw past finish() must not leave the
        // registry armed for the next in-process command.
        if (active_) obs::TelemetryRegistry::instance().disable();
    }

    TelemetrySession(const TelemetrySession&) = delete;
    TelemetrySession& operator=(const TelemetrySession&) = delete;

    void campaign(const obs::CampaignInfo& info) { info_ = info; }

    /// Campaign-summed attribution for the report's "attribution"
    /// field (null unless the command ran the profiler).
    void attribution(obs::AttributionSummary summary) {
        attribution_ = std::move(summary);
        has_attribution_ = true;
    }

    /// Snapshots counters and spans, disables the registry, and — when
    /// --telemetry named a file — writes the run report. A failed write
    /// warns on `err` but does not change the command's exit code: the
    /// campaign itself succeeded.
    void finish(std::uint64_t jobs, std::ostream& err) {
        if (!active_) return;
        obs::TelemetryRegistry& registry =
            obs::TelemetryRegistry::instance();
        obs::RunReportInfo report;
        report.command = command_;
        report.campaign = info_;
        report.jobs = jobs;
        report.wall_ns = registry.now_ns() - begin_ns_;
        report.has_attribution = has_attribution_;
        report.attribution = attribution_;
        const obs::CounterSnapshot counters = registry.counters();
        // The span timeline outlives finish() for write_trace().
        spans_ = registry.spans();
        registry.disable();
        active_ = false;
        if (path_.empty()) return;
        if (!obs::write_run_report(path_, report, counters, spans_)) {
            err << "warning: could not write telemetry report to "
                << path_ << "\n";
        }
    }

    /// Writes the Chrome-trace timeline when --trace asked for one:
    /// the span hierarchy finish() snapshotted plus a sampled machine
    /// timeline — run 0 re-executed on a fresh machine with the Tracer
    /// armed. Call after finish(): the registry is disabled by then, so
    /// the extra run touches neither stdout nor the report's counters.
    void write_trace(const Scenario& scenario, std::ostream& err) {
        if (trace_path_.empty()) return;
        Machine machine(scenario.config());
        machine.tracer().enable();
        std::uint64_t loaded = 0;
        (void)detail::execute_campaign_run(
            machine, loaded, scenario.scua_program(),
            scenario.contender_programs(), scenario.run_protocol(),
            /*run_index=*/0);
        if (!obs::write_chrome_trace(trace_path_, spans_,
                                     machine.tracer().events(),
                                     scenario.config().num_cores)) {
            err << "warning: could not write trace to " << trace_path_
                << "\n";
        }
    }

private:
    std::string path_;
    std::string trace_path_;
    bool active_ = false;
    std::string command_;
    obs::CampaignInfo info_;
    bool has_attribution_ = false;
    obs::AttributionSummary attribution_;
    std::vector<obs::SpanRecord> spans_;
    std::uint64_t begin_ns_ = 0;
};

MachineConfig build_config(const ParsedFlags& flags) {
    if (flags.cores || flags.lbus) {
        return MachineConfig::scaled(flags.cores.value_or(4),
                                     flags.lbus.value_or(9));
    }
    return flags.variant ? MachineConfig::ngmp_var()
                         : MachineConfig::ngmp_ref();
}

UbdEstimatorOptions build_options(const ParsedFlags& flags) {
    UbdEstimatorOptions opt;
    opt.k_max = flags.k_max;
    opt.unroll = 8;
    opt.rsk_iterations = flags.iterations;
    opt.nop_latency = flags.nop_latency;
    return opt;
}

/// The campaign commands' shared scenario: the cache-buster scua on the
/// flag-built platform against load-rsk contenders, with the flags
/// mapped 1:1 onto the Scenario builders.
Scenario build_scenario(const ParsedFlags& flags,
                        std::size_t default_runs) {
    return Scenario::on(build_config(flags))
        .scua(make_autobench(Autobench::kCacheb, 0x0100'0000,
                             flags.iterations, 9))
        .rsk_contenders(OpKind::kLoad)
        .runs(flags.runs.value_or(default_runs))
        .seed(flags.seed);
}

/// Campaign identity for a whole (unsliced) campaign's run report:
/// the same plan the reduce engine will derive, pinned alongside the
/// scenario fingerprint and seed.
obs::CampaignInfo whole_campaign_info(const Scenario& scenario,
                                      std::uint64_t block_size) {
    const std::size_t runs = scenario.run_protocol().runs;
    const engine::ReducePlan plan = engine::ReducePlan::for_count(runs);
    obs::CampaignInfo info;
    info.scenario_fingerprint = scenario.fingerprint();
    info.seed = scenario.run_protocol().seed;
    info.total_runs = runs;
    info.block_size = block_size;
    info.shard_size = plan.shard_size;
    info.plan_shards = plan.shards();
    info.first_run = 0;
    info.last_run = runs;
    return info;
}

int cmd_estimate(const ParsedFlags& flags, std::ostream& out) {
    const MachineConfig config = build_config(flags);
    const UbdEstimatorOptions options = build_options(flags);

    if (flags.store_span) {
        const CrossCheckedEstimate e =
            estimate_ubd_cross_checked(config, options);
        out << "load path : "
            << (e.load_path.found ? std::to_string(e.load_path.ubd)
                                  : std::string("not found"))
            << " (period " << e.load_path.period_k << ", votes "
            << e.load_path.confidence.detector_votes << "/4)\n";
        out << "store path: "
            << (e.store_path.found ? std::to_string(e.store_path.ubd)
                                   : std::string("not found"))
            << "\n";
        out << "cross-check: " << (e.agree ? "AGREE" : "DISAGREE") << "\n";
        if (e.agree) out << "ubd = " << e.ubd << " cycles\n";
        return e.agree ? 0 : 2;
    }

    const UbdEstimate e = estimate_ubd(config, options);
    if (!e.found) {
        out << "no saw-tooth period found\n";
        for (const auto& w : e.confidence.warnings) {
            out << "warning: " << w << "\n";
        }
        return 2;
    }
    out << "ubd = " << e.ubd << " cycles (period " << e.period_k
        << " nop steps, delta_nop = " << e.confidence.nop.delta_nop
        << ", votes " << e.confidence.detector_votes << "/4, saturation "
        << static_cast<int>(100.0 * e.confidence.saturation_utilization)
        << "%)\n";
    for (const auto& w : e.confidence.warnings) {
        out << "warning: " << w << "\n";
    }
    if (!flags.csv_path.empty()) {
        const std::vector<std::string> names = {"dbus", "et_isolation",
                                                "et_contention"};
        const std::vector<std::vector<double>> cols = {
            e.dbus, e.et_isolation, e.et_contention};
        if (!write_text_file(flags.csv_path, to_csv(names, cols))) {
            out << "warning: could not write " << flags.csv_path << "\n";
        } else {
            out << "sweep written to " << flags.csv_path << "\n";
        }
    }
    return 0;
}

int cmd_calibrate(const ParsedFlags& flags, std::ostream& out) {
    const MachineConfig config = build_config(flags);
    const NopCalibration cal =
        calibrate_delta_nop(config, 2048, 64, flags.nop_latency);
    out << "delta_nop = " << cal.delta_nop << " cycles ("
        << cal.nops_executed << " nops in " << cal.exec_time
        << " cycles; rounded " << cal.rounded() << ", residual "
        << cal.residual() << ")\n";
    return 0;
}

int cmd_baseline(const ParsedFlags& flags, std::ostream& out) {
    const MachineConfig config = build_config(flags);
    const NaiveUbdm naive =
        naive_ubdm_rsk_vs_rsk(config, OpKind::kLoad, flags.iterations);
    out << "naive rsk-vs-rsk: ubdm(mean det/nr) = " << naive.ubdm_mean
        << ", ubdm(max observed delay) = " << naive.ubdm_max_gamma
        << ", true ubd = " << config.ubd_analytic() << "\n";
    return 0;
}

/// Shared body of the single-run measurement lines: the black-box PMC
/// view a COTS user could read off real hardware.
void report_measurement(const char* label, const Measurement& m,
                        std::ostream& out) {
    out << label << ": et = " << m.exec_time << " cycles, nr = "
        << m.bus_requests << "\n";
    out << "bus utilization = " << m.bus_utilization << ", scua share = "
        << m.scua_bus_share << "\n";
    if (m.deadline_reached) out << "deadline reached — run invalid\n";
}

int cmd_isolation(const ParsedFlags& flags, std::ostream& out,
                  std::ostream& err) {
    const Scenario scenario = build_scenario(flags, /*default_runs=*/1);
    TelemetrySession telemetry(flags, "isolation");
    const Session session;
    const Measurement m = session.isolation(scenario);
    telemetry.campaign(whole_campaign_info(scenario, /*block_size=*/0));
    telemetry.finish(/*jobs=*/1, err);
    report_measurement("isolation", m, out);
    return m.deadline_reached ? 2 : 0;
}

int cmd_contention(const ParsedFlags& flags, std::ostream& out,
                   std::ostream& err) {
    const Scenario scenario = build_scenario(flags, /*default_runs=*/1);
    TelemetrySession telemetry(flags, "contention");
    const Session session;
    const Measurement m = session.contention(scenario);
    telemetry.campaign(whole_campaign_info(scenario, /*block_size=*/0));
    telemetry.finish(/*jobs=*/1, err);
    report_measurement("contention", m, out);
    const Cycle ubd = scenario.config().ubd_analytic();
    const bool bounded = m.max_gamma <= ubd;
    out << "max gamma = " << m.max_gamma << " (ubd = " << ubd
        << "), bounded: " << (bounded ? "yes" : "NO") << "\n";
    return (bounded && !m.deadline_reached) ? 0 : 2;
}

int cmd_slowdown(const ParsedFlags& flags, std::ostream& out,
                 std::ostream& err) {
    const Scenario scenario = build_scenario(flags, /*default_runs=*/1);
    TelemetrySession telemetry(flags, "slowdown");
    const Session session;
    const SlowdownResult r = session.slowdown(scenario);
    telemetry.campaign(whole_campaign_info(scenario, /*block_size=*/0));
    telemetry.finish(/*jobs=*/1, err);
    out << "slowdown: et_isol = " << r.isolation.exec_time
        << " cycles, et_cont = " << r.contention.exec_time
        << " cycles, det = " << r.slowdown() << " cycles\n";
    const Cycle ubd = scenario.config().ubd_analytic();
    const std::uint64_t nr = r.isolation.bus_requests;
    out << "per request = "
        << (nr == 0 ? 0.0
                    : static_cast<double>(r.slowdown()) /
                          static_cast<double>(nr))
        << " (nr = " << nr << ", ubd = " << ubd << ")\n";
    const bool bounded = r.contention.max_gamma <= ubd;
    out << "max gamma = " << r.contention.max_gamma << ", bounded: "
        << (bounded ? "yes" : "NO") << "\n";
    const bool invalid =
        r.isolation.deadline_reached || r.contention.deadline_reached;
    if (invalid) out << "deadline reached — run invalid\n";
    return (bounded && !invalid) ? 0 : 2;
}

int cmd_campaign(const ParsedFlags& flags, std::ostream& out,
                 std::ostream& err) {
    RRB_REQUIRE(flags.runs.value_or(1) >= 1, "--runs must be at least 1");
    const Scenario scenario = build_scenario(flags, /*default_runs=*/20);
    const std::size_t runs = scenario.run_protocol().runs;
    const std::size_t jobs = engine::effective_jobs(flags.jobs, runs);

    engine::ProgressCounter progress;
    Session session;
    session.jobs(flags.jobs).progress(&progress);

    TelemetrySession telemetry(flags, "campaign");
    HwmCampaignResult hwm;
    {
        const ProgressReporter reporter(progress, err, runs,
                                        flags.heartbeat, jobs);
        hwm = session.hwm(scenario);
    }
    telemetry.campaign(whole_campaign_info(scenario, /*block_size=*/0));
    telemetry.finish(jobs, err);
    telemetry.write_trace(scenario, err);

    const Cycle ubd = scenario.config().ubd_analytic();
    const Cycle etb = hwm.et_isolation + hwm.nr * ubd;
    const bool bounded = hwm.high_water_mark <= etb;
    out << "campaign: " << runs << " runs on " << jobs << " jobs, seed "
        << scenario.run_protocol().seed << " ("
        << engine::render_progress(progress) << ")\n";
    out << "et_isol = " << hwm.et_isolation << " cycles, nr = " << hwm.nr
        << "\n";
    out << "hwm = " << hwm.high_water_mark << ", lwm = "
        << hwm.low_water_mark << ", hwm/req = "
        << hwm.hwm_slowdown_per_request() << " (ubd = " << ubd << ")\n";
    out << "etb = " << etb << ", bounded: " << (bounded ? "yes" : "NO")
        << ", margin = "
        << (bounded ? etb - hwm.high_water_mark : Cycle{0}) << " cycles\n";
    return bounded ? 0 : 2;
}

/// One percentage with a fixed decimal count — snprintf, not ostream
/// precision state, so the report lines stay deterministic bytes.
std::string percent(std::uint64_t part, std::uint64_t whole) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f",
                  whole == 0 ? 0.0
                             : 100.0 * static_cast<double>(part) /
                                   static_cast<double>(whole));
    return buf;
}

int cmd_attribution(const ParsedFlags& flags, std::ostream& out,
                    std::ostream& err) {
    RRB_REQUIRE(flags.runs.value_or(1) >= 1, "--runs must be at least 1");
    const Scenario scenario = build_scenario(flags, /*default_runs=*/20);
    const std::size_t runs = scenario.run_protocol().runs;
    const std::size_t jobs = engine::effective_jobs(
        flags.jobs, engine::ReducePlan::for_count(runs).shards());

    engine::ProgressCounter progress;
    Session session;
    session.jobs(flags.jobs).progress(&progress);

    TelemetrySession telemetry(flags, "attribution");
    engine::AttributionCampaignResult r;
    {
        const ProgressReporter reporter(progress, err, runs,
                                        flags.heartbeat, jobs);
        r = session.attribution(scenario);
    }
    telemetry.campaign(whole_campaign_info(scenario, /*block_size=*/0));
    telemetry.attribution(attribution_summary(r.attribution));
    telemetry.finish(jobs, err);
    telemetry.write_trace(scenario, err);

    const AttributionAccumulator& acc = r.attribution;
    const CoreId cores = static_cast<CoreId>(acc.num_cores());
    out << "attribution: " << runs << " runs on " << jobs << " jobs, seed "
        << scenario.run_protocol().seed << " ("
        << engine::render_progress(progress) << ")\n";
    out << "et_isol = " << r.et_isolation << " cycles, nr = " << r.nr
        << "\n";
    out << "machine cycles = " << acc.machine_cycles() << " per core over "
        << acc.runs() << " runs, " << acc.num_cores() << " cores\n";
    // Space-separated columns, no padding, like sweep-pwcet: rows are
    // machine-diffable and sum checks are one awk away.
    out << "cycles by cause (each core's column sums to machine "
           "cycles):\n";
    out << "cause";
    for (CoreId c = 0; c < cores; ++c) out << " core" << c;
    out << "\n";
    for (std::size_t cause = 0; cause < kStallCauseCount; ++cause) {
        out << to_string(static_cast<StallCause>(cause));
        for (CoreId c = 0; c < cores; ++c) {
            out << " " << acc.timeline(c, static_cast<StallCause>(cause));
        }
        out << "\n";
    }
    out << "blame matrix (bus-wait cycles, victim row charged to "
           "contender column):\n";
    out << "victim";
    for (CoreId w = 0; w < cores; ++w) out << " core" << w;
    out << " dead_slot\n";
    for (CoreId v = 0; v < cores; ++v) {
        out << "core" << v;
        for (CoreId w = 0; w < cores; ++w) out << " " << acc.blamed(v, w);
        out << " " << acc.dead_slot_cycles(v) << "\n";
    }
    for (CoreId v = 0; v < cores; ++v) {
        const std::uint64_t dead = acc.dead_slot_cycles(v);
        const std::uint64_t denom = acc.blamed_total(v) + dead;
        out << "core" << v << " stall share:";
        if (denom == 0) {
            out << " none\n";
            continue;
        }
        for (CoreId w = 0; w < cores; ++w) {
            if (w == v) continue;
            out << " core" << w << " " << percent(acc.blamed(v, w), denom)
                << "%";
        }
        if (dead > 0) out << " dead " << percent(dead, denom) << "%";
        out << "\n";
    }
    return 0;
}

/// Everything a pWCET campaign report prints after its header line —
/// shared verbatim by `pwcet` and `merge`, so a distributed fan-in's
/// report is byte-identical to the single-process reference from the
/// second line on (CI diffs exactly that). Returns the exit code:
/// 0 = HWM bounded by the ETB, 2 = bound violated, 3 = bounded but no
/// usable fit (so scripts can tell "unsound bound" from "not enough
/// data").
int report_pwcet(const PwcetCampaignResult& r, Cycle ubd,
                 std::ostream& out) {
    out << "et_isol = " << r.et_isolation << " cycles, nr = " << r.nr
        << "\n";
    out << "hwm = " << r.high_water_mark << ", lwm = " << r.low_water_mark
        << ", mean = " << r.mean << ", stddev = " << r.stddev << "\n";
    out << "streamed: " << r.live_values << " live values for " << r.runs
        << " runs (" << r.blocks << " complete blocks)\n";
    // The bound check is independent of the fit — report it (and let a
    // violation dominate the exit code) even when the fit is unusable.
    const Cycle etb = r.etb(ubd);
    const bool bounded = r.high_water_mark <= etb;
    out << "etb = " << etb << ", hwm bounded: " << (bounded ? "yes" : "NO")
        << "\n";
    if (!r.fit.valid()) {
        out << "gumbel fit: degenerate (" << r.blocks
            << " blocks, no spread) — raise --runs or lower --block-size\n";
        return bounded ? 3 : 2;
    }
    out << "gumbel: mu = " << r.fit.mu << ", beta = " << r.fit.beta
        << " (fit on " << r.fit.sample_size << " block maxima)\n";
    for (const PwcetQuantile& q : r.quantiles) {
        out << "pwcet@" << q.exceedance << " = " << q.pwcet << " ("
            << (q.pwcet >= static_cast<double>(r.high_water_mark)
                    ? ">= hwm"
                    : "below hwm")
            << ", "
            << (q.pwcet <= static_cast<double>(etb) ? "below etb"
                                                    : "above etb")
            << ")\n";
    }
    return bounded ? 0 : 2;
}

/// `pwcet --shard i/N --checkpoint-out FILE`: run one slice of the
/// campaign's shard plan and persist its accumulator state instead of
/// fitting — the fit happens at `merge` time, over every slice.
int cmd_pwcet_checkpoint(const ParsedFlags& flags, const Scenario& scenario,
                         const PwcetSpec& spec, std::ostream& out,
                         std::ostream& err) {
    RRB_REQUIRE(!flags.checkpoint_out.empty(),
                "--shard needs --checkpoint-out to name the slice file");
    const SliceSpec slice = flags.shard.value_or(SliceSpec{0, 1});

    engine::ProgressCounter progress;
    Session session;
    session.jobs(flags.jobs).progress(&progress);

    TelemetrySession telemetry(flags, "pwcet");
    PwcetCheckpoint checkpoint;
    {
        const ProgressReporter reporter(progress, err,
                                        scenario.run_protocol().runs,
                                        flags.heartbeat,
                                        session.worker_budget());
        checkpoint = session.checkpoint(scenario, spec, slice,
                                        flags.checkpoint_out);
    }
    // The shard report carries the slice's run range and plan from the
    // checkpoint metadata: collecting every shard's report reconstructs
    // the distributed campaign's timeline.
    telemetry.campaign(telemetry_info(checkpoint.meta));
    telemetry.finish(session.worker_budget(), err);
    telemetry.write_trace(scenario, err);

    const CheckpointMeta& meta = checkpoint.meta;
    out << "pwcet shard " << slice.index << "/" << slice.count << ": runs ["
        << meta.first_run << ", " << meta.last_run << ") of "
        << meta.total_runs << " in blocks of " << meta.block_size
        << ", seed " << meta.seed << "\n";
    out << "checkpoint written to " << flags.checkpoint_out << " ("
        << checkpoint.shards.size() << " shard accumulators, merge with "
        << "'rrbtool merge')\n";
    return 0;
}

int cmd_pwcet(const ParsedFlags& flags, std::ostream& out,
              std::ostream& err) {
    RRB_REQUIRE(flags.runs.value_or(1) >= 1, "--runs must be at least 1");
    RRB_REQUIRE(flags.block_size >= 1, "--block-size must be at least 1");
    // Default to a quick-but-meaningful campaign: 40 blocks at the
    // default block size (the campaign command's 20-run default would
    // not even fill one block).
    const Scenario scenario =
        build_scenario(flags, /*default_runs=*/40 * flags.block_size);
    PwcetSpec spec;
    spec.block_size = flags.block_size;
    if (!flags.exceedances.empty()) spec.exceedance = flags.exceedances;

    if (flags.shard.has_value() || !flags.checkpoint_out.empty()) {
        return cmd_pwcet_checkpoint(flags, scenario, spec, out, err);
    }

    const std::size_t runs = scenario.run_protocol().runs;
    // The reduce engine shards the run range — report the width it will
    // actually keep busy.
    const std::size_t jobs = engine::effective_jobs(
        flags.jobs, engine::ReducePlan::for_count(runs).shards());

    engine::ProgressCounter progress;
    Session session;
    session.jobs(flags.jobs).progress(&progress);

    TelemetrySession telemetry(flags, "pwcet");
    PwcetCampaignResult r;
    {
        const ProgressReporter reporter(progress, err, runs,
                                        flags.heartbeat, jobs);
        r = session.pwcet(scenario, spec);
    }
    telemetry.campaign(whole_campaign_info(scenario, spec.block_size));
    telemetry.finish(jobs, err);
    telemetry.write_trace(scenario, err);

    out << "pwcet: " << r.runs << " runs in blocks of " << spec.block_size
        << " on " << jobs << " jobs, seed " << scenario.run_protocol().seed
        << " (" << engine::render_progress(progress) << ")\n";
    // Exit contract, matching `campaign`: 0 = HWM bounded by the ETB,
    // 2 = bound violated; 3 = bounded but no usable fit.
    return report_pwcet(r, scenario.config().ubd_analytic(), out);
}

/// Merge fan-ins treat each argument as a distinct slice, so the same
/// path twice would double-count its shards; reject by name up front
/// (the codec would also catch it as duplicate coverage, but a usage
/// error should not cost a file load first).
void require_unique_inputs(const std::vector<std::string>& inputs,
                           const char* command) {
    for (std::size_t i = 0; i < inputs.size(); ++i) {
        for (std::size_t j = i + 1; j < inputs.size(); ++j) {
            if (inputs[i] == inputs[j]) {
                throw std::invalid_argument(
                    std::string(command) +
                    ": duplicate checkpoint file '" + inputs[i] + "'");
            }
        }
    }
}

int cmd_merge(const ParsedFlags& flags, std::ostream& out,
              std::ostream& err) {
    RRB_REQUIRE(!flags.inputs.empty(),
                "merge needs at least one checkpoint file");
    require_unique_inputs(flags.inputs, "merge");
    TelemetrySession telemetry(flags, "merge");
    const Session session;
    const MergedPwcetCampaign merged = session.merge(flags.inputs);
    telemetry.campaign(telemetry_info(merged.meta));
    telemetry.finish(/*jobs=*/1, err);
    out << "merge: " << flags.inputs.size() << " checkpoints, "
        << merged.result.runs << " runs in blocks of "
        << merged.meta.block_size << ", seed " << merged.meta.seed << "\n";
    // From here the report is byte-identical to the reference
    // single-process `pwcet` run — including the exit-code contract.
    return report_pwcet(merged.result, merged.meta.ubd_analytic, out);
}

/// Everything a white-box campaign report prints after its header line
/// — shared verbatim by `whitebox` and `merge-whitebox`, so a
/// distributed fan-in's report is byte-identical to the single-process
/// reference from the second line on. Exit 0 = observed per-request
/// delays bounded by the analytic ubd, 2 = a request waited longer
/// (which falsifies Equation 1 and means a modelling bug).
int report_whitebox(Cycle et_isolation, std::uint64_t nr,
                    const WhiteboxAccumulator& stats, Cycle ubd,
                    std::ostream& out) {
    out << "et_isol = " << et_isolation << " cycles, nr = " << nr << "\n";
    const StreamingExtremes<Cycle>& extremes = stats.extremes();
    out << "runs = " << stats.runs() << ", hwm = "
        << (extremes.empty() ? 0 : extremes.max()) << ", lwm = "
        << (extremes.empty() ? 0 : extremes.min()) << "\n";
    const bool bounded = stats.max_gamma() <= ubd;
    out << "max gamma = " << stats.max_gamma() << " (ubd = " << ubd
        << "), bounded: " << (bounded ? "yes" : "NO") << "\n";
    if (!stats.gamma().empty()) {
        out << "gamma: mean = " << stats.gamma().mean() << ", mode = "
            << stats.gamma().mode() << " (" << stats.gamma().total()
            << " requests)\n";
    }
    if (!stats.ready_contenders().empty()) {
        out << "ready contenders: mode = " << stats.ready_contenders().mode()
            << ", max = " << stats.ready_contenders().max() << "\n";
    }
    if (!stats.injection_delta().empty()) {
        out << "injection delta: mode = " << stats.injection_delta().mode()
            << ", min = " << stats.injection_delta().min() << "\n";
    }
    return bounded ? 0 : 2;
}

/// `whitebox --shard i/N --checkpoint-out FILE`: run one slice of the
/// white-box campaign and persist its accumulator state; the merged
/// report comes from `merge-whitebox`.
int cmd_whitebox_checkpoint(const ParsedFlags& flags,
                            const Scenario& scenario, std::ostream& out,
                            std::ostream& err) {
    RRB_REQUIRE(!flags.checkpoint_out.empty(),
                "--shard needs --checkpoint-out to name the slice file");
    const SliceSpec slice = flags.shard.value_or(SliceSpec{0, 1});

    engine::ProgressCounter progress;
    Session session;
    session.jobs(flags.jobs).progress(&progress);

    TelemetrySession telemetry(flags, "whitebox");
    WhiteboxCheckpoint checkpoint;
    {
        const ProgressReporter reporter(progress, err,
                                        scenario.run_protocol().runs,
                                        flags.heartbeat,
                                        session.worker_budget());
        checkpoint = session.checkpoint(scenario, slice,
                                        flags.checkpoint_out);
    }
    telemetry.campaign(telemetry_info(checkpoint.meta));
    telemetry.finish(session.worker_budget(), err);
    telemetry.write_trace(scenario, err);

    const CheckpointMeta& meta = checkpoint.meta;
    out << "whitebox shard " << slice.index << "/" << slice.count
        << ": runs [" << meta.first_run << ", " << meta.last_run << ") of "
        << meta.total_runs << ", seed " << meta.seed << "\n";
    out << "checkpoint written to " << flags.checkpoint_out << " ("
        << checkpoint.shards.size() << " shard accumulators, merge with "
        << "'rrbtool merge-whitebox')\n";
    return 0;
}

int cmd_whitebox(const ParsedFlags& flags, std::ostream& out,
                 std::ostream& err) {
    RRB_REQUIRE(flags.runs.value_or(1) >= 1, "--runs must be at least 1");
    const Scenario scenario = build_scenario(flags, /*default_runs=*/20);

    if (flags.shard.has_value() || !flags.checkpoint_out.empty()) {
        return cmd_whitebox_checkpoint(flags, scenario, out, err);
    }

    const std::size_t runs = scenario.run_protocol().runs;
    const std::size_t jobs = engine::effective_jobs(
        flags.jobs, engine::ReducePlan::for_count(runs).shards());

    engine::ProgressCounter progress;
    Session session;
    session.jobs(flags.jobs).progress(&progress);

    TelemetrySession telemetry(flags, "whitebox");
    engine::WhiteboxCampaignResult r;
    {
        const ProgressReporter reporter(progress, err, runs,
                                        flags.heartbeat, jobs);
        r = session.whitebox(scenario);
    }
    telemetry.campaign(whole_campaign_info(scenario, /*block_size=*/0));
    telemetry.finish(jobs, err);
    telemetry.write_trace(scenario, err);

    out << "whitebox: " << runs << " runs on " << jobs << " jobs, seed "
        << scenario.run_protocol().seed << " ("
        << engine::render_progress(progress) << ")\n";
    return report_whitebox(r.et_isolation, r.nr, r.stats,
                           scenario.config().ubd_analytic(), out);
}

int cmd_merge_whitebox(const ParsedFlags& flags, std::ostream& out,
                       std::ostream& err) {
    RRB_REQUIRE(!flags.inputs.empty(),
                "merge-whitebox needs at least one checkpoint file");
    require_unique_inputs(flags.inputs, "merge-whitebox");
    TelemetrySession telemetry(flags, "merge-whitebox");
    const Session session;
    const MergedWhiteboxCampaign merged =
        session.merge_whitebox(flags.inputs);
    telemetry.campaign(telemetry_info(merged.meta));
    telemetry.finish(/*jobs=*/1, err);
    out << "merge-whitebox: " << flags.inputs.size() << " checkpoints, "
        << merged.stats.runs() << " runs, seed " << merged.meta.seed
        << "\n";
    // From here the report is byte-identical to the reference
    // single-process `whitebox` run — including the exit-code contract.
    return report_whitebox(merged.et_isolation, merged.nr, merged.stats,
                           merged.meta.ubd_analytic, out);
}

int cmd_sweep_pwcet(const ParsedFlags& flags, std::ostream& out,
                    std::ostream& err) {
    RRB_REQUIRE(flags.runs.value_or(1) >= 1, "--runs must be at least 1");
    RRB_REQUIRE(flags.block_size >= 1, "--block-size must be at least 1");
    const Scenario scenario =
        build_scenario(flags, /*default_runs=*/40 * flags.block_size);
    SweepAxes axes;
    axes.cores = flags.cores_axis;
    axes.lbus = flags.lbus_axis;
    axes.arbiters = flags.arbiter_axis;
    PwcetSpec spec;
    spec.block_size = flags.block_size;
    if (!flags.exceedances.empty()) spec.exceedance = flags.exceedances;

    const std::size_t runs = scenario.run_protocol().runs;

    engine::ProgressCounter progress;  // per grid point
    Session session;
    session.jobs(flags.jobs).progress(&progress);
    const std::size_t jobs = session.worker_budget();

    TelemetrySession telemetry(flags, "sweep-pwcet");
    SweepResult sweep;
    {
        // Point campaigns are silent; report over the whole run volume
        // only when it is genuinely long.
        const ProgressReporter reporter(progress, err,
                                        axes.points() * runs,
                                        flags.heartbeat, jobs);
        sweep = session.sweep(scenario, axes, spec);
    }
    {
        // One report for the whole grid: the base scenario's identity
        // with the run volume scaled by the point count (each point's
        // own timings live in the span timeline).
        obs::CampaignInfo info =
            whole_campaign_info(scenario, spec.block_size);
        info.total_runs = axes.points() * runs;
        info.last_run = info.total_runs;
        telemetry.campaign(info);
    }
    telemetry.finish(jobs, err);
    telemetry.write_trace(scenario, err);

    out << "sweep-pwcet: " << sweep.points.size() << " configs x " << runs
        << " runs in blocks of " << spec.block_size << " on " << jobs
        << " jobs (shared pool), seed " << scenario.run_protocol().seed
        << "\n";
    // Space-separated columns, no padding: rows are machine-diffable
    // (the determinism tests compare them byte for byte) and a padded
    // header over unpadded rows would only pretend to align.
    out << "cores lbus arbiter hwm etb bounded";
    for (const double e : spec.exceedance) out << " pwcet@" << e;
    out << "\n";

    bool any_unbounded = false;
    bool any_degenerate = false;
    for (const SweepPoint& p : sweep.points) {
        // The analytic per-request bound — and with it the ETB check —
        // is the round-robin Equation 1; other arbiters get the grid
        // point's pWCET quantiles without a bound verdict.
        const bool rr = p.arbiter == ArbiterKind::kRoundRobin;
        const Cycle etb = p.result.etb(p.config.ubd_analytic());
        const bool bounded = p.result.high_water_mark <= etb;
        if (rr && !bounded) any_unbounded = true;
        if (!p.result.fit.valid()) any_degenerate = true;
        out << p.cores << " " << p.lbus << " " << arbiter_name(p.arbiter)
            << " " << p.result.high_water_mark << " " << etb << " "
            << (rr ? (bounded ? "yes" : "NO") : "n/a");
        for (const PwcetQuantile& q : p.result.quantiles) {
            out << " " << q.pwcet;
        }
        out << "\n";
    }
    if (any_unbounded) {
        out << "bound violated on at least one round-robin config\n";
        return 2;
    }
    if (any_degenerate) {
        out << "degenerate fit on at least one config — raise --runs or "
               "lower --block-size\n";
        return 3;
    }
    return 0;
}

int cmd_sweep(const ParsedFlags& flags, std::ostream& out) {
    const MachineConfig config = build_config(flags);
    const UbdEstimate e = estimate_ubd(config, build_options(flags));
    const std::vector<std::string> names = {"dbus"};
    const std::vector<std::vector<double>> cols = {e.dbus};
    const std::string csv = to_csv(names, cols);
    if (flags.csv_path.empty()) {
        out << csv;
    } else if (write_text_file(flags.csv_path, csv)) {
        out << "sweep written to " << flags.csv_path << "\n";
    } else {
        out << "error: could not write " << flags.csv_path << "\n";
        return 2;
    }
    return 0;
}

std::optional<std::string> read_file(const std::string& path) {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) return std::nullopt;
    std::string text;
    char buf[4096];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
    std::fclose(f);
    return text;
}

/// Ordered name -> number pairs of one flat JSON object section
/// ("counters", "derived") of a run report. Hand-scanned against the
/// renderer's own output shape — tolerant of any key set, so reports
/// written by other versions of the tool still diff instead of erroring
/// on an unknown counter.
std::vector<std::pair<std::string, double>> json_section_numbers(
    const std::string& text, const std::string& section) {
    std::vector<std::pair<std::string, double>> items;
    const std::string needle = "\"" + section + "\": {";
    const std::size_t start = text.find(needle);
    if (start == std::string::npos) return items;
    std::size_t pos = start + needle.size();
    const std::size_t end = text.find('}', pos);
    if (end == std::string::npos) return items;
    while (pos < end) {
        const std::size_t key_open = text.find('"', pos);
        if (key_open == std::string::npos || key_open >= end) break;
        const std::size_t key_close = text.find('"', key_open + 1);
        if (key_close == std::string::npos || key_close >= end) break;
        const std::size_t colon = text.find(':', key_close);
        if (colon == std::string::npos || colon >= end) break;
        char* stop = nullptr;
        const double value = std::strtod(text.c_str() + colon + 1, &stop);
        items.emplace_back(text.substr(key_open + 1,
                                       key_close - key_open - 1),
                           value);
        pos = static_cast<std::size_t>(stop - text.c_str());
    }
    return items;
}

std::optional<double> json_top_number(const std::string& text,
                                      const std::string& key) {
    const std::string needle = "\"" + key + "\":";
    const std::size_t at = text.find(needle);
    if (at == std::string::npos) return std::nullopt;
    return std::strtod(text.c_str() + at + needle.size(), nullptr);
}

double find_value(const std::vector<std::pair<std::string, double>>& items,
                  const std::string& key, bool& found) {
    for (const auto& [name, value] : items) {
        if (name == key) {
            found = true;
            return value;
        }
    }
    found = false;
    return 0.0;
}

/// Signed percentage change b vs a ("+12.3%", "-4.0%"); "n/a" when the
/// baseline is zero.
std::string change_pct(double a, double b) {
    if (a == 0.0) return "n/a";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%+.1f%%", 100.0 * (b - a) / a);
    return buf;
}

/// `rrbtool batch SPEC`: every scenario of the spec file runs as one
/// flat (campaign × shard) queue on one shared pool — concurrent
/// heterogeneous campaigns with machine-lease affinity — and each
/// scenario emits a whole-campaign checkpoint under --out-dir, byte-
/// identical to `pwcet --shard 0/1` of the same scenario and farmable
/// through `rrbtool merge`.
int cmd_batch(const ParsedFlags& flags, std::ostream& out,
              std::ostream& err) {
    RRB_REQUIRE(flags.inputs.size() == 1,
                "batch needs exactly one spec file");
    const std::optional<std::string> text = read_file(flags.inputs[0]);
    if (!text) {
        err << "error: could not read " << flags.inputs[0] << "\n";
        return 1;
    }
    const std::vector<BatchItem> items = sched::parse_batch_spec(*text);

    std::size_t total_runs = 0;
    for (const BatchItem& item : items) {
        total_runs += item.scenario.run_protocol().runs;
    }
    engine::ProgressCounter progress;
    Session session;
    session.jobs(flags.jobs).progress(&progress);
    const std::size_t jobs = session.worker_budget();

    sched::BatchProgress monitor;
    {
        std::vector<std::pair<std::string, std::size_t>> campaigns;
        campaigns.reserve(items.size());
        for (const BatchItem& item : items) {
            campaigns.emplace_back(item.name,
                                   item.scenario.run_protocol().runs);
        }
        monitor.announce(campaigns);
    }

    TelemetrySession telemetry(flags, "batch");
    BatchResult result;
    {
        const BatchReporter reporter(monitor, err, flags.heartbeat, jobs);
        result = session.batch(items, &monitor);
    }
    {
        // One report for the whole batch: the run volume summed over
        // scenarios. Each campaign's own identity and timings live in
        // its span and its checkpoint metadata.
        obs::CampaignInfo info;
        info.total_runs = total_runs;
        info.last_run = total_runs;
        telemetry.campaign(info);
    }
    telemetry.finish(jobs, err);

    std::filesystem::create_directories(flags.out_dir);
    out << "batch: " << items.size() << " scenarios, " << total_runs
        << " runs on " << jobs << " jobs (one shared queue)\n";
    // Space-separated columns, no padding, like sweep-pwcet: rows are
    // machine-diffable byte for byte.
    out << "name runs seed hwm etb bounded checkpoint status\n";
    bool any_unbounded = false;
    bool any_degenerate = false;
    std::vector<const BatchPointResult*> failed;
    for (std::size_t i = 0; i < result.points.size(); ++i) {
        const BatchPointResult& point = result.points[i];
        const Scenario& scenario = items[i].scenario;
        if (!point.ok) {
            // The campaign is this scenario's failure domain: no
            // checkpoint is written for it (never a torn or partial
            // one), the other scenarios' rows are exactly what an
            // all-healthy batch prints.
            failed.push_back(&point);
            out << point.name << " " << scenario.run_protocol().runs
                << " " << scenario.run_protocol().seed
                << " - - - - FAILED\n";
            continue;
        }
        const std::string path = flags.out_dir + "/" + point.name + ".ckpt";
        save_pwcet_checkpoint(path, point.checkpoint);
        // The ETB verdict is the round-robin Equation 1, as everywhere
        // else; other arbiters get quantiles without a bound check.
        const bool rr = scenario.config().arbiter == ArbiterKind::kRoundRobin;
        const Cycle etb = point.result.etb(point.checkpoint.meta.ubd_analytic);
        const bool bounded = point.result.high_water_mark <= etb;
        if (rr && !bounded) any_unbounded = true;
        if (!point.result.fit.valid()) any_degenerate = true;
        out << point.name << " " << point.result.runs << " "
            << scenario.run_protocol().seed << " "
            << point.result.high_water_mark << " " << etb << " "
            << (rr ? (bounded ? "yes" : "NO") : "n/a") << " " << path
            << " ok\n";
    }
    if (!failed.empty()) {
        // Execution failure dominates the verdict codes: a bound or fit
        // verdict over an incomplete batch would be misleading.
        for (const BatchPointResult* point : failed) {
            out << "scenario '" << point->name << "' failed: "
                << point->error << "\n";
        }
        out << "batch failed: " << failed.size() << " of "
            << result.points.size() << " scenarios did not complete\n";
        return 4;
    }
    if (any_unbounded) {
        out << "bound violated on at least one round-robin scenario\n";
        return 2;
    }
    if (any_degenerate) {
        out << "degenerate fit on at least one scenario — raise runs or "
               "lower block-size\n";
        return 3;
    }
    return 0;
}

/// `rrbtool telemetry-diff a.json b.json`: counter deltas and derived
/// rate changes between two run reports, oldest first. With
/// --max-regression-pct P the throughput rates (runs/sec, cycles/sec)
/// become a gate: exit 3 when either regressed by more than P percent —
/// the CI perf gate, runnable locally against any two reports.
int cmd_telemetry_diff(const ParsedFlags& flags, std::ostream& out,
                       std::ostream& err) {
    RRB_REQUIRE(flags.inputs.size() == 2,
                "telemetry-diff needs exactly two run-report files");
    const std::optional<std::string> a = read_file(flags.inputs[0]);
    const std::optional<std::string> b = read_file(flags.inputs[1]);
    if (!a || !b) {
        err << "error: could not read "
            << (!a ? flags.inputs[0] : flags.inputs[1]) << "\n";
        return 1;
    }
    for (std::size_t i = 0; i < 2; ++i) {
        const std::string& text = i == 0 ? *a : *b;
        if (text.find("\"rrb-telemetry\"") == std::string::npos) {
            err << "error: " << flags.inputs[i]
                << " is not an rrb-telemetry run report\n";
            return 1;
        }
    }
    out << "telemetry-diff: " << flags.inputs[0] << " -> "
        << flags.inputs[1] << "\n";
    const auto wall_a = json_top_number(*a, "wall_ns");
    const auto wall_b = json_top_number(*b, "wall_ns");
    if (wall_a && wall_b) {
        out << "wall_ns: " << static_cast<std::uint64_t>(*wall_a) << " -> "
            << static_cast<std::uint64_t>(*wall_b) << " ("
            << change_pct(*wall_a, *wall_b) << ")\n";
    }
    const auto counters_a = json_section_numbers(*a, "counters");
    const auto counters_b = json_section_numbers(*b, "counters");
    out << "counters:\n";
    for (const auto& [name, value_a] : counters_a) {
        bool in_b = false;
        const double value_b = find_value(counters_b, name, in_b);
        out << "  " << name << ": " << static_cast<std::uint64_t>(value_a);
        if (!in_b) {
            out << " -> (missing)\n";
            continue;
        }
        const auto delta =
            static_cast<std::int64_t>(value_b) -
            static_cast<std::int64_t>(value_a);
        out << " -> " << static_cast<std::uint64_t>(value_b) << " ("
            << (delta >= 0 ? "+" : "") << delta << ")\n";
    }
    for (const auto& [name, value_b] : counters_b) {
        bool in_a = false;
        find_value(counters_a, name, in_a);
        if (!in_a) {
            out << "  " << name << ": (missing) -> "
                << static_cast<std::uint64_t>(value_b) << "\n";
        }
    }
    const auto derived_a = json_section_numbers(*a, "derived");
    const auto derived_b = json_section_numbers(*b, "derived");
    out << "derived:\n";
    for (const auto& [name, value_a] : derived_a) {
        bool in_b = false;
        const double value_b = find_value(derived_b, name, in_b);
        out << "  " << name << ": " << value_a;
        if (!in_b) {
            out << " -> (missing)\n";
            continue;
        }
        out << " -> " << value_b << " (" << change_pct(value_a, value_b)
            << ")\n";
    }
    // The gate: throughput rates where lower is a regression.
    int exit_code = 0;
    if (flags.max_regression_pct.has_value()) {
        for (const char* key : {"runs_per_sec", "cycles_per_sec"}) {
            bool in_a = false;
            bool in_b = false;
            const double value_a = find_value(derived_a, key, in_a);
            const double value_b = find_value(derived_b, key, in_b);
            if (!in_a || !in_b || value_a <= 0.0) continue;
            const double drop_pct = 100.0 * (value_a - value_b) / value_a;
            if (drop_pct > *flags.max_regression_pct) {
                out << "regression: " << key << " dropped "
                    << change_pct(value_a, value_b)
                    << ", beyond --max-regression-pct "
                    << *flags.max_regression_pct << "\n";
                exit_code = 3;
            }
        }
        if (exit_code == 0) {
            out << "gate: no rate regression beyond "
                << *flags.max_regression_pct << "%\n";
        }
    }
    return exit_code;
}

}  // namespace

std::string usage() {
    return "rrbtool — measurement-based contention bounds for round-robin "
           "buses\n"
           "\n"
           "usage: rrbtool <command> [flags]\n"
           "\n"
           "commands:\n"
           "  estimate     run the rsk-nop methodology and report ubd\n"
           "  calibrate    measure delta_nop with the all-nop kernel\n"
           "  baseline     run the naive rsk-vs-rsk measurement\n"
           "  isolation    run the scua alone and report its PMC view\n"
           "  contention   one scua-vs-contenders run vs the analytic "
           "ubd\n"
           "  slowdown     isolation + contention, report det(t, k)\n"
           "  campaign     run a randomized HWM campaign vs the ETB bound\n"
           "  attribution  campaign with the cycle-attribution profiler:\n"
           "               per-core stall causes + contender blame "
           "matrix\n"
           "  pwcet        streamed Gumbel pWCET campaign (O(runs/block) "
           "memory)\n"
           "  batch        run a multi-scenario spec file as one flat\n"
           "               (campaign x shard) queue; one checkpoint per\n"
           "               scenario\n"
           "  merge        merge pwcet checkpoint files into the full "
           "campaign\n"
           "  whitebox     white-box campaign: per-request delay / "
           "contender\n"
           "               histograms vs the analytic ubd\n"
           "  merge-whitebox  merge whitebox checkpoint files\n"
           "  sweep-pwcet  grid of MachineConfigs, one streamed pWCET\n"
           "               campaign per point on one shared pool\n"
           "  sweep        dump the dbus(k) series as CSV\n"
           "  telemetry-diff  counter deltas and rate regressions "
           "between\n"
           "               two --telemetry run reports\n"
           "  help         show this text\n"
           "\n"
           "Each command accepts only its own flags; anything else exits\n"
           "non-zero naming the flag.\n"
           "\n"
           "platform flags (sweep-pwcet takes --var and the axes only):\n"
           "  --cores N --lbus L   scaled platform (default: NGMP ref)\n"
           "  --var                NGMP variant (DL1 latency 4)\n"
           "\n"
           "measurement flags:\n"
           "  --kmax K             nop sweep range (default 70)\n"
           "  --iterations I       rsk loop iterations (default 40)\n"
           "  --nop-latency L      slow-nop platforms (default 1)\n"
           "  --store-span         cross-check with the store-buffer path\n"
           "  --csv FILE           write the sweep data to FILE\n"
           "\n"
           "campaign flags:\n"
           "  --runs R             campaign runs (default 20; pwcet "
           "defaults\n"
           "                       to 40 blocks)\n"
           "  --seed S             campaign root seed (default 1)\n"
           "  --jobs N             parallel jobs; 0 = hardware "
           "concurrency\n"
           "                       (results are identical for every N)\n"
           "  --telemetry F        write a JSON telemetry run report "
           "to F\n"
           "                       (schema 'rrb-telemetry'; also on "
           "merge)\n"
           "  --heartbeat S        print a live status line (runs/s, "
           "eta,\n"
           "                       worker %) to stderr every S seconds\n"
           "  --trace F            write a Chrome-trace JSON timeline "
           "to F\n"
           "                       (open in Perfetto or chrome://tracing):"
           "\n"
           "                       campaign spans plus run 0's bus "
           "wait /\n"
           "                       service windows per core\n"
           "\n"
           "telemetry-diff:\n"
           "  rrbtool telemetry-diff A B   diff two run reports "
           "(oldest\n"
           "                       first); with --max-regression-pct P "
           "exit 3\n"
           "                       when runs/sec or cycles/sec dropped "
           "more\n"
           "                       than P percent\n"
           "\n"
           "pwcet flags (plus the campaign flags above):\n"
           "  --block-size B       runs per EVT block (default 50)\n"
           "  --exceedance P       quote pWCET at exceedance P in (0,1);\n"
           "                       repeatable (default 1e-3 1e-6 1e-9)\n"
           "  --shard i/N          run slice i of N of the campaign's\n"
           "                       shard plan (needs --checkpoint-out)\n"
           "  --checkpoint-out F   write the slice's accumulator state "
           "to F;\n"
           "                       merging every slice with 'rrbtool "
           "merge'\n"
           "                       is bit-identical to one full run\n"
           "\n"
           "batch:\n"
           "  rrbtool batch SPEC   run every [scenario NAME] block of "
           "SPEC\n"
           "                       concurrently on one shared queue "
           "(keys:\n"
           "                       cores, lbus, var, arbiter, "
           "iterations,\n"
           "                       runs, seed, block-size, exceedance,\n"
           "                       max-start-delay); writes "
           "NAME.ckpt per\n"
           "                       scenario, byte-identical to a "
           "standalone\n"
           "                       'pwcet --shard 0/1' of that scenario\n"
           "  --out-dir D          checkpoint directory (default .)\n"
           "                       a failed scenario is reported FAILED "
           "and\n"
           "                       exits 4; the others still complete "
           "and\n"
           "                       checkpoint\n"
           "\n"
           "merge:\n"
           "  rrbtool merge F1 F2 ...   merge checkpoint files; rejects\n"
           "                       mismatched campaigns and duplicate or\n"
           "                       missing slices\n"
           "\n"
           "sweep-pwcet flags (plus the campaign and pwcet flags):\n"
           "  --cores-axis A,B,..  core counts to sweep (default: base)\n"
           "  --lbus-axis A,B,..   L2-hit bus occupancies to sweep\n"
           "  --arbiter-axis L     arbiters to sweep: rr,tdma,wrr,fixed\n";
}

int run(const std::vector<std::string>& args, std::ostream& out,
        std::ostream& err) {
    if (args.empty() || args[0] == "help" || args[0] == "--help") {
        out << usage();
        return args.empty() ? 1 : 0;
    }
    const std::string& command = args[0];
    const CommandSpec* spec = find_command(command);
    if (spec == nullptr) {
        err << "error: unknown command '" << command << "'\n\n" << usage();
        return 1;
    }
    const ParsedFlags flags = parse_flags(args, 1, *spec);
    if (!flags.error.empty()) {
        err << "error: " << flags.error << "\n\n" << usage();
        return 1;
    }

    try {
        // Deterministic fault injection for whole-process smoke tests:
        // armed from RRB_FAULTS for this command only (no-op when the
        // variable is unset or a test armed the injector itself). A
        // malformed spec lands in the invalid_argument handler below.
        const fault::ScopedEnvArm faults;
        if (command == "estimate") return cmd_estimate(flags, out);
        if (command == "calibrate") return cmd_calibrate(flags, out);
        if (command == "baseline") return cmd_baseline(flags, out);
        if (command == "isolation") return cmd_isolation(flags, out, err);
        if (command == "contention") {
            return cmd_contention(flags, out, err);
        }
        if (command == "slowdown") return cmd_slowdown(flags, out, err);
        if (command == "campaign") return cmd_campaign(flags, out, err);
        if (command == "attribution") {
            return cmd_attribution(flags, out, err);
        }
        if (command == "telemetry-diff") {
            return cmd_telemetry_diff(flags, out, err);
        }
        if (command == "pwcet") return cmd_pwcet(flags, out, err);
        if (command == "batch") return cmd_batch(flags, out, err);
        if (command == "merge") return cmd_merge(flags, out, err);
        if (command == "whitebox") return cmd_whitebox(flags, out, err);
        if (command == "merge-whitebox") {
            return cmd_merge_whitebox(flags, out, err);
        }
        if (command == "sweep-pwcet") return cmd_sweep_pwcet(flags, out, err);
        if (command == "sweep") return cmd_sweep(flags, out);
    } catch (const std::invalid_argument& e) {
        err << "error: " << e.what() << "\n";
        return 1;
    } catch (const CheckpointError& e) {
        // Bad checkpoint *data* (unreadable, corrupt, or from another
        // campaign) — a usage-style failure, distinct from the bound
        // verdicts the campaign exit codes carry.
        err << "error: " << e.what() << "\n";
        return 1;
    } catch (const std::exception& e) {
        // Anything else is an internal/runtime failure (a worker died,
        // an engine invariant tripped) — report it instead of letting
        // it escape to std::terminate, on a code no verdict uses
        // (sysexits EX_SOFTWARE).
        err << "error: command '" << command
            << "' failed: " << e.what() << "\n";
        return 70;
    } catch (...) {
        err << "error: command '" << command
            << "' failed with an unknown error\n";
        return 70;
    }
    // Unreachable while command_specs() and the dispatch above agree;
    // fail loudly rather than silently succeed if they ever drift.
    err << "error: unknown command '" << command << "'\n\n" << usage();
    return 1;
}

}  // namespace rrb::cli
