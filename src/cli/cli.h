// rrbtool: command-line front end to the methodology.
//
//   rrbtool estimate  [--cores N] [--lbus L] [--var] [--kmax K]
//                     [--iterations I] [--store-span] [--csv FILE]
//   rrbtool calibrate [--cores N] [--lbus L] [--var] [--nop-latency L]
//   rrbtool baseline  [--cores N] [--lbus L] [--var]
//   rrbtool isolation [--cores N] [--lbus L] [--var] [--iterations I]
//   rrbtool contention / slowdown   (same flags as isolation)
//   rrbtool campaign  [--cores N] [--lbus L] [--var] [--runs R]
//                     [--seed S] [--jobs N] [--iterations I]
//                     [--telemetry F] [--heartbeat S] [--trace F]
//   rrbtool attribution [campaign flags]  — cycle-attribution profiler:
//                     per-core stall-cause timelines + blame matrix
//   rrbtool pwcet     [campaign flags] [--block-size B] [--exceedance P]
//                     [--shard i/N --checkpoint-out F]
//   rrbtool merge     F1 F2 ...
//   rrbtool telemetry-diff A B [--max-regression-pct P]
//   rrbtool sweep-pwcet [--var] [--cores-axis A,B] [--lbus-axis A,B]
//                     [--arbiter-axis rr,tdma,...] [campaign/pwcet flags]
//   rrbtool sweep     [--cores N] [--lbus L] [--var] [--kmax K]
//                     [--csv FILE]
//   rrbtool help
//
// The platform flags construct a MachineConfig: the NGMP reference model
// by default, `--var` for the 4-cycle-DL1 variant, or `--cores/--lbus`
// for a scaled platform. Each command accepts only its own flag set and
// exits non-zero naming any flag that does not apply. The campaign
// commands are thin shells over the Scenario/Session API
// (core/scenario.h, core/session.h): flags map 1:1 onto Scenario
// builders and Session execution policy. Command implementations live
// here so they are unit-testable without spawning processes.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace rrb::cli {

/// Runs the tool. `args` excludes the program name (like argv+1).
/// Output goes to `out` (reports) and `err` (usage errors).
/// Returns a process exit code.
int run(const std::vector<std::string>& args, std::ostream& out,
        std::ostream& err);

/// Renders the usage text.
[[nodiscard]] std::string usage();

}  // namespace rrb::cli
