// The multicore system: Nc in-order cores with private L1s, a shared
// arbitrated bus, a way-partitioned L2 and a DDR2 memory controller —
// the NGMP-like platform of the paper's evaluation (Section 5.1).
//
// Per-cycle phase order (this ordering is what makes injection time 0
// achievable, e.g. for store-buffer drains):
//   1. bus completions for this cycle fire (data delivered to cores);
//   2. the memory controller advances (may ready fill responses);
//   3. every core executes its cycle (may post requests ready this cycle);
//   4. bus arbitration grants among requests with ready <= now.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "bus/bus.h"
#include "cache/partitioned_cache.h"
#include "cpu/core.h"
#include "dram/dram.h"
#include "isa/program.h"
#include "machine/config.h"
#include "sim/trace.h"
#include "sim/types.h"

namespace rrb {

struct RunResult {
    Cycle cycles = 0;              ///< cycles simulated in this run call
    bool deadline_reached = false; ///< stopped at max_cycles
    std::vector<Cycle> finish_cycle;  ///< per core; kNoCycle if unfinished
};

class Machine {
public:
    explicit Machine(MachineConfig config);

    Machine(const Machine&) = delete;
    Machine& operator=(const Machine&) = delete;

    /// Installs a program on a core. Must be called before run().
    /// `start_delay` keeps the core idle until that cycle (alignment
    /// randomization for measurement campaigns).
    void load_program(CoreId core, Program program, Cycle start_delay = 0);

    /// Pre-warms the core's caches with the program's *static* footprint:
    /// every code line into the IL1 and every fixed-address data line into
    /// the core's L2 partition. Models the standard measurement practice
    /// of discarding a warm-up run, so that cold misses — whose count
    /// grows with the rsk-nop body size — do not pollute the k sweep's
    /// periodicity. Data/strided/random footprints are left cold.
    void warm_static_footprint(CoreId core);

    /// Runs until every core with a program finishes, or max_cycles.
    RunResult run(Cycle max_cycles = 1'000'000'000);

    /// Runs until `core` finishes (contenders keep running meanwhile —
    /// the paper's measurement discipline: "rsk must not complete
    /// execution before the scua"), or max_cycles.
    RunResult run_until_core(CoreId core, Cycle max_cycles = 1'000'000'000);

    [[nodiscard]] const MachineConfig& config() const noexcept {
        return config_;
    }
    [[nodiscard]] Cycle now() const noexcept { return now_; }
    [[nodiscard]] Bus& bus() noexcept { return *bus_; }
    [[nodiscard]] const Bus& bus() const noexcept { return *bus_; }
    [[nodiscard]] InOrderCore& core(CoreId id);
    [[nodiscard]] const InOrderCore& core(CoreId id) const;
    [[nodiscard]] WayPartitionedCache& l2() noexcept { return l2_; }
    [[nodiscard]] MemoryController& dram() noexcept { return dram_; }
    [[nodiscard]] Tracer& tracer() noexcept { return tracer_; }

private:
    /// Per-core serializing port: one bus transaction in flight per core;
    /// excess requests queue locally (queue wait is not bus contention, so
    /// a queued request's ready cycle is re-based when it is issued).
    class Port final : public CoreBusPort {
    public:
        Port(Machine& machine, CoreId core) : machine_(machine), core_(core) {}
        void request(BusOp op, Addr addr, Cycle ready,
                     std::function<void(Cycle)> on_complete) override;
        void try_issue(Cycle now);

    private:
        struct Queued {
            BusOp op;
            Addr addr;
            Cycle ready;
            std::function<void(Cycle)> on_complete;
        };
        friend class Machine;
        Machine& machine_;
        CoreId core_;
        bool busy_ = false;
        std::deque<Queued> queue_;
    };

    void issue(CoreId core, BusOp op, Addr addr, Cycle ready,
               std::function<void(Cycle)> on_complete);
    void step();  ///< simulate cycle now_, then ++now_

    MachineConfig config_;
    std::unique_ptr<Bus> bus_;
    WayPartitionedCache l2_;
    MemoryController dram_;
    Tracer tracer_;
    // Ports must not relocate: cores hold references.
    std::vector<std::unique_ptr<Port>> ports_;
    std::vector<std::unique_ptr<InOrderCore>> cores_;
    std::vector<bool> has_program_;
    Cycle now_ = 0;
};

}  // namespace rrb
