// The multicore system: Nc in-order cores with private L1s, a shared
// arbitrated bus, a way-partitioned L2 and a DDR2 memory controller —
// the NGMP-like platform of the paper's evaluation (Section 5.1).
//
// Per-cycle phase order (this ordering is what makes injection time 0
// achievable, e.g. for store-buffer drains):
//   1. bus completions for this cycle fire (data delivered to cores);
//   2. the memory controller advances (may ready fill responses);
//   3. every core executes its cycle (may post requests ready this cycle);
//   4. bus arbitration grants among requests with ready <= now.
//
// Hot-path design (PR 5): the machine is the single BusClient/DramClient
// — completions dispatch through a fixed switch on (op, tag) instead of
// per-request closures; per-port queues are reusable rings; reset() /
// reset_keep_programs() restore power-on state without reallocating, so
// one machine serves a whole campaign (engine::MachineLease); and run()
// fast-forwards over provably idle cycles via the components'
// next_event_cycle() — all while staying bit-identical to naive
// stepping on a fresh machine (tests/test_hotpath.cpp is the proof).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "bus/bus.h"
#include "cache/partitioned_cache.h"
#include "cpu/core.h"
#include "dram/dram.h"
#include "isa/program.h"
#include "machine/attribution.h"
#include "machine/config.h"
#include "sim/ring_buffer.h"
#include "sim/trace.h"
#include "sim/types.h"

namespace rrb {

struct RunResult {
    Cycle cycles = 0;              ///< cycles simulated in this run call
    bool deadline_reached = false; ///< stopped at max_cycles
    std::vector<Cycle> finish_cycle;  ///< per core; kNoCycle if unfinished
};

class Machine final : private BusClient, private DramClient {
public:
    explicit Machine(MachineConfig config);

    Machine(const Machine&) = delete;
    Machine& operator=(const Machine&) = delete;

    /// Installs a program on a core. Must be called before run().
    /// `start_delay` keeps the core idle until that cycle (alignment
    /// randomization for measurement campaigns).
    void load_program(CoreId core, Program program, Cycle start_delay = 0);

    /// Resets the core's execution state for a fresh run of its
    /// already-installed program, with a new start delay — the per-run
    /// path of a reused machine, skipping the Program copy that
    /// load_program performs. Precondition: the core has a program.
    void restart_program(CoreId core, Cycle start_delay = 0);

    /// Attaches (non-null) or detaches (null) a pre-decoded micro-op
    /// script on a core (replay execution mode, src/replay). The script
    /// must outlive its attachment and match the core's installed
    /// program; the caller (core/campaign.cpp) keys scripts by campaign
    /// fingerprint to guarantee it. Refused while attribution is armed —
    /// replay elides the per-instruction attribution charge points.
    void attach_replay(CoreId core, const replay::MicroOpScript* script);

    /// Pre-warms the core's caches with the program's *static* footprint:
    /// every code line into the IL1 and every fixed-address data line into
    /// the core's L2 partition. Models the standard measurement practice
    /// of discarding a warm-up run, so that cold misses — whose count
    /// grows with the rsk-nop body size — do not pollute the k sweep's
    /// periodicity. Data/strided/random footprints are left cold.
    void warm_static_footprint(CoreId core);

    /// Restores construction state without reallocation: caches
    /// invalidated (replacement state re-seeded), bus/DRAM queues and
    /// counters cleared, tracer emptied, now() back to 0, programs
    /// forgotten. A reset machine is bit-identical to a freshly
    /// constructed Machine(config()).
    void reset();

    /// reset() except the cores keep their installed programs (and the
    /// machine keeps knowing which cores have one): the campaign hot
    /// path restarts runs with restart_program + warm_static_footprint
    /// instead of re-copying program bodies every run.
    void reset_keep_programs();

    /// Runs until every core with a program finishes, or max_cycles.
    RunResult run(Cycle max_cycles = 1'000'000'000);

    /// Runs until `core` finishes (contenders keep running meanwhile —
    /// the paper's measurement discipline: "rsk must not complete
    /// execution before the scua"), or max_cycles.
    RunResult run_until_core(CoreId core, Cycle max_cycles = 1'000'000'000);

    /// Allocation-free form of run_until_core for the campaign hot
    /// path: returns the core's finish cycle, or kNoCycle when the run
    /// hit max_cycles first.
    Cycle run_core(CoreId core, Cycle max_cycles = 1'000'000'000);

    /// Event-driven cycle skipping (default on): run() advances now()
    /// directly to the next component event when no component has work
    /// this cycle. Disabling forces naive cycle-by-cycle stepping — the
    /// reference the differential tests compare against; results are
    /// bit-identical either way.
    void set_cycle_skipping(bool enabled) noexcept {
        cycle_skipping_ = enabled;
    }
    [[nodiscard]] bool cycle_skipping() const noexcept {
        return cycle_skipping_;
    }

    /// Skip statistics since the last reset: fast-forwards taken and
    /// cycles jumped over. Pure observability — deterministic for a
    /// given run, never fed back into timing — surfaced per run by the
    /// campaign hot path through obs::TelemetryRegistry.
    [[nodiscard]] std::uint64_t events_skipped() const noexcept {
        return events_skipped_;
    }
    [[nodiscard]] std::uint64_t cycles_skipped() const noexcept {
        return cycles_skipped_;
    }

    [[nodiscard]] const MachineConfig& config() const noexcept {
        return config_;
    }
    [[nodiscard]] Cycle now() const noexcept { return now_; }
    [[nodiscard]] Bus& bus() noexcept { return *bus_; }
    [[nodiscard]] const Bus& bus() const noexcept { return *bus_; }
    [[nodiscard]] InOrderCore& core(CoreId id);
    [[nodiscard]] const InOrderCore& core(CoreId id) const;
    [[nodiscard]] WayPartitionedCache& l2() noexcept { return l2_; }
    [[nodiscard]] MemoryController& dram() noexcept { return dram_; }
    [[nodiscard]] Tracer& tracer() noexcept { return tracer_; }

    /// Arms the cycle-attribution profiler: from the next cycle on, every
    /// core cycle is classified into a StallCause bucket and bus waits
    /// are blamed per contender (see machine/attribution.h). Clears any
    /// previous attribution state; strictly observational — timing is
    /// bit-identical armed or not. Storage was sized at construction, so
    /// arming never allocates.
    void arm_attribution() noexcept;
    /// Detaches the profiler from every component (charging stops).
    void disarm_attribution() noexcept;
    [[nodiscard]] bool attribution_armed() const noexcept {
        return attr_ != nullptr;
    }

    /// Settles every in-progress interval up to now() so the closed
    /// accounting invariant holds: per core, the timeline buckets sum
    /// exactly to now(). Call once when a run ends (idempotent at a
    /// fixed now()); the result is then readable via attribution().
    void finalize_attribution();
    [[nodiscard]] const CycleAttribution& attribution() const noexcept {
        return attribution_;
    }

private:
    /// Per-core serializing port: one bus transaction in flight per core;
    /// excess requests queue locally (queue wait is not bus contention, so
    /// a queued request's ready cycle is re-based when it is issued).
    class Port final : public CoreBusPort {
    public:
        Port(Machine& machine, CoreId core)
            : machine_(machine), core_(core), queue_(4) {}
        void request(BusOp op, Addr addr, Cycle ready,
                     BusSlot slot) override;
        void request_baked(BusOp op, Addr addr, Cycle ready, BusSlot slot,
                           bool l2_hit, bool l2_evict) override;
        void try_issue(Cycle now);

    private:
        /// POD queue entry — the whole continuation is the BusSlot tag.
        /// `baked` routes the issue through the pre-decoded L2 outcome
        /// (issue_baked) instead of the live partition lookup.
        struct Queued {
            BusOp op = BusOp::kDataLoad;
            Addr addr = 0;
            Cycle ready = 0;
            BusSlot slot = BusSlot::kLoad;
            bool baked = false;
            bool l2_hit = false;
            bool l2_evict = false;
        };
        friend class Machine;
        Machine& machine_;
        CoreId core_;
        bool busy_ = false;
        RingBuffer<Queued> queue_;
    };

    void issue(CoreId core, BusOp op, Addr addr, Cycle ready, BusSlot slot);
    /// issue() with the L2 outcome pre-decoded into the replay script:
    /// injects the partition statistics and posts the right transaction
    /// shape without reading the live partition (replay mode, storeless
    /// programs only — the partition never holds dirty lines, so no
    /// victim writeback can be owed).
    void issue_baked(CoreId core, BusOp op, Addr addr, Cycle ready,
                     BusSlot slot, bool l2_hit, bool l2_evict);
    /// Completion fan-in from the bus / memory controller: the fixed
    /// dispatch table that replaced the per-request closures. `tag`
    /// carries the BusSlot through the whole split-transaction chain.
    void bus_complete(const BusRequest& request, Cycle completion) override;
    void dram_complete(const DramRequest& request,
                       Cycle completion) override;
    /// Frees the port, resumes the core's continuation, issues the next
    /// queued request — the shared tail of every transaction.
    void finish_transaction(CoreId core, BusSlot slot, Cycle completion);

    /// Simulates cycle now_, then ++now_. Returns the earliest cycle at
    /// which any component does work again — computed in the same pass
    /// as the ticks, so the skipper costs one fused scan, not two.
    Cycle step();
    /// One loop iteration of run(): either fast-forwards now_ to the
    /// earliest component event (never beyond `limit`) or simulates one
    /// cycle. `next_hint` is the previous step's return value (pass
    /// now() initially). Stall PMCs of skipped cycles are charged in
    /// bulk so both modes report identical statistics.
    Cycle step_or_skip(Cycle next_hint, Cycle limit);

    MachineConfig config_;
    std::unique_ptr<Bus> bus_;
    WayPartitionedCache l2_;
    MemoryController dram_;
    Tracer tracer_;
    // Ports must not relocate: cores hold references.
    std::vector<std::unique_ptr<Port>> ports_;
    std::vector<std::unique_ptr<InOrderCore>> cores_;
    std::vector<bool> has_program_;
    /// Per-core next-event cache: a core whose entry is beyond now_
    /// provably cannot act this cycle (cores are pure reactors to time
    /// and to bus completions, and finish_transaction rewinds the entry
    /// on completion), so step() skips its tick entirely. Entry 0 =
    /// unknown, always tick; programless cores hold kNoCycle.
    std::vector<Cycle> core_next_;
    Cycle now_ = 0;
    std::uint64_t events_skipped_ = 0;  ///< fast-forwards since reset
    std::uint64_t cycles_skipped_ = 0;  ///< cycles jumped since reset
    bool cycle_skipping_ = true;
    bool dram_refresh_ = false;  ///< config.dram.refresh_interval > 0
    /// Attribution storage (sized at construction) and the armed flag:
    /// attr_ points at attribution_ while armed, else nullptr.
    CycleAttribution attribution_;
    CycleAttribution* attr_ = nullptr;
};

}  // namespace rrb
