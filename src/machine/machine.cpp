#include "machine/machine.h"

#include <algorithm>

#include "sim/contract.h"

namespace rrb {

Machine::Machine(MachineConfig config)
    : config_(config),
      l2_(config.l2_geometry, config.num_cores, config.l2_replacement,
          config.l2_write_policy, config.l2_alloc_policy),
      dram_(config.dram) {
    config_.validate();
    bus_ = std::make_unique<Bus>(
        config_.num_cores,
        make_arbiter(config_.arbiter, config_.num_cores,
                     config_.tdma_slot_cycles, config_.wrr_weights));
    bus_->attach_tracer(&tracer_);
    dram_.attach_tracer(&tracer_);

    ports_.reserve(config_.num_cores);
    cores_.reserve(config_.num_cores);
    for (CoreId c = 0; c < config_.num_cores; ++c) {
        ports_.push_back(std::make_unique<Port>(*this, c));
        cores_.push_back(
            std::make_unique<InOrderCore>(c, config_.core, *ports_[c]));
    }
    has_program_.assign(config_.num_cores, false);
}

InOrderCore& Machine::core(CoreId id) {
    RRB_REQUIRE(id < cores_.size(), "core id out of range");
    return *cores_[id];
}

const InOrderCore& Machine::core(CoreId id) const {
    RRB_REQUIRE(id < cores_.size(), "core id out of range");
    return *cores_[id];
}

void Machine::load_program(CoreId core, Program program,
                           Cycle start_delay) {
    RRB_REQUIRE(core < cores_.size(), "core id out of range");
    cores_[core]->set_program(std::move(program), start_delay);
    has_program_[core] = true;
}

void Machine::warm_static_footprint(CoreId core_id) {
    RRB_REQUIRE(core_id < cores_.size(), "core id out of range");
    RRB_REQUIRE(has_program_[core_id], "core has no program");
    InOrderCore& core = *cores_[core_id];
    const Program& program = core.program();
    const std::uint32_t il1_line = core.il1().geometry().line_bytes;
    const std::uint32_t l2_line = config_.l2_geometry.line_bytes;

    for (std::size_t i = 0; i < program.body.size(); ++i) {
        const Addr pc = program.code_base + i * Program::kInstrBytes;
        core.il1().warm(pc / il1_line * il1_line);
        const Instruction& instr = program.body[i];
        if ((instr.kind == OpKind::kLoad || instr.kind == OpKind::kStore) &&
            instr.addr.kind == AddrPattern::Kind::kFixed) {
            l2_.warm(core_id, instr.addr.base / l2_line * l2_line);
        }
    }
}

void Machine::Port::request(BusOp op, Addr addr, Cycle ready,
                            std::function<void(Cycle)> on_complete) {
    queue_.push_back({op, addr, ready, std::move(on_complete)});
    try_issue(machine_.now_);
}

void Machine::Port::try_issue(Cycle now) {
    if (busy_ || queue_.empty()) return;
    Queued next = std::move(queue_.front());
    queue_.pop_front();
    busy_ = true;
    // Waiting behind our own earlier transaction is core-local, not bus
    // contention: re-base the ready cycle to when the port became free.
    const Cycle ready = std::max(next.ready, now);
    machine_.issue(core_, next.op, next.addr, ready,
                   std::move(next.on_complete));
}

void Machine::issue(CoreId core, BusOp op, Addr addr, Cycle ready,
                    std::function<void(Cycle)> on_complete) {
    Port& port = *ports_[core];

    switch (op) {
        case BusOp::kDataStore: {
            BusRequest req{core, op, addr, ready, config_.store_service_cycles,
                           0};
            bus_->post(req, [this, &port, cb = std::move(on_complete)](
                                const BusRequest& r, Cycle completion) {
                l2_.write(r.core, r.addr);  // write-through into the L2
                port.busy_ = false;
                if (cb) cb(completion);
                port.try_issue(completion);
            });
            return;
        }
        case BusOp::kDataLoad:
        case BusOp::kInstrFetch: {
            // The L2 outcome is deterministic; decide it now to size the
            // transaction (hit: bus held until the L2 answers; miss: split).
            const CacheAccess l2_access = l2_.read(core, addr);
            if (l2_access.hit) {
                BusRequest req{core, op, addr, ready,
                               config_.load_hit_service(), 0};
                bus_->post(req, [this, &port, cb = std::move(on_complete)](
                                    const BusRequest& r, Cycle completion) {
                    (void)r;
                    port.busy_ = false;
                    if (cb) cb(completion);
                    port.try_issue(completion);
                });
                return;
            }
            // Split transaction: address phase, DRAM access, fill response.
            if (l2_access.dirty_eviction && l2_access.victim_line) {
                const Addr victim_addr =
                    *l2_access.victim_line * config_.l2_geometry.line_bytes;
                dram_.enqueue({core, victim_addr % config_.dram.capacity_bytes,
                               /*is_write=*/true, now_, 0},
                              nullptr);
            }
            BusRequest miss_req{core, BusOp::kMissRequest, addr, ready,
                                config_.miss_request_cycles, 0};
            bus_->post(miss_req, [this, &port, cb = std::move(on_complete)](
                                     const BusRequest& r, Cycle completion) {
                dram_.enqueue(
                    {r.core, r.addr % config_.dram.capacity_bytes,
                     /*is_write=*/false, completion, 0},
                    [this, &port, cb](const DramRequest& d, Cycle dram_done) {
                        BusRequest fill{d.core, BusOp::kFillResponse, d.addr,
                                        dram_done,
                                        config_.fill_response_cycles, 0};
                        bus_->post(fill, [&port, cb](const BusRequest&,
                                                     Cycle fill_done) {
                            port.busy_ = false;
                            if (cb) cb(fill_done);
                            port.try_issue(fill_done);
                        });
                    });
            });
            return;
        }
        case BusOp::kMissRequest:
        case BusOp::kFillResponse:
            break;  // internal ops are never issued through ports
    }
    RRB_ENSURE(false);
}

void Machine::step() {
    bus_->complete_phase(now_);
    dram_.tick(now_);
    for (CoreId c = 0; c < cores_.size(); ++c) {
        if (has_program_[c]) cores_[c]->tick(now_);
    }
    bus_->arbitrate_phase(now_);
    ++now_;
}

RunResult Machine::run(Cycle max_cycles) {
    const Cycle start = now_;
    auto all_done = [&] {
        for (CoreId c = 0; c < cores_.size(); ++c) {
            if (has_program_[c] && !cores_[c]->done()) return false;
        }
        return true;
    };
    while (!all_done() && now_ - start < max_cycles) step();

    RunResult result;
    result.cycles = now_ - start;
    result.deadline_reached = !all_done();
    result.finish_cycle.resize(cores_.size(), kNoCycle);
    for (CoreId c = 0; c < cores_.size(); ++c) {
        if (has_program_[c] && cores_[c]->done()) {
            result.finish_cycle[c] = cores_[c]->finish_cycle();
        }
    }
    return result;
}

RunResult Machine::run_until_core(CoreId core_id, Cycle max_cycles) {
    RRB_REQUIRE(core_id < cores_.size(), "core id out of range");
    RRB_REQUIRE(has_program_[core_id], "core has no program");
    const Cycle start = now_;
    while (!cores_[core_id]->done() && now_ - start < max_cycles) step();

    RunResult result;
    result.cycles = now_ - start;
    result.deadline_reached = !cores_[core_id]->done();
    result.finish_cycle.resize(cores_.size(), kNoCycle);
    for (CoreId c = 0; c < cores_.size(); ++c) {
        if (has_program_[c] && cores_[c]->done()) {
            result.finish_cycle[c] = cores_[c]->finish_cycle();
        }
    }
    return result;
}

}  // namespace rrb
