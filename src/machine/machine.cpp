#include "machine/machine.h"

#include <algorithm>

#include "sim/contract.h"

namespace rrb {

namespace {

std::uint64_t slot_tag(BusSlot slot) noexcept {
    return static_cast<std::uint64_t>(slot);
}

BusSlot tag_slot(std::uint64_t tag) noexcept {
    return static_cast<BusSlot>(tag);
}

}  // namespace

Machine::Machine(MachineConfig config)
    : config_(config),
      l2_(config.l2_geometry, config.num_cores, config.l2_replacement,
          config.l2_write_policy, config.l2_alloc_policy),
      dram_(config.dram),
      attribution_(config.num_cores) {
    config_.validate();
    bus_ = std::make_unique<Bus>(
        config_.num_cores,
        make_arbiter(config_.arbiter, config_.num_cores,
                     config_.tdma_slot_cycles, config_.wrr_weights));
    bus_->attach_tracer(&tracer_);
    bus_->attach_client(this);
    dram_.attach_tracer(&tracer_);
    dram_.attach_client(this);

    ports_.reserve(config_.num_cores);
    cores_.reserve(config_.num_cores);
    has_program_.reserve(config_.num_cores);
    for (CoreId c = 0; c < config_.num_cores; ++c) {
        ports_.push_back(std::make_unique<Port>(*this, c));
        cores_.push_back(
            std::make_unique<InOrderCore>(c, config_.core, *ports_[c]));
    }
    has_program_.assign(config_.num_cores, false);
    core_next_.assign(config_.num_cores, kNoCycle);
    dram_refresh_ = config_.dram.refresh_interval > 0;
}

InOrderCore& Machine::core(CoreId id) {
    RRB_REQUIRE(id < cores_.size(), "core id out of range");
    return *cores_[id];
}

const InOrderCore& Machine::core(CoreId id) const {
    RRB_REQUIRE(id < cores_.size(), "core id out of range");
    return *cores_[id];
}

void Machine::load_program(CoreId core, Program program,
                           Cycle start_delay) {
    RRB_REQUIRE(core < cores_.size(), "core id out of range");
    cores_[core]->set_program(std::move(program), start_delay);
    has_program_[core] = true;
    core_next_[core] = 0;
}

void Machine::restart_program(CoreId core, Cycle start_delay) {
    RRB_REQUIRE(core < cores_.size(), "core id out of range");
    RRB_REQUIRE(has_program_[core], "core has no program");
    cores_[core]->restart(start_delay);
    core_next_[core] = 0;
}

void Machine::attach_replay(CoreId core, const replay::MicroOpScript* script) {
    RRB_REQUIRE(core < cores_.size(), "core id out of range");
    RRB_REQUIRE(script == nullptr || attr_ == nullptr,
                "attribution-armed runs must interpret");
    cores_[core]->attach_script(script);
}

void Machine::warm_static_footprint(CoreId core_id) {
    RRB_REQUIRE(core_id < cores_.size(), "core id out of range");
    RRB_REQUIRE(has_program_[core_id], "core has no program");
    InOrderCore& core = *cores_[core_id];
    const Program& program = core.program();
    const std::uint32_t il1_line = core.il1().geometry().line_bytes;
    const std::uint32_t l2_line = config_.l2_geometry.line_bytes;
    // A replaying core never consults its IL1 state (outcomes are baked
    // into the script, whose decoder replicated this warm), so the
    // per-run IL1 warm is pure overhead for it. Same for its L2
    // partition when the script carries baked L2 outcomes; otherwise
    // the partition is live and the warm stays.
    const bool warm_il1 = !core.has_script();
    const bool warm_l2 = !core.replay_l2_baked();
    if (!warm_il1 && !warm_l2) return;

    for (std::size_t i = 0; i < program.body.size(); ++i) {
        if (warm_il1) {
            const Addr pc = program.code_base + i * Program::kInstrBytes;
            core.il1().warm(pc / il1_line * il1_line);
        }
        if (!warm_l2) continue;
        const Instruction& instr = program.body[i];
        if ((instr.kind == OpKind::kLoad || instr.kind == OpKind::kStore) &&
            instr.addr.kind == AddrPattern::Kind::kFixed) {
            l2_.warm(core_id, instr.addr.base / l2_line * l2_line);
        }
    }
}

void Machine::reset_keep_programs() {
    now_ = 0;
    events_skipped_ = 0;
    cycles_skipped_ = 0;
    if (attr_ != nullptr) attribution_.reset();
    bus_->reset();
    dram_.reset();
    l2_.reset();
    tracer_.clear();
    for (std::unique_ptr<Port>& port : ports_) {
        port->busy_ = false;
        port->queue_.clear();
    }
    for (std::unique_ptr<InOrderCore>& core : cores_) core->reset();
    for (CoreId c = 0; c < cores_.size(); ++c) {
        core_next_[c] = has_program_[c] ? 0 : kNoCycle;
    }
}

void Machine::reset() {
    reset_keep_programs();
    std::fill(has_program_.begin(), has_program_.end(), false);
    std::fill(core_next_.begin(), core_next_.end(), kNoCycle);
}

void Machine::Port::request(BusOp op, Addr addr, Cycle ready, BusSlot slot) {
    if (!busy_ && queue_.empty()) {
        // Idle port: issue directly, skipping the queue round-trip (the
        // ready re-base below is a no-op for a fresh request, whose
        // ready is always >= now).
        busy_ = true;
        machine_.issue(core_, op, addr, std::max(ready, machine_.now_),
                       slot);
        return;
    }
    queue_.push_back({op, addr, ready, slot});
}

void Machine::Port::request_baked(BusOp op, Addr addr, Cycle ready,
                                  BusSlot slot, bool l2_hit, bool l2_evict) {
    if (!busy_ && queue_.empty()) {
        busy_ = true;
        machine_.issue_baked(core_, op, addr,
                             std::max(ready, machine_.now_), slot, l2_hit,
                             l2_evict);
        return;
    }
    queue_.push_back({op, addr, ready, slot, /*baked=*/true, l2_hit,
                      l2_evict});
}

void Machine::Port::try_issue(Cycle now) {
    if (busy_ || queue_.empty()) return;
    const Queued next = queue_.front();
    queue_.pop_front();
    busy_ = true;
    // Waiting behind our own earlier transaction is core-local, not bus
    // contention: re-base the ready cycle to when the port became free.
    const Cycle ready = std::max(next.ready, now);
    if (machine_.attr_ != nullptr && next.slot != BusSlot::kStoreDrain) {
        // A demand request spent [ready, rebased) behind this core's own
        // earlier transaction — self-inflicted, not bus contention.
        machine_.attr_->charge(core_, StallCause::kCompute, next.ready);
        machine_.attr_->charge(core_, StallCause::kPortQueue, ready);
    }
    if (next.baked) {
        machine_.issue_baked(core_, next.op, next.addr, ready, next.slot,
                             next.l2_hit, next.l2_evict);
    } else {
        machine_.issue(core_, next.op, next.addr, ready, next.slot);
    }
}

void Machine::issue(CoreId core, BusOp op, Addr addr, Cycle ready,
                    BusSlot slot) {
    switch (op) {
        case BusOp::kDataStore: {
            bus_->post({core, op, addr, ready, config_.store_service_cycles,
                        slot_tag(slot)});
            return;
        }
        case BusOp::kDataLoad:
        case BusOp::kInstrFetch: {
            // The L2 outcome is deterministic; decide it now to size the
            // transaction (hit: bus held until the L2 answers; miss: split).
            const CacheAccess l2_access = l2_.read(core, addr);
            if (l2_access.hit) {
                bus_->post({core, op, addr, ready,
                            config_.load_hit_service(), slot_tag(slot)});
                return;
            }
            // Split transaction: address phase, DRAM access, fill response.
            if (l2_access.dirty_eviction && l2_access.victim_line) {
                const Addr victim_addr =
                    *l2_access.victim_line * config_.l2_geometry.line_bytes;
                dram_.enqueue({core,
                               victim_addr % config_.dram.capacity_bytes,
                               /*is_write=*/true, now_, 0});
            }
            bus_->post({core, BusOp::kMissRequest, addr, ready,
                        config_.miss_request_cycles, slot_tag(slot)});
            return;
        }
        case BusOp::kMissRequest:
        case BusOp::kFillResponse:
            break;  // internal ops are never issued through ports
    }
    RRB_ENSURE(false);
}

void Machine::issue_baked(CoreId core, BusOp op, Addr addr, Cycle ready,
                          BusSlot slot, bool l2_hit, bool l2_evict) {
    // Statistics injection stands in for the live partition read; the
    // transaction shape mirrors issue()'s load/fetch case exactly. No
    // victim-writeback branch: a baked (storeless) partition never
    // holds a dirty line, which the decoder enforced.
    l2_.replay_read(core, l2_hit, l2_evict);
    if (l2_hit) {
        bus_->post({core, op, addr, ready, config_.load_hit_service(),
                    slot_tag(slot)});
        return;
    }
    bus_->post({core, BusOp::kMissRequest, addr, ready,
                config_.miss_request_cycles, slot_tag(slot)});
}

void Machine::finish_transaction(CoreId core, BusSlot slot,
                                 Cycle completion) {
    Port& port = *ports_[core];
    port.busy_ = false;
    cores_[core]->on_bus_complete(slot, completion);
    port.try_issue(completion);
    core_next_[core] = 0;  // completion may unblock the core: re-tick
}

void Machine::bus_complete(const BusRequest& request, Cycle completion) {
    switch (request.op) {
        case BusOp::kDataStore:
            l2_.write(request.core, request.addr);  // write-through into L2
            finish_transaction(request.core, tag_slot(request.tag),
                               completion);
            return;
        case BusOp::kDataLoad:
        case BusOp::kInstrFetch:
            // An L2-hit transaction: data arrives with the bus release.
            finish_transaction(request.core, tag_slot(request.tag),
                               completion);
            return;
        case BusOp::kMissRequest:
            // Address phase done; the line is fetched from DRAM and comes
            // back as a fill response carrying the same continuation tag.
            dram_.enqueue({request.core,
                           request.addr % config_.dram.capacity_bytes,
                           /*is_write=*/false, completion, request.tag});
            return;
        case BusOp::kFillResponse:
            finish_transaction(request.core, tag_slot(request.tag),
                               completion);
            return;
    }
    RRB_ENSURE(false);
}

void Machine::dram_complete(const DramRequest& request, Cycle completion) {
    if (request.is_write) return;  // victim writeback: nobody waits
    bus_->post({request.core, BusOp::kFillResponse, request.addr, completion,
                config_.fill_response_cycles, request.tag});
}

Cycle Machine::step() {
    bus_->complete_phase(now_);  // may rewind core_next_ entries to 0
    // The memory controller only acts when it holds work or refresh is
    // configured; requests enqueued during the completion phase above
    // are visible to this check, so the gate is exact.
    const bool dram_active = dram_refresh_ || !dram_.idle();
    if (dram_active) dram_.tick(now_);
    const Cycle after = now_ + 1;
    Cycle next = kNoCycle;
    for (CoreId c = 0; c < cores_.size(); ++c) {
        // Programless cores hold kNoCycle permanently, so this one gate
        // covers both "no program" and "provably inert this cycle".
        if (core_next_[c] > now_) {
            next = std::min(next, core_next_[c]);
            continue;
        }
        // A core's state is final for this cycle once it ticked (bus
        // completions land in the next stepped cycle's phase 1), so
        // tick hands back the next event it just computed in-branch.
        Cycle core_next = cores_[c]->tick(now_);
        if (core_next < after) core_next = after;
        core_next_[c] = core_next;
        next = std::min(next, core_next);
    }
    bus_->arbitrate_phase(now_);
    ++now_;
    next = std::min(next, bus_->next_event_cycle(now_));
    // Core ticks may have enqueued victim writebacks: re-check activity.
    if (dram_refresh_ || !dram_.idle()) {
        next = std::min(next, dram_.next_event_cycle(now_));
    }
    return next;
}

Cycle Machine::step_or_skip(Cycle next_hint, Cycle limit) {
    if (cycle_skipping_ && next_hint > now_) {
        // No component does observable work before the hint (kNoCycle =
        // never, i.e. only the deadline stops the run): fast-forward.
        const Cycle target = std::min(next_hint, limit);
        ++events_skipped_;
        cycles_skipped_ += target - now_;
        now_ = target;
        if (now_ >= limit) return now_;  // deadline hit mid-skip
    }
    return step();
}

RunResult Machine::run(Cycle max_cycles) {
    const Cycle start = now_;
    const Cycle limit = start + max_cycles;
    auto all_done = [&] {
        for (CoreId c = 0; c < cores_.size(); ++c) {
            if (has_program_[c] && !cores_[c]->done()) return false;
        }
        return true;
    };
    Cycle next_hint = now_;
    while (!all_done() && now_ < limit) {
        next_hint = step_or_skip(next_hint, limit);
    }

    RunResult result;
    result.cycles = now_ - start;
    result.deadline_reached = !all_done();
    result.finish_cycle.resize(cores_.size(), kNoCycle);
    for (CoreId c = 0; c < cores_.size(); ++c) {
        if (has_program_[c] && cores_[c]->done()) {
            result.finish_cycle[c] = cores_[c]->finish_cycle();
        }
    }
    return result;
}

Cycle Machine::run_core(CoreId core_id, Cycle max_cycles) {
    RRB_REQUIRE(core_id < cores_.size(), "core id out of range");
    RRB_REQUIRE(has_program_[core_id], "core has no program");
    const Cycle start = now_;
    const Cycle limit = start + max_cycles;
    const InOrderCore& target = *cores_[core_id];
    Cycle next_hint = now_;
    while (!target.done() && now_ < limit) {
        next_hint = step_or_skip(next_hint, limit);
    }
    return target.done() ? target.finish_cycle() : kNoCycle;
}

void Machine::arm_attribution() noexcept {
    attribution_.reset();
    attr_ = &attribution_;
    bus_->attach_attribution(attr_);
    dram_.attach_attribution(attr_);
    for (std::unique_ptr<InOrderCore>& core : cores_) {
        // Replay elides the per-instruction attribution charge points;
        // an armed run must interpret, so scripts come off first.
        core->attach_script(nullptr);
        core->attach_attribution(attr_);
    }
}

void Machine::disarm_attribution() noexcept {
    attr_ = nullptr;
    bus_->attach_attribution(nullptr);
    dram_.attach_attribution(nullptr);
    for (std::unique_ptr<InOrderCore>& core : cores_) {
        core->attach_attribution(nullptr);
    }
}

void Machine::finalize_attribution() {
    RRB_REQUIRE(attr_ != nullptr, "attribution is not armed");
    const Cycle horizon = now_;
    // Every demand request lives in exactly one holder — bus, memory
    // controller, or its core's port queue — and transitions between
    // holders settle attribution inside the same event dispatch, so the
    // flushes below cover [cursor, horizon) exactly once per core.
    bus_->flush_attribution(horizon);
    dram_.flush_attribution(horizon);
    for (CoreId c = 0; c < ports_.size(); ++c) {
        const Port& port = *ports_[c];
        for (std::size_t i = 0; i < port.queue_.size(); ++i) {
            const Port::Queued& queued = port.queue_.at(i);
            if (queued.slot == BusSlot::kStoreDrain) continue;
            const Cycle ready = std::min(queued.ready, horizon);
            attr_->charge(c, StallCause::kCompute, ready);
            attr_->charge(c, StallCause::kPortQueue, horizon);
        }
    }
    for (CoreId c = 0; c < cores_.size(); ++c) {
        if (!has_program_[c]) {
            attr_->charge(c, StallCause::kIdle, horizon);
            continue;
        }
        // Cores with a demand request in flight were settled by the
        // holder flushes above; the rest own their tail interval.
        if (!cores_[c]->waiting_on_bus()) {
            attr_->charge(c, attr_->pending(c), horizon);
        }
    }
}

RunResult Machine::run_until_core(CoreId core_id, Cycle max_cycles) {
    const Cycle start = now_;
    const Cycle finish = run_core(core_id, max_cycles);

    RunResult result;
    result.cycles = now_ - start;
    result.deadline_reached = finish == kNoCycle;
    result.finish_cycle.resize(cores_.size(), kNoCycle);
    for (CoreId c = 0; c < cores_.size(); ++c) {
        if (has_program_[c] && cores_[c]->done()) {
            result.finish_cycle[c] = cores_[c]->finish_cycle();
        }
    }
    return result;
}

}  // namespace rrb
