#include "machine/attribution.h"

#include <algorithm>

namespace rrb {

const char* to_string(StallCause cause) noexcept {
    switch (cause) {
        case StallCause::kIdle: return "idle";
        case StallCause::kCompute: return "compute";
        case StallCause::kStoreGate: return "store_gate";
        case StallCause::kStoreBufferFull: return "store_buffer_full";
        case StallCause::kPortQueue: return "port_queue";
        case StallCause::kBusWait: return "bus_wait";
        case StallCause::kBusDeadSlot: return "bus_dead_slot";
        case StallCause::kBusService: return "bus_service";
        case StallCause::kDramQueue: return "dram_queue";
        case StallCause::kDramRefresh: return "dram_refresh";
        case StallCause::kDramRowHit: return "dram_row_hit";
        case StallCause::kDramRowMiss: return "dram_row_miss";
        case StallCause::kDramRowConflict: return "dram_row_conflict";
        case StallCause::kDrainWait: return "drain_wait";
        case StallCause::kCauseCount: break;
    }
    return "?";
}

CycleAttribution::CycleAttribution(std::size_t num_cores)
    : num_cores_(num_cores),
      slot_stride_(kSlotBlame + num_cores),
      timeline_(num_cores * kStallCauseCount, 0),
      wait_slots_(num_cores * (kSlotBlame + num_cores), 0),
      charged_until_(num_cores, 0),
      pending_(num_cores, StallCause::kIdle) {}

void CycleAttribution::reset() noexcept {
    std::fill(timeline_.begin(), timeline_.end(), 0);
    std::fill(wait_slots_.begin(), wait_slots_.end(), 0);
    std::fill(charged_until_.begin(), charged_until_.end(), 0);
    std::fill(pending_.begin(), pending_.end(), StallCause::kIdle);
    active_grant_ = 0;
}

std::uint64_t CycleAttribution::total(CoreId core) const noexcept {
    std::uint64_t sum = 0;
    for (std::size_t c = 0; c < kStallCauseCount; ++c) {
        sum += timeline_[core * kStallCauseCount + c];
    }
    return sum;
}

std::uint64_t CycleAttribution::blamed_total(CoreId victim) const noexcept {
    const std::uint64_t* row =
        wait_slots_.data() + victim * slot_stride_ + kSlotBlame;
    std::uint64_t sum = 0;
    for (std::size_t c = 0; c < num_cores_; ++c) sum += row[c];
    return sum;
}

}  // namespace rrb
