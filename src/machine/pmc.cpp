#include "machine/pmc.h"

#include <cstdio>

#include "sim/contract.h"

namespace rrb {

const char* to_string(PmcId id) noexcept {
    switch (id) {
        case PmcId::kCycles: return "cycles";
        case PmcId::kInstructions: return "instructions";
        case PmcId::kDcacheMisses: return "dcache-misses";
        case PmcId::kIcacheMisses: return "icache-misses";
        case PmcId::kBusRequests: return "bus-requests";
        case PmcId::kBusWaitCycles: return "bus-wait-cycles";
        case PmcId::kCoreBusUtilization: return "core-bus-busy";
        case PmcId::kTotalBusUtilization: return "total-bus-busy";
    }
    return "?";
}

std::vector<PmcSample> PmcSnapshot::raw() const {
    return {
        {PmcId::kCycles, cycles},
        {PmcId::kInstructions, instructions},
        {PmcId::kDcacheMisses, dcache_misses},
        {PmcId::kIcacheMisses, icache_misses},
        {PmcId::kBusRequests, bus_requests},
        {PmcId::kBusWaitCycles, bus_wait_cycles},
        {PmcId::kCoreBusUtilization, core_bus_busy_cycles},
        {PmcId::kTotalBusUtilization, total_bus_busy_cycles},
    };
}

std::string PmcSnapshot::format() const {
    std::string out;
    char line[96];
    for (const PmcSample& sample : raw()) {
        std::snprintf(line, sizeof line, "  0x%02x %-16s %12llu\n",
                      static_cast<unsigned>(sample.id), to_string(sample.id),
                      static_cast<unsigned long long>(sample.value));
        out += line;
    }
    std::snprintf(line, sizeof line, "       %-16s %11.1f%%\n",
                  "core-utilization", 100.0 * core_bus_utilization());
    out += line;
    std::snprintf(line, sizeof line, "       %-16s %11.1f%%\n",
                  "total-utilization", 100.0 * total_bus_utilization());
    out += line;
    return out;
}

PmcSnapshot read_pmcs(const Machine& machine, CoreId core) {
    RRB_REQUIRE(core < machine.config().num_cores, "core id out of range");
    PmcSnapshot snap;
    snap.cycles = machine.now();

    const InOrderCore& cpu = machine.core(core);
    snap.instructions = cpu.stats().instructions;
    snap.dcache_misses = cpu.dl1().stats().misses();
    snap.icache_misses = cpu.il1().stats().misses();

    const BusCoreCounters& bus = machine.bus().counters(core);
    snap.bus_requests = bus.requests;
    snap.bus_wait_cycles = bus.wait_cycles;
    snap.core_bus_busy_cycles = bus.busy_cycles;
    snap.total_bus_busy_cycles = machine.bus().total_busy_cycles();
    return snap;
}

}  // namespace rrb
