// Performance-monitoring-counter facade in the style of the LEON4/NGMP
// counter file.
//
// Section 4.3: "In many architectures, performance monitoring counter
// support exists to measure the bus utilization. For instance, counters
// 0x17 and 0x18 in the Cobham Gaisler NGMP provide per-core and overall
// bus utilization." This module presents the simulator's statistics
// through that lens, so the methodology code reads like it would on the
// real part: everything the estimator consumes is available here, and
// nothing else.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "machine/machine.h"
#include "sim/types.h"

namespace rrb {

/// NGMP-flavoured counter identifiers.
enum class PmcId : std::uint8_t {
    kCycles = 0x01,             ///< elapsed cycles since reset
    kInstructions = 0x02,       ///< retired instructions (per core)
    kDcacheMisses = 0x08,       ///< DL1 misses (per core)
    kIcacheMisses = 0x09,       ///< IL1 misses (per core)
    kBusRequests = 0x15,        ///< bus transactions issued (per core)
    kBusWaitCycles = 0x16,      ///< cycles spent waiting for grant
    kCoreBusUtilization = 0x17, ///< cycles this core held the bus
    kTotalBusUtilization = 0x18,///< cycles the bus was busy (any core)
};

[[nodiscard]] const char* to_string(PmcId id) noexcept;

struct PmcSample {
    PmcId id;
    std::uint64_t value;
};

/// A full counter snapshot for one core at the machine's current cycle.
struct PmcSnapshot {
    Cycle cycles = 0;
    std::uint64_t instructions = 0;
    std::uint64_t dcache_misses = 0;
    std::uint64_t icache_misses = 0;
    std::uint64_t bus_requests = 0;
    std::uint64_t bus_wait_cycles = 0;
    std::uint64_t core_bus_busy_cycles = 0;
    std::uint64_t total_bus_busy_cycles = 0;

    /// Derived, as the NGMP tooling reports them.
    [[nodiscard]] double core_bus_utilization() const noexcept {
        return cycles == 0 ? 0.0
                           : static_cast<double>(core_bus_busy_cycles) /
                                 static_cast<double>(cycles);
    }
    [[nodiscard]] double total_bus_utilization() const noexcept {
        return cycles == 0 ? 0.0
                           : static_cast<double>(total_bus_busy_cycles) /
                                 static_cast<double>(cycles);
    }
    /// Mean per-request wait — what det/nr approximates from outside.
    [[nodiscard]] double mean_wait() const noexcept {
        return bus_requests == 0
                   ? 0.0
                   : static_cast<double>(bus_wait_cycles) /
                         static_cast<double>(bus_requests);
    }

    /// The raw counter list (id, value), in id order.
    [[nodiscard]] std::vector<PmcSample> raw() const;
    /// One-line-per-counter rendering for reports.
    [[nodiscard]] std::string format() const;
};

/// Reads the counters of `core` from a machine.
[[nodiscard]] PmcSnapshot read_pmcs(const Machine& machine, CoreId core);

}  // namespace rrb
