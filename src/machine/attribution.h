// Cycle attribution: every machine cycle of every core gets a cause.
//
// The paper's contention bounds argue about *where* WCET inflation comes
// from, but PMCs only expose aggregates (wait cycles, busy cycles). This
// module closes the gap: when armed, the machine classifies every cycle
// of every core's timeline into one of the StallCause buckets — compute,
// arbitration wait, bus service, DRAM queue/row-class latency, refresh,
// TDMA dead slots, store-buffer stalls, idle — under a *closed
// accounting invariant*: per core, the buckets sum exactly to the
// machine's elapsed cycles (asserted by tests/test_attribution.cpp).
//
// On top of the per-core timeline sits the per-contender blame matrix:
// each cycle a request waits for the bus while some other core holds the
// grant is blamed on that *specific* contender, so a campaign can report
// "34% of the victim's stall cycles were paid to contender 2" instead of
// just "the victim waited". Bus wait decomposes as
//
//   wait_cycles(V) == sum_W blame[V][W] + dead_slot[V]
//
// (dead slots are waiting cycles nobody held the grant for — TDMA slot
// gaps; provably zero under work-conserving arbiters), cross-checked
// against the BusCoreCounters PMCs by test.
//
// Mechanics: a single per-core *demand-timeline cursor* (charged_until_)
// sweeps forward through time, and every component a demand request
// passes through — core, port queue, bus, DRAM — charges the interval it
// was responsible for up to the current event time. Intervals whose
// cause is only known in hindsight (compute until the next event, stall
// retries) ride `pending_`: the cause of the not-yet-charged interval,
// charged by the next event or by finalize. Store drains and victim
// writebacks are background traffic the core never waits on; they
// appear in the blame matrix (they hold the bus) but never on the
// demand timeline.
//
// Attribution is strictly observational: armed or not, it never feeds a
// value back into timing, so finish cycles are bit-identical either way
// (bench_hotpath asserts this, plus zero steady-state allocations — all
// storage is sized at Machine construction).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/types.h"

namespace rrb {

/// Where a core's cycle went. Order is part of the telemetry v2 schema;
/// append only.
enum class StallCause : std::uint8_t {
    kIdle = 0,          ///< before release (start delay) or after finish
    kCompute,           ///< issue/execute, cache hits, loop control
    kStoreGate,         ///< load gated behind the draining store buffer
    kStoreBufferFull,   ///< store stalled on a full store buffer
    kPortQueue,         ///< queued behind this core's own earlier request
    kBusWait,           ///< waiting for grant (blamed per contender)
    kBusDeadSlot,       ///< waiting while nobody held the bus (TDMA gaps)
    kBusService,        ///< holding the bus (request + fill transfers)
    kDramQueue,         ///< queued in the memory controller
    kDramRefresh,       ///< queue time overlapping a refresh window
    kDramRowHit,        ///< DRAM service, open-row hit class
    kDramRowMiss,       ///< DRAM service, closed-row miss class
    kDramRowConflict,   ///< DRAM service, row-conflict class
    kDrainWait,         ///< retired, waiting for the store buffer to drain
    kCauseCount
};

inline constexpr std::size_t kStallCauseCount =
    static_cast<std::size_t>(StallCause::kCauseCount);

[[nodiscard]] const char* to_string(StallCause cause) noexcept;

/// Per-core cause timelines + the per-contender blame matrix for one
/// machine. Owned by Machine, armed on demand; all storage is sized at
/// construction so arming, charging and resetting never allocate.
class CycleAttribution {
public:
    explicit CycleAttribution(std::size_t num_cores);

    /// Back to the all-zero post-construction state (no reallocation).
    void reset() noexcept;

    // --------------------------------------------- demand timeline
    /// Charges [charged_until(core), until) to `cause` and advances the
    /// cursor. `until` values at or before the cursor charge nothing —
    /// callers may re-charge conservatively at every event.
    void charge(CoreId core, StallCause cause, Cycle until) noexcept {
        const Cycle cursor = charged_until_[core];
        if (until > cursor) {
            timeline_[core * kStallCauseCount +
                      static_cast<std::size_t>(cause)] += until - cursor;
            charged_until_[core] = until;
        }
    }

    /// Adds `cycles` to a bucket without touching the cursor (used with
    /// advance() when one interval splits into several causes).
    void add(CoreId core, StallCause cause, std::uint64_t cycles) noexcept {
        timeline_[core * kStallCauseCount + static_cast<std::size_t>(cause)] +=
            cycles;
    }

    /// Moves the cursor without charging (the caller added the split).
    void advance(CoreId core, Cycle until) noexcept {
        if (until > charged_until_[core]) charged_until_[core] = until;
    }

    [[nodiscard]] Cycle charged_until(CoreId core) const noexcept {
        return charged_until_[core];
    }

    /// Cause of the in-progress (not yet charged) interval; the next
    /// event — or finalize — charges it.
    void set_pending(CoreId core, StallCause cause) noexcept {
        pending_[core] = cause;
    }
    [[nodiscard]] StallCause pending(CoreId core) const noexcept {
        return pending_[core];
    }

    // ----------------------------------------------- blame matrix
    //
    // All per-victim bus-wait state — the wait cursor, the deferred
    // demand-wait mirror, the dead-slot PMC and the blame row — lives in
    // one packed slot of `kSlotBlame + num_cores` words. At four cores
    // that is exactly 64 bytes, so the per-completion waiter loop (the
    // hottest armed code) touches a single cache line per victim instead
    // of five parallel arrays.
    enum : std::size_t {
        kSlotCursor = 0,   ///< wait clock: blamed/dead up to here
        kSlotWaitAcc,      ///< deferred kBusWait (demand waits only)
        kSlotDeadAcc,      ///< deferred kBusDeadSlot
        kSlotDead,         ///< dead-slot PMC mirror (drains included)
        kSlotBlame         ///< blame row, one entry per contender
    };

    /// Raw packed slot for victim `v` (bus hot path).
    [[nodiscard]] std::uint64_t* wait_slot(CoreId victim) noexcept {
        return wait_slots_.data() + victim * slot_stride_;
    }

    void blame(CoreId victim, CoreId contender,
               std::uint64_t cycles) noexcept {
        wait_slot(victim)[kSlotBlame + contender] += cycles;
    }
    void dead_slot(CoreId victim, std::uint64_t cycles) noexcept {
        wait_slot(victim)[kSlotDead] += cycles;
    }

    /// Per-victim cursor over bus waiting time (covers background store
    /// drains too, which the demand timeline ignores).
    [[nodiscard]] Cycle& bus_cursor(CoreId core) noexcept {
        return wait_slot(core)[kSlotCursor];
    }
    /// Grant cycle of the transaction currently holding the bus.
    [[nodiscard]] Cycle& active_grant() noexcept { return active_grant_; }

    /// Deferred demand-wait mirror: while a demand request waits for the
    /// bus nothing else touches its core's demand timeline, so instead
    /// of charging kBusWait/kBusDeadSlot at every completion the blamed
    /// and dead cycles pile up here and fold into the timeline in one
    /// settle_wait() at the victim's own grant (or at flush). This
    /// halves the armed per-completion cost on the bench hot path.
    void defer_wait(CoreId victim, std::uint64_t blamed) noexcept {
        wait_slot(victim)[kSlotWaitAcc] += blamed;
    }
    void defer_dead(CoreId victim, std::uint64_t dead) noexcept {
        wait_slot(victim)[kSlotDeadAcc] += dead;
    }
    void settle_wait(CoreId victim, Cycle until) noexcept {
        std::uint64_t* slot = wait_slot(victim);
        if (slot[kSlotWaitAcc] > 0) {
            add(victim, StallCause::kBusWait, slot[kSlotWaitAcc]);
            slot[kSlotWaitAcc] = 0;
        }
        if (slot[kSlotDeadAcc] > 0) {
            add(victim, StallCause::kBusDeadSlot, slot[kSlotDeadAcc]);
            slot[kSlotDeadAcc] = 0;
        }
        advance(victim, until);
    }

    // ------------------------------------------------------ views
    [[nodiscard]] std::size_t num_cores() const noexcept {
        return num_cores_;
    }
    [[nodiscard]] std::uint64_t timeline(CoreId core,
                                         StallCause cause) const noexcept {
        return timeline_[core * kStallCauseCount +
                         static_cast<std::size_t>(cause)];
    }
    [[nodiscard]] std::uint64_t blamed(CoreId victim,
                                       CoreId contender) const noexcept {
        return wait_slots_[victim * slot_stride_ + kSlotBlame + contender];
    }
    [[nodiscard]] std::uint64_t dead_slot_cycles(
        CoreId victim) const noexcept {
        return wait_slots_[victim * slot_stride_ + kSlotDead];
    }
    /// Sum of every timeline bucket of `core` — the closed-accounting
    /// invariant says this equals the machine's elapsed cycles after
    /// finalize_attribution().
    [[nodiscard]] std::uint64_t total(CoreId core) const noexcept;
    /// Sum of blame row `victim` (excluding dead slots).
    [[nodiscard]] std::uint64_t blamed_total(CoreId victim) const noexcept;

private:
    std::size_t num_cores_;
    std::size_t slot_stride_;              ///< kSlotBlame + num_cores
    std::vector<std::uint64_t> timeline_;  ///< num_cores x kStallCauseCount
    std::vector<std::uint64_t> wait_slots_;  ///< num_cores x slot_stride_
    std::vector<Cycle> charged_until_;
    std::vector<StallCause> pending_;
    Cycle active_grant_ = 0;
};

}  // namespace rrb
