// Multicore system configuration with the paper's two evaluation setups.
#pragma once

#include <cstdint>
#include <vector>

#include "bus/arbiter.h"
#include "cache/cache.h"
#include "cpu/core.h"
#include "dram/dram.h"
#include "sim/types.h"

namespace rrb {

struct MachineConfig {
    CoreId num_cores = 4;
    CoreConfig core;

    CacheGeometry l2_geometry{256 * 1024, 4, 32};
    ReplacementPolicy l2_replacement = ReplacementPolicy::kLru;
    WritePolicy l2_write_policy = WritePolicy::kWriteBack;
    AllocPolicy l2_alloc_policy = AllocPolicy::kWriteAllocate;

    ArbiterKind arbiter = ArbiterKind::kRoundRobin;
    Cycle tdma_slot_cycles = 16;
    /// Weighted-RR only: one weight per core (empty = all ones).
    std::vector<std::uint32_t> wrr_weights;

    /// Bus timing. A load that hits in L2 occupies the bus for
    /// bus_transfer_cycles + l2_hit_cycles (the NGMP numbers: 3 + 6 = 9,
    /// "6 cycles corresponding to the L2 hit latency and 3 cycles for bus
    /// transfer and arbitration handover").
    Cycle bus_transfer_cycles = 3;
    Cycle l2_hit_cycles = 6;
    /// Bus occupancy of a write-through store (address + data into L2).
    Cycle store_service_cycles = 9;
    /// Split-transaction phases of an L2 miss.
    Cycle miss_request_cycles = 3;
    Cycle fill_response_cycles = 3;

    DramConfig dram;

    void validate() const;

    /// Bus occupancy of one L2 load hit — the paper's lbus.
    [[nodiscard]] Cycle load_hit_service() const noexcept {
        return bus_transfer_cycles + l2_hit_cycles;
    }

    /// Re-times the bus so one L2 load hit occupies `lbus` cycles
    /// (transfer 1 + hit lbus-1; stores and the split-transaction
    /// phases follow). The single timing model behind `scaled()` and
    /// Session sweep lbus axes — the two must never diverge. TDMA
    /// slots grow to fit when needed.
    void retime_bus(Cycle lbus);
    /// Equation 1: ubd = (Nc - 1) * lbus.
    [[nodiscard]] Cycle ubd_analytic() const noexcept {
        return (num_cores - 1) * load_hit_service();
    }

    /// Content hash over every timing-relevant field. Two configs with
    /// equal fingerprints build behaviorally identical Machines; the
    /// per-worker machine cache (engine::MachineLease) keys on it, and
    /// Scenario::fingerprint folds it in.
    [[nodiscard]] std::uint64_t fingerprint() const;

    /// The paper's reference NGMP model: 4 cores, DL1 latency 1 (so the
    /// rsk injection time delta_rsk = 1), lbus = 9, ubd = 27.
    [[nodiscard]] static MachineConfig ngmp_ref();
    /// The paper's variant: IL1/DL1 latency 4 instead of 1, which shifts
    /// every bus-access injection time by 3 cycles (delta_rsk = 4).
    [[nodiscard]] static MachineConfig ngmp_var();
    /// The didactic setup of Figures 2/3/5: lbus = 2, ubd = 6.
    [[nodiscard]] static MachineConfig textbook();
    /// ngmp_ref re-shaped to `cores` requesters and a bus occupancy of
    /// `lbus` cycles per L2 load hit; the L2 keeps one 64KB way per core.
    /// Used by the sensitivity sweeps (Ablation C).
    [[nodiscard]] static MachineConfig scaled(CoreId cores, Cycle lbus);
    /// An 8-core platform in the spirit of the Freescale P4080 that
    /// motivates the paper (the avionics COTS part whose contention was
    /// characterized by measurements in [Nowotsch et al.]): more
    /// requesters, a longer shared-cache access, bigger L1s and a deeper
    /// store queue. The exact P4080 interconnect is proprietary; this
    /// config only claims "an aggressive 8-core RR platform".
    [[nodiscard]] static MachineConfig p4080_like();
};

}  // namespace rrb
