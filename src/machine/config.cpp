#include "machine/config.h"

#include "sim/contract.h"

namespace rrb {

void MachineConfig::validate() const {
    RRB_REQUIRE(num_cores >= 1, "need at least one core");
    core.validate();
    l2_geometry.validate();
    RRB_REQUIRE(l2_geometry.ways % num_cores == 0,
                "L2 ways must divide across cores for way partitioning");
    RRB_REQUIRE(bus_transfer_cycles >= 1, "transfer takes >= 1 cycle");
    RRB_REQUIRE(l2_hit_cycles >= 1, "L2 hit takes >= 1 cycle");
    RRB_REQUIRE(store_service_cycles >= 1, "store occupies >= 1 cycle");
    RRB_REQUIRE(miss_request_cycles >= 1, "miss request occupies >= 1 cycle");
    RRB_REQUIRE(fill_response_cycles >= 1, "fill occupies >= 1 cycle");
    if (arbiter == ArbiterKind::kWeightedRoundRobin) {
        RRB_REQUIRE(wrr_weights.empty() || wrr_weights.size() == num_cores,
                    "one weight per core (or empty for all ones)");
    }
    if (arbiter == ArbiterKind::kTdma) {
        const Cycle longest =
            std::max({load_hit_service(), store_service_cycles,
                      miss_request_cycles, fill_response_cycles});
        RRB_REQUIRE(tdma_slot_cycles >= longest,
                    "TDMA slot must fit the longest transaction");
    }
    dram.validate();
}

MachineConfig MachineConfig::ngmp_ref() {
    MachineConfig cfg;  // defaults are the NGMP reference numbers
    cfg.core.dl1_latency = 1;
    cfg.core.il1_latency = 1;
    return cfg;
}

MachineConfig MachineConfig::ngmp_var() {
    MachineConfig cfg = ngmp_ref();
    cfg.core.dl1_latency = 4;
    cfg.core.il1_latency = 4;
    return cfg;
}

void MachineConfig::retime_bus(Cycle lbus) {
    RRB_REQUIRE(lbus >= 2, "lbus must cover transfer + L2 hit");
    bus_transfer_cycles = 1;
    l2_hit_cycles = lbus - 1;
    store_service_cycles = lbus;
    miss_request_cycles = 1;
    fill_response_cycles = 1;
    if (tdma_slot_cycles < lbus) tdma_slot_cycles = lbus;
}

MachineConfig MachineConfig::scaled(CoreId cores, Cycle lbus) {
    RRB_REQUIRE(cores >= 1, "need at least one core");
    MachineConfig cfg = ngmp_ref();
    cfg.num_cores = cores;
    cfg.l2_geometry.ways = cores;
    cfg.l2_geometry.size_bytes = 64ULL * 1024 * cores;
    cfg.retime_bus(lbus);
    return cfg;
}

MachineConfig MachineConfig::p4080_like() {
    MachineConfig cfg = ngmp_ref();
    cfg.num_cores = 8;
    cfg.core.il1_geometry = {32 * 1024, 8, 64};
    cfg.core.dl1_geometry = {32 * 1024, 8, 64};
    cfg.core.dl1_latency = 2;
    cfg.core.store_buffer_entries = 16;
    cfg.l2_geometry = {2 * 1024 * 1024, 8, 64};  // one 256KB way per core
    cfg.bus_transfer_cycles = 4;
    cfg.l2_hit_cycles = 8;  // lbus = 12, ubd = 7 * 12 = 84
    cfg.store_service_cycles = 12;
    cfg.miss_request_cycles = 4;
    cfg.fill_response_cycles = 4;
    cfg.dram.access_bytes = 64;
    cfg.dram.num_banks = 8;
    return cfg;
}

MachineConfig MachineConfig::textbook() {
    MachineConfig cfg = ngmp_ref();
    cfg.bus_transfer_cycles = 1;
    cfg.l2_hit_cycles = 1;  // lbus = 2, ubd = 6 as in Figures 2/3/5
    cfg.store_service_cycles = 2;
    cfg.miss_request_cycles = 1;
    cfg.fill_response_cycles = 1;
    return cfg;
}

}  // namespace rrb
