#include "machine/config.h"

#include "sim/contract.h"

namespace rrb {

namespace {

/// splitmix64-chained u64 folder (see rrb::fingerprint(Program) for the
/// rationale): the machine-lease cache hashes the config once per
/// campaign run, so the byte-at-a-time FNV chain is too slow here.
class FastHash {
public:
    void u64(std::uint64_t v) noexcept {
        h_ += 0x9e3779b97f4a7c15ULL;
        std::uint64_t z = h_ ^ v;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        h_ = z ^ (z >> 31);
    }
    [[nodiscard]] std::uint64_t value() const noexcept { return h_; }

private:
    std::uint64_t h_ = 0x13198a2e03707344ULL;
};

void fold_geometry(FastHash& h, const CacheGeometry& g) {
    h.u64(g.size_bytes);
    h.u64(g.ways);
    h.u64(g.line_bytes);
}

}  // namespace

std::uint64_t MachineConfig::fingerprint() const {
    FastHash h;
    h.u64(num_cores);
    fold_geometry(h, core.il1_geometry);
    fold_geometry(h, core.dl1_geometry);
    h.u64(static_cast<std::uint64_t>(core.l1_replacement));
    h.u64(core.dl1_latency);
    h.u64(core.il1_latency);
    h.u64(core.store_buffer_entries);
    h.u64(core.loads_wait_store_buffer ? 1 : 0);
    fold_geometry(h, l2_geometry);
    h.u64(static_cast<std::uint64_t>(l2_replacement));
    h.u64(static_cast<std::uint64_t>(l2_write_policy));
    h.u64(static_cast<std::uint64_t>(l2_alloc_policy));
    h.u64(static_cast<std::uint64_t>(arbiter));
    h.u64(tdma_slot_cycles);
    h.u64(wrr_weights.size());
    for (const std::uint32_t w : wrr_weights) h.u64(w);
    h.u64(bus_transfer_cycles);
    h.u64(l2_hit_cycles);
    h.u64(store_service_cycles);
    h.u64(miss_request_cycles);
    h.u64(fill_response_cycles);
    h.u64(dram.capacity_bytes);
    h.u64(dram.num_banks);
    h.u64(dram.row_bytes);
    h.u64(dram.access_bytes);
    h.u64(dram.timing.t_rcd);
    h.u64(dram.timing.t_cl);
    h.u64(dram.timing.t_rp);
    h.u64(dram.timing.t_burst);
    h.u64(dram.timing.t_overhead);
    h.u64(static_cast<std::uint64_t>(dram.scheduling));
    h.u64(static_cast<std::uint64_t>(dram.page_policy));
    h.u64(dram.refresh_interval);
    h.u64(dram.refresh_duration);
    return h.value();
}

void MachineConfig::validate() const {
    RRB_REQUIRE(num_cores >= 1, "need at least one core");
    core.validate();
    l2_geometry.validate();
    RRB_REQUIRE(l2_geometry.ways % num_cores == 0,
                "L2 ways must divide across cores for way partitioning");
    RRB_REQUIRE(bus_transfer_cycles >= 1, "transfer takes >= 1 cycle");
    RRB_REQUIRE(l2_hit_cycles >= 1, "L2 hit takes >= 1 cycle");
    RRB_REQUIRE(store_service_cycles >= 1, "store occupies >= 1 cycle");
    RRB_REQUIRE(miss_request_cycles >= 1, "miss request occupies >= 1 cycle");
    RRB_REQUIRE(fill_response_cycles >= 1, "fill occupies >= 1 cycle");
    if (arbiter == ArbiterKind::kWeightedRoundRobin) {
        RRB_REQUIRE(wrr_weights.empty() || wrr_weights.size() == num_cores,
                    "one weight per core (or empty for all ones)");
    }
    if (arbiter == ArbiterKind::kTdma) {
        const Cycle longest =
            std::max({load_hit_service(), store_service_cycles,
                      miss_request_cycles, fill_response_cycles});
        RRB_REQUIRE(tdma_slot_cycles >= longest,
                    "TDMA slot must fit the longest transaction");
    }
    dram.validate();
}

MachineConfig MachineConfig::ngmp_ref() {
    MachineConfig cfg;  // defaults are the NGMP reference numbers
    cfg.core.dl1_latency = 1;
    cfg.core.il1_latency = 1;
    return cfg;
}

MachineConfig MachineConfig::ngmp_var() {
    MachineConfig cfg = ngmp_ref();
    cfg.core.dl1_latency = 4;
    cfg.core.il1_latency = 4;
    return cfg;
}

void MachineConfig::retime_bus(Cycle lbus) {
    RRB_REQUIRE(lbus >= 2, "lbus must cover transfer + L2 hit");
    bus_transfer_cycles = 1;
    l2_hit_cycles = lbus - 1;
    store_service_cycles = lbus;
    miss_request_cycles = 1;
    fill_response_cycles = 1;
    if (tdma_slot_cycles < lbus) tdma_slot_cycles = lbus;
}

MachineConfig MachineConfig::scaled(CoreId cores, Cycle lbus) {
    RRB_REQUIRE(cores >= 1, "need at least one core");
    MachineConfig cfg = ngmp_ref();
    cfg.num_cores = cores;
    cfg.l2_geometry.ways = cores;
    cfg.l2_geometry.size_bytes = 64ULL * 1024 * cores;
    cfg.retime_bus(lbus);
    return cfg;
}

MachineConfig MachineConfig::p4080_like() {
    MachineConfig cfg = ngmp_ref();
    cfg.num_cores = 8;
    cfg.core.il1_geometry = {32 * 1024, 8, 64};
    cfg.core.dl1_geometry = {32 * 1024, 8, 64};
    cfg.core.dl1_latency = 2;
    cfg.core.store_buffer_entries = 16;
    cfg.l2_geometry = {2 * 1024 * 1024, 8, 64};  // one 256KB way per core
    cfg.bus_transfer_cycles = 4;
    cfg.l2_hit_cycles = 8;  // lbus = 12, ubd = 7 * 12 = 84
    cfg.store_service_cycles = 12;
    cfg.miss_request_cycles = 4;
    cfg.fill_response_cycles = 4;
    cfg.dram.access_bytes = 64;
    cfg.dram.num_banks = 8;
    return cfg;
}

MachineConfig MachineConfig::textbook() {
    MachineConfig cfg = ngmp_ref();
    cfg.bus_transfer_cycles = 1;
    cfg.l2_hit_cycles = 1;  // lbus = 2, ubd = 6 as in Figures 2/3/5
    cfg.store_service_cycles = 2;
    cfg.miss_request_cycles = 1;
    cfg.fill_response_cycles = 1;
    return cfg;
}

}  // namespace rrb
