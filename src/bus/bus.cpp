#include "bus/bus.h"

#include <algorithm>

#include "sim/contract.h"

namespace rrb {

const char* to_string(BusOp op) noexcept {
    switch (op) {
        case BusOp::kInstrFetch: return "ifetch";
        case BusOp::kDataLoad: return "load";
        case BusOp::kDataStore: return "store";
        case BusOp::kMissRequest: return "miss-req";
        case BusOp::kFillResponse: return "fill";
    }
    return "?";
}

Bus::Bus(CoreId num_cores, std::unique_ptr<Arbiter> arbiter)
    : arbiter_(std::move(arbiter)),
      ports_(num_cores),
      counters_(num_cores),
      candidates_(num_cores) {
    RRB_REQUIRE(num_cores >= 1, "need at least one core");
    RRB_REQUIRE(arbiter_ != nullptr, "arbiter required");
}

void Bus::post(const BusRequest& request) {
    RRB_REQUIRE(request.core < ports_.size(), "core id out of range");
    RRB_REQUIRE(request.duration >= 1, "zero-length transaction");
    Port& port = ports_[request.core];
    RRB_ENSURE(!port.has_pending);  // one outstanding per requester
    RRB_ENSURE(!(has_active_ && active_.core == request.core));

    // Confidence metric for Figure 6(a): how many *other* requesters have
    // a transaction pending or in flight the moment this request is born.
    // The poster itself can be neither (one outstanding per requester),
    // so the maintained pending count plus the in-service transaction is
    // exactly the old every-port scan.
    const std::uint64_t others = pending_count_ + (has_active_ ? 1 : 0);
    BusCoreCounters& ctr = counters_[request.core];
    ctr.ready_contenders.add(others);
    ++ctr.requests;

    port.pending = request;
    port.has_pending = true;
    ++pending_count_;
    if (tracer_ && tracer_->enabled()) {
        tracer_->record(request.ready, TraceKind::kRequestReady, request.core,
                        request.addr);
    }
}

bool Bus::busy(CoreId core) const {
    RRB_REQUIRE(core < ports_.size(), "core id out of range");
    return ports_[core].has_pending ||
           (has_active_ && active_.core == core);
}

void Bus::complete_phase(Cycle now) {
    if (!has_active_ || busy_until_ != now) return;
    const BusRequest finished = active_;
    has_active_ = false;
    if (tracer_ && tracer_->enabled()) {
        tracer_->record(now - 1, TraceKind::kBusRelease, finished.core,
                        finished.addr);
    }
    if (client_ != nullptr) client_->bus_complete(finished, now);
}

void Bus::arbitrate_phase(Cycle now) {
    if (has_active_) {
        RRB_ENSURE(busy_until_ > now);
        return;
    }
    if (pending_count_ == 0) return;

    if (pending_count_ == 1) {
        // Sole contender: every policy either grants it or leaves the
        // bus idle (TDMA slot timing) — no candidate table needed.
        for (CoreId c = 0; c < ports_.size(); ++c) {
            const Port& port = ports_[c];
            if (!port.has_pending) continue;
            if (port.pending.ready <= now &&
                arbiter_->grants_alone(c, port.pending.duration, now)) {
                grant(c, now);
            }
            return;
        }
    }

    bool any = false;
    for (CoreId c = 0; c < ports_.size(); ++c) {
        const Port& port = ports_[c];
        if (port.has_pending && port.pending.ready <= now) {
            candidates_[c] = {true, port.pending.duration};
            any = true;
        } else {
            candidates_[c] = {};
        }
    }
    if (!any) return;

    const std::optional<CoreId> winner = arbiter_->pick(candidates_, now);
    if (!winner) return;  // e.g. TDMA slot owner not ready
    grant(*winner, now);
}

void Bus::grant(CoreId winner, Cycle now) {
    Port& port = ports_[winner];
    RRB_ENSURE(port.has_pending);
    active_ = port.pending;
    has_active_ = true;
    port.has_pending = false;
    --pending_count_;

    arbiter_->granted(winner, now);
    busy_until_ = now + active_.duration;
    total_busy_cycles_ += active_.duration;

    BusCoreCounters& ctr = counters_[winner];
    const std::uint64_t gamma = now - active_.ready;
    ctr.busy_cycles += active_.duration;
    ctr.wait_cycles += gamma;
    ctr.max_wait = std::max(ctr.max_wait, gamma);
    ctr.gamma.add(gamma);

    if (tracer_ && tracer_->enabled()) {
        tracer_->record(now, TraceKind::kBusGrant, winner, gamma);
    }
}

Cycle Bus::next_event_cycle(Cycle now) const {
    if (has_active_) return busy_until_;
    if (pending_count_ == 0) return kNoCycle;
    Cycle next = kNoCycle;
    for (const Port& port : ports_) {
        if (!port.has_pending) continue;
        // A ready request on an idle bus survives arbitration only under
        // a non-work-conserving policy (TDMA waiting for its slot); its
        // grant cycle depends on slot timing, so report "this cycle" and
        // let the machine step until the arbiter grants.
        if (port.pending.ready <= now) return now;
        next = std::min(next, port.pending.ready);
    }
    return next;
}

void Bus::reset() {
    for (Port& port : ports_) port.has_pending = false;
    pending_count_ = 0;
    has_active_ = false;
    busy_until_ = 0;
    arbiter_->reset();
    reset_counters();
}

const BusCoreCounters& Bus::counters(CoreId core) const {
    RRB_REQUIRE(core < counters_.size(), "core id out of range");
    return counters_[core];
}

double Bus::utilization(Cycle elapsed) const {
    RRB_REQUIRE(elapsed > 0, "elapsed must be positive");
    return static_cast<double>(total_busy_cycles_) /
           static_cast<double>(elapsed);
}

void Bus::reset_counters() {
    for (BusCoreCounters& c : counters_) c.reset();
    total_busy_cycles_ = 0;
}

}  // namespace rrb
