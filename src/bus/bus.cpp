#include "bus/bus.h"

#include <algorithm>

#include "sim/contract.h"

namespace rrb {

const char* to_string(BusOp op) noexcept {
    switch (op) {
        case BusOp::kInstrFetch: return "ifetch";
        case BusOp::kDataLoad: return "load";
        case BusOp::kDataStore: return "store";
        case BusOp::kMissRequest: return "miss-req";
        case BusOp::kFillResponse: return "fill";
    }
    return "?";
}

Bus::Bus(CoreId num_cores, std::unique_ptr<Arbiter> arbiter)
    : arbiter_(std::move(arbiter)),
      ports_(num_cores),
      counters_(num_cores) {
    RRB_REQUIRE(num_cores >= 1, "need at least one core");
    RRB_REQUIRE(arbiter_ != nullptr, "arbiter required");
}

void Bus::post(const BusRequest& request, BusCompletionFn on_complete) {
    RRB_REQUIRE(request.core < ports_.size(), "core id out of range");
    RRB_REQUIRE(request.duration >= 1, "zero-length transaction");
    Port& port = ports_[request.core];
    RRB_ENSURE(!port.pending.has_value());  // one outstanding per requester
    RRB_ENSURE(!(active_ && active_->core == request.core));

    // Confidence metric for Figure 6(a): how many *other* requesters have a
    // transaction pending or in flight the moment this request is born.
    std::uint64_t others = 0;
    for (CoreId c = 0; c < ports_.size(); ++c) {
        if (c == request.core) continue;
        if (ports_[c].pending || (active_ && active_->core == c)) ++others;
    }
    BusCoreCounters& ctr = counters_[request.core];
    ctr.ready_contenders.add(others);
    ++ctr.requests;

    port.pending = request;
    port.on_complete = std::move(on_complete);
    if (tracer_ && tracer_->enabled()) {
        tracer_->record(request.ready, TraceKind::kRequestReady, request.core,
                        request.addr);
    }
}

bool Bus::busy(CoreId core) const {
    RRB_REQUIRE(core < ports_.size(), "core id out of range");
    return ports_[core].pending.has_value() ||
           (active_ && active_->core == core);
}

void Bus::complete_phase(Cycle now) {
    if (!active_ || busy_until_ != now) return;
    const BusRequest finished = *active_;
    BusCompletionFn callback = std::move(active_on_complete_);
    active_.reset();
    active_on_complete_ = nullptr;
    if (tracer_ && tracer_->enabled()) {
        tracer_->record(now - 1, TraceKind::kBusRelease, finished.core,
                        finished.addr);
    }
    if (callback) callback(finished, now);
}

void Bus::arbitrate_phase(Cycle now) {
    if (active_) {
        RRB_ENSURE(busy_until_ > now);
        return;
    }

    std::vector<ArbCandidate> candidates(ports_.size());
    bool any = false;
    for (CoreId c = 0; c < ports_.size(); ++c) {
        const Port& port = ports_[c];
        if (port.pending && port.pending->ready <= now) {
            candidates[c] = {true, port.pending->duration};
            any = true;
        }
    }
    if (!any) return;

    const std::optional<CoreId> winner = arbiter_->pick(candidates, now);
    if (!winner) return;  // e.g. TDMA slot owner not ready

    Port& port = ports_[*winner];
    RRB_ENSURE(port.pending.has_value());
    active_ = *port.pending;
    active_on_complete_ = std::move(port.on_complete);
    port.pending.reset();
    port.on_complete = nullptr;

    arbiter_->granted(*winner, now);
    busy_until_ = now + active_->duration;
    total_busy_cycles_ += active_->duration;

    BusCoreCounters& ctr = counters_[*winner];
    const std::uint64_t gamma = now - active_->ready;
    ctr.busy_cycles += active_->duration;
    ctr.wait_cycles += gamma;
    ctr.max_wait = std::max(ctr.max_wait, gamma);
    ctr.gamma.add(gamma);

    if (tracer_ && tracer_->enabled()) {
        tracer_->record(now, TraceKind::kBusGrant, *winner, gamma);
    }
}

const BusCoreCounters& Bus::counters(CoreId core) const {
    RRB_REQUIRE(core < counters_.size(), "core id out of range");
    return counters_[core];
}

double Bus::utilization(Cycle elapsed) const {
    RRB_REQUIRE(elapsed > 0, "elapsed must be positive");
    return static_cast<double>(total_busy_cycles_) /
           static_cast<double>(elapsed);
}

void Bus::reset_counters() {
    for (auto& c : counters_) c = {};
    total_busy_cycles_ = 0;
}

}  // namespace rrb
