#include "bus/bus.h"

#include <algorithm>

#include "sim/contract.h"

namespace rrb {

const char* to_string(BusOp op) noexcept {
    switch (op) {
        case BusOp::kInstrFetch: return "ifetch";
        case BusOp::kDataLoad: return "load";
        case BusOp::kDataStore: return "store";
        case BusOp::kMissRequest: return "miss-req";
        case BusOp::kFillResponse: return "fill";
    }
    return "?";
}

Bus::Bus(CoreId num_cores, std::unique_ptr<Arbiter> arbiter)
    : arbiter_(std::move(arbiter)),
      ports_(num_cores),
      counters_(num_cores),
      candidates_(num_cores) {
    RRB_REQUIRE(num_cores >= 1, "need at least one core");
    RRB_REQUIRE(arbiter_ != nullptr, "arbiter required");
    rr_ = dynamic_cast<RoundRobinArbiter*>(arbiter_.get());
}

void Bus::post(const BusRequest& request) {
    RRB_REQUIRE(request.core < ports_.size(), "core id out of range");
    RRB_REQUIRE(request.duration >= 1, "zero-length transaction");
    Port& port = ports_[request.core];
    RRB_ENSURE(!port.has_pending);  // one outstanding per requester
    RRB_ENSURE(!(has_active_ && active_.core == request.core));

    // Confidence metric for Figure 6(a): how many *other* requesters have
    // a transaction pending or in flight the moment this request is born.
    // The poster itself can be neither (one outstanding per requester),
    // so the maintained pending count plus the in-service transaction is
    // exactly the old every-port scan.
    const std::uint64_t others = pending_count_ + (has_active_ ? 1 : 0);
    BusCoreCounters& ctr = counters_[request.core];
    ctr.ready_contenders.add(others);
    ++ctr.requests;

    port.pending = request;
    port.has_pending = true;
    ++pending_count_;
    if (attr_ != nullptr) {
        // The wait clock for this request starts at its ready cycle;
        // completions/grants advance the cursor as the wait is blamed.
        attr_->bus_cursor(request.core) = request.ready;
    }
    if (tracer_ && tracer_->enabled()) {
        tracer_->record(request.ready, TraceKind::kRequestReady, request.core,
                        request.addr);
    }
}

bool Bus::busy(CoreId core) const {
    RRB_REQUIRE(core < ports_.size(), "core id out of range");
    return ports_[core].has_pending ||
           (has_active_ && active_.core == core);
}

void Bus::complete_now(Cycle now) {
    const BusRequest finished = active_;
    has_active_ = false;
    if (tracer_ && tracer_->enabled()) {
        tracer_->record(now - 1, TraceKind::kBusRelease, finished.core,
                        finished.addr);
    }
    // Settle attribution before the client dispatch: the completion can
    // post new requests / issue queued ones, mutating the ports.
    if (attr_ != nullptr) account_completion(finished, now);
    if (client_ != nullptr) client_->bus_complete(finished, now);
}

void Bus::account_completion(const BusRequest& finished, Cycle now) {
    CycleAttribution& attr = *attr_;
    const Cycle granted_at = attr.active_grant();
    // Owner: the service interval [grant, now). Store drains are
    // background traffic — nobody's timeline carries their service.
    if (finished.op != BusOp::kDataStore) {
        attr.charge(finished.core, StallCause::kBusService, now);
    }
    // Waiters: [cursor, now) decomposes into the pre-grant gap (nobody
    // held the bus — TDMA slot timing; zero under work-conserving
    // arbiters) and the in-service window blamed on the owner. The
    // victim's own timeline gets the same split via the deferred
    // mirror, settled in one go at its grant.
    for (CoreId v = 0; v < ports_.size(); ++v) {
        const Port& port = ports_[v];
        if (!port.has_pending) continue;
        std::uint64_t* slot = attr.wait_slot(v);
        const Cycle cursor = slot[CycleAttribution::kSlotCursor];
        if (cursor >= now) continue;
        // Branchless body on the victim's packed slot — one cache line
        // per waiter (dead is zero under work-conserving arbiters and the
        // demand mask folds the store-drain case, so adding the masked
        // zeros beats four data-dependent branches).
        const Cycle blame_start = cursor > granted_at ? cursor : granted_at;
        const std::uint64_t dead = blame_start - cursor;
        const std::uint64_t blamed = now - blame_start;
        const std::uint64_t demand_mask =
            port.pending.op != BusOp::kDataStore ? ~std::uint64_t{0} : 0;
        slot[CycleAttribution::kSlotCursor] = now;
        slot[CycleAttribution::kSlotDead] += dead;
        slot[CycleAttribution::kSlotWaitAcc] += blamed & demand_mask;
        slot[CycleAttribution::kSlotDeadAcc] += dead & demand_mask;
        slot[CycleAttribution::kSlotBlame + finished.core] += blamed;
    }
}

void Bus::arbitrate_pending(Cycle now) {
    if (rr_ != nullptr) {
        // Monomorphized round-robin: scan the ports directly in rotation
        // order and grant the first eligible one. Identical outcome to
        // the generic candidate-table path below — RR's pick() is the
        // same scan, and its grants_alone() is unconditionally true — at
        // a fraction of the cost (no table build, no virtual pick).
        const CoreId n = static_cast<CoreId>(ports_.size());
        const CoreId head = rr_->highest_priority();
        for (CoreId i = 0; i < n; ++i) {
            CoreId c = head + i;
            if (c >= n) c -= n;
            const Port& port = ports_[c];
            if (port.has_pending && port.pending.ready <= now) {
                grant(c, now);
                return;
            }
        }
        return;
    }

    if (pending_count_ == 1) {
        // Sole contender: every policy either grants it or leaves the
        // bus idle (TDMA slot timing) — no candidate table needed.
        for (CoreId c = 0; c < ports_.size(); ++c) {
            const Port& port = ports_[c];
            if (!port.has_pending) continue;
            if (port.pending.ready <= now &&
                arbiter_->grants_alone(c, port.pending.duration, now)) {
                grant(c, now);
            }
            return;
        }
    }

    bool any = false;
    for (CoreId c = 0; c < ports_.size(); ++c) {
        const Port& port = ports_[c];
        if (port.has_pending && port.pending.ready <= now) {
            candidates_[c] = {true, port.pending.duration};
            any = true;
        } else {
            candidates_[c] = {};
        }
    }
    if (!any) return;

    const std::optional<CoreId> winner = arbiter_->pick(candidates_, now);
    if (!winner) return;  // e.g. TDMA slot owner not ready
    grant(*winner, now);
}

void Bus::grant(CoreId winner, Cycle now) {
    Port& port = ports_[winner];
    RRB_ENSURE(port.has_pending);
    active_ = port.pending;
    has_active_ = true;
    port.has_pending = false;
    --pending_count_;

    if (rr_ != nullptr) {
        rr_->granted(winner, now);  // final class: devirtualized
    } else {
        arbiter_->granted(winner, now);
    }
    busy_until_ = now + active_.duration;
    total_busy_cycles_ += active_.duration;

    BusCoreCounters& ctr = counters_[winner];
    const std::uint64_t gamma = now - active_.ready;
    ctr.busy_cycles += active_.duration;
    ctr.wait_cycles += gamma;
    ctr.max_wait = std::max(ctr.max_wait, gamma);
    ctr.gamma.add(gamma);

    if (tracer_ && tracer_->enabled()) {
        tracer_->record(now, TraceKind::kBusGrant, winner, gamma);
    }

    if (attr_ != nullptr) {
        CycleAttribution& attr = *attr_;
        Cycle& cursor = attr.bus_cursor(winner);
        const bool demand = active_.op != BusOp::kDataStore;
        if (cursor < now) {
            // Wait left unaccounted at grant time happened while nobody
            // held the bus — a dead slot (TDMA; zero for RR/WRR/fixed).
            const std::uint64_t dead = now - cursor;
            attr.dead_slot(winner, dead);
            if (demand) attr.defer_dead(winner, dead);
            cursor = now;
        }
        if (demand) {
            // The winner's lookup tail up to its ready cycle is compute;
            // then one settle folds the whole deferred wait mirror and
            // pins the service start.
            attr.charge(winner, StallCause::kCompute, active_.ready);
            attr.settle_wait(winner, now);
        }
        attr.active_grant() = now;
    }
}

void Bus::flush_attribution(Cycle limit) {
    if (attr_ == nullptr) return;
    CycleAttribution& attr = *attr_;
    if (has_active_ && active_.op != BusOp::kDataStore) {
        // In-service at the cut-off: the owner has held the bus since the
        // grant; clamp the service interval to the horizon.
        attr.charge(active_.core, StallCause::kBusService, limit);
    }
    const Cycle granted_at = attr.active_grant();
    for (CoreId v = 0; v < ports_.size(); ++v) {
        const Port& port = ports_[v];
        if (!port.has_pending) continue;
        const bool demand = port.pending.op != BusOp::kDataStore;
        Cycle& cursor = attr.bus_cursor(v);
        if (cursor < limit) {
            const Cycle blame_start =
                has_active_ ? std::max(cursor, granted_at) : limit;
            const std::uint64_t dead = blame_start - cursor;
            const std::uint64_t blamed = limit - blame_start;
            if (dead > 0) attr.dead_slot(v, dead);
            if (blamed > 0) attr.blame(v, active_.core, blamed);
            if (demand) {
                attr.defer_wait(v, blamed);
                if (dead > 0) attr.defer_dead(v, dead);
            }
            cursor = limit;
        }
        if (demand) {
            // Lookup tail up to the wait start (or the horizon, for a
            // request whose ready cycle lies beyond it), then settle the
            // deferred wait mirror at the horizon.
            attr.charge(v, StallCause::kCompute,
                        std::min(port.pending.ready, limit));
            attr.settle_wait(v, limit);
        }
    }
}

Cycle Bus::next_pending_cycle(Cycle now) const {
    Cycle next = kNoCycle;
    for (CoreId c = 0; c < ports_.size(); ++c) {
        const Port& port = ports_[c];
        if (!port.has_pending) continue;
        // Earliest cycle this request could win arbitration. For every
        // work-conserving policy that is simply its ready cycle (or now,
        // when already ready); TDMA's override adds the slot wait, so
        // the skipper can fast-forward straight to the owned slot
        // instead of stepping cycle by cycle until the arbiter grants.
        // Exactness: the per-core bound is the minimum winnable cycle,
        // so no pick() between now and the minimum could grant anyone.
        const Cycle earliest = std::max(port.pending.ready, now);
        next = std::min(next, rr_ != nullptr
                                  ? earliest  // RR inherits the default
                                  : arbiter_->next_grant_cycle(
                                        c, port.pending.duration, earliest));
    }
    return next;
}

void Bus::reset() {
    for (Port& port : ports_) port.has_pending = false;
    pending_count_ = 0;
    has_active_ = false;
    busy_until_ = 0;
    arbiter_->reset();
    reset_counters();
}

const BusCoreCounters& Bus::counters(CoreId core) const {
    RRB_REQUIRE(core < counters_.size(), "core id out of range");
    return counters_[core];
}

double Bus::utilization(Cycle elapsed) const {
    RRB_REQUIRE(elapsed > 0, "elapsed must be positive");
    return static_cast<double>(total_busy_cycles_) /
           static_cast<double>(elapsed);
}

void Bus::reset_counters() {
    for (BusCoreCounters& c : counters_) c.reset();
    total_busy_cycles_ = 0;
}

}  // namespace rrb
