#include "bus/arbiter.h"

#include "sim/contract.h"

namespace rrb {

RoundRobinArbiter::RoundRobinArbiter(CoreId num_cores)
    : num_cores_(num_cores), head_(0) {
    RRB_REQUIRE(num_cores >= 1, "need at least one core");
}

std::optional<CoreId> RoundRobinArbiter::pick(
    std::span<const ArbCandidate> candidates, Cycle /*now*/) {
    RRB_ENSURE(candidates.size() == num_cores_);
    // head_..end then 0..head_ — rotation priority without the
    // per-candidate modulo (this runs once per bus grant).
    for (CoreId core = head_; core < num_cores_; ++core) {
        if (candidates[core].ready) return core;
    }
    for (CoreId core = 0; core < head_; ++core) {
        if (candidates[core].ready) return core;
    }
    return std::nullopt;
}

void RoundRobinArbiter::granted(CoreId core, Cycle /*now*/) {
    RRB_ENSURE(core < num_cores_);
    head_ = (core + 1) % num_cores_;
}

void RoundRobinArbiter::reset() { head_ = 0; }

FixedPriorityArbiter::FixedPriorityArbiter(CoreId num_cores)
    : num_cores_(num_cores) {
    RRB_REQUIRE(num_cores >= 1, "need at least one core");
}

std::optional<CoreId> FixedPriorityArbiter::pick(
    std::span<const ArbCandidate> candidates, Cycle /*now*/) {
    RRB_ENSURE(candidates.size() == num_cores_);
    for (CoreId core = 0; core < num_cores_; ++core) {
        if (candidates[core].ready) return core;
    }
    return std::nullopt;
}

void FixedPriorityArbiter::granted(CoreId core, Cycle /*now*/) {
    RRB_ENSURE(core < num_cores_);
}

TdmaArbiter::TdmaArbiter(CoreId num_cores, Cycle slot_cycles)
    : num_cores_(num_cores), slot_cycles_(slot_cycles) {
    RRB_REQUIRE(num_cores >= 1, "need at least one core");
    RRB_REQUIRE(slot_cycles >= 1, "slot must be at least one cycle");
}

std::optional<CoreId> TdmaArbiter::pick(
    std::span<const ArbCandidate> candidates, Cycle now) {
    RRB_ENSURE(candidates.size() == num_cores_);
    const CoreId owner =
        static_cast<CoreId>((now / slot_cycles_) % num_cores_);
    if (!candidates[owner].ready) return std::nullopt;
    const Cycle slot_end = (now / slot_cycles_ + 1) * slot_cycles_;
    if (now + candidates[owner].duration > slot_end) return std::nullopt;
    return owner;
}

void TdmaArbiter::granted(CoreId core, Cycle /*now*/) {
    RRB_ENSURE(core < num_cores_);
}

bool TdmaArbiter::grants_alone(CoreId core, Cycle duration,
                               Cycle now) const {
    // Mirror pick(): only the slot owner may win, and only when the
    // transaction fits in the remainder of the slot.
    const CoreId owner =
        static_cast<CoreId>((now / slot_cycles_) % num_cores_);
    if (core != owner) return false;
    const Cycle slot_end = (now / slot_cycles_ + 1) * slot_cycles_;
    return now + duration <= slot_end;
}

Cycle TdmaArbiter::next_grant_cycle(CoreId core, Cycle duration,
                                    Cycle earliest) const {
    // A transaction longer than a whole slot can never be granted: no
    // slot has room for it from any starting cycle.
    if (duration > slot_cycles_) return kNoCycle;
    const Cycle slot = earliest / slot_cycles_;
    if (static_cast<CoreId>(slot % num_cores_) == core &&
        earliest + duration <= (slot + 1) * slot_cycles_) {
        return earliest;
    }
    // First cycle of the next slot `core` owns. Anything that fits a
    // slot at all fits from its first cycle, so this is exact: there is
    // no winnable cycle between `earliest` and it (later cycles of the
    // current slot only have less room, and intervening slots belong to
    // other cores).
    Cycle next_slot = slot + 1;
    const CoreId at = static_cast<CoreId>(next_slot % num_cores_);
    next_slot += core >= at ? core - at : num_cores_ - at + core;
    return next_slot * slot_cycles_;
}

WeightedRoundRobinArbiter::WeightedRoundRobinArbiter(
    std::vector<std::uint32_t> weights)
    : weights_(std::move(weights)), head_(0) {
    RRB_REQUIRE(!weights_.empty(), "need at least one core");
    for (const std::uint32_t w : weights_) {
        RRB_REQUIRE(w >= 1, "every weight must be >= 1");
    }
    credits_ = weights_[0];
}

void WeightedRoundRobinArbiter::advance_head() {
    head_ = (head_ + 1) % static_cast<CoreId>(weights_.size());
    credits_ = weights_[head_];
}

std::optional<CoreId> WeightedRoundRobinArbiter::pick(
    std::span<const ArbCandidate> candidates, Cycle /*now*/) {
    RRB_ENSURE(candidates.size() == weights_.size());
    const auto n = static_cast<CoreId>(weights_.size());
    for (CoreId offset = 0; offset < n; ++offset) {
        const CoreId core = (head_ + offset) % n;
        if (candidates[core].ready) return core;
    }
    return std::nullopt;
}

void WeightedRoundRobinArbiter::granted(CoreId core, Cycle /*now*/) {
    RRB_ENSURE(core < weights_.size());
    if (core != head_) {
        // Work-conserving grant to a lower-priority core: the head keeps
        // its position and remaining credits (it was simply not ready).
        return;
    }
    RRB_ENSURE(credits_ >= 1);
    --credits_;
    if (credits_ == 0) advance_head();
}

std::uint64_t WeightedRoundRobinArbiter::worst_case_window(
    CoreId core) const {
    RRB_REQUIRE(core < weights_.size(), "core id out of range");
    std::uint64_t total = 0;
    for (const std::uint32_t w : weights_) total += w;
    return total - weights_[core];
}

void WeightedRoundRobinArbiter::reset() {
    head_ = 0;
    credits_ = weights_[0];
}

std::unique_ptr<Arbiter> make_arbiter(ArbiterKind kind, CoreId num_cores,
                                      Cycle tdma_slot_cycles,
                                      std::vector<std::uint32_t> weights) {
    switch (kind) {
        case ArbiterKind::kRoundRobin:
            return std::make_unique<RoundRobinArbiter>(num_cores);
        case ArbiterKind::kFixedPriority:
            return std::make_unique<FixedPriorityArbiter>(num_cores);
        case ArbiterKind::kTdma:
            return std::make_unique<TdmaArbiter>(num_cores, tdma_slot_cycles);
        case ArbiterKind::kWeightedRoundRobin: {
            if (weights.empty()) {
                weights.assign(num_cores, 1);  // degenerates to plain RR
            }
            RRB_REQUIRE(weights.size() == num_cores,
                        "one weight per core required");
            return std::make_unique<WeightedRoundRobinArbiter>(
                std::move(weights));
        }
    }
    RRB_ENSURE(false);
}

}  // namespace rrb
