// Bus arbitration policies.
//
// The paper's methodology targets round-robin (RR) arbitration, whose
// "synchrony effect" under saturation is what makes the ubd measurable from
// saw-tooth periods (Section 3). Fixed-priority and TDMA arbiters are
// provided for the ablation benches: the saw-tooth signature is specific to
// RR, and a user applying the methodology to the wrong arbiter should see
// it fail loudly.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "sim/types.h"

namespace rrb {

/// One per-core arbitration candidate for the current cycle.
struct ArbCandidate {
    bool ready = false;   ///< the core has a request eligible this cycle
    Cycle duration = 0;   ///< bus cycles the transaction would occupy
};

class Arbiter {
public:
    virtual ~Arbiter() = default;

    /// Chooses the core to grant at cycle `now` among `candidates`
    /// (indexed by core), or nullopt to leave the bus idle this cycle.
    /// Must not be called while the bus is busy.
    [[nodiscard]] virtual std::optional<CoreId> pick(
        std::span<const ArbCandidate> candidates, Cycle now) = 0;

    /// Informs the policy that `core` was granted at `now` (updates
    /// rotation state where applicable).
    virtual void granted(CoreId core, Cycle now) = 0;

    /// Policy name for reports.
    [[nodiscard]] virtual std::string name() const = 0;

    /// Resets internal state to power-on.
    virtual void reset() = 0;

    /// Would pick() grant `core` when it is the only ready candidate at
    /// `now`? True for every work-conserving policy (the scan finds the
    /// sole candidate wherever the rotation points); TDMA overrides
    /// with its slot-ownership check. Lets the bus grant the common
    /// single-contender case without materializing a candidate table.
    [[nodiscard]] virtual bool grants_alone(CoreId core, Cycle duration,
                                            Cycle now) const {
        (void)core;
        (void)duration;
        (void)now;
        return true;
    }

    /// Earliest cycle >= `earliest` at which a transaction of `duration`
    /// cycles from `core` could possibly be granted, assuming the bus is
    /// idle and no competitor contends — a lower bound the event-driven
    /// cycle skipper may fast-forward to. Work-conserving policies grant
    /// any ready sole candidate immediately, so the default returns
    /// `earliest`. TDMA overrides with slot arithmetic (the request must
    /// wait for a slot `core` owns with enough room left); kNoCycle
    /// means the transaction can never be granted (longer than a slot).
    [[nodiscard]] virtual Cycle next_grant_cycle(CoreId core, Cycle duration,
                                                 Cycle earliest) const {
        (void)core;
        (void)duration;
        return earliest;
    }
};

/// Round-robin: after core ci is granted, the priority order for the next
/// arbitration is ci+1, ci+2, ..., cNc, c1, ..., ci (Section 2). Work
/// conserving: any ready requester can win when higher-priority ones are
/// idle.
class RoundRobinArbiter final : public Arbiter {
public:
    explicit RoundRobinArbiter(CoreId num_cores);

    [[nodiscard]] std::optional<CoreId> pick(
        std::span<const ArbCandidate> candidates, Cycle now) override;
    void granted(CoreId core, Cycle now) override;
    [[nodiscard]] std::string name() const override { return "round-robin"; }
    void reset() override;

    /// Core that currently holds the highest priority (exposed for tests
    /// that assert the rotation sequence of Figures 2/3).
    [[nodiscard]] CoreId highest_priority() const noexcept { return head_; }

private:
    CoreId num_cores_;
    CoreId head_;  ///< highest-priority core for the next round
};

/// Fixed priority: lower core id always wins. Not time-composable; the
/// lowest-priority core can starve. Included for ablation only.
class FixedPriorityArbiter final : public Arbiter {
public:
    explicit FixedPriorityArbiter(CoreId num_cores);

    [[nodiscard]] std::optional<CoreId> pick(
        std::span<const ArbCandidate> candidates, Cycle now) override;
    void granted(CoreId core, Cycle now) override;
    [[nodiscard]] std::string name() const override { return "fixed-priority"; }
    void reset() override {}

private:
    CoreId num_cores_;
};

/// TDMA: the timeline is divided into fixed slots rotating across cores; a
/// transaction is granted only to the slot owner and only when it fits in
/// the remainder of the slot. Non-work-conserving (idle slots stay idle),
/// which is exactly why it shows no synchrony effect.
class TdmaArbiter final : public Arbiter {
public:
    TdmaArbiter(CoreId num_cores, Cycle slot_cycles);

    [[nodiscard]] std::optional<CoreId> pick(
        std::span<const ArbCandidate> candidates, Cycle now) override;
    void granted(CoreId core, Cycle now) override;
    [[nodiscard]] std::string name() const override { return "tdma"; }
    void reset() override {}
    [[nodiscard]] bool grants_alone(CoreId core, Cycle duration,
                                    Cycle now) const override;
    [[nodiscard]] Cycle next_grant_cycle(CoreId core, Cycle duration,
                                         Cycle earliest) const override;

    [[nodiscard]] Cycle slot_cycles() const noexcept { return slot_cycles_; }

private:
    CoreId num_cores_;
    Cycle slot_cycles_;
};

/// Weighted round-robin (a single-level MBBA [Bourgade et al.] /
/// round-robin-with-groups [Paolieri et al.] style policy from the
/// paper's related work): the rotation head may win up to `weight[i]`
/// consecutive transactions before the head advances. With all weights 1
/// this is exactly plain round-robin; larger weights trade fairness for
/// bandwidth and stretch the worst-case window of the other cores to
/// sum(weights) - weight[i] transactions.
class WeightedRoundRobinArbiter final : public Arbiter {
public:
    explicit WeightedRoundRobinArbiter(std::vector<std::uint32_t> weights);

    [[nodiscard]] std::optional<CoreId> pick(
        std::span<const ArbCandidate> candidates, Cycle now) override;
    void granted(CoreId core, Cycle now) override;
    [[nodiscard]] std::string name() const override {
        return "weighted-round-robin";
    }
    void reset() override;

    [[nodiscard]] CoreId head() const noexcept { return head_; }
    [[nodiscard]] std::uint32_t credits_left() const noexcept {
        return credits_;
    }
    /// Worst-case bus window for core i in transactions: every other core
    /// spends its full weight per rotation.
    [[nodiscard]] std::uint64_t worst_case_window(CoreId core) const;

private:
    void advance_head();

    std::vector<std::uint32_t> weights_;
    CoreId head_;
    std::uint32_t credits_;  ///< grants the head may still take
};

/// Factory helpers so configs can name a policy.
enum class ArbiterKind : std::uint8_t {
    kRoundRobin,
    kFixedPriority,
    kTdma,
    kWeightedRoundRobin,
};

[[nodiscard]] std::unique_ptr<Arbiter> make_arbiter(
    ArbiterKind kind, CoreId num_cores, Cycle tdma_slot_cycles = 0,
    std::vector<std::uint32_t> weights = {});

}  // namespace rrb
