// The shared on-chip bus: cores on one side, the L2 cache on the other
// (NGMP topology — "the bus serves as bridge between private on-core L1
// caches and the L2 cache").
//
// Timing protocol (single outstanding transaction, AHB-like):
//   * a request posted with ready cycle R may be granted at any cycle
//     g >= R when the bus is free and the arbiter selects it;
//   * the bus is then busy for `duration` cycles [g, g+duration) and can
//     grant again at g+duration, including to a request that becomes
//     ready exactly at g+duration (back-to-back, 100% utilization);
//   * per-request contention delay gamma = g - R; this is the quantity the
//     paper's ubd bounds.
//
// The bus does not know cache contents: the component that posts a request
// has already decided its `duration` (e.g. L2 hit = transfer + hit latency
// + handover). Completions are delivered to a single BusClient attached
// once, with the finished BusRequest — including its caller-defined `tag`
// correlation id — passed back. This fixed dispatch replaces the old
// per-request std::function callbacks: posting a request performs no
// allocation, which is what keeps the simulator's steady-state request
// path heap-free (see bench_hotpath).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "bus/arbiter.h"
#include "machine/attribution.h"
#include "sim/contract.h"
#include "sim/trace.h"
#include "sim/types.h"
#include "stats/histogram.h"

namespace rrb {

enum class BusOp : std::uint8_t {
    kInstrFetch,    ///< IL1 miss fill
    kDataLoad,      ///< DL1 load miss (L2 hit keeps the bus busy end-to-end)
    kDataStore,     ///< write-through store drain
    kMissRequest,   ///< address phase of an L2 miss (split transaction)
    kFillResponse,  ///< data return of an L2 miss
};

const char* to_string(BusOp op) noexcept;

struct BusRequest {
    CoreId core = 0;
    BusOp op = BusOp::kDataLoad;
    Addr addr = 0;
    Cycle ready = 0;     ///< first cycle eligible for arbitration
    Cycle duration = 1;  ///< bus occupancy once granted
    std::uint64_t tag = 0;  ///< caller-defined correlation id
};

/// Fixed completion sink: the transaction for `request` finished; the bus
/// is free again at cycle `completion` (= grant + duration). One client
/// serves every request — callers route on request.op / request.core /
/// request.tag, so the per-request state is a POD token, not a closure.
class BusClient {
public:
    virtual ~BusClient() = default;
    virtual void bus_complete(const BusRequest& request, Cycle completion) = 0;
};

/// Per-core performance monitoring counters, mirroring the NGMP's bus
/// utilization counters (0x17 per-core / 0x18 total in the LEON4 manual).
struct BusCoreCounters {
    std::uint64_t requests = 0;
    std::uint64_t busy_cycles = 0;     ///< cycles this core held the bus
    std::uint64_t wait_cycles = 0;     ///< sum of per-request gamma
    std::uint64_t max_wait = 0;        ///< max per-request gamma
    Histogram gamma;                   ///< per-request contention delay
    Histogram ready_contenders;        ///< #other cores with a request
                                       ///  pending/in-service at post time

    /// Zeroes the counters in place, keeping histogram storage.
    void reset() noexcept {
        requests = 0;
        busy_cycles = 0;
        wait_cycles = 0;
        max_wait = 0;
        gamma.clear();
        ready_contenders.clear();
    }
};

class Bus {
public:
    Bus(CoreId num_cores, std::unique_ptr<Arbiter> arbiter);

    /// Attaches the completion sink all requests report to.
    void attach_client(BusClient* client) noexcept { client_ = client; }

    /// Posts a request. Precondition: the core has no pending request (one
    /// outstanding transaction per requester) and request.ready >= the
    /// current cycle.
    void post(const BusRequest& request);

    /// True when `core` has a request waiting or in service.
    [[nodiscard]] bool busy(CoreId core) const;

    /// Phase 1 of a cycle: completes a transaction whose service ends at
    /// `now` and notifies the client. Call before cores execute. Inline
    /// early-out: this runs every stepped cycle, and most cycles nothing
    /// completes.
    void complete_phase(Cycle now) {
        if (!has_active_ || busy_until_ != now) return;
        complete_now(now);
    }

    /// Phase 2 of a cycle: arbitration among requests with ready <= now.
    /// Call after cores executed (so a request posted at `now` can be
    /// granted at `now`). Inline early-out, same rationale as
    /// complete_phase.
    void arbitrate_phase(Cycle now) {
        if (has_active_) {
            RRB_ENSURE(busy_until_ > now);
            return;
        }
        if (pending_count_ == 0) return;
        arbitrate_pending(now);
    }

    /// Earliest future cycle at which the bus can change state on its
    /// own: the active transaction's completion, or the first cycle a
    /// pending request becomes eligible. Returns `now` when something
    /// could happen this cycle under a non-work-conserving arbiter
    /// (pending but ungranted — slot timing decides), and kNoCycle when
    /// the bus is provably inert until new requests arrive. Inline fast
    /// paths: the skipper asks every stepped cycle, and the bus is
    /// usually either in service or empty.
    [[nodiscard]] Cycle next_event_cycle(Cycle now) const {
        if (has_active_) return busy_until_;
        if (pending_count_ == 0) return kNoCycle;
        return next_pending_cycle(now);
    }

    /// Power-on restore without reallocation: pending/active requests
    /// dropped, counters zeroed, arbiter rotation reset. The attached
    /// client and tracer are kept.
    void reset();

    [[nodiscard]] CoreId num_cores() const noexcept {
        return static_cast<CoreId>(ports_.size());
    }
    [[nodiscard]] const Arbiter& arbiter() const noexcept { return *arbiter_; }

    /// PMC access.
    [[nodiscard]] const BusCoreCounters& counters(CoreId core) const;
    [[nodiscard]] std::uint64_t total_busy_cycles() const noexcept {
        return total_busy_cycles_;
    }
    /// Bus utilization over [0, elapsed): fraction of cycles the bus was
    /// occupied. This is the confidence check of Section 4.3.
    [[nodiscard]] double utilization(Cycle elapsed) const;

    void reset_counters();

    /// Optional tracer for timeline benches / golden tests.
    void attach_tracer(Tracer* tracer) noexcept { tracer_ = tracer; }

    /// Arms (non-null) or disarms (null) cycle attribution. While armed,
    /// every grant/completion splits the waiters' elapsed time into the
    /// blame matrix (who held the bus) and dead slots (nobody did), and
    /// mirrors demand requests onto their core's cause timeline.
    void attach_attribution(CycleAttribution* attribution) noexcept {
        attr_ = attribution;
    }

    /// Settles attribution up to `limit` for the in-service transaction
    /// and every waiter still pending — the cut-off path of the closed
    /// accounting invariant (a campaign run can end mid-transaction).
    void flush_attribution(Cycle limit);

private:
    struct Port {
        BusRequest pending;
        bool has_pending = false;
    };

    /// Performs the grant bookkeeping for `winner` at `now`.
    void grant(CoreId winner, Cycle now);

    /// Out-of-line halves of the phase methods: a transaction really
    /// completes / pending requests really arbitrate / the earliest
    /// pending request's eligibility is computed.
    void complete_now(Cycle now);
    void arbitrate_pending(Cycle now);
    [[nodiscard]] Cycle next_pending_cycle(Cycle now) const;

    /// Attribution for a transaction finishing at `now`: service interval
    /// to the owner, waiters' elapsed time blamed on the owner.
    void account_completion(const BusRequest& finished, Cycle now);

    std::unique_ptr<Arbiter> arbiter_;
    /// Non-null when arbiter_ is the round-robin policy: the paper's
    /// target arbiter and the campaign default. Arbitration then runs a
    /// monomorphized scan over the ports in rotation order — no
    /// candidate table, no virtual dispatch (RoundRobinArbiter is final,
    /// so calls through this pointer devirtualize) — and next_event_cycle
    /// skips the virtual next_grant_cycle (work-conserving: the bound is
    /// the ready cycle itself). Purely an execution-speed monomorphization;
    /// the generic path computes identical grants.
    RoundRobinArbiter* rr_ = nullptr;
    std::vector<Port> ports_;
    std::vector<BusCoreCounters> counters_;
    std::vector<ArbCandidate> candidates_;  ///< reused arbitration buffer

    BusRequest active_;
    bool has_active_ = false;
    std::uint64_t pending_count_ = 0;  ///< ports with has_pending set
    Cycle busy_until_ = 0;  ///< bus free again at this cycle
    std::uint64_t total_busy_cycles_ = 0;
    BusClient* client_ = nullptr;
    Tracer* tracer_ = nullptr;
    CycleAttribution* attr_ = nullptr;
};

}  // namespace rrb
