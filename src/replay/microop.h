// Pre-decoded micro-op scripts: the functional/temporal split behind the
// replay execution mode (docs/replay.md).
//
// Within a campaign the programs never change, yet the interpreting core
// re-fetches and re-decodes every instruction of every run through the
// IL1 path. The functional outcome of that work — which instructions
// retire, which L1 lookups hit, which line addresses leave the core —
// is a pure function of (program, core config): L1 caches are private,
// address patterns are pure functions of the iteration index, and stall
// cycles never change *which* accesses happen, only when. Everything
// timing-dependent (bus arbitration, DRAM state, start-delay alignment,
// store-buffer drains, stall retries) is left out of the script and
// stays live at replay time.
//
// A MicroOp is one interpreter tick's worth of forward progress: one
// instruction, or one nop/alu batch exactly as InOrderCore batches it.
// Replaying the ops through the live Bus/L2/DRAM reproduces the
// interpreter bit-for-bit: the same bus requests at the same ready
// cycles, the same PMC values, the same finish cycle
// (tests/test_hotpath.cpp and tests/test_replay.cpp are the proof).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/types.h"

namespace rrb::replay {

struct MicroOp {
    enum class Kind : std::uint8_t {
        kCompute,     ///< nop/alu batch: bump next_free_, no memory
        kLoadHit,     ///< DL1 hit load: dl1_latency cycles, no bus
        kLoadMiss,    ///< DL1 miss: bus request, completion advances pc
        kStore,       ///< retire into the store buffer (drain stays live)
        kIfetchMiss,  ///< IL1 miss: bus request, pc does not advance
    };

    // Flag bits (`flags`).
    static constexpr std::uint8_t kWrap = 1u << 0;  ///< pc wrapped: charge
                                                    ///< loop_control after
    static constexpr std::uint8_t kIl1FetchHit = 1u << 1;  ///< this op's
        ///< instruction fetch hit IL1 (charged once across stall retries)
    static constexpr std::uint8_t kDl1Evict = 1u << 2;     ///< kLoadMiss
        ///< install evicted a valid line
    static constexpr std::uint8_t kDl1WriteHit = 1u << 3;  ///< kStore hit
    static constexpr std::uint8_t kIl1Evict = 1u << 4;     ///< kIfetchMiss
        ///< install evicted a valid line
    static constexpr std::uint8_t kSpanNeedsClean = 1u << 5;  ///< merge
        ///< only with an empty, drain-free store buffer
    static constexpr std::uint8_t kSpanStore = 1u << 6;  ///< span ends in
        ///< a store (line/write-hit taken from the span's last op)

    // Baked-L2 bits, meaningful on kLoadMiss / kIfetchMiss ops of a
    // script with l2_baked set. kL2Evict reuses the kSpanNeedsClean bit:
    // span flags live only on span-head ops (kCompute/kLoadHit), never
    // on the bus-going miss kinds, so the two uses cannot collide.
    static constexpr std::uint8_t kL2Hit = 1u << 7;    ///< partition hit
    static constexpr std::uint8_t kL2Evict = 1u << 5;  ///< partition miss
        ///< install evicted a valid (always clean) line

    Kind kind = Kind::kCompute;
    std::uint8_t flags = 0;
    /// IL1 read hits charged by batched chain fetches beyond the primary
    /// fetch (kCompute only; the primary fetch is the kIl1FetchHit flag).
    std::uint8_t il1_chain_hits = 0;
    std::uint8_t nops = 0;     ///< nops retired by this op (batch <= 65)
    std::uint16_t instrs = 0;  ///< instructions retired by this op
    /// Head of a mergeable span: ops [i, i + span_ops) execute in one
    /// tick when the merge precondition holds (0 or 1 = no span).
    std::uint16_t span_ops = 0;
    /// kCompute/kLoadHit/kStore: next_free_ = now + cycles (wrap-time
    /// loop_control folded in). kLoadMiss: bus ready = now + cycles
    /// (the DL1 lookup latency); the kWrap loop_control is charged at
    /// completion instead.
    std::uint32_t cycles = 0;
    Addr line = 0;  ///< bus line address (kLoadMiss/kStore/kIfetchMiss)

    // Span aggregates, valid on the head op when span_ops >= 2.
    std::uint32_t span_cycles = 0;
    std::uint16_t span_instrs = 0;
    std::uint16_t span_nops = 0;
    std::uint16_t span_il1_hits = 0;  ///< fetch + chain hits of the span
    std::uint16_t span_loads = 0;     ///< kLoadHit count (= DL1 read hits)
};

/// The decoded script for one (program, core config) pair.
///
/// Layout: ops = [prologue][loop][tail]. Finite programs decode fully
/// (looping = false, the ops cover every instruction). Periodic programs
/// — every load/store address iteration-independent, and the functional
/// state at some body-wrap boundary recurring — store one steady-state
/// pass as the loop region, re-entered until exactly `tail_instrs`
/// instructions remain; the tail region is that final (possibly partial)
/// pass with the retirement baked at its true position.
struct MicroOpScript {
    std::vector<MicroOp> ops;
    bool looping = false;
    /// Partition-local L2 outcomes are baked into the miss ops (kL2Hit /
    /// kL2Evict): the replaying core's bus requests carry the pre-decoded
    /// outcome and the live L2 partition is never consulted (nor warmed).
    /// Only set for storeless programs — with no store drains, the
    /// partition sees exactly this core's loads and fetches in program
    /// order, so its outcome sequence is a pure function of the program.
    bool l2_baked = false;
    std::uint32_t loop_start = 0;  ///< first op of the loop region
    std::uint32_t tail_start = 0;  ///< first op of the tail region
                                   ///< (== ops.size() when !looping)
    std::uint64_t tail_instrs = 0;    ///< instructions in the tail region
    std::uint64_t loop_instrs = 0;    ///< instructions per loop pass
    std::uint64_t total_instructions = 0;  ///< of the decoded program
    std::uint64_t program_fingerprint = 0;
};

}  // namespace rrb::replay
