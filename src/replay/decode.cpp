#include "replay/decode.h"

#include <atomic>
#include <optional>
#include <vector>

#include "fault/fault.h"
#include "sim/contract.h"
#include "sim/fnv.h"

namespace rrb::replay {

namespace {

constexpr std::uint32_t kMaxComputeBatch = 64;  // mirror of core.cpp

// Span growth caps: spans are an optimization, so cutting one short is
// always safe. The aggregate fields are u16/u32; stay comfortably below.
constexpr std::size_t kMaxSpanOps = 4096;
constexpr std::uint32_t kMaxSpanInstrs = 0xF000;
constexpr std::uint64_t kMaxSpanCycles = 0x7000'0000;

/// The functional half of InOrderCore: replica L1s, pc/iteration, the
/// fetch memo. Every state transition mirrors execute_instruction /
/// advance_pc exactly; decode failure (overflow, caps) sets `failed`.
struct FunctionalCore {
    FunctionalCore(const Program& program, const CoreConfig& config,
                   CoreId core_id, const L2PartitionSpec* l2_spec)
        : program(program),
          config(config),
          il1(config.il1_geometry, config.l1_replacement,
              WritePolicy::kWriteThrough, AllocPolicy::kWriteAllocate,
              /*rng_seed=*/core_id * 2 + 1),
          dl1(config.dl1_geometry, config.l1_replacement,
              WritePolicy::kWriteThrough, AllocPolicy::kNoWriteAllocate,
              /*rng_seed=*/core_id * 2 + 2),
          il1_line_mask(
              ~static_cast<Addr>(config.il1_geometry.line_bytes - 1)),
          dl1_line_mask(
              ~static_cast<Addr>(config.dl1_geometry.line_bytes - 1)) {
        // Mirror of Machine::warm_static_footprint's IL1 half: the
        // replaying core skips the per-run warm, so the decode-time
        // replica must start from the same warmed state every run does.
        const std::uint32_t il1_line = config.il1_geometry.line_bytes;
        for (std::size_t i = 0; i < program.body.size(); ++i) {
            const Addr pc_addr = program.code_base + i * Program::kInstrBytes;
            il1.warm(pc_addr / il1_line * il1_line);
        }
        if (l2_spec != nullptr && program.count(OpKind::kStore) == 0) {
            // Storeless: the partition sees only this core's loads and
            // fetches, in program order — replicable. Mirror the warm of
            // Machine::warm_static_footprint's L2 half.
            l2.emplace(l2_spec->geometry, l2_spec->replacement,
                       l2_spec->write_policy, l2_spec->alloc_policy,
                       l2_spec->rng_seed);
            const std::uint32_t l2_line = l2_spec->geometry.line_bytes;
            for (const Instruction& instr : program.body) {
                if ((instr.kind == OpKind::kLoad ||
                     instr.kind == OpKind::kStore) &&
                    instr.addr.kind == AddrPattern::Kind::kFixed) {
                    l2->warm(instr.addr.base / l2_line * l2_line);
                }
            }
        }
    }

    /// Replays one bus-going line through the L2 partition replica and
    /// stamps the outcome onto the miss op. A dirty eviction would need
    /// a live DRAM writeback the replay path does not model — it cannot
    /// happen in a storeless partition, so it fails the decode loudly
    /// rather than silently mistiming.
    void bake_l2(MicroOp& miss) {
        const CacheAccess access = l2->read(miss.line);
        if (access.hit) {
            miss.flags |= MicroOp::kL2Hit;
        } else if (access.victim_line) {
            miss.flags |= MicroOp::kL2Evict;
        }
        if (access.dirty_eviction) failed = true;
    }

    [[nodiscard]] Addr fetch_addr() const noexcept {
        return program.code_base + pc * Program::kInstrBytes;
    }

    /// advance_pc mirror; returns true when the body wrapped.
    bool advance() noexcept {
        fetched = false;
        ++emitted_instrs;
        ++pc;
        if (pc == program.body.size()) {
            pc = 0;
            ++iteration;
            return true;
        }
        return false;
    }

    [[nodiscard]] bool retired() const noexcept {
        return emitted_instrs == instr_budget;
    }

    [[nodiscard]] bool memo_valid() const noexcept {
        return memo_tick == il1.access_tick() && memo_line != kNoCycle;
    }

    /// Decodes one op (one interpreter tick of forward progress) into
    /// `ops`. Precondition: !retired().
    void step(std::vector<MicroOp>& ops) {
        MicroOp op;
        const Instruction& instr = program.body[pc];

        if (!fetched) {
            const Addr line = fetch_addr() & il1_line_mask;
            if (line == memo_line && il1.access_tick() == memo_tick) {
                op.flags |= MicroOp::kIl1FetchHit;
                fetched = true;
            } else {
                const CacheAccess access = il1.read(fetch_addr());
                if (!access.hit) {
                    memo_line = kNoCycle;
                    fetched = true;  // the fill completion sets fetched_
                    MicroOp miss;
                    miss.kind = MicroOp::Kind::kIfetchMiss;
                    miss.line = line;
                    if (access.victim_line) miss.flags |= MicroOp::kIl1Evict;
                    if (l2) bake_l2(miss);
                    ops.push_back(miss);
                    return;  // same instruction continues next step
                }
                op.flags |= MicroOp::kIl1FetchHit;
                fetched = true;
                memo_line = line;
                memo_tick = il1.access_tick();
            }
        }

        switch (instr.kind) {
            case OpKind::kNop:
            case OpKind::kAlu: {
                op.kind = MicroOp::Kind::kCompute;
                op.instrs = 1;
                if (instr.kind == OpKind::kNop) op.nops = 1;
                std::uint64_t cycles = instr.latency;
                if (advance()) cycles += program.loop_control_cycles;
                std::uint32_t batched = 0;
                while (!retired() && batched < kMaxComputeBatch) {
                    const Instruction& chained = program.body[pc];
                    if (chained.kind != OpKind::kNop &&
                        chained.kind != OpKind::kAlu) {
                        break;
                    }
                    const Addr chain_line = fetch_addr() & il1_line_mask;
                    if (chain_line != memo_line ||
                        il1.access_tick() != memo_tick) {
                        break;
                    }
                    ++op.il1_chain_hits;
                    if (chained.kind == OpKind::kNop) ++op.nops;
                    cycles += chained.latency;
                    ++op.instrs;
                    if (advance()) cycles += program.loop_control_cycles;
                    ++batched;
                }
                if (cycles > 0xFFFF'FFFFULL) {
                    failed = true;
                    return;
                }
                op.cycles = static_cast<std::uint32_t>(cycles);
                ops.push_back(op);
                return;
            }
            case OpKind::kLoad: {
                const Addr addr = instr.addr.address(iteration);
                const CacheAccess access = dl1.read(addr);
                op.instrs = 1;
                if (access.hit) {
                    op.kind = MicroOp::Kind::kLoadHit;
                    std::uint64_t cycles = config.dl1_latency;
                    if (advance()) cycles += program.loop_control_cycles;
                    op.cycles = static_cast<std::uint32_t>(cycles);
                } else {
                    op.kind = MicroOp::Kind::kLoadMiss;
                    op.cycles = config.dl1_latency;
                    op.line = addr & dl1_line_mask;
                    if (access.victim_line) op.flags |= MicroOp::kDl1Evict;
                    if (l2) bake_l2(op);
                    // The completion delivers the wrap's loop_control.
                    if (advance()) op.flags |= MicroOp::kWrap;
                }
                ops.push_back(op);
                return;
            }
            case OpKind::kStore: {
                const Addr addr = instr.addr.address(iteration);
                const CacheAccess access = dl1.write(addr);
                op.kind = MicroOp::Kind::kStore;
                op.instrs = 1;
                if (access.hit) op.flags |= MicroOp::kDl1WriteHit;
                op.line = addr & dl1_line_mask;
                std::uint64_t cycles = 1;
                if (advance()) cycles += program.loop_control_cycles;
                op.cycles = static_cast<std::uint32_t>(cycles);
                ops.push_back(op);
                return;
            }
        }
        RRB_ENSURE(false);
    }

    const Program& program;
    const CoreConfig& config;
    Cache il1;
    Cache dl1;
    /// L2 partition replica; engaged = outcomes are being baked.
    std::optional<Cache> l2;
    Addr il1_line_mask;
    Addr dl1_line_mask;

    std::size_t pc = 0;
    std::uint64_t iteration = 0;
    bool fetched = false;
    Addr memo_line = kNoCycle;
    std::uint64_t memo_tick = 0;

    std::uint64_t emitted_instrs = 0;
    std::uint64_t instr_budget = 0;
    bool failed = false;
};

/// Canonical functional-state hash at a body-wrap boundary: both L1s
/// plus the fetch memo (represented validity-canonically). Equal hashes
/// at two boundaries mean the op streams from them are identical, since
/// decode is a pure function of this state once addresses are
/// iteration-independent.
std::uint64_t boundary_fingerprint(const FunctionalCore& f) {
    Fnv1a h;
    h.u64(f.il1.state_fingerprint());
    h.u64(f.dl1.state_fingerprint());
    if (f.l2) h.u64(f.l2->state_fingerprint());
    h.u64(f.memo_valid() ? f.memo_line : kNoCycle);
    return h.value();
}

bool addresses_iteration_independent(const Program& program) {
    for (const Instruction& instr : program.body) {
        if (instr.kind != OpKind::kLoad && instr.kind != OpKind::kStore) {
            continue;
        }
        if (instr.addr.kind != AddrPattern::Kind::kFixed) return false;
    }
    return true;
}

/// Marks mergeable spans within ops[begin, end): maximal runs of
/// kCompute/kLoadHit ops, optionally closed by one kStore. Regions are
/// never crossed (the runtime wraps rp_ only at region boundaries).
void build_spans(std::vector<MicroOp>& ops, std::size_t begin,
                 std::size_t end, bool loads_wait_store_buffer) {
    std::size_t i = begin;
    while (i < end) {
        const MicroOp::Kind kind = ops[i].kind;
        if (kind != MicroOp::Kind::kCompute &&
            kind != MicroOp::Kind::kLoadHit) {
            ++i;
            continue;
        }
        std::size_t j = i;
        std::uint64_t cycles = 0;
        std::uint32_t instrs = 0;
        std::uint32_t nops = 0;
        std::uint32_t il1_hits = 0;
        std::uint32_t loads = 0;
        bool has_store = false;
        while (j < end && j - i < kMaxSpanOps) {
            const MicroOp& o = ops[j];
            const bool member = o.kind == MicroOp::Kind::kCompute ||
                                o.kind == MicroOp::Kind::kLoadHit ||
                                o.kind == MicroOp::Kind::kStore;
            if (!member) break;
            if (cycles + o.cycles > kMaxSpanCycles ||
                instrs + o.instrs > kMaxSpanInstrs) {
                break;
            }
            cycles += o.cycles;
            instrs += o.instrs;
            nops += o.nops;
            il1_hits += ((o.flags & MicroOp::kIl1FetchHit) != 0 ? 1u : 0u) +
                        o.il1_chain_hits;
            if (o.kind == MicroOp::Kind::kLoadHit) ++loads;
            ++j;
            if (o.kind == MicroOp::Kind::kStore) {
                has_store = true;  // a store closes its span
                break;
            }
        }
        if (j - i >= 2) {
            MicroOp& head = ops[i];
            head.span_ops = static_cast<std::uint16_t>(j - i);
            head.span_cycles = static_cast<std::uint32_t>(cycles);
            head.span_instrs = static_cast<std::uint16_t>(instrs);
            head.span_nops = static_cast<std::uint16_t>(nops);
            head.span_il1_hits = static_cast<std::uint16_t>(il1_hits);
            head.span_loads = static_cast<std::uint16_t>(loads);
            // A merged load must never skip a gate stall the interpreter
            // would take, and a merged store must never skip a full-
            // buffer stall: both are impossible from a clean buffer.
            if (has_store || (loads > 0 && loads_wait_store_buffer)) {
                head.flags |= MicroOp::kSpanNeedsClean;
            }
            if (has_store) head.flags |= MicroOp::kSpanStore;
        }
        i = j;
    }
}

}  // namespace

std::unique_ptr<MicroOpScript> decode_program(const Program& program,
                                              const CoreConfig& config,
                                              CoreId core_id,
                                              const L2PartitionSpec* l2,
                                              const DecodeLimits& limits) {
    RRB_REQUIRE(!program.body.empty(), "program body must not be empty");
    // Fault site: a forced decode overflow (key: decode sequence
    // number). Returning nullptr takes the real overflow path — the
    // caller falls back to the interpreter, which is bit-identical by
    // the replay contract, so campaigns survive this unchanged.
    if (fault::armed()) {
        static std::atomic<std::uint64_t> decode_sequence{0};
        const std::uint64_t sequence =
            decode_sequence.fetch_add(1, std::memory_order_relaxed) + 1;
        if (fault::should_fire(fault::Site::kDecodeOverflow, sequence)) {
            return nullptr;
        }
    }
    auto script = std::make_unique<MicroOpScript>();
    script->total_instructions = program.total_instructions();
    script->program_fingerprint = fingerprint(program);

    FunctionalCore f(program, config, core_id, l2);
    script->l2_baked = f.l2.has_value();
    f.instr_budget = script->total_instructions;
    const bool loop_eligible = addresses_iteration_independent(program);

    struct Boundary {
        std::uint64_t hash = 0;
        std::uint32_t op_index = 0;
        std::uint64_t instrs = 0;
    };
    std::vector<Boundary> boundaries;
    std::uint64_t last_boundary_iteration = 0;

    std::vector<MicroOp>& ops = script->ops;
    bool found_loop = false;

    while (!f.retired()) {
        if (loop_eligible && !found_loop && f.pc == 0 && !f.fetched &&
            f.iteration > last_boundary_iteration) {
            last_boundary_iteration = f.iteration;
            const std::uint64_t hash = boundary_fingerprint(f);
            for (const Boundary& b : boundaries) {
                if (b.hash != hash) continue;
                // Steady state: the stream from boundary b repeats
                // forever. Keep [b.op_index, here) as the loop region
                // and decode the final (possibly partial) pass as the
                // tail, with retirement at its true position.
                script->looping = true;
                script->loop_start = b.op_index;
                script->tail_start = static_cast<std::uint32_t>(ops.size());
                script->loop_instrs = f.emitted_instrs - b.instrs;
                const std::uint64_t rem =
                    script->total_instructions - b.instrs;
                script->tail_instrs =
                    (rem - 1) % script->loop_instrs + 1;
                f.instr_budget = f.emitted_instrs + script->tail_instrs;
                found_loop = true;
                break;
            }
            if (!found_loop) {
                if (boundaries.size() >= limits.max_boundaries) {
                    return nullptr;
                }
                boundaries.push_back({hash,
                                      static_cast<std::uint32_t>(ops.size()),
                                      f.emitted_instrs});
            }
        }
        if (ops.size() >= limits.max_ops) return nullptr;
        f.step(ops);
        if (f.failed) return nullptr;
    }

    if (!script->looping) {
        script->loop_start = static_cast<std::uint32_t>(ops.size());
        script->tail_start = static_cast<std::uint32_t>(ops.size());
    }

    build_spans(ops, 0, script->loop_start, config.loads_wait_store_buffer);
    if (script->looping) {
        build_spans(ops, script->loop_start, script->tail_start,
                    config.loads_wait_store_buffer);
        build_spans(ops, script->tail_start, ops.size(),
                    config.loads_wait_store_buffer);
    }
    return script;
}

}  // namespace rrb::replay
