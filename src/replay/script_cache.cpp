#include "replay/script_cache.h"

#include "machine/machine.h"
#include "obs/telemetry.h"
#include "replay/decode.h"

namespace rrb::replay {

void prepare_scripts(ScriptCache& cache, Machine& machine,
                     std::uint64_t campaign) {
    cache.clear();
    const MachineConfig& config = machine.config();
    cache.per_core.assign(config.num_cores, nullptr);
    // Under kRandom L1 replacement the victim RNG is seeded from the
    // core id, so equal programs still decode to different outcome
    // streams on different cores. The same applies to the L2 partition
    // replica — but only for programs that bake L2 outcomes at all
    // (storeless ones; see decode.h).
    const bool l1_random =
        config.core.l1_replacement == ReplacementPolicy::kRandom;
    const bool l2_random =
        config.l2_replacement == ReplacementPolicy::kRandom;
    for (CoreId c = 0; c < config.num_cores; ++c) {
        const Program& program = machine.core(c).program();
        if (program.body.empty()) continue;  // no program installed
        const std::uint64_t fp = fingerprint(program);
        const bool bakes_l2 = program.count(OpKind::kStore) == 0;
        const bool core_specific = l1_random || (l2_random && bakes_l2);
        if (!core_specific) {
            const MicroOpScript* shared = nullptr;
            for (const std::unique_ptr<MicroOpScript>& s : cache.owned) {
                if (s->program_fingerprint == fp) {
                    shared = s.get();
                    break;
                }
            }
            if (shared != nullptr) {
                cache.per_core[c] = shared;
                continue;
            }
        }
        L2PartitionSpec l2_spec;
        l2_spec.geometry = machine.l2().partition_geometry();
        l2_spec.replacement = config.l2_replacement;
        l2_spec.write_policy = config.l2_write_policy;
        l2_spec.alloc_policy = config.l2_alloc_policy;
        l2_spec.rng_seed = machine.l2().partition_rng_seed(c);
        std::unique_ptr<MicroOpScript> script =
            decode_program(program, config.core, c, &l2_spec);
        if (script == nullptr) continue;  // interpreter fallback
        obs::count(obs::kReplayDecodes);
        cache.per_core[c] = script.get();
        cache.owned.push_back(std::move(script));
    }
    cache.campaign = campaign;
}

}  // namespace rrb::replay
