// Per-campaign script storage: decoded once when a machine first hosts
// a campaign's program set, then re-attached run after run.
//
// Lifetime: engine::MachineLease stores one ScriptCache next to each
// cached machine, so scripts and the machine whose cores point at them
// are created and destroyed together. prepare_scripts() re-decodes only
// when the campaign fingerprint changes — for an N-run campaign that is
// one decode pass per (program, config), amortized to nothing.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "replay/microop.h"

namespace rrb {
class Machine;
}  // namespace rrb

namespace rrb::replay {

struct ScriptCache {
    /// Campaign fingerprint the scripts were decoded for (0 = none).
    std::uint64_t campaign = 0;
    /// Owned decoded scripts (deduplicated across cores).
    std::vector<std::unique_ptr<MicroOpScript>> owned;
    /// Per-core attachment, indexed by CoreId; nullptr = that core
    /// interprets (no program, or the decode declined).
    std::vector<const MicroOpScript*> per_core;

    void clear() {
        campaign = 0;
        owned.clear();
        per_core.clear();
    }
};

/// Decodes scripts for every core of `machine` that has a program
/// installed, tagging the cache with `campaign`. Cores sharing a
/// program fingerprint share one script — except under kRandom L1
/// replacement, where the per-core victim-RNG seed makes outcomes
/// core-specific. A failed decode leaves that core on the interpreter.
/// Call after the campaign's programs are loaded, before attaching.
void prepare_scripts(ScriptCache& cache, Machine& machine,
                     std::uint64_t campaign);

}  // namespace rrb::replay
