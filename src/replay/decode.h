// One-shot decode pass: program + core config -> micro-op script.
//
// The decoder runs the *functional* half of InOrderCore::execute_instruction
// against replica L1 caches: instruction fetch through a warmed IL1
// (mirroring Machine::warm_static_footprint), nop/alu batching with the
// fetch memo, DL1 lookups with real replacement state, address-pattern
// evaluation per iteration. Timing never enters: stall retries resolve to
// the same next access, so the emitted op stream is exact for every run
// of the campaign regardless of seeds, start delays or contention.
#pragma once

#include <cstdint>
#include <memory>

#include "cpu/core.h"
#include "isa/program.h"
#include "replay/microop.h"
#include "sim/types.h"

namespace rrb::replay {

struct DecodeLimits {
    /// Hard cap on emitted ops; exceeding it without retiring the
    /// program (and without finding a steady-state loop) fails the
    /// decode — the core then stays on the interpreter.
    std::uint32_t max_ops = 1u << 20;
    /// Body-wrap state snapshots examined for loop detection.
    std::uint32_t max_boundaries = 4096;
};

/// The replica blueprint of one core's private L2 partition, for baking
/// partition-local L2 outcomes into the script (MicroOpScript::l2_baked).
/// Mirror of what Machine's WayPartitionedCache builds for the core:
/// partition (not full) geometry, the shared policies, and the
/// partition's own victim-RNG seed.
struct L2PartitionSpec {
    CacheGeometry geometry;
    ReplacementPolicy replacement = ReplacementPolicy::kLru;
    WritePolicy write_policy = WritePolicy::kWriteBack;
    AllocPolicy alloc_policy = AllocPolicy::kWriteAllocate;
    std::uint64_t rng_seed = 1;
};

/// Decodes `program` as core `core_id` (the id fixes the L1 victim-RNG
/// seeds) would execute it under `config`. Returns nullptr when the
/// program cannot be scripted within the limits — callers fall back to
/// the interpreter, never fail.
///
/// With a non-null `l2` and a storeless program, the per-access outcomes
/// of the core's L2 partition are additionally baked into the miss ops
/// (the replaying machine then skips the live partition entirely). A
/// program with stores ignores `l2`: store drains write into the
/// partition on bus completion, interleaving with load-miss reads in a
/// timing-dependent order the decoder cannot replay.
[[nodiscard]] std::unique_ptr<MicroOpScript> decode_program(
    const Program& program, const CoreConfig& config, CoreId core_id,
    const L2PartitionSpec* l2 = nullptr, const DecodeLimits& limits = {});

}  // namespace rrb::replay
