#include "obs/heartbeat.h"

#include <algorithm>
#include <cstdio>

namespace rrb::obs {

HeartbeatMeter::HeartbeatMeter(std::size_t workers) : workers_(workers) {
    // Prime the window at construction so the very first sample
    // measures from meter birth (campaign start) instead of reporting
    // a rate of zero.
    TelemetryRegistry& registry = TelemetryRegistry::instance();
    primed_ = true;
    last_ns_ = registry.now_ns();
    last_busy_ns_ = enabled() ? registry.counters()[kWorkerBusyNs] : 0;
}

std::string HeartbeatMeter::sample(
    const engine::ProgressCounter& progress) {
    TelemetryRegistry& registry = TelemetryRegistry::instance();
    const std::uint64_t now = registry.now_ns();
    const std::size_t completed = progress.completed();
    const std::size_t fresh = progress.fresh();
    const std::size_t total = progress.total();
    const std::uint64_t busy =
        enabled() ? registry.counters()[kWorkerBusyNs] : 0;

    double rate = last_rate_;
    double utilization = -1.0;
    if (primed_ && now > last_ns_) {
        const double window_sec =
            static_cast<double>(now - last_ns_) / 1e9;
        // Rate from the *fresh* (this-process) count: a resumed
        // campaign's checkpointed baseline never counts as throughput.
        // A sweep's counter re-begins per grid point, so the count can
        // step backwards between samples; only a forward delta is a
        // rate observation.
        if (fresh >= last_fresh_) {
            rate = static_cast<double>(fresh - last_fresh_) /
                   window_sec;
        }
        if (workers_ > 0 && enabled() && busy >= last_busy_ns_) {
            utilization = std::min(
                1.0, static_cast<double>(busy - last_busy_ns_) /
                         (static_cast<double>(now - last_ns_) *
                          static_cast<double>(workers_)));
        }
    }
    primed_ = true;
    last_ns_ = now;
    last_fresh_ = fresh;
    last_busy_ns_ = busy;
    last_rate_ = rate;

    std::string line = engine::render_progress(progress);
    char buf[96];
    std::snprintf(buf, sizeof(buf), " | %.0f runs/s", rate);
    line += buf;
    if (rate > 0.0 && total > completed) {
        const double eta_sec =
            static_cast<double>(total - completed) / rate;
        std::snprintf(buf, sizeof(buf), " | eta %.0fs", eta_sec);
        line += buf;
    } else {
        // Overshoot or done: remaining work is zero, never negative.
        line += " | eta 0s";
    }
    if (utilization >= 0.0) {
        std::snprintf(buf, sizeof(buf), " | workers %.0f%%",
                      100.0 * utilization);
        line += buf;
    }
    return line;
}

std::string HeartbeatMeter::sample(
    const engine::ProgressCounter& aggregate,
    std::span<const CampaignSample> campaigns) {
    // The aggregate pass advances last_ns_ to "now"; the per-campaign
    // rates below reuse exactly that window, so one call = one
    // consistent sampling instant for every counter.
    const std::uint64_t prev_ns = last_ns_;
    const bool was_primed = primed_;
    std::string line = sample(aggregate);
    const std::uint64_t now = last_ns_;

    last_campaign_fresh_.resize(campaigns.size(), 0);
    last_campaign_rate_.resize(campaigns.size(), 0.0);
    char buf[160];
    for (std::size_t i = 0; i < campaigns.size(); ++i) {
        const CampaignSample& c = campaigns[i];
        const std::size_t fresh = c.progress->fresh();
        double rate = last_campaign_rate_[i];
        if (was_primed && now > prev_ns &&
            fresh >= last_campaign_fresh_[i]) {
            rate = static_cast<double>(fresh - last_campaign_fresh_[i]) /
                   (static_cast<double>(now - prev_ns) / 1e9);
        }
        last_campaign_fresh_[i] = fresh;
        last_campaign_rate_[i] = rate;
        std::snprintf(buf, sizeof(buf), " | %s %zu/%zu %.0f/s",
                      c.name->c_str(), c.progress->completed(),
                      c.progress->total(), rate);
        line += buf;
    }
    return line;
}

}  // namespace rrb::obs
