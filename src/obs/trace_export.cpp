#include "obs/trace_export.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace rrb::obs {

namespace {

/// Trace timestamps are microseconds; span clocks are nanoseconds.
std::string us(double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f", v);
    return buf;
}

constexpr int kSpanPid = 1;     ///< span-hierarchy process row
constexpr int kMachinePid = 2;  ///< per-core machine timeline row

void emit_meta(std::ostringstream& out, bool& first, int pid, int tid,
               const char* kind, const std::string& name) {
    out << (first ? "\n" : ",\n");
    first = false;
    out << "    {\"name\": \"" << kind << "\", \"ph\": \"M\", \"pid\": "
        << pid << ", \"tid\": " << tid << ", \"args\": {\"name\": \""
        << name << "\"}}";
}

void emit_complete(std::ostringstream& out, bool& first, int pid, int tid,
                   const std::string& name, double ts_us, double dur_us,
                   const std::string& args) {
    out << (first ? "\n" : ",\n");
    first = false;
    out << "    {\"name\": \"" << name << "\", \"ph\": \"X\", \"pid\": "
        << pid << ", \"tid\": " << tid << ", \"ts\": " << us(ts_us)
        << ", \"dur\": " << us(dur_us);
    if (!args.empty()) out << ", \"args\": {" << args << "}";
    out << "}";
}

/// Greedy lane packing: spans sorted by begin time go to the first lane
/// whose previous occupant already ended. Concurrent shards (worker
/// threads) land in distinct lanes; sequential phases share lane 0.
std::vector<int> pack_lanes(const std::vector<SpanRecord>& spans,
                            const std::vector<std::size_t>& order) {
    std::vector<int> lane(spans.size(), 0);
    std::vector<std::uint64_t> lane_busy_until;
    for (const std::size_t i : order) {
        const SpanRecord& s = spans[i];
        const std::uint64_t end =
            s.end_ns >= s.begin_ns ? s.end_ns : s.begin_ns;
        int chosen = -1;
        for (std::size_t l = 0; l < lane_busy_until.size(); ++l) {
            if (lane_busy_until[l] <= s.begin_ns) {
                chosen = static_cast<int>(l);
                break;
            }
        }
        if (chosen < 0) {
            chosen = static_cast<int>(lane_busy_until.size());
            lane_busy_until.push_back(0);
        }
        lane_busy_until[static_cast<std::size_t>(chosen)] = end;
        lane[i] = chosen;
    }
    return lane;
}

}  // namespace

std::string render_chrome_trace(const std::vector<SpanRecord>& spans,
                                const std::vector<TraceEvent>& machine,
                                CoreId num_cores) {
    std::ostringstream out;
    out << "{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [";
    bool first = true;

    emit_meta(out, first, kSpanPid, 0, "process_name", "campaign spans");

    // ------------------------------------------------- span hierarchy
    std::vector<std::size_t> order(spans.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                         return spans[a].begin_ns < spans[b].begin_ns;
                     });
    const std::vector<int> lane = pack_lanes(spans, order);
    for (const std::size_t i : order) {
        const SpanRecord& s = spans[i];
        // A span still open when the report was taken (end_ns == 0 —
        // e.g. the campaign threw mid-shard) renders with zero
        // duration rather than a negative one.
        const std::uint64_t end =
            s.end_ns >= s.begin_ns ? s.end_ns : s.begin_ns;
        std::ostringstream args;
        args << "\"span_id\": " << s.id << ", \"parent\": " << s.parent
             << ", \"index\": " << s.index << ", \"items\": " << s.items;
        emit_complete(out, first, kSpanPid, lane[i], s.name,
                      static_cast<double>(s.begin_ns) / 1000.0,
                      static_cast<double>(end - s.begin_ns) / 1000.0,
                      args.str());
    }

    // -------------------------------------- sampled machine timeline
    if (!machine.empty()) {
        emit_meta(out, first, kMachinePid, 0, "process_name",
                  "machine timeline (run 0, 1 cycle = 1us)");
        for (CoreId c = 0; c < num_cores; ++c) {
            emit_meta(out, first, kMachinePid, static_cast<int>(c),
                      "thread_name", "core " + std::to_string(c));
        }
        // Grant carries the request's arbitration wait (gamma) as its
        // arg; release is stamped on the transaction's last busy cycle.
        // Pairing each core's grant with its next release rebuilds the
        // [ready, grant) wait window and the [grant, release] service
        // window.
        std::vector<Cycle> grant_at(num_cores, kNoCycle);
        for (const TraceEvent& e : machine) {
            if (e.core >= num_cores) continue;
            if (e.kind == TraceKind::kBusGrant) {
                if (e.arg > 0) {
                    emit_complete(out, first, kMachinePid,
                                  static_cast<int>(e.core), "bus wait",
                                  static_cast<double>(e.cycle - e.arg),
                                  static_cast<double>(e.arg),
                                  "\"gamma\": " + std::to_string(e.arg));
                }
                grant_at[e.core] = e.cycle;
            } else if (e.kind == TraceKind::kBusRelease &&
                       grant_at[e.core] != kNoCycle) {
                emit_complete(
                    out, first, kMachinePid, static_cast<int>(e.core),
                    "bus service",
                    static_cast<double>(grant_at[e.core]),
                    static_cast<double>(e.cycle + 1 - grant_at[e.core]),
                    "");
                grant_at[e.core] = kNoCycle;
            }
        }
    }

    out << (first ? "]\n" : "\n  ]\n");
    out << "}\n";
    return out.str();
}

bool write_chrome_trace(const std::string& path,
                        const std::vector<SpanRecord>& spans,
                        const std::vector<TraceEvent>& machine,
                        CoreId num_cores) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    const std::string text =
        render_chrome_trace(spans, machine, num_cores);
    const bool write_ok =
        std::fwrite(text.data(), 1, text.size(), f) == text.size();
    const bool close_ok = std::fclose(f) == 0;
    return write_ok && close_ok;
}

}  // namespace rrb::obs
