#include "obs/report.h"

#include <cstdio>
#include <sstream>

namespace rrb::obs {

namespace {

/// Doubles print with a fixed, locale-independent format so reports
/// diff cleanly across runs of equal counters.
std::string fmt(double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6f", v);
    return buf;
}

}  // namespace

DerivedRates derive_rates(const RunReportInfo& info,
                          const CounterSnapshot& counters) {
    DerivedRates rates;
    const double wall_sec =
        static_cast<double>(info.wall_ns) / 1e9;
    const std::uint64_t runs = counters[kRunsCompleted];
    if (wall_sec > 0.0) {
        rates.runs_per_sec = static_cast<double>(runs) / wall_sec;
        rates.cycles_per_sec =
            static_cast<double>(counters[kCyclesSimulated]) / wall_sec;
    }
    const std::uint64_t lease_total =
        counters[kLeaseHits] + counters[kLeaseMisses];
    if (lease_total > 0) {
        rates.lease_hit_rate = static_cast<double>(counters[kLeaseHits]) /
                               static_cast<double>(lease_total);
    }
    if (info.wall_ns > 0 && info.jobs > 0) {
        rates.worker_utilization =
            static_cast<double>(counters[kWorkerBusyNs]) /
            (static_cast<double>(info.wall_ns) *
             static_cast<double>(info.jobs));
    }
    if (runs > 0) {
        rates.events_skipped_per_run =
            static_cast<double>(counters[kEventsSkipped]) /
            static_cast<double>(runs);
    }
    return rates;
}

std::string render_counters_json(const CounterSnapshot& counters,
                                 const std::string& indent) {
    std::ostringstream out;
    out << "{";
    for (unsigned c = 0; c < kCounterCount; ++c) {
        out << (c == 0 ? "\n" : ",\n") << indent << "  \""
            << counter_name(static_cast<Counter>(c))
            << "\": " << counters.values[c];
    }
    out << "\n" << indent << "}";
    return out.str();
}

std::string render_run_report(const RunReportInfo& info,
                              const CounterSnapshot& counters,
                              const std::vector<SpanRecord>& spans) {
    const DerivedRates rates = derive_rates(info, counters);
    const CampaignInfo& c = info.campaign;
    std::ostringstream out;
    out << "{\n";
    out << "  \"schema\": \"rrb-telemetry\",\n";
    out << "  \"version\": " << kRunReportSchemaVersion << ",\n";
    out << "  \"command\": \"" << info.command << "\",\n";
    out << "  \"campaign\": {\n";
    out << "    \"scenario_fingerprint\": " << c.scenario_fingerprint
        << ",\n";
    out << "    \"seed\": " << c.seed << ",\n";
    out << "    \"total_runs\": " << c.total_runs << ",\n";
    out << "    \"block_size\": " << c.block_size << ",\n";
    out << "    \"shard_size\": " << c.shard_size << ",\n";
    out << "    \"plan_shards\": " << c.plan_shards << ",\n";
    out << "    \"first_run\": " << c.first_run << ",\n";
    out << "    \"last_run\": " << c.last_run << ",\n";
    out << "    \"slice_index\": " << c.slice_index << ",\n";
    out << "    \"slice_count\": " << c.slice_count << "\n";
    out << "  },\n";
    out << "  \"jobs\": " << info.jobs << ",\n";
    out << "  \"wall_ns\": " << info.wall_ns << ",\n";
    out << "  \"counters\": " << render_counters_json(counters, "  ")
        << ",\n";
    out << "  \"derived\": {\n";
    out << "    \"runs_per_sec\": " << fmt(rates.runs_per_sec) << ",\n";
    out << "    \"cycles_per_sec\": " << fmt(rates.cycles_per_sec)
        << ",\n";
    out << "    \"lease_hit_rate\": " << fmt(rates.lease_hit_rate)
        << ",\n";
    out << "    \"worker_utilization\": "
        << fmt(rates.worker_utilization) << ",\n";
    out << "    \"events_skipped_per_run\": "
        << fmt(rates.events_skipped_per_run) << "\n";
    out << "  },\n";
    out << "  \"spans\": [";
    for (std::size_t i = 0; i < spans.size(); ++i) {
        const SpanRecord& s = spans[i];
        out << (i == 0 ? "\n" : ",\n");
        out << "    {\"id\": " << s.id << ", \"parent\": " << s.parent
            << ", \"name\": \"" << s.name << "\", \"index\": " << s.index
            << ", \"items\": " << s.items << ", \"begin_ns\": "
            << s.begin_ns << ", \"end_ns\": " << s.end_ns << "}";
    }
    out << (spans.empty() ? "]\n" : "\n  ]\n");
    out << "}\n";
    return out.str();
}

bool write_run_report(const std::string& path, const RunReportInfo& info,
                      const CounterSnapshot& counters,
                      const std::vector<SpanRecord>& spans) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    const std::string text = render_run_report(info, counters, spans);
    const bool write_ok =
        std::fwrite(text.data(), 1, text.size(), f) == text.size();
    const bool close_ok = std::fclose(f) == 0;
    return write_ok && close_ok;
}

}  // namespace rrb::obs
