#include "obs/report.h"

#include <cstdio>
#include <sstream>

namespace rrb::obs {

namespace {

/// Doubles print with a fixed, locale-independent format so reports
/// diff cleanly across runs of equal counters.
std::string fmt(double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6f", v);
    return buf;
}

}  // namespace

DerivedRates derive_rates(const RunReportInfo& info,
                          const CounterSnapshot& counters) {
    DerivedRates rates;
    const double wall_sec =
        static_cast<double>(info.wall_ns) / 1e9;
    const std::uint64_t runs = counters[kRunsCompleted];
    if (wall_sec > 0.0) {
        rates.runs_per_sec = static_cast<double>(runs) / wall_sec;
        rates.cycles_per_sec =
            static_cast<double>(counters[kCyclesSimulated]) / wall_sec;
    }
    const std::uint64_t lease_total =
        counters[kLeaseHits] + counters[kLeaseMisses];
    if (lease_total > 0) {
        rates.lease_hit_rate = static_cast<double>(counters[kLeaseHits]) /
                               static_cast<double>(lease_total);
    }
    if (info.wall_ns > 0 && info.jobs > 0) {
        rates.worker_utilization =
            static_cast<double>(counters[kWorkerBusyNs]) /
            (static_cast<double>(info.wall_ns) *
             static_cast<double>(info.jobs));
    }
    if (runs > 0) {
        rates.events_skipped_per_run =
            static_cast<double>(counters[kEventsSkipped]) /
            static_cast<double>(runs);
    }
    return rates;
}

std::string render_attribution_json(const AttributionSummary& a,
                                    const std::string& indent) {
    const std::size_t cores = static_cast<std::size_t>(a.num_cores);
    const std::size_t causes = a.causes.size();
    std::ostringstream out;
    out << "{\n";
    out << indent << "  \"num_cores\": " << a.num_cores << ",\n";
    out << indent << "  \"runs\": " << a.runs << ",\n";
    out << indent << "  \"machine_cycles\": " << a.machine_cycles << ",\n";
    out << indent << "  \"causes\": [";
    for (std::size_t c = 0; c < causes; ++c) {
        out << (c == 0 ? "" : ", ") << "\"" << a.causes[c] << "\"";
    }
    out << "],\n";
    out << indent << "  \"cores\": [";
    for (std::size_t core = 0; core < cores; ++core) {
        out << (core == 0 ? "\n" : ",\n");
        out << indent << "    {\n";
        out << indent << "      \"core\": " << core << ",\n";
        out << indent << "      \"timeline\": {";
        for (std::size_t c = 0; c < causes; ++c) {
            out << (c == 0 ? "" : ", ") << "\"" << a.causes[c]
                << "\": " << a.timeline[core * causes + c];
        }
        out << "},\n";
        out << indent << "      \"dead_slot_cycles\": "
            << a.dead_slot[core] << ",\n";
        // The victim's bus-wait decomposition: blamed[contender] cycles
        // plus the dead-slot remainder sum to the victim's arbitration
        // wait; shares are quoted over that same denominator so "34% of
        // core 0's wait is contender 2's fault" reads off directly.
        std::uint64_t waited = a.dead_slot[core];
        for (std::size_t w = 0; w < cores; ++w) {
            waited += a.blame[core * cores + w];
        }
        out << indent << "      \"blame\": [";
        for (std::size_t w = 0; w < cores; ++w) {
            out << (w == 0 ? "" : ", ") << a.blame[core * cores + w];
        }
        out << "],\n";
        out << indent << "      \"blame_share\": [";
        for (std::size_t w = 0; w < cores; ++w) {
            const double share =
                waited == 0
                    ? 0.0
                    : static_cast<double>(a.blame[core * cores + w]) /
                          static_cast<double>(waited);
            out << (w == 0 ? "" : ", ") << fmt(share);
        }
        out << "]\n";
        out << indent << "    }";
    }
    out << (cores == 0 ? "]\n" : "\n" + indent + "  ]\n");
    out << indent << "}";
    return out.str();
}

std::string render_counters_json(const CounterSnapshot& counters,
                                 const std::string& indent) {
    std::ostringstream out;
    out << "{";
    for (unsigned c = 0; c < kCounterCount; ++c) {
        out << (c == 0 ? "\n" : ",\n") << indent << "  \""
            << counter_name(static_cast<Counter>(c))
            << "\": " << counters.values[c];
    }
    out << "\n" << indent << "}";
    return out.str();
}

std::string render_run_report(const RunReportInfo& info,
                              const CounterSnapshot& counters,
                              const std::vector<SpanRecord>& spans) {
    const DerivedRates rates = derive_rates(info, counters);
    const CampaignInfo& c = info.campaign;
    std::ostringstream out;
    out << "{\n";
    out << "  \"schema\": \"rrb-telemetry\",\n";
    out << "  \"version\": " << kRunReportSchemaVersion << ",\n";
    out << "  \"command\": \"" << info.command << "\",\n";
    out << "  \"campaign\": {\n";
    out << "    \"scenario_fingerprint\": " << c.scenario_fingerprint
        << ",\n";
    out << "    \"seed\": " << c.seed << ",\n";
    out << "    \"total_runs\": " << c.total_runs << ",\n";
    out << "    \"block_size\": " << c.block_size << ",\n";
    out << "    \"shard_size\": " << c.shard_size << ",\n";
    out << "    \"plan_shards\": " << c.plan_shards << ",\n";
    out << "    \"first_run\": " << c.first_run << ",\n";
    out << "    \"last_run\": " << c.last_run << ",\n";
    out << "    \"slice_index\": " << c.slice_index << ",\n";
    out << "    \"slice_count\": " << c.slice_count << "\n";
    out << "  },\n";
    out << "  \"jobs\": " << info.jobs << ",\n";
    out << "  \"wall_ns\": " << info.wall_ns << ",\n";
    out << "  \"counters\": " << render_counters_json(counters, "  ")
        << ",\n";
    out << "  \"derived\": {\n";
    out << "    \"runs_per_sec\": " << fmt(rates.runs_per_sec) << ",\n";
    out << "    \"cycles_per_sec\": " << fmt(rates.cycles_per_sec)
        << ",\n";
    out << "    \"lease_hit_rate\": " << fmt(rates.lease_hit_rate)
        << ",\n";
    out << "    \"worker_utilization\": "
        << fmt(rates.worker_utilization) << ",\n";
    out << "    \"events_skipped_per_run\": "
        << fmt(rates.events_skipped_per_run) << "\n";
    out << "  },\n";
    out << "  \"attribution\": ";
    if (info.has_attribution) {
        out << render_attribution_json(info.attribution, "  ");
    } else {
        out << "null";
    }
    out << ",\n";
    out << "  \"spans\": [";
    for (std::size_t i = 0; i < spans.size(); ++i) {
        const SpanRecord& s = spans[i];
        out << (i == 0 ? "\n" : ",\n");
        out << "    {\"id\": " << s.id << ", \"parent\": " << s.parent
            << ", \"name\": \"" << s.name << "\", \"index\": " << s.index
            << ", \"items\": " << s.items << ", \"begin_ns\": "
            << s.begin_ns << ", \"end_ns\": " << s.end_ns << "}";
    }
    out << (spans.empty() ? "]\n" : "\n  ]\n");
    out << "}\n";
    return out.str();
}

bool write_run_report(const std::string& path, const RunReportInfo& info,
                      const CounterSnapshot& counters,
                      const std::vector<SpanRecord>& spans) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    const std::string text = render_run_report(info, counters, spans);
    const bool write_ok =
        std::fwrite(text.data(), 1, text.size(), f) == text.size();
    const bool close_ok = std::fclose(f) == 0;
    return write_ok && close_ok;
}

}  // namespace rrb::obs
