#include "obs/telemetry.h"

#include <chrono>
#include <deque>
#include <mutex>

namespace rrb::obs {

const char* counter_name(Counter c) noexcept {
    switch (c) {
        case kRunsCompleted: return "runs_completed";
        case kCyclesSimulated: return "cycles_simulated";
        case kEventsSkipped: return "events_skipped";
        case kCyclesSkipped: return "cycles_skipped";
        case kLeaseHits: return "lease_hits";
        case kLeaseMisses: return "lease_misses";
        case kLeaseEvictions: return "lease_evictions";
        case kJobsSubmitted: return "jobs_submitted";
        case kJobsExecuted: return "jobs_executed";
        case kWorkerBusyNs: return "worker_busy_ns";
        case kShardsCompleted: return "shards_completed";
        case kShardWallNs: return "shard_wall_ns";
        case kSchedItemsEnqueued: return "sched_items_enqueued";
        case kSchedDispatches: return "sched_dispatches";
        case kSchedAffinityHits: return "sched_affinity_hits";
        case kSchedSteals: return "sched_steals";
        case kReplayDecodes: return "replay_decodes";
        case kReplayRuns: return "replay_runs";
        case kHeapAllocations: return "heap_allocations";
        case kSchedRetries: return "sched_retries";
        case kSchedFailures: return "sched_failures";
        case kSchedItemsSkipped: return "sched_items_skipped";
        case kCheckpointsQuarantined: return "checkpoints_quarantined";
        case kResumeShardsRerun: return "resume_shards_rerun";
        case kCounterCount: break;
    }
    return "?";
}

namespace detail {
#if !defined(RRB_NO_TELEMETRY)
std::atomic<bool> g_enabled{false};
#endif
}  // namespace detail

namespace {

using SteadyClock = std::chrono::steady_clock;

thread_local std::uint64_t t_current_span = 0;

}  // namespace

struct TelemetryRegistry::Impl {
    /// Guards block registration and the span list — never the counter
    /// bumps themselves.
    mutable std::mutex mutex;
    /// deque: pointer-stable, so worker threads cache raw block
    /// pointers for the process lifetime.
    std::deque<detail::CounterBlock> blocks;
    std::vector<SpanRecord> spans;
    std::uint64_t next_span_id = 1;
    SteadyClock::time_point epoch = SteadyClock::now();
};

TelemetryRegistry::TelemetryRegistry() : impl_(new Impl) {}

TelemetryRegistry& TelemetryRegistry::instance() {
    // Leaked singleton: worker threads may bump their blocks during
    // static destruction (detached tooling, late pool teardown); a
    // destroyed registry would dangle every cached block pointer.
    static TelemetryRegistry* registry = new TelemetryRegistry();
    return *registry;
}

void TelemetryRegistry::enable() {
#if !defined(RRB_NO_TELEMETRY)
    detail::g_enabled.store(true, std::memory_order_relaxed);
#endif
}

void TelemetryRegistry::disable() {
#if !defined(RRB_NO_TELEMETRY)
    detail::g_enabled.store(false, std::memory_order_relaxed);
#endif
}

CounterSnapshot TelemetryRegistry::counters() const {
    CounterSnapshot snapshot;
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    for (const detail::CounterBlock& block : impl_->blocks) {
        for (std::size_t i = 0; i < kCounterCount; ++i) {
            snapshot.values[i] +=
                block.values[i].load(std::memory_order_relaxed);
        }
    }
    return snapshot;
}

std::vector<SpanRecord> TelemetryRegistry::spans() const {
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    return impl_->spans;
}

void TelemetryRegistry::reset() {
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    for (detail::CounterBlock& block : impl_->blocks) {
        for (std::size_t i = 0; i < kCounterCount; ++i) {
            block.values[i].store(0, std::memory_order_relaxed);
        }
    }
    impl_->spans.clear();
    impl_->next_span_id = 1;
    impl_->epoch = SteadyClock::now();
}

std::uint64_t TelemetryRegistry::now_ns() const {
    SteadyClock::time_point epoch;
    {
        const std::lock_guard<std::mutex> lock(impl_->mutex);
        epoch = impl_->epoch;
    }
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            SteadyClock::now() - epoch)
            .count());
}

std::size_t TelemetryRegistry::worker_blocks() const {
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    return impl_->blocks.size();
}

std::uint64_t TelemetryRegistry::open_span(const char* name,
                                           std::uint64_t parent,
                                           std::uint64_t index,
                                           std::uint64_t items) {
    if (!enabled()) return 0;
    const std::uint64_t begin = now_ns();
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    SpanRecord record;
    record.id = impl_->next_span_id++;
    record.parent = parent;
    record.name = name;
    record.index = index;
    record.items = items;
    record.begin_ns = begin;
    impl_->spans.push_back(record);
    return record.id;
}

void TelemetryRegistry::close_span(std::uint64_t id) {
    if (id == 0) return;
    const std::uint64_t end = now_ns();
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    // Spans close in roughly open order; scan from the back.
    for (std::size_t i = impl_->spans.size(); i-- > 0;) {
        if (impl_->spans[i].id == id) {
            impl_->spans[i].end_ns = end;
            return;
        }
    }
}

namespace detail {
#if !defined(RRB_NO_TELEMETRY)
CounterBlock* acquire_block() {
    // Registration is the one locked operation a worker performs, and
    // only once per thread: the block lives in the leaked registry, so
    // the returned pointer stays valid for the process lifetime.
    TelemetryRegistry::Impl* impl = TelemetryRegistry::instance().impl_;
    const std::lock_guard<std::mutex> lock(impl->mutex);
    impl->blocks.emplace_back();
    return &impl->blocks.back();
}
#endif
}  // namespace detail

std::uint64_t current_span() noexcept { return t_current_span; }

Span::Span(const char* name, std::uint64_t index, std::uint64_t items)
    : Span(name, t_current_span, index, items) {}

Span::Span(const char* name, std::uint64_t parent, std::uint64_t index,
           std::uint64_t items) {
    id_ = TelemetryRegistry::instance().open_span(name, parent, index,
                                                  items);
    previous_ = t_current_span;
    if (id_ != 0) t_current_span = id_;
}

Span::~Span() {
    if (id_ != 0) {
        t_current_span = previous_;
        TelemetryRegistry::instance().close_span(id_);
    }
}

}  // namespace rrb::obs
