// Telemetry: out-of-band observability for campaigns.
//
// A campaign's evidence is only as trustworthy as the record of what was
// actually measured. This module gives every layer — engine, session,
// CLI — one place to report *how* a campaign executed (runs completed,
// cycles simulated, events skipped, lease hits, per-shard wall time)
// without ever touching *what* it computed: every hook is strictly
// out-of-band, so campaign results are bit-identical with telemetry
// enabled, disabled, or compiled out (tests/test_telemetry.cpp asserts
// exactly that on CLI output).
//
// Design:
//
//   * Counters live in per-worker CounterBlocks. A worker thread bumps
//     its own cache-line-aligned block with relaxed atomics — no locks,
//     no sharing — and the registry sums the blocks on read. This is the
//     same discipline as engine::reduce_indexed: per-worker state,
//     merged by the reader, so the hot path never synchronizes.
//   * Deterministic counters (runs completed, cycles simulated, events
//     skipped) obey a merge law: the merged total is identical at every
//     --jobs value, because the work they count is. Timing counters
//     (wall-ns, busy-ns) are genuinely nondeterministic and carry the
//     schedule instead.
//   * Spans are hierarchical (campaign -> grid point -> shard) with
//     monotonic-clock timestamps. Spans are rare (per campaign / grid
//     point / shard, never per run), so a mutex-guarded record list is
//     fine where a per-run counter would not be.
//   * Disabled is the default and costs one relaxed atomic load per
//     hook. Compiling with RRB_NO_TELEMETRY removes even that (the
//     hooks become empty inline functions) — the reference point for
//     bench_hotpath's overhead measurement.
//
// The registry is a process-lifetime singleton: worker blocks are
// registered once per thread and never freed, so a cached thread-local
// block pointer can never dangle, whatever order pools and sessions are
// torn down in.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace rrb::obs {

/// Counter identities. Sum-merged across worker blocks on read; the
/// comment says who bumps it and whether it is deterministic (equal at
/// every --jobs value) or a timing observation.
enum Counter : unsigned {
    kRunsCompleted = 0,  ///< campaign runs finished (deterministic)
    kCyclesSimulated,    ///< sum of run finish cycles (deterministic)
    kEventsSkipped,      ///< event-driven fast-forwards taken (determ.)
    kCyclesSkipped,      ///< cycles fast-forwarded over (deterministic)
    kLeaseHits,          ///< MachineLease found a cached machine
    kLeaseMisses,        ///< MachineLease constructed a machine
    kLeaseEvictions,     ///< cached machines destroyed by the LRU cap
    kJobsSubmitted,      ///< ThreadPool::submit calls
    kJobsExecuted,       ///< ThreadPool jobs run to completion
    kWorkerBusyNs,       ///< wall-ns workers spent inside jobs (timing)
    kShardsCompleted,    ///< reduce shards folded (deterministic)
    kShardWallNs,        ///< summed per-shard wall-ns (timing)
    kSchedItemsEnqueued, ///< scheduler work items queued (deterministic)
    kSchedDispatches,    ///< scheduler work items handed to a worker
    kSchedAffinityHits,  ///< dispatch matched the worker's hot lease
    kSchedSteals,        ///< dispatch crossed fingerprints (or first item)
    kReplayDecodes,      ///< micro-op scripts decoded (deterministic)
    kReplayRuns,         ///< campaign runs executed in replay mode
    kHeapAllocations,    ///< operator-new count (bench interposer)
    kSchedRetries,       ///< work-item attempts retried after a
                         ///< transient failure
    kSchedFailures,      ///< campaigns marked failed by the supervisor
    kSchedItemsSkipped,  ///< dispatched items skipped because their
                         ///< campaign had already failed
    kCheckpointsQuarantined,  ///< checkpoint files renamed *.corrupt
    kResumeShardsRerun,  ///< shards re-executed by resume to cover
                         ///< gaps (deterministic given coverage)
    kCounterCount
};

/// Stable snake_case name, used as the JSON key in run reports.
[[nodiscard]] const char* counter_name(Counter c) noexcept;

/// A merged point-in-time reading of every counter. Two snapshots
/// subtract into a delta, which is how readers scope "this campaign"
/// out of process-lifetime totals.
struct CounterSnapshot {
    std::array<std::uint64_t, kCounterCount> values{};

    [[nodiscard]] std::uint64_t operator[](Counter c) const noexcept {
        return values[static_cast<std::size_t>(c)];
    }

    /// Per-counter difference against an earlier snapshot, saturating
    /// at zero (counters only grow, but a reset between snapshots must
    /// not wrap into garbage).
    [[nodiscard]] CounterSnapshot delta_since(
        const CounterSnapshot& earlier) const noexcept {
        CounterSnapshot d;
        for (std::size_t i = 0; i < values.size(); ++i) {
            d.values[i] = values[i] >= earlier.values[i]
                              ? values[i] - earlier.values[i]
                              : 0;
        }
        return d;
    }
};

/// One completed (or still-open: end_ns == 0) span. Parent links make
/// the hierarchy: a campaign span owns grid-point spans owns shard
/// spans, across threads (the submitting thread captures the parent id
/// and hands it to the worker).
struct SpanRecord {
    std::uint64_t id = 0;
    std::uint64_t parent = 0;  ///< 0 = root
    const char* name = "";     ///< static string, e.g. "session.pwcet"
    std::uint64_t index = 0;   ///< shard / grid-point index
    std::uint64_t items = 0;   ///< work items covered (runs)
    std::uint64_t begin_ns = 0;  ///< monotonic, relative to reset()
    std::uint64_t end_ns = 0;    ///< 0 while the span is open
};

namespace detail {

/// One worker thread's counters. Cache-line aligned so two workers'
/// blocks never share a line; bumped with relaxed atomics only by the
/// owning thread, loaded by readers.
struct alignas(64) CounterBlock {
    std::array<std::atomic<std::uint64_t>, kCounterCount> values{};
};

#if !defined(RRB_NO_TELEMETRY)
extern std::atomic<bool> g_enabled;
/// Registers (once) and returns the calling thread's block.
[[nodiscard]] CounterBlock* acquire_block();
[[nodiscard]] inline CounterBlock*& tls_block() noexcept {
    thread_local CounterBlock* block = nullptr;
    return block;
}
#endif

}  // namespace detail

/// True when telemetry collection is on. Hooks are no-ops otherwise.
[[nodiscard]] inline bool enabled() noexcept {
#if defined(RRB_NO_TELEMETRY)
    return false;
#else
    return detail::g_enabled.load(std::memory_order_relaxed);
#endif
}

/// The hot-path hook: bump counter `c` by `n` on the calling thread's
/// block. One relaxed load (disabled) or one relaxed load + one relaxed
/// add (enabled); nothing when compiled out.
inline void count([[maybe_unused]] Counter c,
                  [[maybe_unused]] std::uint64_t n = 1) noexcept {
#if !defined(RRB_NO_TELEMETRY)
    if (!enabled()) return;
    detail::CounterBlock*& block = detail::tls_block();
    if (block == nullptr) block = detail::acquire_block();
    block->values[static_cast<std::size_t>(c)].fetch_add(
        n, std::memory_order_relaxed);
#endif
}

/// Process-lifetime singleton owning the worker blocks and the span
/// list. Reading merges; nothing the workers do ever locks.
class TelemetryRegistry {
public:
    [[nodiscard]] static TelemetryRegistry& instance();

    /// Turns collection on/off. Enabling also (re)bases the monotonic
    /// clock if it was never set. Disabling leaves recorded state
    /// readable.
    void enable();
    void disable();

    /// Sum of every worker block, per counter.
    [[nodiscard]] CounterSnapshot counters() const;

    /// Copy of the recorded spans, in open order.
    [[nodiscard]] std::vector<SpanRecord> spans() const;

    /// Zeroes every counter block, drops the spans and re-bases the
    /// monotonic clock. Call between campaigns when deltas are not
    /// enough (tests); not thread-safe against a running campaign.
    void reset();

    /// Monotonic nanoseconds since the last reset() (or first enable).
    [[nodiscard]] std::uint64_t now_ns() const;

    /// Worker blocks registered so far (introspection/tests).
    [[nodiscard]] std::size_t worker_blocks() const;

    // ------------------------------------------------------- spans
    /// Opens a span; returns its id (0 when telemetry is disabled —
    /// close_span(0) is a no-op, so RAII wrappers need no branching).
    [[nodiscard]] std::uint64_t open_span(const char* name,
                                          std::uint64_t parent,
                                          std::uint64_t index,
                                          std::uint64_t items);
    void close_span(std::uint64_t id);

private:
    TelemetryRegistry();
    struct Impl;
#if !defined(RRB_NO_TELEMETRY)
    friend detail::CounterBlock* detail::acquire_block();
#endif
    Impl* impl_;  ///< leaked on purpose: see module comment
};

/// Id of the innermost Span open on this thread (0 = none). Capture it
/// before submitting work to a pool to parent the worker's spans.
[[nodiscard]] std::uint64_t current_span() noexcept;

/// RAII span. Parent defaults to the calling thread's current_span();
/// the explicit-parent form crosses threads. No-op when telemetry is
/// disabled.
class Span {
public:
    explicit Span(const char* name, std::uint64_t index = 0,
                  std::uint64_t items = 0);
    Span(const char* name, std::uint64_t parent, std::uint64_t index,
         std::uint64_t items);
    ~Span();

    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

    [[nodiscard]] std::uint64_t id() const noexcept { return id_; }

private:
    std::uint64_t id_ = 0;
    std::uint64_t previous_ = 0;  ///< restored as current on close
};

}  // namespace rrb::obs
