// Chrome-trace export: the span timeline (and optionally one run's
// machine timeline) as Trace Event Format JSON.
//
// The output opens directly in Perfetto (https://ui.perfetto.dev) or
// chrome://tracing: one process row for the campaign's span hierarchy
// (campaign -> grid point -> shard, greedily packed into lanes so
// concurrent shards render side by side) and, when a machine timeline
// is supplied, a second process row with one thread per core showing
// bus wait / bus service intervals reconstructed from the cycle-stamped
// Tracer events (1 simulated cycle = 1 µs of trace time).
//
// Export happens strictly after a campaign finishes, from already
// recorded SpanRecords/TraceEvents — nothing here touches the hot path
// and campaign stdout is byte-identical with tracing on or off.
#pragma once

#include <string>
#include <vector>

#include "obs/telemetry.h"
#include "sim/trace.h"
#include "sim/types.h"

namespace rrb::obs {

/// The full trace document: {"traceEvents": [...]} of "X" (complete)
/// events plus process/thread metadata. `machine` may be empty (no
/// per-run timeline was sampled); `num_cores` scopes its thread rows.
[[nodiscard]] std::string render_chrome_trace(
    const std::vector<SpanRecord>& spans,
    const std::vector<TraceEvent>& machine, CoreId num_cores);

/// Writes render_chrome_trace to `path`; false on I/O failure.
bool write_chrome_trace(const std::string& path,
                        const std::vector<SpanRecord>& spans,
                        const std::vector<TraceEvent>& machine,
                        CoreId num_cores);

}  // namespace rrb::obs
