// Machine-readable run reports: the JSON sink of the telemetry layer.
//
// A run report records what a campaign command actually executed —
// campaign identity (scenario fingerprint, seed, shard plan), the
// merged telemetry counters, derived rates (runs/sec, lease hit rate,
// worker utilization) and the span timeline (campaign -> grid point ->
// shard, with per-shard wall times). The schema is versioned so CI and
// tooling can consume reports across commits, and shard runs carry the
// campaign identity plus their run range — collecting every shard's
// report reconstructs the whole distributed campaign's timeline the
// same way `rrbtool merge` reconstructs its statistics.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/telemetry.h"

namespace rrb::obs {

/// Bumped whenever a field is renamed, removed or re-typed. Adding
/// fields is backward compatible and does not bump it.
/// v2: adds the top-level "attribution" field (null when the command
/// ran without the cycle-attribution profiler; an object with per-core
/// cause timelines, the per-contender blame matrix and derived shares
/// when armed).
inline constexpr std::uint32_t kRunReportSchemaVersion = 2;

/// Campaign identity as the telemetry layer records it — the
/// observability twin of rrb::CheckpointMeta (stats/checkpoint.h
/// converts one into the other), kept dependency-free so engine-level
/// tools can fill it too.
struct CampaignInfo {
    std::uint64_t scenario_fingerprint = 0;
    std::uint64_t seed = 0;
    std::uint64_t total_runs = 0;
    std::uint64_t block_size = 0;  ///< 0 = no EVT half (hwm/whitebox)
    std::uint64_t shard_size = 1;
    std::uint64_t plan_shards = 0;
    /// Run range this process executed; [0, total_runs) when whole.
    std::uint64_t first_run = 0;
    std::uint64_t last_run = 0;
    std::uint64_t slice_index = 0;
    std::uint64_t slice_count = 1;
};

/// Campaign-summed cycle attribution as the telemetry layer records it
/// — the observability twin of rrb::AttributionAccumulator
/// (stats/attribution.h converts one into the other), flattened and
/// dependency-free like CampaignInfo. All matrices are row-major:
/// timeline[core * causes.size() + cause], blame[victim * num_cores +
/// contender].
struct AttributionSummary {
    std::uint64_t num_cores = 0;
    std::uint64_t runs = 0;
    /// Summed Machine::now() over the campaign's runs; each core's
    /// timeline row sums to exactly this (closed accounting).
    std::uint64_t machine_cycles = 0;
    std::vector<std::string> causes;      ///< cause names, enum order
    std::vector<std::uint64_t> timeline;  ///< cores x causes
    std::vector<std::uint64_t> blame;     ///< victims x contenders
    std::vector<std::uint64_t> dead_slot; ///< per victim (TDMA gaps)
};

/// Everything a run report carries besides counters and spans.
struct RunReportInfo {
    std::string command;  ///< e.g. "pwcet", "merge", "bench_hotpath"
    CampaignInfo campaign;
    std::uint64_t jobs = 0;      ///< resolved worker budget
    std::uint64_t wall_ns = 0;   ///< whole-command wall time
    /// Engaged only when the command ran with attribution armed;
    /// renders as "attribution": null otherwise.
    bool has_attribution = false;
    AttributionSummary attribution;
};

/// Rates computed from a counter delta + wall time; NaN-free (0 when
/// the denominator is empty) so the JSON stays parseable everywhere.
struct DerivedRates {
    double runs_per_sec = 0.0;
    double lease_hit_rate = 0.0;       ///< hits / (hits + misses)
    double worker_utilization = 0.0;   ///< busy-ns / (wall-ns * jobs)
    double events_skipped_per_run = 0.0;
    double cycles_per_sec = 0.0;
};

[[nodiscard]] DerivedRates derive_rates(const RunReportInfo& info,
                                        const CounterSnapshot& counters);

/// The JSON "counters" object body (shared with bench_hotpath, which
/// embeds the same schema inside its own report).
[[nodiscard]] std::string render_counters_json(
    const CounterSnapshot& counters, const std::string& indent);

/// The JSON "attribution" object body: per-core cause timelines, the
/// blame matrix, dead-slot cycles and derived shares (each victim's
/// stall cycles apportioned across contenders). Shared between the run
/// report and `rrbtool attribution`'s report output.
[[nodiscard]] std::string render_attribution_json(
    const AttributionSummary& a, const std::string& indent);

/// The full schema-versioned run report.
[[nodiscard]] std::string render_run_report(
    const RunReportInfo& info, const CounterSnapshot& counters,
    const std::vector<SpanRecord>& spans);

/// Writes render_run_report to `path`; false on I/O failure.
bool write_run_report(const std::string& path, const RunReportInfo& info,
                      const CounterSnapshot& counters,
                      const std::vector<SpanRecord>& spans);

}  // namespace rrb::obs
