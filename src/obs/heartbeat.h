// Live campaign heartbeat: the human-facing telemetry sink.
//
// A HeartbeatMeter samples a ProgressCounter plus the telemetry
// counters and renders one status line — completed/total, runs/sec over
// the sampling window, ETA, worker utilization — for the CLI to print
// on stderr at `--heartbeat <sec>` intervals. Rates come from deltas
// between consecutive samples, so a long campaign's line tracks the
// *current* throughput, not the lifetime average; the first sample
// establishes the baseline window.
//
// The meter also powers the default progress line's ETA / runs-per-sec
// suffix: engine::render_progress stays the deterministic
// "completed/total (pp%)" core, and the meter appends the live half.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "engine/progress.h"
#include "obs/telemetry.h"

namespace rrb::obs {

/// One concurrently-running campaign a multi-campaign heartbeat reports
/// on: a stable name and the campaign's own progress counter. Pointers,
/// not copies — the meter samples live counters each call.
struct CampaignSample {
    const std::string* name = nullptr;
    const engine::ProgressCounter* progress = nullptr;
};

class HeartbeatMeter {
public:
    /// `workers` scales the utilization denominator (the resolved jobs
    /// budget); 0 suppresses the utilization field.
    explicit HeartbeatMeter(std::size_t workers = 0);

    /// One sample: "c/t (pp%) | R runs/s | eta Ss[ | workers UU%]".
    /// Percentage and ETA clamp sanely when completed overshoots the
    /// announced total (sweep points re-begin the counter mid-batch).
    /// Rates are measured over ProgressCounter::fresh() — work executed
    /// by *this* process — so a resumed campaign's checkpointed runs
    /// raise the completed/total line without inflating runs/s, and the
    /// ETA covers only the runs that still have to execute.
    [[nodiscard]] std::string sample(
        const engine::ProgressCounter& progress);

    /// Multi-campaign sample for a scheduler batch: the aggregate line
    /// (as sample()), then one " | name c/t R/s" chip per campaign.
    /// Every counter is read exactly once against one shared sampling
    /// window, so concurrent heterogeneous campaigns cannot corrupt
    /// each other's rates however their ticks interleave; per-campaign
    /// window state is keyed by position, so pass the same campaign
    /// list (in the same order) on every call.
    [[nodiscard]] std::string sample(
        const engine::ProgressCounter& aggregate,
        std::span<const CampaignSample> campaigns);

private:
    std::size_t workers_;
    bool primed_ = false;
    std::uint64_t last_ns_ = 0;
    std::size_t last_fresh_ = 0;
    std::uint64_t last_busy_ns_ = 0;
    double last_rate_ = 0.0;  ///< carried over empty windows
    /// Per-campaign window state (multi-campaign form), by position.
    std::vector<std::size_t> last_campaign_fresh_;
    std::vector<double> last_campaign_rate_;
};

}  // namespace rrb::obs
