#include "dram/dram.h"

#include <algorithm>
#include <bit>

#include "sim/contract.h"

namespace rrb {

namespace {

bool is_pow2(std::uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

/// Refresh-blocked cycles in [0, x): the windows are [k*I, k*I + D) for
/// k >= 1 with I > D (validated), so every window before the last
/// boundary crossed is fully contained and only the final one clips.
std::uint64_t refresh_blocked_before(Cycle x, Cycle interval,
                                     Cycle duration) {
    if (interval == 0 || x == 0) return 0;
    const Cycle boundaries = (x - 1) / interval;  // k*I < x
    if (boundaries == 0) return 0;
    return (boundaries - 1) * duration +
           std::min(duration, x - boundaries * interval);
}

}  // namespace

void DramConfig::validate() const {
    RRB_REQUIRE(num_banks >= 1 && is_pow2(num_banks),
                "banks must be a power of two");
    RRB_REQUIRE(is_pow2(row_bytes) && row_bytes >= access_bytes,
                "row must be a power of two covering one access");
    RRB_REQUIRE(is_pow2(access_bytes) && access_bytes >= 4,
                "access granule must be a power of two >= 4");
    RRB_REQUIRE(capacity_bytes >= row_bytes * num_banks,
                "capacity must cover one row per bank");
    RRB_REQUIRE(timing.t_burst >= 1, "burst must take at least one cycle");
    if (refresh_interval > 0) {
        RRB_REQUIRE(refresh_duration >= 1,
                    "refresh must block for at least one cycle");
        RRB_REQUIRE(refresh_interval > refresh_duration,
                    "refresh interval must exceed its duration");
    }
}

std::uint32_t DramConfig::bank_of(Addr addr) const noexcept {
    // Line-interleaved: consecutive cache lines hit consecutive banks.
    return static_cast<std::uint32_t>((addr / access_bytes) % num_banks);
}

std::uint64_t DramConfig::row_of(Addr addr) const noexcept {
    // Global line index -> per-bank line index -> row within the bank.
    const std::uint64_t line_in_bank = (addr / access_bytes) / num_banks;
    return line_in_bank / (row_bytes / access_bytes);
}

MemoryController::MemoryController(DramConfig config)
    : config_(config), banks_(config.num_banks) {
    config_.validate();
    access_shift_ = static_cast<std::uint32_t>(std::countr_zero(
        static_cast<std::uint64_t>(config_.access_bytes)));
    bank_shift_ = static_cast<std::uint32_t>(std::countr_zero(
        static_cast<std::uint64_t>(config_.num_banks)));
    bank_mask_ = config_.num_banks - 1;
    row_line_shift_ = static_cast<std::uint32_t>(
        std::countr_zero(config_.row_bytes / config_.access_bytes));
}

void MemoryController::enqueue(const DramRequest& request) {
    RRB_REQUIRE(request.addr < config_.capacity_bytes,
                "address beyond DRAM capacity");
    queue_.push_back(request);
}

std::optional<std::size_t> MemoryController::pick(Cycle now) const {
    if (queue_.empty()) return std::nullopt;

    auto issuable = [&](const DramRequest& q) {
        const std::uint32_t bank = bank_of(q.addr);
        return banks_[bank].ready_at <= now && data_bus_free_at_ <= now &&
               q.arrival <= now;
    };

    if (config_.scheduling == DramScheduling::kFrFcfs) {
        // First: oldest row hit.
        for (std::size_t i = 0; i < queue_.size(); ++i) {
            const DramRequest& q = queue_[i];
            if (!issuable(q)) continue;
            const Bank& bank = banks_[bank_of(q.addr)];
            if (bank.open_row && *bank.open_row == row_of(q.addr)) {
                return i;
            }
        }
    }
    // Then: oldest issuable request (this is plain FCFS too).
    for (std::size_t i = 0; i < queue_.size(); ++i) {
        if (issuable(queue_[i])) return i;
    }
    return std::nullopt;
}

void MemoryController::tick(Cycle now) {
    // Refresh: at every tREFI boundary all banks go busy for tRFC.
    if (config_.refresh_interval > 0 && now > 0 &&
        now % config_.refresh_interval == 0) {
        ++stats_.refreshes;
        for (Bank& bank : banks_) {
            bank.ready_at = std::max(bank.ready_at,
                                     now + config_.refresh_duration);
            bank.open_row.reset();  // refresh closes the rows
        }
        if (tracer_ && tracer_->enabled()) {
            tracer_->record(now, TraceKind::kDramPrecharge, 0, ~0ULL);
        }
    }

    // Completions first so a dependent requester sees data this cycle.
    for (auto it = in_flight_.begin(); it != in_flight_.end();) {
        if (it->completion == now) {
            const InFlight done = *it;
            it = in_flight_.erase(it);
            stats_.total_latency += done.completion - done.request.arrival;
            stats_.latency.add(done.completion - done.request.arrival);
            // Charge the service interval before the client posts the
            // fill response (whose wait clock starts at `now`).
            if (attr_ != nullptr && !done.request.is_write) {
                attr_->charge(done.request.core, done.service_class, now);
            }
            if (client_ != nullptr) client_->dram_complete(done.request, now);
        } else {
            ++it;
        }
    }

    const std::optional<std::size_t> index = pick(now);
    if (!index) return;

    const DramRequest chosen = queue_[*index];
    queue_.erase(queue_.begin() +
                 static_cast<std::vector<DramRequest>::difference_type>(
                     *index));

    const std::uint32_t bank_id = bank_of(chosen.addr);
    const std::uint64_t row = row_of(chosen.addr);
    Bank& bank = banks_[bank_id];
    const DramTiming& t = config_.timing;

    Cycle latency = t.t_overhead;
    StallCause service_class = StallCause::kDramRowHit;
    if (bank.open_row && *bank.open_row == row) {
        ++stats_.row_hits;
    } else if (!bank.open_row) {
        ++stats_.row_misses;
        service_class = StallCause::kDramRowMiss;
        latency += t.t_rcd;  // ACT then column command
        if (tracer_ && tracer_->enabled()) {
            tracer_->record(now, TraceKind::kDramActivate, chosen.core, row);
        }
    } else {
        ++stats_.row_conflicts;
        service_class = StallCause::kDramRowConflict;
        latency += t.t_rp + t.t_rcd;  // PRE, ACT, column command
        if (tracer_ && tracer_->enabled()) {
            tracer_->record(now, TraceKind::kDramPrecharge, chosen.core,
                            *bank.open_row);
        }
    }
    latency += t.t_cl + t.t_burst;

    if (attr_ != nullptr && !chosen.is_write) {
        // Queue wait [charged-so-far, now): the portion overlapping a
        // refresh window is the refresh's fault, the rest plain queueing.
        const Cycle start = attr_->charged_until(chosen.core);
        if (now > start) {
            const std::uint64_t refresh =
                refresh_blocked_before(now, config_.refresh_interval,
                                       config_.refresh_duration) -
                refresh_blocked_before(start, config_.refresh_interval,
                                       config_.refresh_duration);
            attr_->add(chosen.core, StallCause::kDramRefresh, refresh);
            attr_->add(chosen.core, StallCause::kDramQueue,
                       (now - start) - refresh);
            attr_->advance(chosen.core, now);
        }
    }

    if (config_.page_policy == PagePolicy::kClosedPage) {
        // Auto-precharge: the row never stays open; the bank additionally
        // pays tRP before it can accept the next ACT.
        bank.open_row.reset();
        bank.ready_at = now + latency + t.t_rp;
    } else {
        bank.open_row = row;
        bank.ready_at = now + latency;
    }
    data_bus_free_at_ = now + latency;  // burst tail occupies the data bus

    if (chosen.is_write) {
        ++stats_.writes;
    } else {
        ++stats_.reads;
    }
    if (tracer_ && tracer_->enabled()) {
        tracer_->record(now, TraceKind::kDramAccess, chosen.core,
                        chosen.addr);
    }

    in_flight_.push_back({chosen, now + latency, service_class});
}

void MemoryController::flush_attribution(Cycle limit) {
    if (attr_ == nullptr) return;
    for (const InFlight& f : in_flight_) {
        if (f.request.is_write) continue;
        attr_->charge(f.request.core, f.service_class, limit);
    }
    for (const DramRequest& q : queue_) {
        if (q.is_write) continue;
        const Cycle start = attr_->charged_until(q.core);
        if (limit <= start) continue;
        const std::uint64_t refresh =
            refresh_blocked_before(limit, config_.refresh_interval,
                                   config_.refresh_duration) -
            refresh_blocked_before(start, config_.refresh_interval,
                                   config_.refresh_duration);
        attr_->add(q.core, StallCause::kDramRefresh, refresh);
        attr_->add(q.core, StallCause::kDramQueue, (limit - start) - refresh);
        attr_->advance(q.core, limit);
    }
}

Cycle MemoryController::next_event_cycle(Cycle now) const {
    Cycle next = kNoCycle;
    // Refresh fires at every tREFI boundary whether or not traffic is
    // queued — a skipped boundary would drop a refresh (and its bank
    // blocking) that the naive stepper performs.
    if (config_.refresh_interval > 0) {
        const Cycle boundary =
            (now > 0 && now % config_.refresh_interval == 0)
                ? now
                : (now / config_.refresh_interval + 1) *
                      config_.refresh_interval;
        next = std::min(next, boundary);
    }
    for (const InFlight& f : in_flight_) next = std::min(next, f.completion);
    for (const DramRequest& q : queue_) {
        // Earliest cycle this request passes pick()'s issuable() check.
        const Bank& bank = banks_[bank_of(q.addr)];
        Cycle at = q.arrival;
        at = std::max(at, bank.ready_at);
        at = std::max(at, data_bus_free_at_);
        next = std::min(next, std::max(at, now));
    }
    return next;
}

void MemoryController::reset() {
    for (Bank& bank : banks_) {
        bank.open_row.reset();
        bank.ready_at = 0;
    }
    queue_.clear();
    in_flight_.clear();
    data_bus_free_at_ = 0;
    stats_.reset();
}

}  // namespace rrb
