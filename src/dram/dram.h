// DRAMsim-style memory controller + DDR2 bank model.
//
// The paper's setup models "a 2-GB one-rank DDR2-667 with 4 banks, burst
// of 4 transfers and a 64-bit bus, which provides 32 bytes per access,
// i.e., a cache line" behind the on-chip memory controller (DRAMsim2).
// The headline experiments never leave the L2, but the EEMBC-like
// workloads of Figure 6(a) do, and a downstream user pointing the
// methodology at the memory controller needs this path to exist.
//
// Model: per-bank row-buffer state machines with open-page policy and a
// shared data bus; timing parameters are expressed in *core* cycles with a
// preset derived from DDR2-667 at a 200MHz core clock. tRAS/tWR are folded
// into the precharge path (documented approximation: the arbitration
// experiments are insensitive to DRAM microtiming, only to the fact that
// misses are split transactions with a bank-dependent latency).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "machine/attribution.h"
#include "sim/trace.h"
#include "sim/types.h"
#include "stats/histogram.h"

namespace rrb {

/// DRAM timing parameters in core clock cycles.
struct DramTiming {
    Cycle t_rcd = 3;      ///< ACT -> column command
    Cycle t_cl = 3;       ///< column read -> first data
    Cycle t_rp = 3;       ///< precharge
    Cycle t_burst = 2;    ///< 4-transfer burst on the 64-bit DDR bus
    Cycle t_overhead = 2; ///< controller decode / command bus

    /// DDR2-667 (Kingston KVR667D2S5/2G-like) timings scaled to a 200MHz
    /// core: 15ns tRCD/tCL/tRP => 3 cycles, 6ns burst => 2 cycles.
    [[nodiscard]] static DramTiming ddr2_667_at_200mhz() { return {}; }
};

enum class DramScheduling : std::uint8_t {
    kFcfs,    ///< strict arrival order
    kFrFcfs,  ///< row hits first, then oldest (open-page default)
};

enum class PagePolicy : std::uint8_t {
    kOpenPage,    ///< rows stay open; hits are cheap, conflicts pay tRP+tRCD
    kClosedPage,  ///< auto-precharge after every access: flat tRCD+tCL cost
};

struct DramConfig {
    std::uint64_t capacity_bytes = 2ULL * 1024 * 1024 * 1024;
    std::uint32_t num_banks = 4;
    std::uint64_t row_bytes = 8 * 1024;
    std::uint32_t access_bytes = 32;  ///< one burst = one cache line
    DramTiming timing;
    DramScheduling scheduling = DramScheduling::kFrFcfs;
    PagePolicy page_policy = PagePolicy::kOpenPage;

    /// Periodic refresh: every refresh_interval cycles all banks are
    /// blocked for refresh_duration cycles (tREFI / tRFC). 0 disables
    /// refresh. DDR2-667 at a 200MHz core clock: 7.8us => 1560 cycles
    /// interval, 127.5ns => 26 cycles duration.
    Cycle refresh_interval = 0;
    Cycle refresh_duration = 26;

    void validate() const;

    /// Address mapping: line-interleaved across banks
    /// (row | bank | column | offset).
    [[nodiscard]] std::uint32_t bank_of(Addr addr) const noexcept;
    [[nodiscard]] std::uint64_t row_of(Addr addr) const noexcept;
};

struct DramRequest {
    CoreId core = 0;
    Addr addr = 0;
    bool is_write = false;
    Cycle arrival = 0;
    std::uint64_t tag = 0;
};

/// Fixed completion sink, one per controller (see BusClient for the
/// rationale): every finished request is reported with its original
/// DramRequest — including the caller-defined `tag` — so per-request
/// state is a POD token and enqueueing never allocates.
class DramClient {
public:
    virtual ~DramClient() = default;
    virtual void dram_complete(const DramRequest& request,
                               Cycle completion) = 0;
};

struct DramStats {
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t refreshes = 0;
    std::uint64_t row_hits = 0;
    std::uint64_t row_misses = 0;    ///< bank idle / row closed
    std::uint64_t row_conflicts = 0; ///< different row open (needs PRE)
    std::uint64_t total_latency = 0; ///< sum of (completion - arrival)
    Histogram latency;

    [[nodiscard]] std::uint64_t accesses() const noexcept {
        return reads + writes;
    }
    [[nodiscard]] double row_hit_ratio() const noexcept {
        return accesses() == 0 ? 0.0
                               : static_cast<double>(row_hits) /
                                     static_cast<double>(accesses());
    }
    [[nodiscard]] double mean_latency() const noexcept {
        return accesses() == 0 ? 0.0
                               : static_cast<double>(total_latency) /
                                     static_cast<double>(accesses());
    }

    /// Zeroes the counters in place, keeping histogram storage.
    void reset() noexcept {
        reads = 0;
        writes = 0;
        refreshes = 0;
        row_hits = 0;
        row_misses = 0;
        row_conflicts = 0;
        total_latency = 0;
        latency.clear();
    }
};

class MemoryController {
public:
    explicit MemoryController(DramConfig config);

    /// Attaches the completion sink all requests report to.
    void attach_client(DramClient* client) noexcept { client_ = client; }

    /// Queues a request; the client is notified during the tick in which
    /// the burst finishes.
    void enqueue(const DramRequest& request);

    /// Advances the controller to cycle `now` (call once per cycle,
    /// monotonically).
    void tick(Cycle now);

    /// Earliest future cycle at which tick() would change state: the
    /// next in-flight completion, the first cycle a queued request
    /// becomes issuable (bank ready, data bus free, request arrived),
    /// or the next refresh boundary. kNoCycle when the controller is
    /// provably inert until new requests arrive.
    [[nodiscard]] Cycle next_event_cycle(Cycle now) const;

    /// Power-on restore without reallocation: queue and in-flight
    /// requests dropped, banks closed and ready, statistics zeroed.
    /// The attached client and tracer are kept.
    void reset();

    [[nodiscard]] bool idle() const noexcept {
        return queue_.empty() && in_flight_.empty();
    }
    [[nodiscard]] std::size_t queue_depth() const noexcept {
        return queue_.size();
    }
    [[nodiscard]] const DramStats& stats() const noexcept { return stats_; }
    [[nodiscard]] const DramConfig& config() const noexcept { return config_; }
    void reset_stats() noexcept { stats_.reset(); }

    void attach_tracer(Tracer* tracer) noexcept { tracer_ = tracer; }

    /// Arms (non-null) or disarms (null) cycle attribution. While armed,
    /// every *read* charges its queue wait (split into refresh overlap
    /// vs plain queueing) at issue and its service interval by row class
    /// at completion; writes are background traffic nobody waits on.
    void attach_attribution(CycleAttribution* attribution) noexcept {
        attr_ = attribution;
    }

    /// Settles attribution up to `limit` for queued and in-flight reads —
    /// the cut-off path of the closed accounting invariant.
    void flush_attribution(Cycle limit);

private:
    struct Bank {
        std::optional<std::uint64_t> open_row;
        Cycle ready_at = 0;  ///< bank can accept a new command at this cycle
    };
    struct InFlight {
        DramRequest request;
        Cycle completion = 0;
        /// Row class the access paid (attribution; kDramRowHit/Miss/Conflict).
        StallCause service_class = StallCause::kDramRowHit;
    };

    /// Picks the queue index to issue next under the configured policy.
    [[nodiscard]] std::optional<std::size_t> pick(Cycle now) const;

    // Shift/mask forms of DramConfig::bank_of / row_of, precomputed once
    // (access_bytes, num_banks and row_bytes are validated powers of
    // two): the scheduler evaluates these per queued request per cycle.
    [[nodiscard]] std::uint32_t bank_of(Addr addr) const noexcept {
        return static_cast<std::uint32_t>((addr >> access_shift_) &
                                          bank_mask_);
    }
    [[nodiscard]] std::uint64_t row_of(Addr addr) const noexcept {
        return (addr >> access_shift_) >> (bank_shift_ + row_line_shift_);
    }

    DramConfig config_;
    std::uint32_t access_shift_ = 0;    ///< log2(access_bytes)
    std::uint32_t bank_shift_ = 0;      ///< log2(num_banks)
    std::uint64_t bank_mask_ = 0;       ///< num_banks - 1
    std::uint32_t row_line_shift_ = 0;  ///< log2(row_bytes / access_bytes)
    std::vector<Bank> banks_;
    // Arrival-ordered queue. A vector, not a deque: erases shift (the
    // queue is at most a few entries — one outstanding miss per core
    // plus victim writebacks) and the capacity is retained across
    // reset(), so the steady-state request path never allocates.
    std::vector<DramRequest> queue_;
    std::vector<InFlight> in_flight_;
    Cycle data_bus_free_at_ = 0;
    DramStats stats_;
    DramClient* client_ = nullptr;
    Tracer* tracer_ = nullptr;
    CycleAttribution* attr_ = nullptr;
};

}  // namespace rrb
