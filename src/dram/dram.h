// DRAMsim-style memory controller + DDR2 bank model.
//
// The paper's setup models "a 2-GB one-rank DDR2-667 with 4 banks, burst
// of 4 transfers and a 64-bit bus, which provides 32 bytes per access,
// i.e., a cache line" behind the on-chip memory controller (DRAMsim2).
// The headline experiments never leave the L2, but the EEMBC-like
// workloads of Figure 6(a) do, and a downstream user pointing the
// methodology at the memory controller needs this path to exist.
//
// Model: per-bank row-buffer state machines with open-page policy and a
// shared data bus; timing parameters are expressed in *core* cycles with a
// preset derived from DDR2-667 at a 200MHz core clock. tRAS/tWR are folded
// into the precharge path (documented approximation: the arbitration
// experiments are insensitive to DRAM microtiming, only to the fact that
// misses are split transactions with a bank-dependent latency).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "sim/trace.h"
#include "sim/types.h"
#include "stats/histogram.h"

namespace rrb {

/// DRAM timing parameters in core clock cycles.
struct DramTiming {
    Cycle t_rcd = 3;      ///< ACT -> column command
    Cycle t_cl = 3;       ///< column read -> first data
    Cycle t_rp = 3;       ///< precharge
    Cycle t_burst = 2;    ///< 4-transfer burst on the 64-bit DDR bus
    Cycle t_overhead = 2; ///< controller decode / command bus

    /// DDR2-667 (Kingston KVR667D2S5/2G-like) timings scaled to a 200MHz
    /// core: 15ns tRCD/tCL/tRP => 3 cycles, 6ns burst => 2 cycles.
    [[nodiscard]] static DramTiming ddr2_667_at_200mhz() { return {}; }
};

enum class DramScheduling : std::uint8_t {
    kFcfs,    ///< strict arrival order
    kFrFcfs,  ///< row hits first, then oldest (open-page default)
};

enum class PagePolicy : std::uint8_t {
    kOpenPage,    ///< rows stay open; hits are cheap, conflicts pay tRP+tRCD
    kClosedPage,  ///< auto-precharge after every access: flat tRCD+tCL cost
};

struct DramConfig {
    std::uint64_t capacity_bytes = 2ULL * 1024 * 1024 * 1024;
    std::uint32_t num_banks = 4;
    std::uint64_t row_bytes = 8 * 1024;
    std::uint32_t access_bytes = 32;  ///< one burst = one cache line
    DramTiming timing;
    DramScheduling scheduling = DramScheduling::kFrFcfs;
    PagePolicy page_policy = PagePolicy::kOpenPage;

    /// Periodic refresh: every refresh_interval cycles all banks are
    /// blocked for refresh_duration cycles (tREFI / tRFC). 0 disables
    /// refresh. DDR2-667 at a 200MHz core clock: 7.8us => 1560 cycles
    /// interval, 127.5ns => 26 cycles duration.
    Cycle refresh_interval = 0;
    Cycle refresh_duration = 26;

    void validate() const;

    /// Address mapping: line-interleaved across banks
    /// (row | bank | column | offset).
    [[nodiscard]] std::uint32_t bank_of(Addr addr) const noexcept;
    [[nodiscard]] std::uint64_t row_of(Addr addr) const noexcept;
};

struct DramRequest {
    CoreId core = 0;
    Addr addr = 0;
    bool is_write = false;
    Cycle arrival = 0;
    std::uint64_t tag = 0;
};

using DramCompletionFn =
    std::function<void(const DramRequest& request, Cycle completion)>;

struct DramStats {
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t refreshes = 0;
    std::uint64_t row_hits = 0;
    std::uint64_t row_misses = 0;    ///< bank idle / row closed
    std::uint64_t row_conflicts = 0; ///< different row open (needs PRE)
    std::uint64_t total_latency = 0; ///< sum of (completion - arrival)
    Histogram latency;

    [[nodiscard]] std::uint64_t accesses() const noexcept {
        return reads + writes;
    }
    [[nodiscard]] double row_hit_ratio() const noexcept {
        return accesses() == 0 ? 0.0
                               : static_cast<double>(row_hits) /
                                     static_cast<double>(accesses());
    }
    [[nodiscard]] double mean_latency() const noexcept {
        return accesses() == 0 ? 0.0
                               : static_cast<double>(total_latency) /
                                     static_cast<double>(accesses());
    }
};

class MemoryController {
public:
    explicit MemoryController(DramConfig config);

    /// Queues a request; `on_complete` fires during the tick in which the
    /// burst finishes.
    void enqueue(const DramRequest& request, DramCompletionFn on_complete);

    /// Advances the controller to cycle `now` (call once per cycle,
    /// monotonically).
    void tick(Cycle now);

    [[nodiscard]] bool idle() const noexcept {
        return queue_.empty() && in_flight_.empty();
    }
    [[nodiscard]] std::size_t queue_depth() const noexcept {
        return queue_.size();
    }
    [[nodiscard]] const DramStats& stats() const noexcept { return stats_; }
    [[nodiscard]] const DramConfig& config() const noexcept { return config_; }
    void reset_stats() noexcept { stats_ = {}; }

    void attach_tracer(Tracer* tracer) noexcept { tracer_ = tracer; }

private:
    struct Bank {
        std::optional<std::uint64_t> open_row;
        Cycle ready_at = 0;  ///< bank can accept a new command at this cycle
    };
    struct InFlight {
        DramRequest request;
        DramCompletionFn on_complete;
        Cycle completion = 0;
    };

    /// Picks the queue index to issue next under the configured policy.
    [[nodiscard]] std::optional<std::size_t> pick(Cycle now) const;

    DramConfig config_;
    std::vector<Bank> banks_;
    struct Queued {
        DramRequest request;
        DramCompletionFn on_complete;
    };
    std::deque<Queued> queue_;
    std::vector<InFlight> in_flight_;
    Cycle data_bus_free_at_ = 0;
    DramStats stats_;
    Tracer* tracer_ = nullptr;
};

}  // namespace rrb
