// Shared plumbing for the figure-reproduction benches.
//
// Each bench binary reproduces one figure or table of the paper: it prints
// the paper-style data (ASCII chart + rows) once at startup, then runs a
// small set of google-benchmark timings of the underlying simulations so
// `for b in build/bench/*; do $b; done` doubles as a performance check of
// the simulator itself.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "core/rrb.h"

namespace rrbench {

inline void print_header(const char* experiment, const char* claim) {
    std::printf("\n==============================================================\n");
    std::printf("%s\n", experiment);
    std::printf("paper: %s\n", claim);
    std::printf("==============================================================\n");
}

inline void print_row(const std::string& row) {
    std::printf("%s\n", row.c_str());
}

/// Boilerplate main: figure output first, then the registered benchmarks.
#define RRBENCH_MAIN(print_figure_fn)                          \
    int main(int argc, char** argv) {                         \
        print_figure_fn();                                     \
        ::benchmark::Initialize(&argc, argv);                  \
        if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
        ::benchmark::RunSpecifiedBenchmarks();                 \
        ::benchmark::Shutdown();                               \
        return 0;                                              \
    }

}  // namespace rrbench
