// Engine scaling: campaign throughput vs worker count.
//
// A 20-run HWM campaign is sharded over jobs ∈ {1, 2, 4, hw} and timed.
// Because the per-run seed derivation makes the numbers identical at
// every job count, the only thing that changes is wall-clock time — the
// table prints runs/second and the speedup over jobs = 1, and verifies
// the HWM agrees across all widths. On a multi-core host the speedup at
// jobs = 4 should be >= 2x; on a single-hardware-thread host the table
// degenerates to ~1x and says so.
#include <chrono>

#include "fig_common.h"

using namespace rrb;

namespace {

constexpr std::size_t kRuns = 20;

HwmCampaignResult run_at(std::size_t jobs) {
    const MachineConfig cfg = MachineConfig::ngmp_ref();
    const Program scua =
        make_autobench(Autobench::kCacheb, 0x0100'0000, 150, 9);
    HwmCampaignOptions opt;
    opt.runs = kRuns;
    opt.seed = 11;
    engine::EngineOptions eng;
    eng.jobs = jobs;
    return engine::run_hwm_campaign_parallel(
        cfg, scua, make_rsk_contenders(cfg, OpKind::kLoad), opt, eng);
}

void print_figure() {
    rrbench::print_header(
        "Engine scaling — 20-run HWM campaign sharded over N jobs",
        "identical HWM at every job count; throughput scales with "
        "hardware threads");

    const std::size_t hw = engine::ThreadPool::default_jobs();
    std::vector<std::size_t> widths = {1, 2, 4};
    if (hw > 4) widths.push_back(hw);

    std::printf("hardware threads: %zu\n\n", hw);
    std::printf("%6s %12s %12s %10s %12s\n", "jobs", "wall[ms]",
                "runs/sec", "speedup", "hwm");

    double baseline_ms = 0.0;
    Cycle reference_hwm = 0;
    bool hwm_stable = true;
    for (const std::size_t jobs : widths) {
        const auto start = std::chrono::steady_clock::now();
        const HwmCampaignResult result = run_at(jobs);
        const auto stop = std::chrono::steady_clock::now();
        const double ms =
            std::chrono::duration<double, std::milli>(stop - start).count();
        if (jobs == 1) {
            baseline_ms = ms;
            reference_hwm = result.high_water_mark;
        } else if (result.high_water_mark != reference_hwm) {
            hwm_stable = false;
        }
        std::printf("%6zu %12.1f %12.1f %9.2fx %12llu\n", jobs, ms,
                    ms > 0.0 ? 1000.0 * kRuns / ms : 0.0,
                    ms > 0.0 ? baseline_ms / ms : 0.0,
                    static_cast<unsigned long long>(result.high_water_mark));
    }

    std::printf("\nhwm identical across job counts: %s\n",
                hwm_stable ? "yes" : "NO (determinism bug!)");
    if (hw < 4) {
        std::printf(
            "note: only %zu hardware thread(s) — speedup is bounded by "
            "the host, not the engine.\n",
            hw);
    }
}

void BM_CampaignJobs(benchmark::State& state) {
    const auto jobs = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(run_at(jobs));
    }
}
BENCHMARK(BM_CampaignJobs)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

RRBENCH_MAIN(print_figure)
