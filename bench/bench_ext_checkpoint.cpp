// Extension — checkpointed campaigns: what distributing a pWCET
// campaign actually ships.
//
// The federated-aggregation trick behind `rrbtool pwcet --shard` /
// `rrbtool merge`: each worker folds its slice of the shard plan and
// ships compact accumulator state, never raw runs. This bench makes the
// communication argument concrete — checkpoint bytes per slice vs the
// bytes a raw exec-times transfer would need — verifies the 4-way
// slice-then-merge reproduces the monolithic campaign bit for bit, and
// times the codec (encode / decode / merge) to show the fan-in cost is
// noise next to the simulation itself.
#include <cinttypes>
#include <cstdio>

#include "fig_common.h"

using namespace rrb;

namespace {

constexpr std::size_t kRuns = 20'000;
constexpr std::size_t kBlockSize = 50;
constexpr std::size_t kSlices = 4;

/// Scratch file for a slice; session.checkpoint always persists, the
/// bench only needs the in-memory return value.
std::string testing_path(std::size_t i) {
    return "/tmp/rrb_bench_ckpt_" + std::to_string(i) + ".ckpt";
}

Scenario bench_scenario() {
    return Scenario::on(MachineConfig::ngmp_ref())
        .scua(make_autobench(Autobench::kCacheb, 0x0100'0000, 40, 5))
        .rsk_contenders(OpKind::kLoad)
        .runs(kRuns)
        .seed(23);
}

PwcetSpec bench_spec() {
    PwcetSpec spec;
    spec.block_size = kBlockSize;
    spec.exceedance = {1e-9};
    return spec;
}

void print_figure() {
    rrbench::print_header(
        "Extension — checkpointed campaigns: slice, ship state, merge",
        "mergeable accumulator state is constant-size-ish per slice "
        "(~runs/block_size live values), so distributing a campaign "
        "ships kilobytes where raw runs would ship megabytes — and the "
        "merged statistics are bit-identical to one monolithic run");

    const Scenario scenario = bench_scenario();
    const PwcetSpec spec = bench_spec();

    Session session;
    const PwcetCampaignResult reference = session.pwcet(scenario, spec);

    std::printf("%8s %14s %14s %12s\n", "slice", "runs", "ckpt bytes",
                "raw bytes");
    std::size_t checkpoint_bytes = 0;
    std::vector<PwcetCheckpoint> checkpoints;
    for (std::size_t i = 0; i < kSlices; ++i) {
        Session worker;
        const std::string path = testing_path(i);
        checkpoints.push_back(
            worker.checkpoint(scenario, spec, {i, kSlices}, path));
        const PwcetCheckpoint& c = checkpoints.back();
        const std::size_t bytes = encode_pwcet_checkpoint(c).size();
        checkpoint_bytes += bytes;
        const std::uint64_t runs = c.meta.last_run - c.meta.first_run;
        std::printf("%8zu %14" PRIu64 " %14zu %12zu\n", i, runs, bytes,
                    static_cast<std::size_t>(runs) * sizeof(Cycle));
        std::remove(path.c_str());
    }

    const MergedPwcetCampaign merged =
        merge_pwcet_checkpoints(checkpoints);
    const bool identical =
        merged.result.mean == reference.mean &&
        merged.result.stddev == reference.stddev &&
        merged.result.fit.mu == reference.fit.mu &&
        merged.result.fit.beta == reference.fit.beta &&
        merged.result.high_water_mark == reference.high_water_mark;
    std::printf(
        "\n%zu-way merge vs monolithic: %s (hwm %" PRIu64 ", mean %.3f, "
        "pwcet@1e-9 %.0f)\n",
        kSlices, identical ? "bit-identical" : "MISMATCH",
        merged.result.high_water_mark, merged.result.mean,
        merged.result.quantiles.front().pwcet);
    std::printf(
        "total shipped: %zu checkpoint bytes for %zu runs; a raw "
        "exec-times transfer would ship %zu bytes (%zux more)\n",
        checkpoint_bytes, kRuns, kRuns * sizeof(Cycle),
        checkpoint_bytes == 0
            ? 0
            : kRuns * sizeof(Cycle) / checkpoint_bytes);
}

void BM_EncodeCheckpoint(benchmark::State& state) {
    Session session;
    const std::string path = testing_path(99);
    const PwcetCheckpoint checkpoint =
        session.checkpoint(bench_scenario(), bench_spec(), {0, 1}, path);
    std::remove(path.c_str());
    for (auto _ : state) {
        benchmark::DoNotOptimize(encode_pwcet_checkpoint(checkpoint));
    }
}
BENCHMARK(BM_EncodeCheckpoint);

void BM_DecodeCheckpoint(benchmark::State& state) {
    Session session;
    const std::string path = testing_path(98);
    const std::vector<std::uint8_t> bytes = encode_pwcet_checkpoint(
        session.checkpoint(bench_scenario(), bench_spec(), {0, 1}, path));
    std::remove(path.c_str());
    for (auto _ : state) {
        benchmark::DoNotOptimize(decode_pwcet_checkpoint(bytes));
    }
    state.SetBytesProcessed(state.iterations() *
                            static_cast<std::int64_t>(bytes.size()));
}
BENCHMARK(BM_DecodeCheckpoint);

void BM_MergeCheckpoints(benchmark::State& state) {
    std::vector<PwcetCheckpoint> checkpoints;
    for (std::size_t i = 0; i < kSlices; ++i) {
        Session worker;
        const std::string path = testing_path(90 + i);
        checkpoints.push_back(worker.checkpoint(
            bench_scenario(), bench_spec(), {i, kSlices}, path));
        std::remove(path.c_str());
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(merge_pwcet_checkpoints(checkpoints));
    }
}
BENCHMARK(BM_MergeCheckpoints)->Unit(benchmark::kMillisecond);

}  // namespace

RRBENCH_MAIN(print_figure)
