// Figure 4: the saw-tooth behaviour of the per-request contention delay
// gamma(delta) under high load. Renders Equation 2's model and overlays
// the simulated values on the NGMP reference platform (ubd = 27), showing
// that the maximum reachable contention for delta > 0 is ubd - 1 while
// the *period* is exactly ubd.
#include "fig_common.h"

using namespace rrb;

namespace {

void print_figure() {
    rrbench::print_header(
        "Figure 4 — saw-tooth of gamma(delta), NGMP ref (ubd=27)",
        "max contention ubd only at delta=0; ubd-1 at delta=1 mod ubd; "
        "period = ubd regardless of delta_rsk");

    const MachineConfig cfg = MachineConfig::ngmp_ref();
    const Cycle ubd = cfg.ubd_analytic();

    const std::vector<double> model = sawtooth_model(ubd, 0, 1, 81);
    ChartOptions opts;
    opts.title = "gamma(delta), Equation 2 (delta on x, 0..81)";
    opts.height = 9;
    std::printf("%s\n", render_series(model, opts).c_str());

    // Simulated overlay: sample gamma at delta = 1..40 via rsk-nop.
    std::printf("delta  gamma(model)  gamma(sim)\n");
    int mismatches = 0;
    for (std::uint32_t k = 0; k <= 39; k += 3) {
        const Cycle delta = k + 1;
        RskParams params;
        params.iterations = 40;
        const Program scua = make_rsk_nop(params, k);
        const Measurement m = run_contention(
            cfg, scua, make_rsk_contenders(cfg, OpKind::kLoad));
        const Cycle expect = gamma_eq2(delta, ubd);
        if (m.gamma.mode() != expect) ++mismatches;
        std::printf("%5llu %13llu %11llu\n",
                    static_cast<unsigned long long>(delta),
                    static_cast<unsigned long long>(expect),
                    static_cast<unsigned long long>(m.gamma.mode()));
    }
    std::printf("mismatches: %d; peaks of the model at delta = 1 + m*ubd "
                "(value ubd-1 = %llu)\n",
                mismatches, static_cast<unsigned long long>(ubd - 1));
}

void BM_SawtoothModelEval(benchmark::State& state) {
    for (auto _ : state) {
        benchmark::DoNotOptimize(sawtooth_model(27, 1, 1, 1000));
    }
}
BENCHMARK(BM_SawtoothModelEval);

}  // namespace

RRBENCH_MAIN(print_figure)
