// Hot-path microbenchmark + allocation audit for the campaign simulator.
//
// Measures the same workload as bench_ext_hwm_campaign's BM_OneCampaign —
// the EEMBC-like cacheb scua against load-rsk contenders on the NGMP
// reference platform — through two execution paths:
//
//   naive : a fresh Machine per run, cycle-by-cycle stepping — the
//           pre-optimization reference semantics;
//   hot   : the production path (engine::MachineLease reuse +
//           event-driven cycle skipping + POD completion tokens).
//
// Emits machine-readable JSON (runs/sec, simulated cycles/sec, speedup,
// heap allocations per run) and FAILS (exit 1) when the hot path's
// steady state performs any heap allocation per run — the allocation
// counter is a global operator new/delete interposer, so nothing can
// hide. All rates are best-sustained-window estimates (see ChunkTimer)
// so bursty co-tenant load on shared CI hosts does not poison the
// telemetry/attribution overhead ratios. CI runs this as the perf-smoke stage; the numbers live in
// BENCH_hotpath.json.
//
// Deliberately not a google-benchmark binary: the allocation interposer
// must own global new/delete without fighting the framework, and CI
// needs this to build even where google-benchmark is absent.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>

#include "core/campaign.h"
#include "core/estimator.h"
#include "engine/machine_lease.h"
#include "kernels/autobench.h"
#include "machine/config.h"
#include "machine/machine.h"
#include "obs/report.h"
#include "obs/telemetry.h"
#include "stats/attribution.h"

// ------------------------------------------------ allocation interposer

namespace {

std::atomic<std::uint64_t> g_allocations{0};
std::atomic<std::uint64_t> g_allocated_bytes{0};
std::atomic<bool> g_counting{false};

std::uint64_t allocations_now() {
    return g_allocations.load(std::memory_order_relaxed);
}

struct CountScope {
    CountScope() { g_counting.store(true, std::memory_order_relaxed); }
    ~CountScope() { g_counting.store(false, std::memory_order_relaxed); }
};

}  // namespace

namespace {

void count_allocation(std::size_t size) {
    if (g_counting.load(std::memory_order_relaxed)) {
        g_allocations.fetch_add(1, std::memory_order_relaxed);
        g_allocated_bytes.fetch_add(size, std::memory_order_relaxed);
    }
}

}  // namespace

void* operator new(std::size_t size) {
    count_allocation(size);
    void* p = std::malloc(size);
    if (p == nullptr) throw std::bad_alloc();
    return p;
}

void* operator new[](std::size_t size) { return ::operator new(size); }

// Over-aligned and nothrow forms too — an allocation must not escape
// the audit by using a cache-line-aligned type or a nothrow new.
void* operator new(std::size_t size, std::align_val_t align) {
    count_allocation(size);
    void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                 (size + static_cast<std::size_t>(align) -
                                  1) &
                                     ~(static_cast<std::size_t>(align) - 1));
    if (p == nullptr) throw std::bad_alloc();
    return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
    return ::operator new(size, align);
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
    count_allocation(size);
    return std::malloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
    count_allocation(size);
    return std::malloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
    std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
    std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
    std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
    std::free(p);
}

// ------------------------------------------------------------ benchmark

namespace {

using namespace rrb;
using Clock = std::chrono::steady_clock;

struct PathResult {
    double seconds = 0.0;
    std::uint64_t runs = 0;
    std::uint64_t cycles = 0;  ///< sum of simulated finish cycles
    std::uint64_t hwm = 0;     ///< campaign HWM — the bit-identity witness
    double allocs_per_run = 0.0;
    /// Best (shortest) wall time over any kChunkRuns-long window, and
    /// the window size. CI hosts are shared and bursty; the best
    /// sustained window is the robust rate estimator (min-time, as in
    /// timeit), applied identically to every pass so overhead ratios
    /// compare like with like. Zero when the pass was too short to
    /// complete one window — rates then fall back to the whole pass.
    double chunk_seconds_best = 0.0;
    std::uint64_t chunk_runs = 0;

    [[nodiscard]] double runs_per_sec() const {
        if (chunk_runs > 0) {
            return static_cast<double>(chunk_runs) / chunk_seconds_best;
        }
        return static_cast<double>(runs) / seconds;
    }
    [[nodiscard]] double cycles_per_sec() const {
        return runs_per_sec() * static_cast<double>(cycles) /
               static_cast<double>(runs);
    }
};

constexpr std::uint64_t kChunkRuns = 50;

/// Folds one rotation's pass into the best-so-far for that mode: rates
/// take the fastest sustained window seen across rotations, while the
/// allocation audit keeps the WORST rotation — one allocating rotation
/// anywhere must still fail the bench.
void fold_best(PathResult& best, const PathResult& sample) {
    if (best.runs == 0) {
        best = sample;
        return;
    }
    best.allocs_per_run =
        std::max(best.allocs_per_run, sample.allocs_per_run);
    best.seconds = std::min(best.seconds, sample.seconds);
    if (sample.chunk_runs > 0 &&
        (best.chunk_runs == 0 ||
         sample.chunk_seconds_best < best.chunk_seconds_best)) {
        best.chunk_seconds_best = sample.chunk_seconds_best;
        best.chunk_runs = sample.chunk_runs;
    }
}

/// Tracks the best kChunkRuns-long window of a timed loop. now() is
/// allocation-free, so this is safe inside the counting scope.
class ChunkTimer {
public:
    void tick(PathResult& result) {
        if (++in_chunk_ < kChunkRuns) return;
        const double s =
            std::chrono::duration<double>(Clock::now() - start_).count();
        if (result.chunk_runs == 0 || s < result.chunk_seconds_best) {
            result.chunk_seconds_best = s;
            result.chunk_runs = kChunkRuns;
        }
        in_chunk_ = 0;
        start_ = Clock::now();
    }

private:
    Clock::time_point start_ = Clock::now();
    std::uint64_t in_chunk_ = 0;
};

std::uint64_t env_runs(const char* name, std::uint64_t fallback) {
    const char* text = std::getenv(name);
    if (text == nullptr || *text == '\0') return fallback;
    return static_cast<std::uint64_t>(std::strtoull(text, nullptr, 10));
}

/// RRB_HOTPATH_MODES="hot,naive" restricts which passes run — a
/// profiling aid (e.g. gprof of the replay path without the interpreted
/// reference modes drowning it out). Unset = all modes; CI never sets
/// it, so the shipped gate always measures everything.
bool mode_enabled(const char* mode) {
    const char* modes = std::getenv("RRB_HOTPATH_MODES");
    if (modes == nullptr || *modes == '\0') return true;
    const std::size_t len = std::strlen(mode);
    for (const char* at = modes; (at = std::strstr(at, mode)) != nullptr;
         at += len) {
        const bool starts = at == modes || at[-1] == ',';
        const bool ends = at[len] == '\0' || at[len] == ',';
        if (starts && ends) return true;
    }
    return false;
}

/// The committed reference's runs/sec for one section ("hot",
/// "attribution"), for the CI regression gate: finds the section object
/// in a previous BENCH_hotpath.json and reads its runs_per_sec. Returns
/// 0 when the file or field is missing (the gate then reports and skips
/// rather than failing on a fresh repo).
double baseline_runs_per_sec(const char* path, const char* section) {
    std::FILE* f = std::fopen(path, "r");
    if (f == nullptr) return 0.0;
    std::string text;
    char buf[4096];
    std::size_t got = 0;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
        text.append(buf, got);
    }
    std::fclose(f);
    const std::size_t at_section =
        text.find("\"" + std::string(section) + "\"");
    if (at_section == std::string::npos) return 0.0;
    const std::string key = "\"runs_per_sec\": ";
    const std::size_t at = text.find(key, at_section);
    if (at == std::string::npos) return 0.0;
    return std::strtod(text.c_str() + at + key.size(), nullptr);
}

/// The naive reference: fresh machine, naive stepping, per-run program
/// loads — semantically the pre-PR execution path. Runs the run indices
/// [first, first + runs) so its finishes are comparable one-to-one with
/// the hot path's.
PathResult run_naive(const MachineConfig& config, const Program& scua,
                     const std::vector<Program>& contenders,
                     const HwmCampaignOptions& options, std::uint64_t first,
                     std::uint64_t runs, std::vector<Cycle>& finishes) {
    PathResult result;
    const auto start = Clock::now();
    ChunkTimer chunks;
    for (std::uint64_t run = first; run < first + runs; ++run) {
        Machine machine(config);
        machine.set_cycle_skipping(false);
        std::uint64_t no_campaign = 0;
        const Cycle finish = detail::execute_campaign_run(
            machine, no_campaign, scua, contenders, options, run);
        result.cycles += finish;
        result.hwm = std::max(result.hwm, finish);
        finishes.push_back(finish);
        chunks.tick(result);
    }
    result.seconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    result.runs = runs;
    return result;
}

/// The production hot path, with the steady-state allocation audit:
/// after a warmup that sizes every reusable buffer, further runs must
/// not touch the heap at all. `finishes` must be pre-reserved — filling
/// it may not allocate inside the counting scope.
PathResult run_hot(const MachineConfig& config, const Program& scua,
                   const std::vector<Program>& contenders,
                   const HwmCampaignOptions& options, std::uint64_t runs,
                   std::uint64_t warmup, std::vector<Cycle>& finishes) {
    // The engine shard loops hoist the campaign fingerprint out of the
    // per-run path; the bench loop models them.
    const std::uint64_t campaign =
        detail::campaign_fingerprint(scua, contenders, options);
    for (std::uint64_t run = 0; run < warmup; ++run) {
        (void)detail::hwm_campaign_run(config, scua, contenders, options,
                                       run, campaign);
    }

    PathResult result;
    const std::uint64_t allocs_before = allocations_now();
    const auto start = Clock::now();
    {
        const CountScope counting;
        ChunkTimer chunks;
        for (std::uint64_t run = warmup; run < warmup + runs; ++run) {
            const Cycle finish = detail::hwm_campaign_run(
                config, scua, contenders, options, run, campaign);
            result.cycles += finish;
            result.hwm = std::max(result.hwm, finish);
            finishes.push_back(finish);
            chunks.tick(result);
        }
    }
    result.seconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    result.runs = runs;
    result.allocs_per_run =
        static_cast<double>(allocations_now() - allocs_before) /
        static_cast<double>(runs);
    return result;
}

/// The hot path with the cycle-attribution profiler armed on every run,
/// folding into one AttributionAccumulator. The warmup runs fold into
/// the same accumulator: its matrices are sized by the first add(), so
/// the measured steady state must stay allocation-free with the
/// profiler on. Same allocation audit and finish capture as run_hot.
PathResult run_attributed(const MachineConfig& config, const Program& scua,
                          const std::vector<Program>& contenders,
                          const HwmCampaignOptions& options,
                          std::uint64_t runs, std::uint64_t warmup,
                          std::vector<Cycle>& finishes,
                          AttributionAccumulator& acc) {
    const std::uint64_t campaign =
        detail::campaign_fingerprint(scua, contenders, options);
    for (std::uint64_t run = 0; run < warmup; ++run) {
        (void)detail::hwm_campaign_attribute(config, scua, contenders,
                                             options, run, acc, campaign);
    }

    PathResult result;
    const std::uint64_t allocs_before = allocations_now();
    const auto start = Clock::now();
    {
        const CountScope counting;
        ChunkTimer chunks;
        for (std::uint64_t run = warmup; run < warmup + runs; ++run) {
            const Cycle finish = detail::hwm_campaign_attribute(
                config, scua, contenders, options, run, acc, campaign);
            result.cycles += finish;
            result.hwm = std::max(result.hwm, finish);
            finishes.push_back(finish);
            chunks.tick(result);
        }
    }
    result.seconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    result.runs = runs;
    result.allocs_per_run =
        static_cast<double>(allocations_now() - allocs_before) /
        static_cast<double>(runs);
    return result;
}

}  // namespace

int main(int argc, char** argv) {
    const char* out_path = nullptr;
    const char* telemetry_path = nullptr;
    const char* baseline_path = nullptr;
    double max_regression_pct = -1.0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out_path = argv[++i];
        } else if (std::strcmp(argv[i], "--telemetry") == 0 &&
                   i + 1 < argc) {
            telemetry_path = argv[++i];
        } else if (std::strcmp(argv[i], "--baseline") == 0 &&
                   i + 1 < argc) {
            baseline_path = argv[++i];
        } else if (std::strcmp(argv[i], "--max-regression-pct") == 0 &&
                   i + 1 < argc) {
            max_regression_pct = std::strtod(argv[++i], nullptr);
        }
    }

    const std::uint64_t runs = env_runs("RRB_HOTPATH_RUNS", 400);
    const std::uint64_t warmup = env_runs("RRB_HOTPATH_WARMUP", 50);

    const MachineConfig config = MachineConfig::ngmp_ref();
    const Program scua = make_autobench(Autobench::kCacheb, 0x0100'0000,
                                        150, 9);
    const std::vector<Program> contenders =
        make_rsk_contenders(config, OpKind::kLoad);
    HwmCampaignOptions options;
    options.runs = static_cast<std::size_t>(warmup + runs);

    // Four modes, measured in rotation: hot, the naive reference, hot
    // with telemetry armed, hot with the cycle-attribution profiler
    // armed. Sequential one-shot passes would let a co-tenant burst on
    // a shared CI host land entirely inside one mode and skew its rate
    // (overhead ratios have come out anywhere from -136% to +22% that
    // way); rotating the modes gives each one samples spread across the
    // same noise environment, and fold_best keeps each mode's fastest
    // sustained window. Runs are index-deterministic, so the finish
    // vectors of any rotation compare element-wise: hot vs naive is the
    // live bit-identity check on the event-driven path, hot vs
    // telemetry/attribution proves arming is out-of-band. The telemetry
    // and attribution overhead ratios against the unarmed hot pass are
    // the numbers BENCH_hotpath.json tracks (target: under 2%).
    const std::uint64_t rotations = env_runs("RRB_HOTPATH_ROTATIONS", 5);
    const std::uint64_t naive_runs = runs == 0 ? 0 : runs / 4 + 1;
    obs::TelemetryRegistry& registry = obs::TelemetryRegistry::instance();
    PathResult hot, naive, hot_telemetry, hot_attributed;
    obs::CounterSnapshot telemetry_counters;
    AttributionAccumulator attribution;
    std::vector<Cycle> hot_finishes, naive_finishes, telemetry_finishes,
        attributed_finishes;
    hot_finishes.reserve(static_cast<std::size_t>(runs));
    naive_finishes.reserve(static_cast<std::size_t>(naive_runs));
    telemetry_finishes.reserve(static_cast<std::size_t>(runs));
    attributed_finishes.reserve(static_cast<std::size_t>(runs));
    for (std::uint64_t rotation = 0; rotation < rotations; ++rotation) {
        if (mode_enabled("hot")) {
            hot_finishes.clear();
            fold_best(hot, run_hot(config, scua, contenders, options, runs,
                                   warmup, hot_finishes));
        }

        if (mode_enabled("naive")) {
            naive_finishes.clear();
            fold_best(naive, run_naive(config, scua, contenders, options,
                                       warmup, naive_runs, naive_finishes));
        }

        if (mode_enabled("telemetry")) {
            registry.reset();
            registry.enable();
            const std::uint64_t allocs_before_telemetry = allocations_now();
            telemetry_finishes.clear();
            fold_best(hot_telemetry,
                      run_hot(config, scua, contenders, options, runs,
                              warmup, telemetry_finishes));
            // Bridge the interposer into the telemetry schema: the
            // steady-state allocation count travels as heap_allocations.
            obs::count(obs::kHeapAllocations,
                       allocations_now() - allocs_before_telemetry);
            telemetry_counters = registry.counters();
            registry.disable();
        }

        if (mode_enabled("attribution")) {
            attributed_finishes.clear();
            fold_best(hot_attributed,
                      run_attributed(config, scua, contenders, options,
                                     runs, warmup, attributed_finishes,
                                     attribution));
        }
    }
    std::uint64_t mismatches = 0;
    for (std::size_t i = 0; i < naive_finishes.size(); ++i) {
        if (naive_finishes[i] != hot_finishes[i]) ++mismatches;
    }
    const double speedup = naive.runs_per_sec() > 0.0
                               ? hot.runs_per_sec() / naive.runs_per_sec()
                               : 0.0;
    std::uint64_t telemetry_mismatches = 0;
    for (std::size_t i = 0; i < telemetry_finishes.size(); ++i) {
        if (telemetry_finishes[i] != hot_finishes[i]) {
            ++telemetry_mismatches;
        }
    }
    const double telemetry_overhead_pct =
        hot.runs_per_sec() > 0.0
            ? 100.0 * (1.0 - hot_telemetry.runs_per_sec() /
                                 hot.runs_per_sec())
            : 0.0;
    std::uint64_t attribution_mismatches = 0;
    for (std::size_t i = 0; i < attributed_finishes.size(); ++i) {
        if (attributed_finishes[i] != hot_finishes[i]) {
            ++attribution_mismatches;
        }
    }
    bool attribution_closed = true;
    for (std::size_t core = 0; core < attribution.num_cores(); ++core) {
        if (attribution.core_total(static_cast<CoreId>(core)) !=
            attribution.machine_cycles()) {
            attribution_closed = false;
        }
    }
    const double attribution_overhead_pct =
        hot.runs_per_sec() > 0.0
            ? 100.0 * (1.0 - hot_attributed.runs_per_sec() /
                                 hot.runs_per_sec())
            : 0.0;

    char head[2048];
    std::snprintf(
        head, sizeof(head),
        "{\n"
        "  \"workload\": \"cacheb-vs-3x-rsk-load, ngmp_ref, 150 "
        "iterations\",\n"
        "  \"runs\": %llu,\n"
        "  \"warmup_runs\": %llu,\n"
        "  \"hot\": {\"runs_per_sec\": %.1f, \"cycles_per_sec\": %.3e, "
        "\"allocations_per_run\": %.4f},\n"
        "  \"naive\": {\"runs_per_sec\": %.1f, \"cycles_per_sec\": "
        "%.3e},\n"
        "  \"speedup_runs_per_sec\": %.2f,\n"
        "  \"hwm_hot\": %llu,\n"
        "  \"differential_mismatches\": %llu,\n"
        "  \"steady_state_allocation_free\": %s,\n"
        "  \"telemetry\": {\n"
        "    \"runs_per_sec\": %.1f,\n"
        "    \"overhead_pct\": %.2f,\n"
        "    \"mismatches_vs_untelemetered\": %llu,\n"
        "    \"counters\": ",
        static_cast<unsigned long long>(runs),
        static_cast<unsigned long long>(warmup), hot.runs_per_sec(),
        hot.cycles_per_sec(), hot.allocs_per_run, naive.runs_per_sec(),
        naive.cycles_per_sec(), speedup,
        static_cast<unsigned long long>(hot.hwm),
        static_cast<unsigned long long>(mismatches),
        hot.allocs_per_run == 0.0 ? "true" : "false",
        hot_telemetry.runs_per_sec(), telemetry_overhead_pct,
        static_cast<unsigned long long>(telemetry_mismatches));
    std::string json = head;
    json += obs::render_counters_json(telemetry_counters, "    ");
    json += "\n  },\n";
    char attr_json[512];
    std::snprintf(
        attr_json, sizeof(attr_json),
        "  \"attribution\": {\n"
        "    \"runs_per_sec\": %.1f,\n"
        "    \"overhead_pct\": %.2f,\n"
        "    \"mismatches_vs_unarmed\": %llu,\n"
        "    \"allocations_per_run\": %.4f,\n"
        "    \"closed_accounting\": %s,\n"
        "    \"machine_cycles\": %llu\n"
        "  }\n"
        "}\n",
        hot_attributed.runs_per_sec(), attribution_overhead_pct,
        static_cast<unsigned long long>(attribution_mismatches),
        hot_attributed.allocs_per_run,
        attribution_closed ? "true" : "false",
        static_cast<unsigned long long>(attribution.machine_cycles()));
    json += attr_json;

    std::fputs(json.c_str(), stdout);
    if (out_path != nullptr) {
        std::FILE* f = std::fopen(out_path, "w");
        if (f != nullptr) {
            std::fputs(json.c_str(), f);
            std::fclose(f);
        }
    }
    if (telemetry_path != nullptr) {
        obs::RunReportInfo info;
        info.command = "bench_hotpath";
        info.campaign.seed = 0;
        info.campaign.total_runs = runs;
        info.campaign.first_run = warmup;
        info.campaign.last_run = warmup + runs;
        info.jobs = 1;
        info.wall_ns = static_cast<std::uint64_t>(
            hot_telemetry.seconds * 1e9);
        if (!obs::write_run_report(telemetry_path, info,
                                   telemetry_counters, {})) {
            std::fprintf(stderr,
                         "warning: could not write telemetry report "
                         "to %s\n",
                         telemetry_path);
        }
    }

    int rc = 0;
    if (hot.allocs_per_run != 0.0) {
        std::fprintf(stderr,
                     "FAIL: hot path performed %.4f heap allocations per "
                     "run in steady state (must be 0)\n",
                     hot.allocs_per_run);
        rc = 1;
    }
    if (hot_telemetry.allocs_per_run != 0.0) {
        std::fprintf(stderr,
                     "FAIL: hot path with telemetry armed performed %.4f "
                     "heap allocations per run in steady state (must "
                     "be 0)\n",
                     hot_telemetry.allocs_per_run);
        rc = 1;
    }
    if (mismatches != 0) {
        std::fprintf(stderr,
                     "FAIL: %llu of %zu differential runs disagree between "
                     "the hot and naive paths\n",
                     static_cast<unsigned long long>(mismatches),
                     naive_finishes.size());
        rc = 1;
    }
    if (telemetry_mismatches != 0) {
        std::fprintf(stderr,
                     "FAIL: %llu runs changed result when telemetry was "
                     "enabled (must be bit-identical)\n",
                     static_cast<unsigned long long>(telemetry_mismatches));
        rc = 1;
    }
    if (hot_attributed.allocs_per_run != 0.0) {
        std::fprintf(stderr,
                     "FAIL: hot path with attribution armed performed "
                     "%.4f heap allocations per run in steady state "
                     "(must be 0)\n",
                     hot_attributed.allocs_per_run);
        rc = 1;
    }
    if (attribution_mismatches != 0) {
        std::fprintf(stderr,
                     "FAIL: %llu runs changed result when attribution was "
                     "armed (must be bit-identical)\n",
                     static_cast<unsigned long long>(attribution_mismatches));
        rc = 1;
    }
    if (!attribution_closed) {
        std::fprintf(stderr,
                     "FAIL: attribution accounting is not closed — some "
                     "core's cause timeline does not sum to the machine "
                     "cycles\n");
        rc = 1;
    }
    if (baseline_path != nullptr && max_regression_pct >= 0.0) {
        struct Gate {
            const char* section;
            double measured;
        };
        const Gate gates[] = {
            {"hot", hot.runs_per_sec()},
            {"attribution", hot_attributed.runs_per_sec()},
        };
        for (const Gate& gate : gates) {
            const double reference =
                baseline_runs_per_sec(baseline_path, gate.section);
            if (reference <= 0.0) {
                std::fprintf(stderr,
                             "note: no %s runs_per_sec baseline in %s — "
                             "regression gate skipped\n",
                             gate.section, baseline_path);
                continue;
            }
            const double floor =
                reference * (1.0 - max_regression_pct / 100.0);
            if (gate.measured < floor) {
                std::fprintf(stderr,
                             "FAIL: %s path at %.1f runs/s is more than "
                             "%.0f%% below the committed baseline "
                             "%.1f runs/s\n",
                             gate.section, gate.measured,
                             max_regression_pct, reference);
                rc = 1;
            } else {
                std::fprintf(stderr,
                             "perf gate [%s]: %.1f runs/s vs baseline "
                             "%.1f (floor %.1f) — ok\n",
                             gate.section, gate.measured, reference, floor);
            }
        }
    }
    return rc;
}
