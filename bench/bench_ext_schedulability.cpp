// Extension 3: the system-level stake of getting ubd right.
//
// Builds a periodic task set from measured EEMBC-like kernels (et_isol
// and nr from the PMCs), pads every WCET with nr * ubd, and runs
// deadline-monotonic response-time analysis. Sweeping the ubd used for
// padding shows the schedulability cliff: an optimistic ubdm (e.g. the
// naive 26 instead of 27) admits task sets whose real worst case can
// miss deadlines, while the measured-exact 27 sits safely on the right
// side of the cliff found by binary search.
#include "fig_common.h"

using namespace rrb;

namespace {

struct MeasuredTask {
    Autobench kernel;
    Cycle period;
    Cycle deadline;
};

void print_figure() {
    rrbench::print_header(
        "Extension — schedulability impact of the ubd estimate",
        "RTA over ETB-padded WCETs: the ubd feeding the pad decides "
        "admission; the naive under-estimate is optimistic exactly at "
        "the cliff");

    const MachineConfig cfg = MachineConfig::ngmp_ref();

    const std::vector<MeasuredTask> spec = {
        {Autobench::kCanrdr, 600'000, 450'000},
        {Autobench::kRspeed, 400'000, 300'000},
        {Autobench::kTblook, 900'000, 700'000},
        {Autobench::kA2time, 1'200'000, 1'000'000},
        {Autobench::kPntrch, 1'600'000, 1'400'000},
    };

    std::vector<Task> skeleton;
    std::vector<Cycle> isolated;
    std::vector<std::uint64_t> requests;
    std::printf("%-8s %10s %8s %10s %10s\n", "task", "et_isol", "nr",
                "period", "deadline");
    for (const MeasuredTask& mt : spec) {
        const Program scua = make_autobench(mt.kernel, 0x0100'0000, 300, 3);
        const Measurement isol = run_isolation(cfg, scua);
        skeleton.push_back(
            {to_string(mt.kernel), 1, mt.period, mt.deadline});
        isolated.push_back(isol.exec_time);
        requests.push_back(isol.bus_requests);
        std::printf("%-8s %10llu %8llu %10llu %10llu\n",
                    to_string(mt.kernel),
                    static_cast<unsigned long long>(isol.exec_time),
                    static_cast<unsigned long long>(isol.bus_requests),
                    static_cast<unsigned long long>(mt.period),
                    static_cast<unsigned long long>(mt.deadline));
    }

    const auto cliff =
        max_schedulable_ubd(skeleton, isolated, requests, 500);

    std::printf("\n%8s %14s %14s\n", "ubd pad", "utilization",
                "schedulable");
    std::vector<Cycle> pads = {0, 26, 27};
    if (cliff) {
        pads.push_back(*cliff);
        pads.push_back(*cliff + 1);
        pads.push_back(*cliff + 10);
    }
    for (const Cycle ubd : pads) {
        TaskSet padded = pad_task_set(skeleton, isolated, requests, ubd);
        padded.sort_deadline_monotonic();
        const ResponseTimeResult r = response_time_analysis(padded);
        std::printf("%8llu %13.1f%% %14s\n",
                    static_cast<unsigned long long>(ubd),
                    100.0 * padded.utilization(),
                    r.schedulable ? "yes" : "NO");
    }
    if (cliff) {
        std::printf("\nlargest schedulable ubd pad = %llu; platform ubd = "
                    "%llu -> margin = %lld cycles/request\n",
                    static_cast<unsigned long long>(*cliff),
                    static_cast<unsigned long long>(cfg.ubd_analytic()),
                    static_cast<long long>(*cliff) -
                        static_cast<long long>(cfg.ubd_analytic()));
        std::printf("A ubdm below %llu that admitted this set on a platform "
                    "whose true ubd exceeds the cliff would be an unsound "
                    "certification argument.\n",
                    static_cast<unsigned long long>(cfg.ubd_analytic()));
    }
}

void BM_RtaOnPaddedSet(benchmark::State& state) {
    std::vector<Task> skeleton;
    std::vector<Cycle> isolated;
    std::vector<std::uint64_t> requests;
    for (int i = 0; i < 5; ++i) {
        // Indexed in place rather than "t" + to_string(i): that concat
        // trips GCC 12's -Wrestrict false positive (PR 105651) at -O3.
        std::string name = "t0";
        name[1] = static_cast<char>('0' + i);
        skeleton.push_back({std::move(name), 1,
                            100'000u * (static_cast<Cycle>(i) + 1),
                            90'000u * (static_cast<Cycle>(i) + 1)});
        isolated.push_back(10'000u * (static_cast<Cycle>(i) + 1));
        requests.push_back(500);
    }
    for (auto _ : state) {
        TaskSet padded = pad_task_set(skeleton, isolated, requests, 27);
        padded.sort_deadline_monotonic();
        benchmark::DoNotOptimize(response_time_analysis(padded));
    }
}
BENCHMARK(BM_RtaOnPaddedSet);

}  // namespace

RRBENCH_MAIN(print_figure)
