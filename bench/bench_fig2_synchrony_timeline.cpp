// Figure 2: once a scua request is serviced on a saturated RR bus, the
// sequence of arbitration events after it is fixed — the synchrony effect.
// Reproduces the timeline with a scua of injection time delta = 9 against
// three always-ready rsk contenders on the lbus = 2 platform, where the
// scua request suffers gamma = 3 < ubd = 6.
#include "fig_common.h"

using namespace rrb;

namespace {

void print_figure() {
    rrbench::print_header(
        "Figure 2 — synchrony timeline, scua (delta=9) vs 3 rsk, lbus=2",
        "the scua request ri+1 becomes ready mid-rotation and waits "
        "gamma=3, not ubd=6");

    MachineConfig cfg = MachineConfig::textbook();
    Machine machine(cfg);
    machine.tracer().enable();

    // scua on core 3 (as drawn in the paper): loads separated by nops so
    // that delta = 9 (dl1_latency 1 + 8 nops).
    RskParams scua;
    scua.iterations = 30;
    scua.data_base = 0x0070'0000;
    scua.code_base = 0x0003'0000;
    machine.load_program(3, make_rsk_nop(scua, 8));
    machine.warm_static_footprint(3);

    for (CoreId c = 0; c < 3; ++c) {
        RskParams p;
        p.iterations = 100000;
        p.data_base = 0x0010'0000 + c * 0x0010'0000;
        p.code_base = c * 0x0001'0000;
        machine.load_program(c, make_rsk(p));
        machine.warm_static_footprint(c);
    }
    machine.run_until_core(3, 100000);

    std::printf("%s\n",
                machine.tracer().render_bus_timeline(200, 280, 4).c_str());
    const BusCoreCounters& c3 = machine.bus().counters(3);
    std::printf("core c3 (scua): requests=%llu  dominant gamma=%llu "
                "(ubd would be %llu)\n",
                static_cast<unsigned long long>(c3.requests),
                static_cast<unsigned long long>(c3.gamma.mode()),
                static_cast<unsigned long long>(cfg.ubd_analytic()));
    std::printf("expected from Eq.2 at delta=9: gamma=%llu\n",
                static_cast<unsigned long long>(
                    gamma_eq2(9, cfg.ubd_analytic())));
}

void BM_SaturatedTimelineRun(benchmark::State& state) {
    for (auto _ : state) {
        MachineConfig cfg = MachineConfig::textbook();
        Machine machine(cfg);
        RskParams p;
        p.iterations = 100;
        for (CoreId c = 0; c < 4; ++c) {
            RskParams pc = p;
            pc.data_base = 0x0010'0000 + c * 0x0010'0000;
            machine.load_program(c, make_rsk(pc));
        }
        benchmark::DoNotOptimize(machine.run_until_core(0, 10'000'000));
    }
}
BENCHMARK(BM_SaturatedTimelineRun)->Unit(benchmark::kMillisecond);

}  // namespace

RRBENCH_MAIN(print_figure)
