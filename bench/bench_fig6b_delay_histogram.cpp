// Figure 6(b): histogram of the contention delay suffered by all requests
// of the rsk when run against 3 rsk copies, on the reference and variant
// architectures. The synchrony effect concentrates ~98% of requests on a
// single delay; the observed upper bound (ubdm) is 26 on ref and 23 on
// var — both short of the true ubd = 27, and by *different* margins.
#include "fig_common.h"

using namespace rrb;

namespace {

Measurement rsk_vs_rsk(const MachineConfig& cfg) {
    RskParams params;
    params.dl1_geometry = cfg.core.dl1_geometry;
    params.iterations = 150;
    const Program scua = make_rsk(params);
    return run_contention(cfg, scua,
                          make_rsk_contenders(cfg, OpKind::kLoad));
}

void print_figure() {
    rrbench::print_header(
        "Figure 6(b) — per-request contention delay, rsk vs 3 rsk",
        "ubdm(ref)=26, ubdm(var)=23 vs true ubd=27: naive rsk-vs-rsk "
        "under-estimates, and the gap depends on the architecture");

    for (const bool variant : {false, true}) {
        const MachineConfig cfg =
            variant ? MachineConfig::ngmp_var() : MachineConfig::ngmp_ref();
        const Measurement m = rsk_vs_rsk(cfg);
        ChartOptions opts;
        opts.title = std::string(variant ? "var" : "ref") +
                     " architecture (delta_rsk = " +
                     std::to_string(cfg.core.dl1_latency) + ")";
        opts.max_width = 48;
        std::printf("%s", render_histogram(m.gamma, opts).c_str());
        std::printf("  dominant delay share: %.1f%%   ubdm = %llu   "
                    "true ubd = %llu\n\n",
                    100.0 * m.gamma.mode_fraction(),
                    static_cast<unsigned long long>(m.max_gamma),
                    static_cast<unsigned long long>(cfg.ubd_analytic()));
    }
}

void BM_RskVsRskRef(benchmark::State& state) {
    const MachineConfig cfg = MachineConfig::ngmp_ref();
    for (auto _ : state) benchmark::DoNotOptimize(rsk_vs_rsk(cfg));
}
BENCHMARK(BM_RskVsRskRef)->Unit(benchmark::kMillisecond);

}  // namespace

RRBENCH_MAIN(print_figure)
