// Figure 5: timelines of the Figure 3 scenario as nop operations are
// added between the scua's bus accesses (k = 1, 2, 5, 6 on the lbus=2
// platform). Shows gamma stepping down 5 -> 4 -> 1 and wrapping back to 5
// when the injection time crosses the round-robin window.
#include "fig_common.h"

using namespace rrb;

namespace {

void run_case(std::uint32_t k) {
    const MachineConfig cfg = MachineConfig::textbook();
    Machine machine(cfg);
    machine.tracer().enable();

    RskParams scua;
    scua.iterations = 30;
    scua.data_base = 0x0070'0000;
    scua.code_base = 0x0003'0000;
    machine.load_program(3, make_rsk_nop(scua, k));
    machine.warm_static_footprint(3);
    for (CoreId c = 0; c < 3; ++c) {
        RskParams p;
        p.iterations = 100000;
        p.data_base = 0x0010'0000 + c * 0x0010'0000;
        p.code_base = c * 0x0001'0000;
        machine.load_program(c, make_rsk(p));
        machine.warm_static_footprint(c);
    }
    machine.run_until_core(3, 100000);

    const Cycle delta = 1 + k;  // dl1_latency + k nops
    const BusCoreCounters& c3 = machine.bus().counters(3);
    std::printf("k=%u (delta=%llu): gamma(sim)=%llu gamma(Eq.2)=%llu\n", k,
                static_cast<unsigned long long>(delta),
                static_cast<unsigned long long>(c3.gamma.mode()),
                static_cast<unsigned long long>(
                    gamma_eq2(delta, cfg.ubd_analytic())));
    std::printf("%s\n",
                machine.tracer().render_bus_timeline(200, 260, 4).c_str());
}

void print_figure() {
    rrbench::print_header(
        "Figure 5 — timelines as nops are added (lbus=2, core c3 is scua)",
        "k=1..5 decreases gamma stepwise; k=6 wraps and gamma jumps back "
        "up — alignment scenarios explored by varying k");
    for (const std::uint32_t k : {1u, 2u, 5u, 6u}) run_case(k);
}

void BM_TimelineCase(benchmark::State& state) {
    for (auto _ : state) {
        const MachineConfig cfg = MachineConfig::textbook();
        Machine machine(cfg);
        RskParams scua;
        scua.iterations = 30;
        machine.load_program(3, make_rsk_nop(scua, 5));
        for (CoreId c = 0; c < 3; ++c) {
            RskParams p;
            p.iterations = 100000;
            p.data_base = 0x0010'0000 + c * 0x0010'0000;
            machine.load_program(c, make_rsk(p));
        }
        benchmark::DoNotOptimize(machine.run_until_core(3, 100000));
    }
}
BENCHMARK(BM_TimelineCase)->Unit(benchmark::kMillisecond);

}  // namespace

RRBENCH_MAIN(print_figure)
