// Figure 7(b): the store variant. The store buffer hides store latency:
// drains inject with delta = 0 (full ubd per drain), and the slowdown of
// rsk-nop(store, k) is the difference between the drain slot latency and
// the injection time — a single descending span of length ~ubd followed by
// zeros once the buffer always has a free entry.
#include "fig_common.h"

using namespace rrb;

namespace {

std::vector<double> sweep(const MachineConfig& cfg, std::uint32_t k_max) {
    std::vector<double> dbus;
    for (std::uint32_t k = 0; k <= k_max; ++k) {
        RskParams params;
        params.dl1_geometry = cfg.core.dl1_geometry;
        params.access = OpKind::kStore;
        params.unroll = 12;
        params.iterations = 40;
        const Program scua = make_rsk_nop(params, k);
        const SlowdownResult r = run_slowdown(
            cfg, scua, make_rsk_contenders(cfg, OpKind::kStore));
        dbus.push_back(static_cast<double>(r.slowdown()));
    }
    return dbus;
}

void print_figure() {
    rrbench::print_header(
        "Figure 7(b) — slowdown of store rsk-nop vs k, ref",
        "one saw-tooth span whose length matches ubd (+1 shift from the "
        "buffer depth/processing), then zero: the buffer hides stores "
        "once delta exceeds the drain slot");

    const MachineConfig cfg = MachineConfig::ngmp_ref();
    const std::vector<double> dbus = sweep(cfg, 60);

    ChartOptions opts;
    opts.title = "dbus(store,k), ref architecture (x = k, 0..60)";
    opts.height = 10;
    std::printf("%s", render_series(dbus, opts).c_str());

    // The library's span estimator: plateau height / ramp slope = ubd.
    UbdEstimatorOptions opt;
    opt.k_max = 60;
    opt.unroll = 12;
    opt.rsk_iterations = 40;
    const StoreSpanEstimate e = estimate_ubd_store_span(cfg, opt);
    std::printf("  plateau (buffer-full regime) up to k=%zu; sustained "
                "zero from k=%zu\n",
                e.plateau_end, e.first_zero);
    std::printf("  store-span estimate: ubd = %llu (Equation 1 says "
                "%llu)\n",
                static_cast<unsigned long long>(e.found ? e.ubd : 0),
                static_cast<unsigned long long>(cfg.ubd_analytic()));
    std::printf("  slowdown stays zero for all larger k: %s\n",
                e.found ? "yes" : "NO");
}

void BM_StoreSlowdownMeasurement(benchmark::State& state) {
    const MachineConfig cfg = MachineConfig::ngmp_ref();
    for (auto _ : state) {
        RskParams params;
        params.access = OpKind::kStore;
        params.unroll = 12;
        params.iterations = 40;
        const Program scua = make_rsk_nop(params, 10);
        benchmark::DoNotOptimize(run_slowdown(
            cfg, scua, make_rsk_contenders(cfg, OpKind::kStore)));
    }
}
BENCHMARK(BM_StoreSlowdownMeasurement)->Unit(benchmark::kMillisecond);

}  // namespace

RRBENCH_MAIN(print_figure)
