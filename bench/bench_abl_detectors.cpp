// Ablation B: robustness of the four period detectors against measurement
// noise. Real boards do not give bit-exact execution times; the
// methodology's confidence hinges on detectors that degrade gracefully.
// Injects multiplicative noise into a true period-27 dbus series and
// reports each detector's recovery rate over 100 seeded trials.
#include "fig_common.h"

using namespace rrb;

namespace {

std::vector<double> noisy_sawtooth(std::size_t period, std::size_t n,
                                   double noise, Pcg32& rng) {
    std::vector<double> xs;
    for (std::size_t k = 0; k < n; ++k) {
        const double clean =
            static_cast<double>(period - (k % period)) * 100000.0;
        const double jitter = (rng.next_double() * 2.0 - 1.0) * noise *
                              100000.0 * static_cast<double>(period);
        xs.push_back(clean + jitter);
    }
    return xs;
}

void print_figure() {
    rrbench::print_header(
        "Ablation B — period detectors vs measurement noise (true period 27)",
        "exact match fails first, then Equation 3 and peak spacing; "
        "autocorrelation holds to 8%, and the consensus falls back to the "
        "most confident detector when no majority forms");

    std::printf("%8s %10s %12s %8s %10s %10s\n", "noise", "exact",
                "equal-value", "peaks", "autocorr", "consensus");
    for (const double noise : {0.0, 0.001, 0.005, 0.01, 0.03, 0.08}) {
        int ok_exact = 0;
        int ok_equal = 0;
        int ok_peaks = 0;
        int ok_ac = 0;
        int ok_cons = 0;
        const int trials = 100;
        for (int t = 0; t < trials; ++t) {
            Pcg32 rng(static_cast<std::uint64_t>(t) * 7919 + 13);
            const auto xs = noisy_sawtooth(27, 70, noise, rng);
            const double tol = (summarize(xs).max - summarize(xs).min) *
                               (noise > 0 ? noise * 1.2 : 0.0);
            if (exact_period(xs, tol).period == 27) ++ok_exact;
            if (equal_value_period(xs, tol).period == 27) ++ok_equal;
            if (peak_spacing_period(xs).period == 27) ++ok_peaks;
            if (autocorrelation_period(xs).period == 27) ++ok_ac;
            if (consensus_period(xs, tol).period == 27) ++ok_cons;
        }
        std::printf("%7.1f%% %9d%% %11d%% %7d%% %9d%% %9d%%\n",
                    100.0 * noise, ok_exact, ok_equal, ok_peaks, ok_ac,
                    ok_cons);
    }
}

void BM_ConsensusDetection(benchmark::State& state) {
    Pcg32 rng(1);
    const auto xs = noisy_sawtooth(27, 70, 0.01, rng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(consensus_period(xs, 1000.0));
    }
}
BENCHMARK(BM_ConsensusDetection);

}  // namespace

RRBENCH_MAIN(print_figure)
