// Extension 4: EVT projection from campaigns vs the composable bound.
//
// MBPTA fits an extreme-value distribution to observed execution times
// and quotes a pWCET at a tiny exceedance probability. This bench runs
// 60-run randomized campaigns per scua, fits a Gumbel to the times, and
// compares the 1e-9 pWCET against the analytic ETB: the projection lands
// between the HWM and the ETB — sampling narrows the gap but cannot
// certify the synchrony-locked worst case, which is why the paper feeds
// the *measured-exact* ubd into the bound instead.
#include "fig_common.h"

using namespace rrb;

namespace {

void print_figure() {
    rrbench::print_header(
        "Extension — Gumbel pWCET from campaigns vs composable ETB",
        "pWCET(1e-9) always dominates the HWM; against the analytic ETB "
        "it can land on either side — EVT extrapolates the sampled "
        "alignment distribution, it does not certify the worst one");

    const MachineConfig cfg = MachineConfig::ngmp_ref();
    const Cycle ubd = cfg.ubd_analytic();

    std::printf("%-8s %10s %10s %14s %12s %12s\n", "scua", "hwm",
                "pwcet@1e-9", "etb(ubd=27)", "pwcet>=hwm", "vs etb");
    for (const Autobench kernel :
         {Autobench::kCacheb, Autobench::kTblook, Autobench::kPntrch,
          Autobench::kCanrdr, Autobench::kMatrix}) {
        const Program scua = make_autobench(kernel, 0x0100'0000, 120, 5);
        HwmCampaignOptions opt;
        opt.runs = 60;
        opt.seed = 23;
        const HwmCampaignResult hwm = run_hwm_campaign(
            cfg, scua, make_rsk_contenders(cfg, OpKind::kLoad), opt);

        std::vector<double> times;
        times.reserve(hwm.exec_times.size());
        for (const Cycle t : hwm.exec_times) {
            times.push_back(static_cast<double>(t));
        }
        const GumbelFit fit = fit_gumbel(block_maxima(times, 3));
        const double pwcet = fit.valid() ? fit.pwcet(1e-9) : 0.0;
        const Cycle etb = hwm.et_isolation + hwm.nr * ubd;

        std::printf("%-8s %10llu %10.0f %14llu %12s %12s\n",
                    to_string(kernel),
                    static_cast<unsigned long long>(hwm.high_water_mark),
                    pwcet, static_cast<unsigned long long>(etb),
                    pwcet >= static_cast<double>(hwm.high_water_mark)
                        ? "yes"
                        : "NO",
                    pwcet <= static_cast<double>(etb) ? "below"
                                                      : "above");
    }
    std::printf(
        "\nEVT covers what randomized sampling can reach; the synchrony\n"
        "effect means the true worst alignment is never sampled, so a\n"
        "pWCET below the ETB is optimistic about the legal worst case and\n"
        "one above it is statistical pessimism — neither certifies the\n"
        "bound the nr x ubd pad gives by construction.\n");
}

void BM_GumbelFitOnCampaign(benchmark::State& state) {
    Pcg32 rng(5);
    std::vector<double> xs;
    for (int i = 0; i < 60; ++i) {
        xs.push_back(10000.0 + rng.next_double() * 500.0);
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(fit_gumbel(block_maxima(xs, 3)));
    }
}
BENCHMARK(BM_GumbelFitOnCampaign);

}  // namespace

RRBENCH_MAIN(print_figure)
