// Extension 4, at MBPTA scale: streamed Gumbel pWCET campaigns vs the
// composable bound.
//
// MBPTA fits an extreme-value distribution to observed execution times
// and quotes a pWCET at a tiny exceedance probability — and its
// confidence argument wants campaigns orders of magnitude larger than a
// validation bench's 60 runs. This bench streams a 10^5-run randomized
// campaign through the sharded reduce path (run_pwcet_campaign): no
// exec_times vector is ever materialized, live memory is one (max, fill)
// pair per EVT block, and the numbers are bit-identical at every job
// count. The checkpoint table shows pWCET(1e-9) converging as runs grow
// (checkpoints share the run-index prefix, so each row extends the
// previous sample) while the analytic ETB stays where it is: sampling
// narrows the gap but cannot certify the synchrony-locked worst case.
//
// RRB_PWCET_RUNS overrides the campaign size (CI smoke runs use a small
// value; see the bench_smoke target).
#include <cerrno>
#include <cinttypes>
#include <cstdlib>

#include "fig_common.h"

using namespace rrb;

namespace {

constexpr std::size_t kDefaultRuns = 100'000;
constexpr std::size_t kBlockSize = 50;

std::size_t total_runs() {
    const char* env = std::getenv("RRB_PWCET_RUNS");
    if (env == nullptr) return kDefaultRuns;
    // Asking to scale must never silently run something else: anything
    // but a plain decimal in [kMinRuns, 10^9] — negatives, typos,
    // overflow — clamps loudly to the smallest campaign whose final
    // checkpoint still fits a couple of blocks.
    constexpr std::size_t kMinRuns = 4 * kBlockSize;
    constexpr unsigned long kMaxRuns = 1'000'000'000;
    bool digits_only = *env != '\0';
    for (const char* c = env; *c != '\0'; ++c) {
        if (*c < '0' || *c > '9') digits_only = false;
    }
    errno = 0;
    const unsigned long v = std::strtoul(env, nullptr, 10);
    if (digits_only && errno == 0 && v >= kMinRuns && v <= kMaxRuns) {
        return static_cast<std::size_t>(v);
    }
    std::printf("RRB_PWCET_RUNS=%s is not a run count in [%zu, %lu]; "
                "running %zu runs\n",
                env, kMinRuns, kMaxRuns, kMinRuns);
    return kMinRuns;
}

void print_figure() {
    rrbench::print_header(
        "Extension — streamed Gumbel pWCET campaigns vs composable ETB",
        "pWCET(1e-9) always dominates the HWM and converges as runs grow; "
        "against the analytic ETB it can land on either side — EVT "
        "extrapolates the sampled alignment distribution, it does not "
        "certify the worst one");

    const MachineConfig cfg = MachineConfig::ngmp_ref();
    const Cycle ubd = cfg.ubd_analytic();
    const std::size_t runs = total_runs();

    // One Scenario, one Session: checkpoints re-size the run count on
    // the same scenario and share the session's pool.
    Scenario scenario = Scenario::on(cfg)
                            .scua(make_autobench(Autobench::kCacheb,
                                                 0x0100'0000, 120, 5))
                            .rsk_contenders(OpKind::kLoad)
                            .seed(23);
    PwcetSpec spec;
    spec.block_size = kBlockSize;
    spec.exceedance = {1e-9};
    Session session;  // default jobs: hardware concurrency

    std::printf("%10s %10s %10s %12s %12s %10s %8s\n", "runs", "hwm",
                "mu", "beta", "pwcet@1e-9", "etb", "vs etb");
    PwcetCampaignResult last;
    for (const std::size_t n :
         {runs / 64, runs / 16, runs / 4, runs}) {
        if (n < 2 * kBlockSize) continue;  // need >= 2 blocks for a fit
        // Same seed: runs [0, n) are a prefix of the full campaign, so
        // each checkpoint row extends the previous row's sample.
        const PwcetCampaignResult r = session.pwcet(scenario.runs(n), spec);
        last = r;
        const Cycle etb = r.etb(ubd);
        if (!r.fit.valid()) {
            // Degenerate fit (too few blocks or zero spread): no number
            // beats a fabricated 0.0 row.
            std::printf("%10zu %10" PRIu64 " %10s %12s %12s %10" PRIu64
                        " %8s\n",
                        r.runs, r.high_water_mark, "-", "-", "(no fit)",
                        etb, "-");
            continue;
        }
        const double pwcet = r.quantiles.front().pwcet;
        std::printf("%10zu %10" PRIu64 " %10.1f %12.3f %12.0f %10" PRIu64
                    " %8s\n",
                    r.runs, r.high_water_mark, r.fit.mu, r.fit.beta, pwcet,
                    etb,
                    pwcet <= static_cast<double>(etb) ? "below" : "above");
    }

    // Memory evidence: the streamed fold vs what PR 1's materializing
    // campaign would have held live at the same scale.
    const std::size_t streamed_bytes =
        last.live_values * (sizeof(double) + sizeof(std::uint64_t));
    const std::size_t materialized_bytes = last.runs * sizeof(Cycle);
    std::printf(
        "\nstreamed state: %zu live values (~%zu bytes) for %zu runs;\n"
        "a materialized exec_times vector would hold %zu values "
        "(~%zu bytes) — %zux more.\n",
        last.live_values, streamed_bytes, last.runs, last.runs,
        materialized_bytes,
        streamed_bytes == 0 ? 0 : materialized_bytes / streamed_bytes);
    std::printf(
        "\nEVT covers what randomized sampling can reach; the synchrony\n"
        "effect means the true worst alignment is never sampled, so a\n"
        "pWCET below the ETB is optimistic about the legal worst case and\n"
        "one above it is statistical pessimism — neither certifies the\n"
        "bound the nr x ubd pad gives by construction.\n");
}

void BM_StreamedPwcetCampaign(benchmark::State& state) {
    const std::size_t runs = static_cast<std::size_t>(state.range(0));
    const Scenario scenario =
        Scenario::on(MachineConfig::ngmp_ref())
            .scua(make_autobench(Autobench::kCacheb, 0x0100'0000, 40, 5))
            .rsk_contenders(OpKind::kLoad)
            .runs(runs)
            .seed(23);
    PwcetSpec spec;
    spec.block_size = 16;
    for (auto _ : state) {
        Session session;
        benchmark::DoNotOptimize(session.pwcet(scenario, spec));
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(runs));
}
BENCHMARK(BM_StreamedPwcetCampaign)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMillisecond);

void BM_StreamingBlockMaximaFold(benchmark::State& state) {
    Pcg32 rng(5);
    std::vector<double> xs;
    for (int i = 0; i < 100'000; ++i) {
        xs.push_back(10000.0 + rng.next_double() * 500.0);
    }
    for (auto _ : state) {
        StreamingBlockMaxima stream(kBlockSize);
        for (std::size_t i = 0; i < xs.size(); ++i) {
            stream.add(i, xs[i]);
        }
        benchmark::DoNotOptimize(stream.fit());
    }
}
BENCHMARK(BM_StreamingBlockMaximaFold);

void BM_GumbelFitOnCampaign(benchmark::State& state) {
    Pcg32 rng(5);
    std::vector<double> xs;
    for (int i = 0; i < 60; ++i) {
        xs.push_back(10000.0 + rng.next_double() * 500.0);
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(fit_gumbel(block_maxima(xs, 3)));
    }
}
BENCHMARK(BM_GumbelFitOnCampaign);

}  // namespace

RRBENCH_MAIN(print_figure)
