// Ablation C: sensitivity of the methodology across platform shapes —
// core counts and (hidden) bus latencies. The recovered ubd must equal
// Equation 1 everywhere, which is the paper's robustness claim taken
// beyond its two evaluated setups.
#include "fig_common.h"

using namespace rrb;

namespace {

MachineConfig platform(CoreId cores, Cycle lbus) {
    return MachineConfig::scaled(cores, lbus);
}

void print_figure() {
    rrbench::print_header(
        "Ablation C — recovered ubd across Nc x lbus grid",
        "ubd(measured) == (Nc-1)*lbus for every shape, lbus never "
        "disclosed to the estimator");

    // The 20-point Nc x lbus grid runs on the campaign engine: one
    // estimator per grid point, each with its own machines, collected in
    // grid order so the table below is stable across job counts.
    struct GridPoint {
        CoreId cores;
        Cycle lbus;
    };
    std::vector<GridPoint> grid;
    for (const CoreId cores : {2u, 3u, 4u, 6u, 8u}) {
        for (const Cycle lbus : {2u, 5u, 9u, 13u}) {
            grid.push_back({cores, lbus});
        }
    }
    const auto estimates = engine::run_grid(
        grid, [](const GridPoint& point) {
            const MachineConfig cfg = platform(point.cores, point.lbus);
            UbdEstimatorOptions opt;
            opt.k_max = static_cast<std::uint32_t>(
                cfg.ubd_analytic() * 5 / 2 + 6);
            opt.unroll = 8;
            opt.rsk_iterations = 20;
            return estimate_ubd(cfg, opt);
        });

    std::printf("%6s %6s %10s %12s %10s %8s\n", "cores", "lbus", "ubd(eq1)",
                "ubd(meas)", "period_k", "match");
    int failures = 0;
    for (std::size_t i = 0; i < grid.size(); ++i) {
        const Cycle expected =
            platform(grid[i].cores, grid[i].lbus).ubd_analytic();
        const UbdEstimate& e = estimates[i];
        const bool exact = e.found && e.ubd == expected;
        // Nc = 2: the confidence check flags non-saturation and the
        // estimate over-approximates by the contender gap — safe.
        const bool safe =
            e.found && !e.confidence.saturated && e.ubd >= expected;
        if (!exact && !safe) ++failures;
        std::printf("%6u %6llu %10llu %12llu %10zu %8s\n", grid[i].cores,
                    static_cast<unsigned long long>(grid[i].lbus),
                    static_cast<unsigned long long>(expected),
                    static_cast<unsigned long long>(e.found ? e.ubd : 0),
                    e.period_k, exact ? "yes" : (safe ? "safe+" : "NO"));
    }
    std::printf("failures: %d / 20\n", failures);
}

void BM_EstimateSmallPlatform(benchmark::State& state) {
    const MachineConfig cfg = platform(2, 5);
    UbdEstimatorOptions opt;
    opt.k_max = 18;
    opt.unroll = 8;
    opt.rsk_iterations = 20;
    for (auto _ : state) {
        benchmark::DoNotOptimize(estimate_ubd(cfg, opt));
    }
}
BENCHMARK(BM_EstimateSmallPlatform)->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

RRBENCH_MAIN(print_figure)
