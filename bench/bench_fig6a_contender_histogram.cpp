// Figure 6(a): histogram of the number of contenders ready to send a
// request when the program on core c0 tries to access the bus.
//   - dark bars: 8 randomly generated 4-task EEMBC-like workloads — the
//     bus is found empty or with one contender most of the time;
//   - light bars: 4 rsk — almost every request finds all Nc-1 contenders.
#include "fig_common.h"

using namespace rrb;

namespace {

void print_figure() {
    rrbench::print_header(
        "Figure 6(a) — ready contenders seen by core c0's requests (ref)",
        "real workloads rarely meet a busy bus; 4x rsk always do — so "
        "worst-case alignment cannot be assumed from real co-runners");

    const MachineConfig cfg = MachineConfig::ngmp_ref();

    // Dark bars: 8 random EEMBC-like workloads, aggregated.
    Histogram eembc;
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        const std::vector<Program> wl =
            random_autobench_workload(4, seed, 200);
        const Measurement m = run_contention(
            cfg, wl[0], {wl.begin() + 1, wl.end()}, 0, 200'000'000);
        eembc.merge(m.ready_contenders);
        std::printf("  workload %llu (%s vs %s,%s,%s): P[<=1 contender] = "
                    "%.1f%%\n",
                    static_cast<unsigned long long>(seed), wl[0].name.c_str(),
                    wl[1].name.c_str(), wl[2].name.c_str(),
                    wl[3].name.c_str(),
                    100.0 * (m.ready_contenders.fraction(0) +
                             m.ready_contenders.fraction(1)));
    }
    ChartOptions dark;
    dark.title = "\nEEMBC-like workloads (8 aggregated): ready contenders";
    dark.max_width = 48;
    std::printf("%s", render_histogram(eembc, dark).c_str());

    // Light bars: 4 rsk.
    RskParams p;
    p.iterations = 200;
    const Measurement rsk_run = run_contention(
        cfg, make_rsk(p), make_rsk_contenders(cfg, OpKind::kLoad));
    ChartOptions light;
    light.title = "\n4 x rsk: ready contenders";
    light.max_width = 48;
    std::printf("%s", render_histogram(rsk_run.ready_contenders,
                                       light).c_str());
}

void BM_EembcWorkloadRun(benchmark::State& state) {
    const MachineConfig cfg = MachineConfig::ngmp_ref();
    for (auto _ : state) {
        const std::vector<Program> wl =
            random_autobench_workload(4, 1, 100);
        benchmark::DoNotOptimize(run_contention(
            cfg, wl[0], {wl.begin() + 1, wl.end()}, 0, 200'000'000));
    }
}
BENCHMARK(BM_EembcWorkloadRun)->Unit(benchmark::kMillisecond);

}  // namespace

RRBENCH_MAIN(print_figure)
