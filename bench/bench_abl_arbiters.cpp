// Ablation A: the saw-tooth signature is specific to round-robin
// arbitration, so the methodology's stated input — "the bus policy is
// RR" (Section 4.3) — is load-bearing:
//   * round-robin: saw-tooth of period ubd = (Nc-1)*lbus = 27;
//   * TDMA: the arbiter is non-work-conserving, so the scua is confined
//     to its slot in isolation as well — the slowdown is identically 0
//     (time-composable by construction) and there is nothing to measure;
//   * fixed priority with the scua on the top-priority core: the only
//     contention is the non-preemptive blocking of an in-flight lower
//     priority transaction, so the sweep shows a period of lbus = 9 —
//     a user who assumed RR would mistake the blocking bound for ubd.
#include "fig_common.h"

using namespace rrb;

namespace {

std::vector<double> sweep(const MachineConfig& cfg, std::uint32_t k_max) {
    std::vector<double> dbus;
    for (std::uint32_t k = 0; k <= k_max; ++k) {
        RskParams params;
        params.unroll = 8;
        params.iterations = 30;
        const Program scua = make_rsk_nop(params, k);
        const SlowdownResult r = run_slowdown(
            cfg, scua, make_rsk_contenders(cfg, OpKind::kLoad));
        dbus.push_back(static_cast<double>(r.slowdown()));
    }
    return dbus;
}

void analyze(const char* label, const MachineConfig& cfg,
             std::uint32_t k_max = 60) {
    const std::vector<double> dbus = sweep(cfg, k_max);
    const SeriesSummary s = summarize(dbus);
    const PeriodConsensus c =
        consensus_period(dbus, (s.max - s.min) * 0.01);
    std::printf("%-16s period=%-4zu votes=%d/4  dbus range [%.0f, %.0f]\n",
                label, c.period, c.votes, s.min, s.max);
    ChartOptions opts;
    opts.title = std::string("  dbus(k) under ") + label;
    opts.height = 7;
    std::printf("%s\n", render_series(dbus, opts).c_str());
}

void print_figure() {
    rrbench::print_header(
        "Ablation A — rsk-nop sweep under different arbiters (lbus=9)",
        "RR: period = ubd = 27. TDMA: dbus = 0, composable by "
        "construction. Fixed priority: period = lbus = 9, the blocking "
        "term. Weighted RR: quasi-periodic, consensus collapses");

    MachineConfig rr = MachineConfig::ngmp_ref();
    analyze("round-robin", rr);

    MachineConfig tdma = MachineConfig::ngmp_ref();
    tdma.arbiter = ArbiterKind::kTdma;
    tdma.tdma_slot_cycles = 9;  // one transaction per slot
    analyze("tdma(slot=9)", tdma);

    MachineConfig fp = MachineConfig::ngmp_ref();
    fp.arbiter = ArbiterKind::kFixedPriority;
    analyze("fixed-priority", fp);

    // Weighted RR with the scua's weight 1 and contenders' weight 2:
    // contender double-bursts drift against the scua's injection phase,
    // so dbus(k) is only quasi-periodic (a local lbus=9 ripple under a
    // long declining envelope). No detector majority forms, which is the
    // correct outcome: the estimator flags its own result as
    // untrustworthy instead of printing a wrong ubd.
    MachineConfig wrr = MachineConfig::ngmp_ref();
    wrr.arbiter = ArbiterKind::kWeightedRoundRobin;
    wrr.wrr_weights = {1, 2, 2, 2};
    analyze("weighted-rr{1,2,2,2}", wrr, 130);

    std::printf(
        "Interpretation: under TDMA the slowdown is identically zero (the\n"
        "slot schedule isolates the scua with or without contenders);\n"
        "under fixed priority the top core's saw-tooth period is lbus, the\n"
        "non-preemptive blocking bound; under weighted RR the detector\n"
        "consensus collapses to 1/4 votes and the estimate is flagged.\n"
        "Either way, a user who assumed plain RR would derive a wrong ubd\n"
        "— the policy input of Section 4.3 is essential.\n");
}

void BM_SweepPointPerArbiter(benchmark::State& state) {
    MachineConfig cfg = MachineConfig::ngmp_ref();
    if (state.range(0) == 1) {
        cfg.arbiter = ArbiterKind::kTdma;
        cfg.tdma_slot_cycles = 9;
    }
    for (auto _ : state) {
        RskParams params;
        params.unroll = 8;
        params.iterations = 30;
        const Program scua = make_rsk_nop(params, 13);
        benchmark::DoNotOptimize(run_slowdown(
            cfg, scua, make_rsk_contenders(cfg, OpKind::kLoad)));
    }
}
BENCHMARK(BM_SweepPointPerArbiter)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

RRBENCH_MAIN(print_figure)
