// Extension: grid-of-pWCET sweeps through the Scenario/Session API.
//
// ROADMAP's "multi-config pWCET sweeps" item, end to end: one Scenario
// (cache-buster scua, load-rsk contenders, fixed seed) swept over a
// 3x3 MachineConfig grid (cores x lbus), each grid point a streamed
// Gumbel campaign quoting pWCET at p = 1e-6 next to the analytic ETB.
// The table shows how the sampled tail and the composable bound move
// apart as the platform scales — more requesters and a slower bus both
// stretch the ETB linearly (Equation 1) while the sampled quantile
// grows with the alignments randomization actually reaches.
//
// The wall-clock section runs the same sweep at --jobs 1, at hardware
// concurrency through the campaign scheduler (the whole grid as one
// flat shard queue — no barrier between points), and as the legacy
// per-point loop (one standalone campaign per config, a barrier before
// the next) at the same worker count, checking all three produce
// bit-identical results — the determinism contract surviving the
// scheduling is the point of Session::sweep.
//
// RRB_SWEEP_RUNS overrides the per-point campaign size.
#include <cerrno>
#include <chrono>
#include <cinttypes>
#include <cstdlib>

#include "fig_common.h"

using namespace rrb;

namespace {

constexpr std::size_t kDefaultRuns = 600;
constexpr std::size_t kBlockSize = 30;

std::size_t runs_per_point() {
    const char* env = std::getenv("RRB_SWEEP_RUNS");
    if (env == nullptr) return kDefaultRuns;
    constexpr std::size_t kMinRuns = 4 * kBlockSize;
    constexpr unsigned long kMaxRuns = 100'000'000;
    bool digits_only = *env != '\0';
    for (const char* c = env; *c != '\0'; ++c) {
        if (*c < '0' || *c > '9') digits_only = false;
    }
    errno = 0;
    const unsigned long v = std::strtoul(env, nullptr, 10);
    if (digits_only && errno == 0 && v >= kMinRuns && v <= kMaxRuns) {
        return static_cast<std::size_t>(v);
    }
    std::printf("RRB_SWEEP_RUNS=%s is not a run count in [%zu, %lu]; "
                "running %zu runs per point\n",
                env, kMinRuns, kMaxRuns, kMinRuns);
    return kMinRuns;
}

Scenario sweep_scenario(std::size_t runs) {
    return Scenario::on(MachineConfig::ngmp_ref())
        .scua(make_autobench(Autobench::kCacheb, 0x0100'0000, 60, 5))
        .rsk_contenders(OpKind::kLoad)
        .runs(runs)
        .seed(17);
}

SweepAxes grid_axes() {
    SweepAxes axes;
    axes.cores = {2, 4, 8};
    axes.lbus = {5, 9, 13};
    return axes;
}

PwcetSpec grid_spec() {
    PwcetSpec spec;
    spec.block_size = kBlockSize;
    spec.exceedance = {1e-6};
    return spec;
}

void print_figure() {
    rrbench::print_header(
        "Extension — grid-of-pWCET sweeps (Scenario/Session API)",
        "per-config streamed Gumbel campaigns; the ETB scales with "
        "(Nc-1) x lbus while the sampled tail follows the alignments "
        "randomization reaches; results are bit-identical at every "
        "jobs value, nesting included");

    const std::size_t runs = runs_per_point();
    const Scenario scenario = sweep_scenario(runs);

    Session session;  // default jobs: hardware concurrency
    const auto t0 = std::chrono::steady_clock::now();
    const SweepResult wide = session.sweep(scenario, grid_axes(),
                                           grid_spec());
    const auto t1 = std::chrono::steady_clock::now();

    std::printf("%zu-point grid, %zu runs/point, blocks of %zu\n\n",
                wide.points.size(), runs, kBlockSize);
    std::printf("%6s %6s %10s %12s %12s %10s %8s\n", "cores", "lbus",
                "hwm", "pwcet@1e-6", "etb", "margin", "bounded");
    for (const SweepPoint& p : wide.points) {
        const Cycle etb = p.result.etb(p.config.ubd_analytic());
        const bool bounded = p.result.high_water_mark <= etb;
        const double pwcet =
            p.result.fit.valid() ? p.result.quantiles.front().pwcet : 0.0;
        std::printf("%6u %6" PRIu64 " %10" PRIu64 " %12.0f %12" PRIu64
                    " %10" PRIu64 " %8s\n",
                    p.cores, p.lbus, p.result.high_water_mark, pwcet, etb,
                    bounded ? etb - p.result.high_water_mark : Cycle{0},
                    bounded ? "yes" : "NO");
    }

    // Wall-clock scaling: the same sweep, one worker. Bit-identical by
    // contract — verify it, then report the speedup the shared pool
    // buys at hardware concurrency.
    Session narrow;
    narrow.jobs(1);
    const auto t2 = std::chrono::steady_clock::now();
    const SweepResult serial = narrow.sweep(scenario, grid_axes(),
                                            grid_spec());
    const auto t3 = std::chrono::steady_clock::now();

    std::size_t mismatches = 0;
    for (std::size_t i = 0; i < wide.points.size(); ++i) {
        if (wide.points[i].result.high_water_mark !=
                serial.points[i].result.high_water_mark ||
            wide.points[i].result.mean != serial.points[i].result.mean ||
            wide.points[i].result.fit.mu != serial.points[i].result.fit.mu) {
            ++mismatches;
        }
    }
    // Per-point baseline: the pre-scheduler sweep — one standalone
    // campaign per grid point with a barrier before the next, at the
    // same worker budget. The gap against the flat queue is pure
    // barrier idle time (workers draining while the point's last
    // shards finish).
    Session pointwise;  // default jobs: hardware concurrency
    std::size_t pointwise_mismatches = 0;
    const auto t4 = std::chrono::steady_clock::now();
    for (const SweepPoint& p : wide.points) {
        const PwcetCampaignResult lone =
            pointwise.pwcet(scenario.with_config(p.config), grid_spec());
        if (lone.high_water_mark != p.result.high_water_mark ||
            lone.mean != p.result.mean) {
            ++pointwise_mismatches;
        }
    }
    const auto t5 = std::chrono::steady_clock::now();

    const double wide_s =
        std::chrono::duration<double>(t1 - t0).count();
    const double serial_s =
        std::chrono::duration<double>(t3 - t2).count();
    const double pointwise_s =
        std::chrono::duration<double>(t5 - t4).count();
    std::printf(
        "\nwall-clock: %.2fs at jobs=1 vs %.2fs at hardware concurrency "
        "(%zu workers) — %.1fx; %zu/%zu grid points bit-identical\n",
        serial_s, wide_s, engine::ThreadPool::default_jobs(),
        wide_s > 0.0 ? serial_s / wide_s : 0.0,
        wide.points.size() - mismatches, wide.points.size());
    std::printf(
        "scheduler (flat shard queue) vs per-point barrier at the same "
        "width: %.2fs vs %.2fs — %.2fx; %zu/%zu points bit-identical\n",
        wide_s, pointwise_s,
        wide_s > 0.0 ? pointwise_s / wide_s : 0.0,
        wide.points.size() - pointwise_mismatches, wide.points.size());
}

void BM_SweepPwcet(benchmark::State& state) {
    const std::size_t jobs = static_cast<std::size_t>(state.range(0));
    const Scenario scenario = sweep_scenario(4 * kBlockSize);
    SweepAxes axes;
    axes.cores = {2, 4};
    axes.lbus = {5, 9};
    for (auto _ : state) {
        Session session;
        session.jobs(jobs);
        benchmark::DoNotOptimize(
            session.sweep(scenario, axes, grid_spec()));
    }
    state.SetItemsProcessed(
        state.iterations() *
        static_cast<std::int64_t>(axes.points() * 4 * kBlockSize));
}
BENCHMARK(BM_SweepPwcet)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

}  // namespace

RRBENCH_MAIN(print_figure)
