// Section 4.3 "Using ubdm": the MBTA padding table. For a set of
// EEMBC-like applications, pads the isolated execution time with
// nr x ubdm, validates the bound, and contrasts the pad computed from the
// methodology's exact ubd against the naive rsk-vs-rsk ubdm.
#include "fig_common.h"

using namespace rrb;

namespace {

void print_figure() {
    rrbench::print_header(
        "MBTA padding — ETB = et_isol + nr x ubdm (Section 4.3)",
        "the ETB with the methodology's ubd bounds every observed run; a "
        "naive ubdm shaves the pad and erodes the safety argument");

    const MachineConfig cfg = MachineConfig::ngmp_ref();
    const Cycle true_ubd = cfg.ubd_analytic();           // 27, via rsk-nop
    const NaiveUbdm naive = naive_ubdm_rsk_vs_rsk(cfg);  // 26 on ref

    std::printf("ubd(methodology) = %llu, ubdm(naive rsk-vs-rsk) = %llu\n\n",
                static_cast<unsigned long long>(true_ubd),
                static_cast<unsigned long long>(naive.ubdm_max_gamma));
    std::printf("%-8s %10s %7s %12s %12s %14s %9s\n", "scua", "et_isol",
                "nr", "etb(27)", "etb(naive)", "worst_obs", "bounded");

    for (const Autobench kernel :
         {Autobench::kCacheb, Autobench::kMatrix, Autobench::kTblook,
          Autobench::kPntrch, Autobench::kCanrdr, Autobench::kIdctrn,
          Autobench::kA2time, Autobench::kAifirf}) {
        const Program scua = make_autobench(kernel, 0x0100'0000, 250, 13);
        const EtbResult ours = compute_and_validate_etb(cfg, scua, true_ubd);
        const Cycle naive_etb =
            ours.et_isolation + ours.nr * naive.ubdm_max_gamma;
        std::printf("%-8s %10llu %7llu %12llu %12llu %14llu %9s\n",
                    to_string(kernel),
                    static_cast<unsigned long long>(ours.et_isolation),
                    static_cast<unsigned long long>(ours.nr),
                    static_cast<unsigned long long>(ours.etb),
                    static_cast<unsigned long long>(naive_etb),
                    static_cast<unsigned long long>(ours.observed_worst),
                    ours.bounded() ? "yes" : "NO");
    }
}

void BM_EtbValidation(benchmark::State& state) {
    const MachineConfig cfg = MachineConfig::ngmp_ref();
    const Program scua =
        make_autobench(Autobench::kCacheb, 0x0100'0000, 250, 13);
    for (auto _ : state) {
        benchmark::DoNotOptimize(compute_and_validate_etb(cfg, scua, 27));
    }
}
BENCHMARK(BM_EtbValidation)->Unit(benchmark::kMillisecond);

}  // namespace

RRBENCH_MAIN(print_figure)
