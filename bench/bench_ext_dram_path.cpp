// Extension 2: probing the second contention point — the memory
// controller ("contention only happens on the bus and the memory
// controller", Section 5.1).
//
// The rsk-l2miss kernel misses DL1 *and* the L2 partition on every load,
// so each access crosses the bus twice (split miss request + fill
// response) and queues in the FR-FCFS controller against the other
// cores' streams. This bench runs the same k sweep on that path: the
// slowdown is much larger (DRAM latencies + bank conflicts) and the
// clean single-period saw-tooth degrades — the methodology as published
// is a *bus* instrument; extending it to DRAM needs a queueing model,
// which the paper leaves to future work.
#include "fig_common.h"

using namespace rrb;

namespace {

std::vector<double> sweep(const MachineConfig& cfg, std::uint32_t k_max,
                          std::uint64_t footprint) {
    std::vector<double> dbus;
    RskParams cp;
    cp.unroll = 8;
    cp.iterations = 1;
    cp.data_base = 0x0800'0000;
    cp.code_base = 0x0004'0000;
    const std::vector<Program> contenders = {
        make_rsk_l2miss(cp, footprint)};
    for (std::uint32_t k = 0; k <= k_max; ++k) {
        RskParams p;
        p.unroll = 8;
        p.iterations = 12;
        const Program scua = make_rsk_l2miss(p, footprint, k);
        const SlowdownResult r = run_slowdown(cfg, scua, contenders);
        dbus.push_back(static_cast<double>(r.slowdown()));
    }
    return dbus;
}

void print_figure() {
    rrbench::print_header(
        "Extension — rsk-l2miss sweep through the memory controller",
        "split transactions + FR-FCFS banks: slowdown is large and the "
        "single-period saw-tooth degrades; the published methodology "
        "instruments the bus, not the DRAM");

    const MachineConfig cfg = MachineConfig::ngmp_ref();
    const std::vector<double> dbus = sweep(cfg, 60, 256 * 1024);

    ChartOptions opts;
    opts.title = "dbus(l2miss, k), ref architecture";
    opts.height = 9;
    std::printf("%s", render_series(dbus, opts).c_str());

    const SeriesSummary s = summarize(dbus);
    const PeriodConsensus c =
        consensus_period(dbus, (s.max - s.min) * 0.02);
    std::printf("  range [%.0f, %.0f]; consensus period = %zu "
                "(votes %d/4)\n",
                s.min, s.max, c.period, c.votes);
    std::printf("  bus-path ubd would be %llu; a DRAM-path bound must also "
                "cover bank conflicts and queueing.\n",
                static_cast<unsigned long long>(cfg.ubd_analytic()));

    // Quantify the DRAM pressure difference vs the L2-hit kernel.
    RskParams p;
    p.unroll = 8;
    p.iterations = 12;
    Machine hit_machine(cfg);
    hit_machine.load_program(0, make_rsk(p));
    hit_machine.warm_static_footprint(0);
    hit_machine.run(50'000'000);
    Machine miss_machine(cfg);
    miss_machine.load_program(0, make_rsk_l2miss(p, 256 * 1024));
    miss_machine.run(50'000'000);
    std::printf("  DRAM reads: rsk (L2-hit) = %llu, rsk-l2miss = %llu; "
                "row-hit ratio %.0f%%\n",
                static_cast<unsigned long long>(
                    hit_machine.dram().stats().reads),
                static_cast<unsigned long long>(
                    miss_machine.dram().stats().reads),
                100.0 * miss_machine.dram().stats().row_hit_ratio());
}

void BM_L2MissSweepPoint(benchmark::State& state) {
    const MachineConfig cfg = MachineConfig::ngmp_ref();
    RskParams cp;
    cp.unroll = 8;
    cp.iterations = 1;
    cp.data_base = 0x0800'0000;
    const std::vector<Program> contenders = {
        make_rsk_l2miss(cp, 256 * 1024)};
    for (auto _ : state) {
        RskParams p;
        p.unroll = 8;
        p.iterations = 12;
        const Program scua = make_rsk_l2miss(p, 256 * 1024, 5);
        benchmark::DoNotOptimize(run_slowdown(cfg, scua, contenders));
    }
}
BENCHMARK(BM_L2MissSweepPoint)->Unit(benchmark::kMillisecond);

}  // namespace

RRBENCH_MAIN(print_figure)
