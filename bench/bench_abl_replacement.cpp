// Ablation E: L1 replacement policies. The rsk recipe (W+1 same-set
// lines) is stated for LRU/FIFO in the paper; this bench checks how the
// methodology fares when the DL1 uses tree-PLRU or random replacement:
//   * LRU / FIFO / PLRU: every access still misses (PLRU after a 1-hit
//     transient), the injection time stays fixed, ubd is recovered;
//   * random: some accesses hit, the injection times jitter, and the
//     estimator must either still find the period or say it did not.
#include "fig_common.h"

using namespace rrb;

namespace {

const char* policy_name(ReplacementPolicy p) {
    switch (p) {
        case ReplacementPolicy::kLru: return "lru";
        case ReplacementPolicy::kFifo: return "fifo";
        case ReplacementPolicy::kRandom: return "random";
        case ReplacementPolicy::kPlru: return "plru";
    }
    return "?";
}

void print_figure() {
    rrbench::print_header(
        "Ablation E — DL1 replacement policy vs the rsk recipe",
        "the W+1 same-set construction defeats LRU, FIFO and tree-PLRU "
        "alike; random replacement lets some loads hit and erodes the "
        "measurement");

    std::printf("%8s %12s %12s %10s %12s %8s\n", "policy", "dl1-miss%",
                "period_k", "votes", "ubd(meas)", "match");
    const Cycle expected = MachineConfig::ngmp_ref().ubd_analytic();
    for (const ReplacementPolicy policy :
         {ReplacementPolicy::kLru, ReplacementPolicy::kFifo,
          ReplacementPolicy::kPlru, ReplacementPolicy::kRandom}) {
        MachineConfig cfg = MachineConfig::ngmp_ref();
        cfg.core.l1_replacement = policy;

        // DL1 miss ratio of the plain rsk in isolation.
        RskParams p;
        p.unroll = 8;
        p.iterations = 50;
        const Measurement isol = run_isolation(cfg, make_rsk(p));
        const double miss_pct =
            100.0 * static_cast<double>(isol.bus_requests) /
            static_cast<double>(p.unroll * 5 * p.iterations);

        UbdEstimatorOptions opt;
        opt.k_max = 60;
        opt.unroll = 8;
        opt.rsk_iterations = 25;
        const UbdEstimate e = estimate_ubd(cfg, opt);
        std::printf("%8s %11.1f%% %12zu %10d %12llu %8s\n",
                    policy_name(policy), miss_pct, e.period_k,
                    e.confidence.detector_votes,
                    static_cast<unsigned long long>(e.found ? e.ubd : 0),
                    e.found && e.ubd == expected ? "yes"
                    : e.found                    ? "NO"
                                                 : "n/a");
    }
    std::printf(
        "\nRandom replacement lets ~60%% of rsk loads hit in DL1, which\n"
        "thins the measurement (fewer detector votes) — yet the period\n"
        "survives, because the hits only stretch some injection times by\n"
        "whole extra loads. A practitioner can restore full confidence by\n"
        "growing the kernel footprint beyond W+1 lines.\n");
}

void BM_EstimatePlru(benchmark::State& state) {
    MachineConfig cfg = MachineConfig::ngmp_ref();
    cfg.core.l1_replacement = ReplacementPolicy::kPlru;
    UbdEstimatorOptions opt;
    opt.k_max = 60;
    opt.unroll = 8;
    opt.rsk_iterations = 25;
    for (auto _ : state) {
        benchmark::DoNotOptimize(estimate_ubd(cfg, opt));
    }
}
BENCHMARK(BM_EstimatePlru)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

RRBENCH_MAIN(print_figure)
