// Section 5.1/5.2 setup validation table: the platform parameters the
// paper fixes, the quantities the methodology derives, and the agreement
// between them on both evaluation architectures.
#include "fig_common.h"

using namespace rrb;

namespace {

void print_figure() {
    rrbench::print_header(
        "Setup validation — NGMP model parameters and measured quantities",
        "lbus = 9 (6 L2-hit + 3 transfer/arbitration), ubd = 27 = (4-1)x9; "
        "delta_rsk = 1 (ref) / 4 (var); delta_nop = 1");

    std::printf("%-34s %10s %10s\n", "quantity", "ref", "var");
    const MachineConfig ref = MachineConfig::ngmp_ref();
    const MachineConfig var = MachineConfig::ngmp_var();

    std::printf("%-34s %10u %10u\n", "cores", ref.num_cores, var.num_cores);
    std::printf("%-34s %10llu %10llu\n", "lbus (hidden from estimator)",
                static_cast<unsigned long long>(ref.load_hit_service()),
                static_cast<unsigned long long>(var.load_hit_service()));
    std::printf("%-34s %10llu %10llu\n", "ubd = (Nc-1)*lbus (Eq. 1)",
                static_cast<unsigned long long>(ref.ubd_analytic()),
                static_cast<unsigned long long>(var.ubd_analytic()));
    std::printf("%-34s %10u %10u\n", "DL1 latency (=> delta_rsk)",
                ref.core.dl1_latency, var.core.dl1_latency);

    const NopCalibration cal_ref = calibrate_delta_nop(ref);
    const NopCalibration cal_var = calibrate_delta_nop(var);
    std::printf("%-34s %10.4f %10.4f\n", "delta_nop (measured)",
                cal_ref.delta_nop, cal_var.delta_nop);

    UbdEstimatorOptions opt;
    opt.k_max = 60;
    opt.unroll = 8;
    opt.rsk_iterations = 30;
    const UbdEstimate e_ref = estimate_ubd(ref, opt);
    const UbdEstimate e_var = estimate_ubd(var, opt);
    std::printf("%-34s %9.1f%% %9.1f%%\n", "bus utilization under 4 rsk",
                100.0 * e_ref.confidence.saturation_utilization,
                100.0 * e_var.confidence.saturation_utilization);
    std::printf("%-34s %10zu %10zu\n", "saw-tooth period (nop steps)",
                e_ref.period_k, e_var.period_k);
    std::printf("%-34s %10llu %10llu\n", "ubd measured (methodology)",
                static_cast<unsigned long long>(e_ref.ubd),
                static_cast<unsigned long long>(e_var.ubd));
    std::printf("%-34s %10s %10s\n", "matches Equation 1",
                e_ref.found && e_ref.ubd == ref.ubd_analytic() ? "yes" : "NO",
                e_var.found && e_var.ubd == var.ubd_analytic() ? "yes" : "NO");
}

void BM_DeltaNopCalibration(benchmark::State& state) {
    const MachineConfig cfg = MachineConfig::ngmp_ref();
    for (auto _ : state) {
        benchmark::DoNotOptimize(calibrate_delta_nop(cfg));
    }
}
BENCHMARK(BM_DeltaNopCalibration)->Unit(benchmark::kMillisecond);

void BM_FullEstimation(benchmark::State& state) {
    const MachineConfig cfg = MachineConfig::ngmp_ref();
    UbdEstimatorOptions opt;
    opt.k_max = 60;
    opt.unroll = 8;
    opt.rsk_iterations = 30;
    for (auto _ : state) {
        benchmark::DoNotOptimize(estimate_ubd(cfg, opt));
    }
}
BENCHMARK(BM_FullEstimation)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

RRBENCH_MAIN(print_figure)
