// Figure 7(a): slowdown of the load rsk-nop as a function of the injected
// nop count k, on the ref and var architectures. The paper's headline
// evidence: both curves are saw-tooths of period 27 = ubd — peaks at
// k = 27, 54 on ref and k = 24, 51 on var — so the (hidden) bus timing is
// recovered from the period alone.
#include "fig_common.h"

using namespace rrb;

namespace {

std::vector<double> sweep(const MachineConfig& cfg, std::uint32_t k_max) {
    std::vector<double> dbus;
    for (std::uint32_t k = 0; k <= k_max; ++k) {
        RskParams params;
        params.dl1_geometry = cfg.core.dl1_geometry;
        params.unroll = 12;
        params.iterations = 60;
        const Program scua = make_rsk_nop(params, k);
        const SlowdownResult r = run_slowdown(
            cfg, scua, make_rsk_contenders(cfg, OpKind::kLoad));
        dbus.push_back(static_cast<double>(r.slowdown()));
    }
    return dbus;
}

void analyze(const char* label, const MachineConfig& cfg,
             const std::vector<double>& dbus) {
    ChartOptions opts;
    opts.title = std::string("dbus(load,k), ") + label +
                 " architecture (x = k, 0..60)";
    opts.height = 10;
    std::printf("%s", render_series(dbus, opts).c_str());

    const PeriodConsensus c = consensus_period(
        dbus, (summarize(dbus).max - summarize(dbus).min) * 0.01);
    const auto peaks = local_maxima(dbus);
    std::string peak_str;
    for (const std::size_t p : peaks) peak_str += std::to_string(p) + " ";
    std::printf("  peaks at k = %s\n", peak_str.c_str());
    std::printf("  saw-tooth period = %zu (votes %d/4)  ->  ubd = %zu; "
                "Equation 1 says %llu\n\n",
                c.period, c.votes, c.period,
                static_cast<unsigned long long>(cfg.ubd_analytic()));
}

void print_figure() {
    rrbench::print_header(
        "Figure 7(a) — slowdown of load rsk-nop vs k, ref and var",
        "saw-tooth period 27 on both architectures (peaks 27/54 on ref, "
        "24/51 on var): the period, not the peak, encodes ubd");

    const MachineConfig ref = MachineConfig::ngmp_ref();
    analyze("ref", ref, sweep(ref, 60));
    const MachineConfig var = MachineConfig::ngmp_var();
    analyze("var", var, sweep(var, 60));
}

void BM_OneSlowdownMeasurement(benchmark::State& state) {
    const MachineConfig cfg = MachineConfig::ngmp_ref();
    const auto k = static_cast<std::uint32_t>(state.range(0));
    for (auto _ : state) {
        RskParams params;
        params.unroll = 12;
        params.iterations = 60;
        const Program scua = make_rsk_nop(params, k);
        benchmark::DoNotOptimize(run_slowdown(
            cfg, scua, make_rsk_contenders(cfg, OpKind::kLoad)));
    }
}
BENCHMARK(BM_OneSlowdownMeasurement)->Arg(0)->Arg(27)->Arg(54)
    ->Unit(benchmark::kMillisecond);

}  // namespace

RRBENCH_MAIN(print_figure)
