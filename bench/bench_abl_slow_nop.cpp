// Ablation D: the "unlikely case delta_nop > 1" (Section 4.2). When nops
// cost several cycles, the k sweep samples the delta axis sparsely and
// the observed period in k is ubd / gcd(ubd, delta_nop) — NOT ubd /
// delta_nop, an aliasing subtlety the paper leaves implicit. The
// estimator calibrates delta_nop with the all-nop kernel and
// disambiguates the aliased candidates through the per-request saw-tooth
// amplitude (= ubd - gcd). This bench sweeps nop latencies 1..3 and
// shows the recovered ubd staying at 27 throughout.
#include <numeric>

#include "fig_common.h"

using namespace rrb;

namespace {

void print_figure() {
    rrbench::print_header(
        "Ablation D — slow nop pipes (delta_nop > 1)",
        "period_k = ubd/gcd(ubd, delta_nop); amplitude disambiguation "
        "recovers ubd = 27 for every nop latency");

    const MachineConfig cfg = MachineConfig::ngmp_ref();
    const Cycle ubd = cfg.ubd_analytic();

    std::printf("%12s %12s %10s %14s %12s %14s %8s\n", "nop_latency",
                "delta_nop", "period_k", "period_k(exp)", "amp/request",
                "ubd(measured)", "match");
    for (const std::uint32_t latency : {1u, 2u, 3u}) {
        UbdEstimatorOptions opt;
        opt.k_max = 70;
        opt.unroll = 8;
        opt.rsk_iterations = 25;
        opt.nop_latency = latency;
        const UbdEstimate e = estimate_ubd(cfg, opt);
        const Cycle expected_period =
            ubd / std::gcd(ubd, static_cast<Cycle>(latency));
        std::printf("%12u %12.4f %10zu %14llu %12.2f %14llu %8s\n", latency,
                    e.confidence.nop.delta_nop, e.period_k,
                    static_cast<unsigned long long>(expected_period),
                    e.amplitude_per_request,
                    static_cast<unsigned long long>(e.found ? e.ubd : 0),
                    e.found && e.ubd == ubd ? "yes" : "NO");
    }
    std::printf(
        "\ndelta_nop = 2: gcd(27,2) = 1 -> 27 k-steps span TWO ubd periods;\n"
        "naive period_k x delta_nop would report 54. delta_nop = 3 divides\n"
        "27 -> period 9 in k. The amplitude test (ubd - gcd) settles both.\n");
}

void BM_SlowNopSweepPoint(benchmark::State& state) {
    const MachineConfig cfg = MachineConfig::ngmp_ref();
    for (auto _ : state) {
        RskParams params;
        params.unroll = 8;
        params.iterations = 25;
        params.nop_latency = 3;
        const Program scua = make_rsk_nop(params, 10);
        benchmark::DoNotOptimize(run_slowdown(
            cfg, scua, make_rsk_contenders(cfg, OpKind::kLoad)));
    }
}
BENCHMARK(BM_SlowNopSweepPoint)->Unit(benchmark::kMillisecond);

}  // namespace

RRBENCH_MAIN(print_figure)
