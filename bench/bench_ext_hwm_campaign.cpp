// Extension 1: randomized-alignment measurement campaigns vs the bound.
//
// MBTA practice observes a high-water mark (HWM) over many runs with
// randomized release offsets and pads it. This bench shows, per
// EEMBC-like application, the campaign HWM, the per-request slowdown it
// implies, and the composable bound ETB = et_isol + nr * ubd: the HWM
// approaches but never crosses the bound, and padding with the naive
// (under-estimated) ubdm = 26 eats into the safety margin.
#include "fig_common.h"

using namespace rrb;

namespace {

void print_figure() {
    rrbench::print_header(
        "Extension — HWM campaigns (20 randomized runs) vs composable ETB",
        "HWM <= ETB always; per-request HWM slowdown < ubd; the naive "
        "ubdm pad is tighter but unsound in principle");

    const MachineConfig cfg = MachineConfig::ngmp_ref();
    const Cycle ubd = cfg.ubd_analytic();

    // One Scenario per EEMBC-like scua, all sharing the same protocol
    // and executed by one Session: campaigns run back to back on the
    // session's shared pool, and the per-run seed derivation keeps
    // every number identical to a serial run, whatever the job count.
    const std::vector<Autobench> kernels = {
        Autobench::kCacheb, Autobench::kMatrix, Autobench::kTblook,
        Autobench::kPntrch, Autobench::kIdctrn, Autobench::kAifirf};
    Session session;  // default jobs: hardware concurrency
    std::vector<HwmCampaignResult> campaigns;
    campaigns.reserve(kernels.size());
    for (const Autobench kernel : kernels) {
        campaigns.push_back(session.hwm(
            Scenario::on(cfg)
                .scua(make_autobench(kernel, 0x0100'0000, 150, 9))
                .rsk_contenders(OpKind::kLoad)
                .runs(20)
                .seed(11)));
    }

    std::printf("%-8s %10s %10s %12s %12s %12s %10s\n", "scua", "et_isol",
                "hwm", "hwm/req", "etb(ubd=27)", "etb(naive26)", "bounded");
    for (std::size_t i = 0; i < kernels.size(); ++i) {
        const HwmCampaignResult& hwm = campaigns[i];
        const Cycle etb = hwm.et_isolation + hwm.nr * ubd;
        const Cycle etb_naive = hwm.et_isolation + hwm.nr * (ubd - 1);
        std::printf("%-8s %10llu %10llu %12.2f %12llu %12llu %10s\n",
                    to_string(kernels[i]),
                    static_cast<unsigned long long>(hwm.et_isolation),
                    static_cast<unsigned long long>(hwm.high_water_mark),
                    hwm.hwm_slowdown_per_request(),
                    static_cast<unsigned long long>(etb),
                    static_cast<unsigned long long>(etb_naive),
                    hwm.high_water_mark <= etb ? "yes" : "NO");
    }
    std::printf(
        "\nhwm/req stays below ubd = %llu on every row: no campaign can\n"
        "synthesize the worst alignment, which is the paper's core\n"
        "argument for deriving ubd analytically from the saw-tooth\n"
        "instead of trusting observed maxima.\n",
        static_cast<unsigned long long>(ubd));
}

void BM_OneCampaign(benchmark::State& state) {
    const MachineConfig cfg = MachineConfig::ngmp_ref();
    const Program scua =
        make_autobench(Autobench::kCacheb, 0x0100'0000, 150, 9);
    for (auto _ : state) {
        HwmCampaignOptions opt;
        opt.runs = 20;
        benchmark::DoNotOptimize(run_hwm_campaign(
            cfg, scua, make_rsk_contenders(cfg, OpKind::kLoad), opt));
    }
}
BENCHMARK(BM_OneCampaign)->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_OneCampaignParallel(benchmark::State& state) {
    const Scenario scenario =
        Scenario::on(MachineConfig::ngmp_ref())
            .scua(make_autobench(Autobench::kCacheb, 0x0100'0000, 150, 9))
            .rsk_contenders(OpKind::kLoad)
            .runs(20);
    for (auto _ : state) {
        Session session;  // jobs = hardware concurrency
        benchmark::DoNotOptimize(session.hwm(scenario));
    }
}
BENCHMARK(BM_OneCampaignParallel)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

RRBENCH_MAIN(print_figure)
