// Figure 3: the contention delay gamma as a function of the injection
// time delta on a saturated RR bus (4 cores, lbus = 2, ubd = 6).
// Reproduces the delta/gamma matrix at the bottom of the figure and
// cross-checks every simulated entry against Equation 2.
#include "fig_common.h"

using namespace rrb;

namespace {

std::uint64_t simulated_gamma(const MachineConfig& cfg, std::uint32_t k) {
    RskParams params;
    params.dl1_geometry = cfg.core.dl1_geometry;
    params.iterations = 50;
    const Program scua = make_rsk_nop(params, k);
    const Measurement m = run_contention(
        cfg, scua, make_rsk_contenders(cfg, OpKind::kLoad));
    return m.gamma.mode();
}

void print_figure() {
    rrbench::print_header(
        "Figure 3 — gamma(delta) matrix, 4 cores, lbus=2, ubd=6",
        "gamma = ubd at delta=0; decreases to 0 at delta=ubd; wraps to "
        "ubd-1 at delta=ubd+1 (Equation 2)");

    const MachineConfig cfg = MachineConfig::textbook();
    const Cycle ubd = cfg.ubd_analytic();

    std::printf("%6s %6s %11s %11s %6s\n", "k", "delta", "gamma(sim)",
                "gamma(Eq.2)", "match");
    int mismatches = 0;
    // delta = 0 is unreachable for loads (dl1 lookup takes >= 1 cycle) —
    // print the model row, then sweep delta = 1..13 via k = 0..12.
    std::printf("%6s %6d %11s %11llu %6s\n", "-", 0, "(stores)",
                static_cast<unsigned long long>(gamma_eq2(0, ubd)), "-");
    for (std::uint32_t k = 0; k <= 12; ++k) {
        const Cycle delta = k + 1;
        const std::uint64_t sim = simulated_gamma(cfg, k);
        const Cycle model = gamma_eq2(delta, ubd);
        const bool ok = sim == model;
        if (!ok) ++mismatches;
        std::printf("%6u %6llu %11llu %11llu %6s\n", k,
                    static_cast<unsigned long long>(delta),
                    static_cast<unsigned long long>(sim),
                    static_cast<unsigned long long>(model),
                    ok ? "yes" : "NO");
    }
    std::printf("mismatches: %d\n", mismatches);
}

void BM_GammaMeasurement(benchmark::State& state) {
    const MachineConfig cfg = MachineConfig::textbook();
    const auto k = static_cast<std::uint32_t>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(simulated_gamma(cfg, k));
    }
    state.counters["gamma"] = static_cast<double>(
        gamma_eq2(k + 1, cfg.ubd_analytic()));
}
BENCHMARK(BM_GammaMeasurement)->Arg(0)->Arg(5)->Arg(12)
    ->Unit(benchmark::kMillisecond);

}  // namespace

RRBENCH_MAIN(print_figure)
