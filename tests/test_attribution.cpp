// Cycle-attribution profiler (PR 7): closed accounting, PMC
// cross-checks, blame-matrix decomposition, and campaign determinism.
//
// The profiler's contract has four parts, each asserted here:
//   1. Closed accounting: per core, the StallCause buckets sum exactly
//      to the machine's elapsed cycles — on the same config grid the
//      hot-path differential suite uses, including cutoff runs.
//   2. PMC cross-checks: buckets the machine already counts as PMCs
//      (store-gate / store-buffer-full stall cycles, bus wait cycles)
//      must equal the attribution's view of the same cycles.
//   3. Observational only: finish cycles are bit-identical armed or
//      not.
//   4. Campaign determinism: the summed AttributionAccumulator is
//      bit-identical at every --jobs value and through shard+merge,
//      and round-trips through the checkpoint codec.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/campaign.h"
#include "core/estimator.h"
#include "engine/reduce.h"
#include "kernels/autobench.h"
#include "kernels/rsk.h"
#include "machine/attribution.h"
#include "machine/config.h"
#include "machine/machine.h"
#include "stats/attribution.h"
#include "stats/checkpoint.h"

namespace rrb {
namespace {

struct GridPoint {
    std::string name;
    MachineConfig config;
};

/// Same platform grid as the hot-path differential suite: both NGMP
/// variants, a scaled platform, every arbiter kind, refresh on.
std::vector<GridPoint> config_grid() {
    std::vector<GridPoint> grid;
    grid.push_back({"ngmp_ref", MachineConfig::ngmp_ref()});
    grid.push_back({"ngmp_var", MachineConfig::ngmp_var()});
    grid.push_back({"scaled_2x5", MachineConfig::scaled(2, 5)});
    grid.push_back({"textbook", MachineConfig::textbook()});
    {
        MachineConfig cfg = MachineConfig::ngmp_ref();
        cfg.arbiter = ArbiterKind::kTdma;
        grid.push_back({"tdma", cfg});
    }
    {
        MachineConfig cfg = MachineConfig::ngmp_ref();
        cfg.arbiter = ArbiterKind::kFixedPriority;
        grid.push_back({"fixed", cfg});
    }
    {
        MachineConfig cfg = MachineConfig::ngmp_ref();
        cfg.arbiter = ArbiterKind::kWeightedRoundRobin;
        cfg.wrr_weights = {3, 1, 1, 1};
        grid.push_back({"wrr", cfg});
    }
    {
        MachineConfig cfg = MachineConfig::ngmp_ref();
        cfg.dram.refresh_interval = 1560;
        cfg.dram.refresh_duration = 26;
        grid.push_back({"refresh", cfg});
    }
    return grid;
}

/// Scuas covering distinct attribution paths: L2-hit loads (bus wait +
/// service only), the DRAM split-transaction chain (row classes, queue,
/// refresh), and store-buffer machinery (gate / full / drain-wait).
std::vector<Program> scua_set() {
    std::vector<Program> scuas;
    scuas.push_back(make_autobench(Autobench::kCacheb, 0x0100'0000, 12, 9));
    scuas.push_back(ProgramBuilder("dram-walk")
                        .load(AddrPattern::stride(0x0200'0000, 32,
                                                  256 * 1024))
                        .nop(2)
                        .iterations(200)
                        .build());
    {
        RskParams params;
        params.access = OpKind::kStore;
        params.unroll = 2;
        params.iterations = 25;
        Program store_heavy = make_rsk(params);
        store_heavy.body.push_back(
            {OpKind::kLoad, 1, AddrPattern::fixed(0x0030'0000)});
        store_heavy.name = "store-heavy";
        scuas.push_back(store_heavy);
    }
    return scuas;
}

void expect_closed(const Machine& machine, const std::string& what) {
    const CycleAttribution& attr = machine.attribution();
    for (CoreId c = 0; c < machine.config().num_cores; ++c) {
        EXPECT_EQ(attr.total(c), machine.now())
            << what << " core " << c << " timeline does not close";
    }
}

void expect_same_accumulator(const AttributionAccumulator& a,
                             const AttributionAccumulator& b,
                             const std::string& what) {
    ASSERT_EQ(a.num_cores(), b.num_cores()) << what;
    EXPECT_EQ(a.runs(), b.runs()) << what;
    EXPECT_EQ(a.machine_cycles(), b.machine_cycles()) << what;
    for (CoreId c = 0; c < a.num_cores(); ++c) {
        for (std::size_t cause = 0; cause < kStallCauseCount; ++cause) {
            EXPECT_EQ(a.timeline(c, static_cast<StallCause>(cause)),
                      b.timeline(c, static_cast<StallCause>(cause)))
                << what << " core " << c << " cause "
                << to_string(static_cast<StallCause>(cause));
        }
        for (CoreId w = 0; w < a.num_cores(); ++w) {
            EXPECT_EQ(a.blamed(c, w), b.blamed(c, w))
                << what << " blame[" << c << "][" << w << "]";
        }
        EXPECT_EQ(a.dead_slot_cycles(c), b.dead_slot_cycles(c))
            << what << " dead[" << c << "]";
    }
}

TEST(Attribution, ClosedAccountingAcrossConfigGrid) {
    // Every (platform, scua, run) combination: a full campaign run with
    // the profiler armed, then per core the buckets must sum exactly to
    // the machine's elapsed cycles — no cycle uncharged, none charged
    // twice.
    for (const GridPoint& point : config_grid()) {
        const std::vector<Program> contenders =
            make_rsk_contenders(point.config, OpKind::kLoad);
        for (const Program& scua : scua_set()) {
            HwmCampaignOptions options;
            options.runs = 2;
            options.seed = 3;
            for (std::uint64_t run = 0; run < options.runs; ++run) {
                const std::string what =
                    point.name + "/" + scua.name + "/run" +
                    std::to_string(run);
                Machine machine(point.config);
                machine.arm_attribution();
                std::uint64_t campaign = 0;
                const Cycle finish = detail::execute_campaign_run(
                    machine, campaign, scua, contenders, options, run);
                machine.finalize_attribution();
                ASSERT_NE(finish, kNoCycle) << what;
                expect_closed(machine, what);
            }
        }
    }
}

TEST(Attribution, ArmedRunsAreBitIdenticalToUnarmed) {
    // Strictly observational: the profiler never feeds into timing, so
    // the finish cycle of every run is identical armed or not — across
    // the full grid (the machine-reuse hot path included: attribute
    // goes through the same MachineLease as the production campaign).
    for (const GridPoint& point : config_grid()) {
        const std::vector<Program> contenders =
            make_rsk_contenders(point.config, OpKind::kLoad);
        const Program scua =
            make_autobench(Autobench::kCacheb, 0x0100'0000, 12, 9);
        HwmCampaignOptions options;
        options.runs = 3;
        AttributionAccumulator acc;
        for (std::uint64_t run = 0; run < options.runs; ++run) {
            const Cycle armed = detail::hwm_campaign_attribute(
                point.config, scua, contenders, options, run, acc);
            const Cycle plain = detail::hwm_campaign_run(
                point.config, scua, contenders, options, run);
            EXPECT_EQ(armed, plain)
                << point.name << " run " << run
                << ": arming attribution changed the simulation";
        }
        EXPECT_EQ(acc.runs(), options.runs);
    }
}

TEST(Attribution, StoreStallBucketsEqualStallPmcs) {
    // The machine already counts store-gate and store-buffer-full stall
    // cycles as PMCs; the attribution buckets classify the same cycles
    // and must agree exactly.
    const MachineConfig config = MachineConfig::ngmp_ref();
    RskParams params;
    params.access = OpKind::kStore;
    params.unroll = 2;
    params.iterations = 30;
    Program scua = make_rsk(params);
    scua.body.push_back({OpKind::kLoad, 1, AddrPattern::fixed(0x0030'0000)});
    const std::vector<Program> contenders =
        make_rsk_contenders(config, OpKind::kStore);
    HwmCampaignOptions options;
    options.runs = 3;

    for (std::uint64_t run = 0; run < options.runs; ++run) {
        Machine machine(config);
        machine.arm_attribution();
        std::uint64_t campaign = 0;
        ASSERT_NE(detail::execute_campaign_run(machine, campaign, scua,
                                               contenders, options, run),
                  kNoCycle);
        machine.finalize_attribution();
        const CycleAttribution& attr = machine.attribution();
        const CoreStats& stats = machine.core(0).stats();
        EXPECT_EQ(attr.timeline(0, StallCause::kStoreGate),
                  stats.load_gate_stall_cycles)
            << "run " << run;
        EXPECT_EQ(attr.timeline(0, StallCause::kStoreBufferFull),
                  stats.store_full_stall_cycles)
            << "run " << run;
        expect_closed(machine, "store-stall run " + std::to_string(run));
    }
}

TEST(Attribution, BusWaitDecomposesIntoBlamePlusDeadSlots) {
    // The blame-matrix contract: per victim, cycles blamed on specific
    // contenders plus dead-slot cycles (nobody held the grant) equal
    // the bus's wait-cycle PMC (sum of per-request gamma). Needs every
    // request granted by finish, so all cores run finite programs and
    // the machine runs to global completion.
    for (const GridPoint& point : config_grid()) {
        Machine machine(point.config);
        machine.arm_attribution();
        RskParams params;
        params.access = OpKind::kLoad;
        params.iterations = 40;
        for (CoreId c = 0; c < point.config.num_cores; ++c) {
            // Distinct injection cadences per core (rsk-nop k = c) so
            // the arbitration pattern isn't lockstep.
            Program program = make_rsk_nop(params, c);
            machine.load_program(c, std::move(program),
                                 /*start_delay=*/c * 7);
        }
        const RunResult result = machine.run();
        ASSERT_FALSE(result.deadline_reached) << point.name;
        machine.finalize_attribution();

        const CycleAttribution& attr = machine.attribution();
        for (CoreId v = 0; v < point.config.num_cores; ++v) {
            const std::string what =
                point.name + " victim " + std::to_string(v);
            EXPECT_EQ(attr.blamed_total(v) + attr.dead_slot_cycles(v),
                      machine.bus().counters(v).wait_cycles)
                << what;
            // Nobody waits on themselves.
            EXPECT_EQ(attr.blamed(v, v), 0u) << what;
            if (point.config.arbiter != ArbiterKind::kTdma) {
                // Work-conserving arbiters never leave a pending
                // request ungranted while the bus idles.
                EXPECT_EQ(attr.dead_slot_cycles(v), 0u) << what;
            }
        }
        expect_closed(machine, point.name);
    }
}

TEST(Attribution, CutoffRunStillCloses) {
    // A run stopped by the cycle cap finalizes mid-flight: requests may
    // sit in queues, transactions mid-service. The holder flushes must
    // still cover every core's timeline up to exactly now().
    for (const GridPoint& point : config_grid()) {
        Machine machine(point.config);
        machine.arm_attribution();
        machine.load_program(
            0, ProgramBuilder("long")
                   .load(AddrPattern::stride(0x0200'0000, 32, 256 * 1024))
                   .iterations(1'000'000)
                   .build());
        for (CoreId c = 1; c < point.config.num_cores; ++c) {
            RskParams params;
            params.access = OpKind::kLoad;
            params.iterations = 1'000'000;
            machine.load_program(c, make_rsk(params));
        }
        ASSERT_EQ(machine.run_core(0, 5'000), kNoCycle) << point.name;
        machine.finalize_attribution();
        expect_closed(machine, point.name + " cutoff");
    }
}

TEST(Attribution, CampaignBitIdenticalAcrossJobsAndSharding) {
    const MachineConfig config = MachineConfig::ngmp_ref();
    const Program scua =
        make_autobench(Autobench::kCacheb, 0x0100'0000, 12, 9);
    const std::vector<Program> contenders =
        make_rsk_contenders(config, OpKind::kLoad);
    HwmCampaignOptions options;
    options.runs = 12;
    options.seed = 11;

    engine::EngineOptions serial;
    serial.jobs = 1;
    const engine::AttributionCampaignResult reference =
        engine::run_attribution_campaign(config, scua, contenders, options,
                                         serial);
    EXPECT_EQ(reference.attribution.runs(), options.runs);
    for (CoreId c = 0; c < config.num_cores; ++c) {
        // Closed accounting survives the campaign sum: every run's core
        // timeline closed, so the summed timelines close against the
        // summed machine cycles.
        std::uint64_t total = 0;
        for (std::size_t cause = 0; cause < kStallCauseCount; ++cause) {
            total += reference.attribution.timeline(
                c, static_cast<StallCause>(cause));
        }
        EXPECT_EQ(total, reference.attribution.machine_cycles())
            << "core " << c;
    }

    engine::EngineOptions wide;
    wide.jobs = 4;
    const engine::AttributionCampaignResult parallel =
        engine::run_attribution_campaign(config, scua, contenders, options,
                                         wide);
    EXPECT_EQ(parallel.et_isolation, reference.et_isolation);
    expect_same_accumulator(parallel.attribution, reference.attribution,
                            "jobs 4 vs jobs 1");

    // Distributed form: two disjoint shard slices, merged in shard
    // order, reproduce the monolithic accumulator bit-exactly.
    const engine::ReducePlan plan = engine::ReducePlan::for_count(
        static_cast<std::uint64_t>(options.runs));
    const std::size_t mid = plan.shards() / 2;
    engine::AttributionShardSlice left =
        engine::run_attribution_campaign_shards(config, scua, contenders,
                                                options, {0, mid}, wide);
    engine::AttributionShardSlice right =
        engine::run_attribution_campaign_shards(
            config, scua, contenders, options, {mid, plan.shards()}, wide);
    AttributionAccumulator merged;
    for (const AttributionAccumulator& shard : left.shards) {
        merged.merge(shard);
    }
    for (const AttributionAccumulator& shard : right.shards) {
        merged.merge(shard);
    }
    expect_same_accumulator(merged, reference.attribution,
                            "shard+merge vs monolithic");
}

TEST(Attribution, CheckpointCodecRoundTripsAccumulator) {
    const MachineConfig config = MachineConfig::ngmp_ref();
    const Program scua =
        make_autobench(Autobench::kCacheb, 0x0100'0000, 12, 9);
    const std::vector<Program> contenders =
        make_rsk_contenders(config, OpKind::kLoad);
    HwmCampaignOptions options;
    options.runs = 3;
    AttributionAccumulator acc;
    for (std::uint64_t run = 0; run < options.runs; ++run) {
        static_cast<void>(detail::hwm_campaign_attribute(
            config, scua, contenders, options, run, acc));
    }

    CheckpointWriter writer;
    CheckpointCodec::save(writer, acc);
    CheckpointReader reader(writer.bytes());
    const AttributionAccumulator loaded =
        CheckpointCodec::load_attribution(reader);
    EXPECT_EQ(reader.remaining(), 0u);
    expect_same_accumulator(loaded, acc, "codec round trip");

    // Empty state round-trips too (a slice whose shard range held no
    // runs).
    CheckpointWriter empty_writer;
    CheckpointCodec::save(empty_writer, AttributionAccumulator{});
    CheckpointReader empty_reader(empty_writer.bytes());
    const AttributionAccumulator empty =
        CheckpointCodec::load_attribution(empty_reader);
    EXPECT_TRUE(empty.empty());
    EXPECT_EQ(empty.num_cores(), 0u);

    // A tampered timeline must fail the closed-accounting re-check on
    // load instead of being trusted.
    CheckpointWriter tampered;
    {
        CycleAttribution skewed(config.num_cores);
        skewed.add(0, StallCause::kCompute, 1);  // closes to 1, not 0
        AttributionAccumulator extra;
        extra.add(0, skewed);
        // machine_cycles sums total(0)=1, consistent; now break core 1.
        CheckpointCodec::save(tampered, extra);
    }
    std::vector<std::uint8_t> bytes = tampered.bytes();
    CheckpointReader bad_reader(bytes);
    EXPECT_THROW(static_cast<void>(
                     CheckpointCodec::load_attribution(bad_reader)),
                 CheckpointError);
}

TEST(Attribution, SummaryFlattensAccumulator) {
    const MachineConfig config = MachineConfig::scaled(2, 5);
    const Program scua =
        make_autobench(Autobench::kCacheb, 0x0100'0000, 10, 9);
    const std::vector<Program> contenders =
        make_rsk_contenders(config, OpKind::kLoad);
    HwmCampaignOptions options;
    options.runs = 2;
    AttributionAccumulator acc;
    for (std::uint64_t run = 0; run < options.runs; ++run) {
        static_cast<void>(detail::hwm_campaign_attribute(
            config, scua, contenders, options, run, acc));
    }
    const obs::AttributionSummary summary = attribution_summary(acc);
    EXPECT_EQ(summary.num_cores, config.num_cores);
    EXPECT_EQ(summary.runs, options.runs);
    EXPECT_EQ(summary.machine_cycles, acc.machine_cycles());
    ASSERT_EQ(summary.causes.size(), kStallCauseCount);
    EXPECT_EQ(summary.causes.front(), "idle");
    ASSERT_EQ(summary.timeline.size(),
              config.num_cores * kStallCauseCount);
    ASSERT_EQ(summary.blame.size(),
              std::size_t{config.num_cores} * config.num_cores);
    for (CoreId c = 0; c < config.num_cores; ++c) {
        std::uint64_t row = 0;
        for (std::size_t cause = 0; cause < kStallCauseCount; ++cause) {
            row += summary.timeline[c * kStallCauseCount + cause];
        }
        EXPECT_EQ(row, summary.machine_cycles) << "core " << c;
        EXPECT_EQ(summary.dead_slot[c], acc.dead_slot_cycles(c));
    }
}

}  // namespace
}  // namespace rrb
