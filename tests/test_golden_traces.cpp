// Golden-trace tests: exact arbitration sequences for the paper's
// didactic scenarios, asserted grant by grant. These pin the simulator's
// cycle-level behaviour so that any future timing change that would
// silently shift the figures fails loudly here.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "core/analytic.h"
#include "kernels/rsk.h"
#include "machine/machine.h"

namespace rrb {
namespace {

struct Grant {
    Cycle cycle;
    CoreId core;
};

std::vector<Grant> grant_trace(Machine& machine, Cycle from, Cycle to) {
    std::vector<Grant> grants;
    for (const TraceEvent& e : machine.tracer().events()) {
        if (e.kind != TraceKind::kBusGrant) continue;
        if (e.cycle < from || e.cycle > to) continue;
        grants.push_back({e.cycle, e.core});
    }
    return grants;
}

/// Builds the Figure 2/5 machine: scua = rsk-nop(k) on core 3, rsk on
/// cores 0-2, lbus = 2, all footprints warm.
std::unique_ptr<Machine> make_textbook_machine(std::uint32_t k) {
    auto machine_ptr = std::make_unique<Machine>(MachineConfig::textbook());
    Machine& machine = *machine_ptr;
    machine.tracer().enable();
    RskParams scua;
    scua.iterations = 100;
    scua.data_base = 0x0070'0000;
    scua.code_base = 0x0003'0000;
    machine.load_program(3, make_rsk_nop(scua, k));
    machine.warm_static_footprint(3);
    for (CoreId c = 0; c < 3; ++c) {
        RskParams p;
        p.iterations = 100000;
        p.data_base = 0x0010'0000 + c * 0x0010'0000;
        p.code_base = c * 0x0001'0000;
        machine.load_program(c, make_rsk(p));
        machine.warm_static_footprint(c);
    }
    return machine_ptr;
}

TEST(GoldenTrace, SaturatedRotationIsStrictlyPeriodic) {
    // Four saturated rsk (delta = 1 each): after the transient, grants
    // occur every lbus cycles in strict core rotation.
    Machine machine(MachineConfig::textbook());
    machine.tracer().enable();
    for (CoreId c = 0; c < 4; ++c) {
        RskParams p;
        p.iterations = 200;
        p.data_base = 0x0010'0000 + c * 0x0010'0000;
        p.code_base = c * 0x0001'0000;
        machine.load_program(c, make_rsk(p));
        machine.warm_static_footprint(c);
    }
    machine.run_until_core(0, 100000);
    const auto grants = grant_trace(machine, 100, 400);
    ASSERT_GE(grants.size(), 100u);
    for (std::size_t i = 1; i < grants.size(); ++i) {
        EXPECT_EQ(grants[i].cycle - grants[i - 1].cycle, 2u) << i;
        EXPECT_EQ(grants[i].core, (grants[i - 1].core + 1) % 4) << i;
    }
}

TEST(GoldenTrace, Figure5GammaLadder) {
    // The k = 1, 2, 5, 6 ladder of Figure 5: gamma = 4, 3, 0, 5.
    const std::vector<std::pair<std::uint32_t, std::uint64_t>> ladder = {
        {1, 4}, {2, 3}, {5, 0}, {6, 5}};
    for (const auto& [k, gamma] : ladder) {
        const std::unique_ptr<Machine> machine = make_textbook_machine(k);
        machine->run_until_core(3, 100000);
        EXPECT_EQ(machine->bus().counters(3).gamma.mode(), gamma)
            << "k = " << k;
    }
}

TEST(GoldenTrace, ScuaGrantSpacingEqualsWindow) {
    // Under the synchrony effect the scua is served exactly once per
    // rotation: consecutive scua grants are (gamma + delta + lbus)
    // cycles apart = ubd + delta when gamma = Eq.2(delta)... for delta=2
    // (k=1): spacing = lbus*Nc = 8 while gamma = 4.
    const std::unique_ptr<Machine> machine = make_textbook_machine(1);
    machine->run_until_core(3, 100000);
    const auto grants = grant_trace(*machine, 100, 500);
    std::vector<Cycle> scua_grants;
    for (const Grant& g : grants) {
        if (g.core == 3) scua_grants.push_back(g.cycle);
    }
    ASSERT_GE(scua_grants.size(), 10u);
    for (std::size_t i = 1; i < scua_grants.size(); ++i) {
        EXPECT_EQ(scua_grants[i] - scua_grants[i - 1], 8u) << i;
    }
}

TEST(GoldenTrace, NgmpRotationPeriodIs36) {
    // On the real NGMP numbers (lbus = 9, 4 cores), the saturated
    // rotation window is Nc * lbus = 36 cycles.
    Machine machine(MachineConfig::ngmp_ref());
    machine.tracer().enable();
    for (CoreId c = 0; c < 4; ++c) {
        RskParams p;
        p.iterations = 100;
        p.data_base = 0x0010'0000 + c * 0x0010'0000;
        p.code_base = c * 0x0001'0000;
        machine.load_program(c, make_rsk(p));
        machine.warm_static_footprint(c);
    }
    machine.run_until_core(0, 100000);
    const auto grants = grant_trace(machine, 200, 600);
    std::vector<Cycle> core0;
    for (const Grant& g : grants) {
        if (g.core == 0) core0.push_back(g.cycle);
    }
    ASSERT_GE(core0.size(), 5u);
    for (std::size_t i = 1; i < core0.size(); ++i) {
        EXPECT_EQ(core0[i] - core0[i - 1], 36u);
    }
}

TEST(GoldenTrace, TimelineRenderingIsStable) {
    // The rendered ASCII timeline for the saturated textbook machine is a
    // golden artifact: '##' blocks every 8 columns per core.
    Machine machine(MachineConfig::textbook());
    machine.tracer().enable();
    for (CoreId c = 0; c < 4; ++c) {
        RskParams p;
        p.iterations = 100;
        p.data_base = 0x0010'0000 + c * 0x0010'0000;
        p.code_base = c * 0x0001'0000;
        machine.load_program(c, make_rsk(p));
        machine.warm_static_footprint(c);
    }
    machine.run_until_core(0, 100000);
    const std::string timeline =
        machine.tracer().render_bus_timeline(200, 231, 4);
    // Each row: exactly 8 '#' (4 service slots of 2 cycles in 32 cycles).
    std::size_t row_start = 0;
    for (CoreId c = 0; c < 4; ++c) {
        const std::size_t row_end = timeline.find('\n', row_start);
        const std::string row = timeline.substr(row_start, row_end - row_start);
        EXPECT_EQ(std::count(row.begin(), row.end(), '#'), 8) << row;
        row_start = row_end + 1;
    }
}

}  // namespace
}  // namespace rrb
