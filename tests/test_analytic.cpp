#include "core/analytic.h"

#include <gtest/gtest.h>

namespace rrb {
namespace {

TEST(Equation1, PaperValues) {
    EXPECT_EQ(ubd_eq1(4, 9), 27u);  // NGMP setup (Section 5.2)
    EXPECT_EQ(ubd_eq1(4, 2), 6u);   // Figure 3 setup
    EXPECT_EQ(ubd_eq1(2, 9), 9u);
    EXPECT_EQ(ubd_eq1(1, 9), 0u);   // no contenders, no contention
}

TEST(Equation1, Validation) {
    EXPECT_THROW((void)ubd_eq1(0, 9), std::invalid_argument);
    EXPECT_THROW((void)ubd_eq1(4, 0), std::invalid_argument);
}

TEST(Equation2, ZeroDeltaGivesFullUbd) {
    EXPECT_EQ(gamma_eq2(0, 27), 27u);
    EXPECT_EQ(gamma_eq2(0, 6), 6u);
}

TEST(Equation2, Figure3Matrix) {
    // The delta/gamma table at the bottom of Figure 3 (ubd = 6):
    // delta: 0  1  2  3  4  5  6  7  8 ...
    // gamma: 6  5  4  3  2  1  0  5  4 ...
    const Cycle ubd = 6;
    const Cycle expected[] = {6, 5, 4, 3, 2, 1, 0, 5, 4, 3, 2, 1, 0, 5};
    for (Cycle delta = 0; delta < 14; ++delta) {
        EXPECT_EQ(gamma_eq2(delta, ubd), expected[delta]) << "delta " << delta;
    }
}

TEST(Equation2, PeriodicInDelta) {
    const Cycle ubd = 27;
    for (Cycle delta = 1; delta < 100; ++delta) {
        EXPECT_EQ(gamma_eq2(delta, ubd), gamma_eq2(delta + ubd, ubd));
    }
}

TEST(Equation2, MultiplesOfUbdGiveZero) {
    for (const Cycle ubd : {6u, 27u, 14u}) {
        for (Cycle m = 1; m <= 4; ++m) {
            EXPECT_EQ(gamma_eq2(m * ubd, ubd), 0u) << ubd << " " << m;
        }
    }
}

TEST(Equation2, DeltaOnePastMultipleGivesUbdMinus1) {
    // "When delta = ubd + 1 ... gamma = ubd - 1."
    for (const Cycle ubd : {6u, 27u}) {
        EXPECT_EQ(gamma_eq2(1, ubd), ubd - 1);
        EXPECT_EQ(gamma_eq2(ubd + 1, ubd), ubd - 1);
        EXPECT_EQ(gamma_eq2(2 * ubd + 1, ubd), ubd - 1);
    }
}

TEST(Equation2, NeverExceedsUbd) {
    const Cycle ubd = 27;
    for (Cycle delta = 0; delta < 200; ++delta) {
        EXPECT_LE(gamma_eq2(delta, ubd), ubd);
        if (delta > 0) {
            EXPECT_LE(gamma_eq2(delta, ubd), ubd - 1);
        }
    }
}

TEST(SawtoothModel, RefArchitecturePeaks) {
    // ref: delta0 = 1, delta_nop = 1 -> peaks (gamma = 26) at k = 0, 27,
    // 54 — matching Figure 7(a)'s "27 = 54 - 27".
    const auto peaks = sawtooth_peaks(27, 1, 1, 60);
    EXPECT_EQ(peaks, (std::vector<std::uint32_t>{0, 27, 54}));
}

TEST(SawtoothModel, VarArchitecturePeaks) {
    // var: delta0 = 4 -> peaks at k = 24, 51 — "27 = 51 - 24".
    const auto peaks = sawtooth_peaks(27, 4, 1, 60);
    EXPECT_EQ(peaks, (std::vector<std::uint32_t>{24, 51}));
}

TEST(SawtoothModel, PeriodIndependentOfDelta0) {
    // "The period of the saw-tooth is exactly ubd regardless of
    // delta_rsk."
    for (const Cycle delta0 : {1u, 2u, 4u, 7u}) {
        const auto model = sawtooth_model(27, delta0, 1, 80);
        for (std::size_t k = 0; k + 27 < model.size(); ++k) {
            EXPECT_DOUBLE_EQ(model[k], model[k + 27]) << "delta0 " << delta0;
        }
    }
}

TEST(SawtoothModel, SlowNopSamplesSparsely) {
    // delta_nop = 3 samples every third point of the delta axis; the
    // period in k becomes ubd / gcd(ubd, 3) = 9 for ubd = 27.
    const auto model = sawtooth_model(27, 1, 3, 30);
    for (std::size_t k = 0; k + 9 < model.size(); ++k) {
        EXPECT_DOUBLE_EQ(model[k], model[k + 9]);
    }
}

TEST(SawtoothModel, RejectsZeroDeltaNop) {
    EXPECT_THROW(sawtooth_model(27, 1, 0, 10), std::invalid_argument);
}

}  // namespace
}  // namespace rrb
