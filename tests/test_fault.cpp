// The fault-tolerance contract, proven through the deterministic
// injector (src/fault/): crash-safe checkpoint saves never leave torn
// bytes at a final path, the supervised scheduler confines a throwing
// item to its own campaign (with a bounded retry budget for transient
// failures), recovery-mode resume quarantines bad files and re-runs
// exactly the uncovered ranges — and every recovery path reproduces
// the uninterrupted reference bit for bit, at jobs 1 and 4. Plus the
// telemetry-style no-op guarantee: hooks disarmed (or armed but never
// firing) change nothing.
#include <bit>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cli/cli.h"
#include "core/scenario.h"
#include "core/session.h"
#include "engine/reduce.h"
#include "fault/fault.h"
#include "kernels/autobench.h"
#include "machine/config.h"
#include "obs/telemetry.h"
#include "stats/checkpoint.h"

namespace rrb {
namespace {

/// Every test disarms on exit, firing or not — injector state must
/// never leak into the next test (or suite: ctest runs these alongside
/// the bit-identity suites).
struct InjectorGuard {
    InjectorGuard() { fault::FaultInjector::instance().disarm(); }
    ~InjectorGuard() { fault::FaultInjector::instance().disarm(); }
};

Scenario small_scenario(std::uint64_t seed = 7, std::size_t runs = 48) {
    return Scenario::on(MachineConfig::ngmp_ref())
        .scua(make_autobench(Autobench::kTblook, 0x0100'0000, 40, 2))
        .rsk_contenders(OpKind::kLoad)
        .runs(runs)
        .seed(seed);
}

PwcetSpec small_spec() {
    PwcetSpec spec;
    spec.block_size = 8;
    spec.exceedance = {1e-3, 1e-9};
    return spec;
}

std::string temp_path(const std::string& name) {
    return testing::TempDir() + "rrb_fault_" + name;
}

std::vector<char> file_bytes(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
}

void write_garbage(const std::string& path) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    const std::vector<char> junk(64, '\xAB');
    out.write(junk.data(), static_cast<std::streamsize>(junk.size()));
}

void expect_same_bits(double a, double b) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a),
              std::bit_cast<std::uint64_t>(b));
}

void expect_same_result(const PwcetCampaignResult& a,
                        const PwcetCampaignResult& b) {
    EXPECT_EQ(a.et_isolation, b.et_isolation);
    EXPECT_EQ(a.nr, b.nr);
    EXPECT_EQ(a.runs, b.runs);
    EXPECT_EQ(a.high_water_mark, b.high_water_mark);
    EXPECT_EQ(a.low_water_mark, b.low_water_mark);
    expect_same_bits(a.mean, b.mean);
    expect_same_bits(a.stddev, b.stddev);
    EXPECT_EQ(a.blocks, b.blocks);
    EXPECT_EQ(a.live_values, b.live_values);
    expect_same_bits(a.fit.mu, b.fit.mu);
    expect_same_bits(a.fit.beta, b.fit.beta);
    ASSERT_EQ(a.quantiles.size(), b.quantiles.size());
    for (std::size_t q = 0; q < a.quantiles.size(); ++q) {
        EXPECT_EQ(a.quantiles[q].exceedance, b.quantiles[q].exceedance);
        expect_same_bits(a.quantiles[q].pwcet, b.quantiles[q].pwcet);
    }
}

// ------------------------------------------------------ injector spec

TEST(FaultInjector, WindowRuleFiltersByKeyAndCountsEvaluations) {
    const InjectorGuard guard;
    fault::FaultInjector& injector = fault::FaultInjector::instance();
    injector.arm("shard-throw@2:2+3");

    // Evaluations with other keys never match the rule — not fired,
    // not even counted.
    for (int i = 0; i < 5; ++i) {
        EXPECT_FALSE(fault::should_fire(fault::Site::kShardThrow, 1));
    }
    EXPECT_EQ(injector.evaluations(fault::Site::kShardThrow), 0u);

    // Matching evaluations fire exactly on the window [2, 5).
    const bool expected[] = {false, true, true, true, false};
    for (const bool want : expected) {
        EXPECT_EQ(fault::should_fire(fault::Site::kShardThrow, 2), want);
    }
    EXPECT_EQ(injector.evaluations(fault::Site::kShardThrow), 5u);
    EXPECT_EQ(injector.fired(fault::Site::kShardThrow), 3u);

    // Other sites are untouched.
    EXPECT_FALSE(fault::should_fire(fault::Site::kTransientIo, 2));
}

TEST(FaultInjector, BareSiteFiresAlways) {
    const InjectorGuard guard;
    fault::FaultInjector::instance().arm("decode-overflow");
    for (int i = 0; i < 3; ++i) {
        EXPECT_TRUE(
            fault::should_fire(fault::Site::kDecodeOverflow, 42 + i));
    }
}

TEST(FaultInjector, SeededRateIsDeterministicPerSeed) {
    const InjectorGuard guard;
    fault::FaultInjector& injector = fault::FaultInjector::instance();
    const auto decisions = [&](const std::string& spec) {
        injector.arm(spec);
        std::vector<bool> out;
        for (int i = 0; i < 200; ++i) {
            out.push_back(
                fault::should_fire(fault::Site::kTransientIo, 0));
        }
        return out;
    };
    const std::vector<bool> first = decisions("seed=9,transient-io:~3");
    const std::vector<bool> again = decisions("seed=9,transient-io:~3");
    EXPECT_EQ(first, again);  // same seed, same schedule
    std::size_t fired = 0;
    for (const bool b : first) fired += b ? 1 : 0;
    EXPECT_GT(fired, 0u);    // ~1/3 rate actually fires...
    EXPECT_LT(fired, 200u);  // ...and actually skips
    EXPECT_NE(first, decisions("seed=10,transient-io:~3"));
}

TEST(FaultInjector, MalformedSpecThrowsAndKeepsArmedRules) {
    const InjectorGuard guard;
    fault::FaultInjector& injector = fault::FaultInjector::instance();
    injector.arm("shard-throw");
    for (const char* bad :
         {"bogus-site", "shard-throw:x", "shard-throw@", "shard-throw:0",
          "shard-throw:~0", "shard-throw,,decode-overflow", "seed=x"}) {
        EXPECT_THROW(injector.arm(bad), std::invalid_argument) << bad;
    }
    // The failed arms replaced nothing: the original rule still fires.
    EXPECT_TRUE(fault::should_fire(fault::Site::kShardThrow, 0));
}

TEST(FaultInjector, DisarmStopsEveryHook) {
    const InjectorGuard guard;
    fault::FaultInjector& injector = fault::FaultInjector::instance();
    injector.arm("shard-throw,ckpt-truncate,transient-io");
    EXPECT_TRUE(fault::should_fire(fault::Site::kShardThrow, 0));
    injector.disarm();
    EXPECT_FALSE(fault::armed());
    EXPECT_FALSE(fault::should_fire(fault::Site::kShardThrow, 0));
    EXPECT_FALSE(fault::should_fire(fault::Site::kCheckpointTruncate, 0));
}

// ------------------------------------------------- crash-safe saves

TEST(CrashSafeCheckpoint, InjectedCrashesNeverTearTheFinalPath) {
    const InjectorGuard guard;
    Session session;
    session.jobs(2);
    const std::string path = temp_path("atomic_save");
    const PwcetCheckpoint checkpoint = session.checkpoint(
        small_scenario(), small_spec(), SliceSpec{0, 1}, path);
    const std::vector<char> good = file_bytes(path);

    for (const char* spec :
         {"ckpt-truncate:1", "ckpt-fsync:1", "ckpt-rename:1"}) {
        SCOPED_TRACE(spec);
        fault::FaultInjector::instance().arm(spec);
        EXPECT_THROW(save_pwcet_checkpoint(path, checkpoint),
                     CheckpointError);
        fault::FaultInjector::instance().disarm();
        // Whatever stage the "crash" hit, the published file is still
        // the previous complete checkpoint, byte for byte...
        EXPECT_EQ(file_bytes(path), good);
        // ...and still loads.
        EXPECT_NO_THROW((void)load_pwcet_checkpoint(path));
    }

    // After the torn-write fault the crash debris is a .tmp beside the
    // real file — visible for forensics, never loaded as a checkpoint.
    EXPECT_TRUE(std::filesystem::exists(path + ".tmp"));

    // And the error is structured: an I/O failure naming the path.
    fault::FaultInjector::instance().arm("ckpt-rename:1");
    try {
        save_pwcet_checkpoint(path, checkpoint);
        FAIL() << "save was expected to throw";
    } catch (const CheckpointError& e) {
        EXPECT_EQ(e.kind(), CheckpointError::Kind::kIo);
        EXPECT_EQ(e.path(), path);
        EXPECT_NE(e.reason().find("rename"), std::string::npos);
    }
}

TEST(CrashSafeCheckpoint, CrashOnFirstSaveLeavesNoFinalFile) {
    const InjectorGuard guard;
    Session session;
    session.jobs(2);
    const std::string staging = temp_path("first_save_staging");
    const PwcetCheckpoint checkpoint = session.checkpoint(
        small_scenario(), small_spec(), SliceSpec{0, 1}, staging);

    const std::string path = temp_path("first_save_crash");
    fault::FaultInjector::instance().arm("ckpt-truncate:1");
    EXPECT_THROW(save_pwcet_checkpoint(path, checkpoint),
                 CheckpointError);
    fault::FaultInjector::instance().disarm();
    // No torn half-checkpoint a later merge/resume could mistake for
    // data — only the .tmp debris.
    EXPECT_FALSE(std::filesystem::exists(path));
    EXPECT_TRUE(std::filesystem::exists(path + ".tmp"));
}

// ------------------------------------------------- resume recovery

TEST(ResumeRecovery, QuarantinesCorruptFileAndRecoversBitIdentically) {
    const InjectorGuard guard;
    const Scenario scenario = small_scenario(11);
    const PwcetSpec spec = small_spec();

    Session monolithic;
    monolithic.jobs(1);
    const PwcetCampaignResult reference =
        monolithic.pwcet(scenario, spec);

    Session worker;
    worker.jobs(2);
    const std::string p0 = temp_path("recover_0");
    const std::string p2 = temp_path("recover_2");
    (void)worker.checkpoint(scenario, spec, {0, 3}, p0);
    (void)worker.checkpoint(scenario, spec, {2, 3}, p2);
    const std::string bad = temp_path("recover_corrupt");
    write_garbage(bad);

    // Strict resume still refuses loudly — the PR-4 contract.
    Session strict;
    EXPECT_THROW((void)strict.resume(scenario, spec, {p0, bad, p2}),
                 CheckpointError);

    // Recovery mode: the corrupt file is quarantined, its coverage (and
    // the never-checkpointed slice 1) recomputed, and the merged result
    // is the uninterrupted campaign, bit for bit.
    Session resumer;
    resumer.jobs(4);
    Session::ResumeRecovery recovery;
    const PwcetCampaignResult r =
        resumer.resume(scenario, spec, {p0, bad, p2}, recovery);
    expect_same_result(r, reference);

    ASSERT_EQ(recovery.actions.size(), 1u);
    EXPECT_EQ(recovery.actions[0].path, bad);
    EXPECT_EQ(recovery.actions[0].quarantined_to, bad + ".corrupt");
    EXPECT_FALSE(std::filesystem::exists(bad));
    EXPECT_TRUE(std::filesystem::exists(bad + ".corrupt"));
    const engine::ReducePlan plan = engine::ReducePlan::for_count(
        scenario.run_protocol().runs);
    EXPECT_EQ(recovery.shards_rerun, plan.slice(1, 3).size());
}

TEST(ResumeRecovery, QuarantinesMismatchedCampaignAndIgnoresDuplicates) {
    const InjectorGuard guard;
    const Scenario scenario = small_scenario(11);
    const PwcetSpec spec = small_spec();

    Session monolithic;
    monolithic.jobs(1);
    const PwcetCampaignResult reference =
        monolithic.pwcet(scenario, spec);

    Session worker;
    worker.jobs(2);
    const std::string p0 = temp_path("mismatch_0");
    const std::string p2 = temp_path("mismatch_2");
    const std::string other = temp_path("mismatch_other");
    (void)worker.checkpoint(scenario, spec, {0, 3}, p0);
    (void)worker.checkpoint(scenario, spec, {2, 3}, p2);
    (void)worker.checkpoint(small_scenario(99), spec, {1, 3}, other);

    // `other` is first in line, so it even gets to propose the
    // isolation baseline — and must still be rejected and quarantined
    // without poisoning the real checkpoints' validation. `p0` twice
    // is valid data covering the same shards: first copy wins, the
    // file stays in place.
    Session resumer;
    resumer.jobs(4);
    Session::ResumeRecovery recovery;
    const PwcetCampaignResult r = resumer.resume(
        scenario, spec, {other, p0, p0, p2}, recovery);
    expect_same_result(r, reference);

    ASSERT_EQ(recovery.actions.size(), 2u);
    EXPECT_EQ(recovery.actions[0].path, other);
    EXPECT_EQ(recovery.actions[0].quarantined_to, other + ".corrupt");
    EXPECT_EQ(recovery.actions[1].path, p0);
    EXPECT_TRUE(recovery.actions[1].quarantined_to.empty());
    EXPECT_TRUE(std::filesystem::exists(p0));
    EXPECT_FALSE(std::filesystem::exists(other));
}

// ------------------------------------- kill-and-recover differential

TEST(KillAndRecover, ResumeAfterInjectedCrashMatchesReferenceAcrossJobs) {
    const InjectorGuard guard;
    const Scenario scenario = small_scenario(11);
    const PwcetSpec spec = small_spec();
    const engine::ReducePlan plan = engine::ReducePlan::for_count(
        scenario.run_protocol().runs);

    Session monolithic;
    monolithic.jobs(1);
    const PwcetCampaignResult reference =
        monolithic.pwcet(scenario, spec);

    for (const std::size_t jobs : {std::size_t{1}, std::size_t{4}}) {
        SCOPED_TRACE("jobs " + std::to_string(jobs));
        const std::string tag = std::to_string(jobs);
        const std::string p0 = temp_path("kill_0_j" + tag);
        const std::string p1 = temp_path("kill_1_j" + tag);
        const std::string p2 = temp_path("kill_2_j" + tag);
        Session worker;
        worker.jobs(jobs);
        (void)worker.checkpoint(scenario, spec, {0, 3}, p0);
        (void)worker.checkpoint(scenario, spec, {2, 3}, p2);

        // Crash 1: the process dies *while saving* slice 1. The
        // crash-safe writer guarantees p1 never appears.
        fault::FaultInjector::instance().arm("ckpt-truncate:1");
        EXPECT_THROW(
            (void)worker.checkpoint(scenario, spec, {1, 3}, p1),
            CheckpointError);
        fault::FaultInjector::instance().disarm();
        EXPECT_FALSE(std::filesystem::exists(p1));

        // Recover, naively passing the path the dead process *meant*
        // to write: recovery notes it as unreadable and re-runs.
        Session resumer;
        resumer.jobs(jobs);
        Session::ResumeRecovery recovery;
        const PwcetCampaignResult recovered =
            resumer.resume(scenario, spec, {p0, p1, p2}, recovery);
        expect_same_result(recovered, reference);
        ASSERT_EQ(recovery.actions.size(), 1u);
        EXPECT_EQ(recovery.actions[0].path, p1);
        EXPECT_TRUE(recovery.actions[0].quarantined_to.empty());
        EXPECT_EQ(recovery.shards_rerun, plan.slice(1, 3).size());

        // Crash 2: a worker throws *mid-shard* while slice 1 re-runs
        // in another process — nothing lands on disk at all.
        const std::size_t victim = plan.slice(1, 3).first;
        fault::FaultInjector::instance().arm(
            "shard-throw@" + std::to_string(victim) + ":1");
        Session doomed;
        doomed.jobs(jobs);
        EXPECT_THROW(
            (void)doomed.checkpoint(scenario, spec, {1, 3}, p1),
            std::runtime_error);
        fault::FaultInjector::instance().disarm();
        EXPECT_FALSE(std::filesystem::exists(p1));

        // Plain strict resume completes the campaign identically.
        Session strict;
        strict.jobs(jobs);
        expect_same_result(strict.resume(scenario, spec, {p0, p2}),
                           reference);
    }
}

// ------------------------------------------- supervised scheduler

std::vector<BatchItem> three_campaign_batch() {
    PwcetSpec spec;
    spec.block_size = 5;
    std::vector<BatchItem> items;
    items.push_back({"alpha", small_scenario(7, 60), spec});
    items.push_back({"beta", small_scenario(11, 45), spec});
    items.push_back({"gamma", small_scenario(13, 30), spec});
    return items;
}

TEST(SupervisedScheduler, FailingCampaignDoesNotPoisonTheBatch) {
    const InjectorGuard guard;
    const std::vector<BatchItem> items = three_campaign_batch();

    std::vector<PwcetCampaignResult> reference;
    for (const BatchItem& item : items) {
        Session session;
        session.jobs(1);
        reference.push_back(session.pwcet(item.scenario, item.spec));
    }

    obs::TelemetryRegistry& registry = obs::TelemetryRegistry::instance();
    registry.reset();
    registry.enable();
    fault::FaultInjector::instance().arm("shard-throw@1:1");
    Session session;
    session.jobs(4);
    const BatchResult batch = session.batch(items);
    const obs::CounterSnapshot counters = registry.counters();
    registry.disable();

    ASSERT_EQ(batch.points.size(), 3u);
    EXPECT_FALSE(batch.points[1].ok);
    EXPECT_NE(batch.points[1].error.find("injected shard worker failure"),
              std::string::npos);
    // The survivors are not merely "still computed": they are exactly
    // what an all-healthy batch produces, at jobs 4, with the failure
    // racing alongside them.
    EXPECT_TRUE(batch.points[0].ok);
    EXPECT_TRUE(batch.points[2].ok);
    expect_same_result(batch.points[0].result, reference[0]);
    expect_same_result(batch.points[2].result, reference[2]);

    // Supervision accounting: one campaign failed, its queued items
    // were drained as skips, and the dispatch invariant still holds —
    // skipped items *were* dispatched.
    EXPECT_EQ(counters[obs::kSchedFailures], 1u);
    EXPECT_GE(counters[obs::kSchedItemsSkipped], 1u);
    EXPECT_EQ(counters[obs::kSchedDispatches],
              counters[obs::kSchedItemsEnqueued]);
    EXPECT_EQ(counters[obs::kSchedAffinityHits] +
                  counters[obs::kSchedSteals],
              counters[obs::kSchedDispatches]);
}

TEST(SupervisedScheduler, TransientFailureRetriesWithinBudget) {
    const InjectorGuard guard;
    std::vector<BatchItem> items;
    PwcetSpec spec;
    spec.block_size = 5;
    items.push_back({"flaky", small_scenario(7, 60), spec});

    Session ref_session;
    ref_session.jobs(1);
    const PwcetCampaignResult reference =
        ref_session.pwcet(items[0].scenario, items[0].spec);

    obs::TelemetryRegistry& registry = obs::TelemetryRegistry::instance();
    registry.reset();
    registry.enable();
    // Fails twice, then succeeds: inside the per-item budget of 3.
    fault::FaultInjector::instance().arm("transient-io@0:1+2");
    Session session;
    session.jobs(2);
    const BatchResult batch = session.batch(items);
    const obs::CounterSnapshot counters = registry.counters();
    registry.disable();

    ASSERT_EQ(batch.points.size(), 1u);
    EXPECT_TRUE(batch.points[0].ok);
    // A retried item restarts from a fresh accumulator — the result is
    // *identical*, not merely close.
    expect_same_result(batch.points[0].result, reference);
    EXPECT_EQ(counters[obs::kSchedRetries], 2u);
    EXPECT_EQ(counters[obs::kSchedFailures], 0u);
}

TEST(SupervisedScheduler, ExhaustedRetryBudgetFailsTheCampaign) {
    const InjectorGuard guard;
    std::vector<BatchItem> items;
    PwcetSpec spec;
    spec.block_size = 5;
    items.push_back({"doomed", small_scenario(7, 60), spec});

    obs::TelemetryRegistry& registry = obs::TelemetryRegistry::instance();
    registry.reset();
    registry.enable();
    fault::FaultInjector::instance().arm("transient-io@0");
    Session session;
    session.jobs(1);  // one drain loop: the retry accounting is exact
    const BatchResult batch = session.batch(items);
    const obs::CounterSnapshot counters = registry.counters();
    registry.disable();

    ASSERT_EQ(batch.points.size(), 1u);
    EXPECT_FALSE(batch.points[0].ok);
    EXPECT_NE(batch.points[0].error.find("transient"), std::string::npos);
    // 3 attempts = 2 retries, then the campaign fails once and every
    // remaining item is skipped without burning its own budget.
    EXPECT_EQ(counters[obs::kSchedRetries], 2u);
    EXPECT_EQ(counters[obs::kSchedFailures], 1u);
}

// ------------------------------------------------- no-op guarantees

std::string after_first_line(const std::string& text) {
    const std::size_t eol = text.find('\n');
    return eol == std::string::npos ? std::string() : text.substr(eol + 1);
}

struct CliResult {
    int code;
    std::string out;
    std::string err;
};

CliResult invoke(std::vector<std::string> args) {
    std::ostringstream out;
    std::ostringstream err;
    const int code = cli::run(args, out, err);
    return {code, out.str(), err.str()};
}

TEST(FaultNoop, ArmedButNeverFiringIsByteIdenticalToDisarmed) {
    const InjectorGuard guard;
    const std::vector<std::string> args = {"pwcet",      "--runs",
                                           "60",         "--seed",
                                           "7",          "--block-size",
                                           "5",          "--jobs",
                                           "2"};
    const CliResult disarmed = invoke(args);
    // Armed with a rule that can never match (no campaign index is
    // ever 999999): every hook still evaluates, nothing may change —
    // the same out-of-band guarantee the telemetry layer proves.
    fault::FaultInjector::instance().arm("shard-throw@999999");
    const CliResult armed = invoke(args);
    EXPECT_EQ(armed.code, disarmed.code);
    EXPECT_EQ(armed.out, disarmed.out);
}

TEST(FaultNoop, ForcedDecodeOverflowFallsBackBitIdentically) {
    const InjectorGuard guard;
    const Scenario scenario = small_scenario(7, 40);
    const PwcetSpec spec = small_spec();

    Session plain;
    plain.jobs(2);
    const PwcetCampaignResult reference = plain.pwcet(scenario, spec);

    // Every decode "overflows": replay hands every run to the
    // interpreter. The replay contract says that path is bit-identical
    // — the injector turns that contract into a test.
    fault::FaultInjector::instance().arm("decode-overflow");
    Session fallback;
    fallback.jobs(2);
    const PwcetCampaignResult degraded = fallback.pwcet(scenario, spec);
    EXPECT_GT(fault::FaultInjector::instance().fired(
                  fault::Site::kDecodeOverflow),
              0u);
    fault::FaultInjector::instance().disarm();
    expect_same_result(degraded, reference);
}

// ------------------------------------------------------ CLI surface

TEST(FaultCli, BatchReportsFailedScenarioAndExitsFour) {
    const InjectorGuard guard;
    const std::string spec_path = temp_path("batch_spec.ini");
    {
        std::ofstream spec(spec_path, std::ios::trunc);
        spec << "[scenario doomed]\n"
                "runs = 60\nseed = 7\nblock-size = 5\n"
                "\n"
                "[scenario survivor]\n"
                "runs = 60\nseed = 11\nblock-size = 5\n";
    }
    const std::string out_dir = temp_path("batch_out");

    // Campaign 0 ("doomed", spec order) fails on its first shard item.
    fault::FaultInjector::instance().arm("shard-throw@0:1");
    const CliResult batch =
        invoke({"batch", spec_path, "--out-dir", out_dir, "--jobs", "2"});
    fault::FaultInjector::instance().disarm();

    // Nonzero aggregate exit naming the failed scenario; the failed
    // campaign left no checkpoint (and certainly no torn one).
    EXPECT_EQ(batch.code, 4);
    EXPECT_NE(batch.out.find("doomed 60 7 - - - - FAILED"),
              std::string::npos)
        << batch.out;
    EXPECT_NE(batch.out.find("scenario 'doomed' failed"),
              std::string::npos);
    EXPECT_FALSE(std::filesystem::exists(out_dir + "/doomed.ckpt"));

    // The survivor completed, checkpointed, and merges byte-identically
    // to the uninterrupted standalone campaign.
    const std::string survivor = out_dir + "/survivor.ckpt";
    ASSERT_TRUE(std::filesystem::exists(survivor));
    const CliResult merged = invoke({"merge", survivor});
    const CliResult standalone =
        invoke({"pwcet", "--runs", "60", "--seed", "11", "--block-size",
                "5", "--jobs", "2"});
    EXPECT_EQ(merged.code, standalone.code);
    EXPECT_EQ(after_first_line(merged.out),
              after_first_line(standalone.out));
}

TEST(FaultCli, UnhandledWorkerFailureExitsSeventyNotTerminate) {
    const InjectorGuard guard;
    // The engine reduce path (pwcet has no scheduler supervision): the
    // first shard worker throws, wait_idle rethrows, and the top-level
    // catch-all must turn it into exit 70 naming the command.
    fault::FaultInjector::instance().arm("shard-throw:1");
    const CliResult r = invoke({"pwcet", "--runs", "40", "--seed", "7",
                                "--block-size", "8", "--jobs", "2"});
    EXPECT_EQ(r.code, 70);
    EXPECT_NE(r.err.find("command 'pwcet' failed"), std::string::npos)
        << r.err;
    EXPECT_NE(r.err.find("injected shard worker failure"),
              std::string::npos);
}

TEST(FaultCli, MalformedRrbFaultsEnvIsAUsageError) {
    const InjectorGuard guard;
    ::setenv("RRB_FAULTS", "not-a-site", 1);
    const CliResult r = invoke({"estimate"});
    ::unsetenv("RRB_FAULTS");
    EXPECT_EQ(r.code, 1);
    EXPECT_NE(r.err.find("malformed fault spec"), std::string::npos);
}

TEST(FaultCli, RrbFaultsEnvArmsForTheCommandOnly) {
    const InjectorGuard guard;
    ::setenv("RRB_FAULTS", "shard-throw:1", 1);
    const CliResult r = invoke({"pwcet", "--runs", "40", "--seed", "7",
                                "--block-size", "8", "--jobs", "2"});
    ::unsetenv("RRB_FAULTS");
    EXPECT_EQ(r.code, 70);
    // ScopedEnvArm disarmed on the way out of run().
    EXPECT_FALSE(fault::armed());
}

}  // namespace
}  // namespace rrb
