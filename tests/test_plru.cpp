#include "cache/cache.h"

#include <gtest/gtest.h>

namespace rrb {
namespace {

CacheGeometry geo() { return {1024, 4, 32}; }  // 8 sets, 4 ways

Cache make_plru() {
    return Cache(geo(), ReplacementPolicy::kPlru, WritePolicy::kWriteBack,
                 AllocPolicy::kWriteAllocate);
}

Addr same_set(std::uint32_t i) { return i * geo().set_stride(); }

TEST(Plru, RequiresPowerOfTwoWays) {
    // 3-way shape is impossible with pow2 sets anyway; test via 32KB/3...
    // use a 6-way geometry: 6 ways x 32B x 4 sets = 768B.
    const CacheGeometry bad{768, 6, 32};
    EXPECT_THROW(Cache(bad, ReplacementPolicy::kPlru,
                       WritePolicy::kWriteBack, AllocPolicy::kWriteAllocate),
                 std::invalid_argument);
}

TEST(Plru, FillsInvalidWaysFirst) {
    Cache c = make_plru();
    for (std::uint32_t i = 0; i < 4; ++i) c.read(same_set(i));
    for (std::uint32_t i = 0; i < 4; ++i) {
        EXPECT_TRUE(c.probe(same_set(i))) << i;
    }
}

TEST(Plru, MostRecentlyUsedSurvivesEviction) {
    Cache c = make_plru();
    for (std::uint32_t i = 0; i < 4; ++i) c.read(same_set(i));
    c.read(same_set(2));          // protect 2
    c.read(same_set(4));          // evict someone
    EXPECT_TRUE(c.probe(same_set(2)));  // MRU must survive
}

TEST(Plru, VictimIsNotTheJustInstalledLine) {
    Cache c = make_plru();
    for (std::uint32_t i = 0; i < 8; ++i) {
        c.read(same_set(i));
        EXPECT_TRUE(c.probe(same_set(i))) << i;  // never self-evicting
    }
}

TEST(Plru, SequentialWPlusOneThrashesInSteadyState) {
    // The rsk construction defeats PLRU too, modulo a single transient
    // hit while the tree state settles: after one warm-up round, cyclic
    // W+1 access misses on every read — so the paper's LRU/FIFO kernel
    // recipe carries over to PLRU cores unchanged.
    Cache c = make_plru();
    for (std::uint32_t i = 0; i <= 4; ++i) c.read(same_set(i));
    for (std::uint32_t i = 0; i <= 4; ++i) c.read(same_set(i));
    c.reset_stats();
    for (int round = 0; round < 8; ++round) {
        for (std::uint32_t i = 0; i <= 4; ++i) c.read(same_set(i));
    }
    EXPECT_EQ(c.stats().read_hits, 0u);
}

TEST(Plru, WPlusTwoLinesNeverHitAtAll) {
    // With W+2 distinct lines even the transient disappears.
    Cache c = make_plru();
    for (int round = 0; round < 8; ++round) {
        for (std::uint32_t i = 0; i <= 5; ++i) c.read(same_set(i));
    }
    EXPECT_EQ(c.stats().read_hits, 0u);
}

TEST(Plru, WorkingSetOfWaysAllHits) {
    Cache c = make_plru();
    for (std::uint32_t i = 0; i < 4; ++i) c.read(same_set(i));
    c.reset_stats();
    for (int round = 0; round < 5; ++round) {
        for (std::uint32_t i = 0; i < 4; ++i) c.read(same_set(i));
    }
    EXPECT_EQ(c.stats().read_misses, 0u);
}

TEST(Plru, FlushResetsTreeState) {
    Cache c = make_plru();
    for (std::uint32_t i = 0; i < 6; ++i) c.read(same_set(i));
    c.flush();
    for (std::uint32_t i = 0; i < 4; ++i) c.read(same_set(i));
    // After flush + 4 fills, all four present again.
    for (std::uint32_t i = 0; i < 4; ++i) {
        EXPECT_TRUE(c.probe(same_set(i)));
    }
}

TEST(Plru, TwoWayDegeneratesToLru) {
    // With 2 ways the PLRU tree is a single bit == true LRU.
    const CacheGeometry g{512, 2, 32};
    Cache plru(g, ReplacementPolicy::kPlru, WritePolicy::kWriteBack,
               AllocPolicy::kWriteAllocate);
    Cache lru(g, ReplacementPolicy::kLru, WritePolicy::kWriteBack,
              AllocPolicy::kWriteAllocate);
    const Addr a = 0;
    const Addr b = g.set_stride();
    const Addr d = 2 * g.set_stride();
    for (Cache* c : {&plru, &lru}) {
        c->read(a);
        c->read(b);
        c->read(a);  // a MRU
        c->read(d);  // evict b
        EXPECT_TRUE(c->probe(a));
        EXPECT_FALSE(c->probe(b));
    }
}

}  // namespace
}  // namespace rrb
